//! # Impulse — a smarter memory controller, reproduced in Rust
//!
//! Facade crate re-exporting the full Impulse reproduction workspace. See
//! the README for the architecture overview and `DESIGN.md` for the
//! paper-to-module map.

#![forbid(unsafe_code)]

pub use impulse_cache as cache;
pub use impulse_core as core;
pub use impulse_dram as dram;
pub use impulse_fault as fault;
pub use impulse_obs as obs;
pub use impulse_os as os;
pub use impulse_serve as serve;
pub use impulse_sim as sim;
pub use impulse_types as types;
pub use impulse_workloads as workloads;
