//! Figures 2 and 3 of the paper, as executable documentation: follow one
//! access to a remapped matrix diagonal through every translation stage —
//! virtual alias → (MMU) → shadow → (AddrCalc) → pseudo-virtual →
//! (PgTbl) → DRAM — and watch the controller gather a cache line.
//!
//! Run with: `cargo run --release --example walkthrough`

use impulse::core::RemapFn;
use impulse::sim::{Machine, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: u64 = 256;
    let mut m = Machine::new(&SystemConfig::paint_small());

    println!("== setup ==============================================================");
    let a = m.alloc_region(N * N * 8, 128)?;
    println!(
        "matrix A: {N}x{N} f64 at {:?} ({} KB)",
        a.start(),
        a.len() / 1024
    );

    let stride = (N + 1) * 8;
    let grant = m.sys_remap_strided(a.start(), 8, stride, N, 4096)?;
    println!(
        "sys_remap_strided(A, object=8 B, stride={stride} B, count={N})\n\
         -> alias `diagonal` at {:?}, shadow region {:?}, descriptor {:?}",
        grant.alias.start(),
        grant.shadow,
        grant.desc
    );

    println!("\n== one access: diagonal[5] ===========================================");
    let v = grant.alias.start().add(5 * 8);
    println!("1. CPU issues virtual address        {v:?}");

    let p = m.translate(v);
    println!("2. MMU translates to bus address     {p:?}");
    println!(
        "   - above installed DRAM ({:?}) => a SHADOW address",
        m.memory().mc().shadow_base()
    );

    let desc = m
        .memory()
        .mc()
        .descriptor(grant.desc)
        .expect("descriptor configured");
    let soffset = desc.offset_of(p);
    println!("3. descriptor matches; shadow offset {soffset:#x}");

    let pv = desc.remap().pv_of(soffset);
    println!(
        "4. AddrCalc ({}) maps offset -> pseudo-virtual {pv:?}",
        desc.remap().name()
    );
    if let RemapFn::Strided {
        object_size,
        stride,
        ..
    } = desc.remap()
    {
        println!(
            "   - object {} of size {object_size}, stride {stride}",
            soffset / object_size
        );
    }

    let maddr = m.memory().mc().resolve_shadow(p).expect("mapped");
    println!("5. PgTbl maps the pv page -> DRAM    {maddr:?}");

    let direct = m.translate(a.start().add(5 * stride));
    println!(
        "   cross-check via the ordinary path: A[5][5] = A + 5*{stride} -> {direct:?}  {}",
        if direct.raw() == maddr.raw() {
            "(same word ✓)"
        } else {
            "(MISMATCH!)"
        }
    );

    println!("\n== the gather, timed =================================================");
    let t0 = m.now();
    m.load(v);
    println!(
        "load diagonal[5]: {} cycles — the controller gathered a whole 128 B\n\
         line (16 diagonal elements) from 16 strided DRAM locations",
        m.now() - t0
    );
    let t0 = m.now();
    for i in 6..16 {
        m.load(grant.alias.start().add(i * 8));
    }
    println!(
        "loads diagonal[6..16]: {} cycles total — all L1 hits on the packed line",
        m.now() - t0
    );
    let s = m.memory().mc().desc_stats();
    println!(
        "controller: {} gather(s), {} DRAM requests, descriptor buffer hits {}",
        s.gathers, s.dram_requests, s.buffer_hits
    );
    Ok(())
}
