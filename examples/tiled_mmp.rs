//! Tiled dense matrix-matrix product with Impulse tile remapping
//! (Section 3.2 / Table 2).
//!
//! Tiles of a dense matrix are non-contiguous and conflict in the caches;
//! the classic fix is copying each tile into a contiguous buffer. Impulse
//! instead remaps each tile through a base-stride shadow descriptor —
//! same cache behaviour, no copying, and retargeting the alias to the
//! next tile is just a system call.
//!
//! Run with: `cargo run --release --example tiled_mmp`

use impulse::sim::{Machine, Report, SystemConfig};
use impulse::workloads::{Mmp, MmpParams, MmpVariant};

fn run(params: MmpParams, variant: MmpVariant) -> Report {
    let mut machine = Machine::new(&SystemConfig::paint());
    let mut workload = Mmp::setup(&mut machine, params, variant).expect("setup");
    workload.run(&mut machine).expect("run");
    machine.report(variant.name())
}

fn main() {
    let params = MmpParams { n: 128, tile: 32 };
    println!(
        "C = A × B, {n}×{n} doubles, {t}×{t} tiles\n",
        n = params.n,
        t = params.tile
    );

    let conventional = run(params, MmpVariant::Conventional);
    let copy = run(params, MmpVariant::SoftwareCopy);
    let remap = run(params, MmpVariant::TileRemap);

    println!("{}", Report::paper_header());
    for r in [&conventional, &copy, &remap] {
        println!("{}", r.paper_row(&conventional));
    }

    println!(
        "\ntile remapping reaches the same ~99% L1 hit ratio as copying, \
         without moving any data:"
    );
    println!(
        "  copy:  {} loads issued ({} of them pure copy overhead)",
        copy.mem.loads,
        copy.mem.loads - conventional.mem.loads
    );
    println!(
        "  remap: {} loads issued (identical to the untiled kernel)",
        remap.mem.loads
    );
    println!(
        "  remap scatter writes at the controller: {}",
        remap.mc.shadow_line_writes
    );
}
