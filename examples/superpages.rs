//! Superpages from non-contiguous frames (Section 6, recapping Swanson
//! et al., ISCA '98).
//!
//! The OS welds scattered physical pages into one contiguous shadow
//! region via direct remapping and installs a single TLB entry covering
//! the whole range. A working set of hundreds of pages then needs a
//! handful of TLB entries instead of thrashing a 120-entry TLB.
//!
//! Run with: `cargo run --release --example superpages`

use impulse::sim::{Machine, SystemConfig};
use impulse::workloads::{TlbStress, TlbVariant};

fn main() {
    const REGIONS: u64 = 8;
    const PAGES: u64 = 64;
    const ROUNDS: u64 = 8;

    println!(
        "working set: {REGIONS} regions × {PAGES} pages = {} pages; TLB holds 120 entries\n",
        REGIONS * PAGES
    );

    let mut results = Vec::new();
    for variant in [TlbVariant::BasePages, TlbVariant::Superpages] {
        let mut m = Machine::new(&SystemConfig::paint());
        let w = TlbStress::setup(&mut m, REGIONS, PAGES, variant).expect("setup");
        m.reset_stats();
        w.sweep(&mut m, ROUNDS);
        results.push((variant, m.report(variant.name())));
    }

    for (variant, r) in &results {
        println!(
            "{:<22} {:>10} cycles   {:>7} TLB miss penalties   TLB hit {:.2}%",
            variant.name(),
            r.cycles,
            r.mem.tlb_penalties,
            100.0 * r.tlb.hit_ratio()
        );
    }
    println!(
        "\nspeedup: {:.2}x — one shadow superpage entry per region replaces \
         {PAGES} base-page entries",
        results[0].1.cycles as f64 / results[1].1.cycles as f64
    );
}
