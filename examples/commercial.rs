//! The abstract's closing promise: "we expect that Impulse will benefit
//! regularly strided, memory-bound applications of commercial
//! importance, such as database and multimedia programs."
//!
//! Two miniatures: a database selection scan (the index's row-id list
//! becomes a gather indirection vector) and a multimedia channel
//! extraction (byte-granularity strided remap of interleaved RGBA).
//!
//! Run with: `cargo run --release --example commercial`

use impulse::sim::{Machine, Report, SystemConfig};
use impulse::workloads::{ChannelFilter, DbScan, DbVariant, MediaVariant};

fn db(variant: DbVariant) -> Report {
    let mut m = Machine::new(&SystemConfig::paint().with_prefetch(true, false));
    // 1 M records × 64 B (64 MB table), 256 K selected rows.
    let w = DbScan::setup(&mut m, 1 << 20, 64, 1 << 18, 0xdb, variant).expect("setup");
    m.reset_stats();
    w.fetch(&mut m);
    m.report(variant.name())
}

fn media(variant: MediaVariant) -> Report {
    let mut m = Machine::new(&SystemConfig::paint().with_prefetch(true, false));
    // A 4-megapixel RGBA frame; extract the alpha channel.
    let w = ChannelFilter::setup(&mut m, 4 << 20, 3, variant).expect("setup");
    m.reset_stats();
    w.filter(&mut m);
    m.report(variant.name())
}

fn main() {
    println!("database selection scan: fetch one field from 256K of 1M records\n");
    let conv = db(DbVariant::Conventional);
    let imp = db(DbVariant::ImpulseGather);
    println!("{}", Report::paper_header());
    println!("{}", conv.paper_row(&conv));
    println!("{}", imp.paper_row(&conv));
    println!(
        "  bus traffic: {} KB -> {} KB ({:.1}x less)\n",
        conv.bus.bytes / 1024,
        imp.bus.bytes / 1024,
        conv.bus.bytes as f64 / imp.bus.bytes as f64
    );

    println!("multimedia: alpha-channel filter over a 4-megapixel RGBA frame\n");
    let conv = media(MediaVariant::Conventional);
    let imp = media(MediaVariant::ChannelRemap);
    println!("{}", Report::paper_header());
    println!("{}", conv.paper_row(&conv));
    println!("{}", imp.paper_row(&conv));
    println!(
        "  bus traffic: {} KB -> {} KB ({:.1}x less; one byte in four is useful\n  \
         on the conventional path, and the controller coalesces the strided\n  \
         bytes into whole DRAM bursts)",
        conv.bus.bytes / 1024,
        imp.bus.bytes / 1024,
        conv.bus.bytes as f64 / imp.bus.bytes as f64
    );
}
