//! IPC message assembly with controller scatter/gather (Section 6).
//!
//! "A major chore of remote IPC is collecting message data from multiple
//! user buffers and protocol headers." The software path copies every
//! word into a contiguous message; Impulse builds a gather alias over the
//! scattered pieces and the consumer streams it directly.
//!
//! Run with: `cargo run --release --example ipc_gather`

use impulse::sim::{Machine, SystemConfig};
use impulse::workloads::{IpcGather, IpcVariant};

fn main() {
    const BUFFERS: u64 = 8;
    const BUFFER_BYTES: u64 = 4096;
    const HEADER_BYTES: u64 = 64;
    const MESSAGES: u64 = 32;

    let mut rows = Vec::new();
    for variant in [IpcVariant::SoftwareGather, IpcVariant::ImpulseGather] {
        let mut m = Machine::new(&SystemConfig::paint().with_prefetch(true, false));
        let w =
            IpcGather::setup(&mut m, BUFFERS, BUFFER_BYTES, HEADER_BYTES, variant).expect("setup");
        m.reset_stats();
        for _ in 0..MESSAGES {
            w.send(&mut m);
        }
        rows.push((variant, m.report(variant.name())));
    }

    println!(
        "assembling + streaming {MESSAGES} messages of {BUFFERS} × {BUFFER_BYTES} B \
         buffers + {HEADER_BYTES} B header:\n"
    );
    for (variant, r) in &rows {
        println!(
            "{:<26} {:>10} cycles   {:>8} loads  {:>8} stores  {:>9} bus bytes",
            variant.name(),
            r.cycles,
            r.mem.loads,
            r.mem.stores,
            r.bus.bytes
        );
    }
    let speedup = rows[0].1.cycles as f64 / rows[1].1.cycles as f64;
    println!("\nno-copy gather speedup: {speedup:.2}x (all copy loads/stores eliminated)");
}
