//! Tiled LU decomposition with Impulse tile remapping — extending the
//! paper's Section 3.2 argument from matrix product to the factorization
//! kernels it names (LU, dense Cholesky).
//!
//! The trailing GEMM updates are remapped through three strided shadow
//! aliases of the *same* matrix; inputs are purged and outputs flushed as
//! the aliases move, exactly the consistency protocol of Section 3.2.
//!
//! Run with: `cargo run --release --example tiled_lu`

use impulse::sim::{Machine, Report, SystemConfig, Tracer};
use impulse::workloads::{Lu, LuVariant};

fn run(n: u64, tile: u64, variant: LuVariant) -> Report {
    let mut m = Machine::new(&SystemConfig::paint());
    let mut lu = Lu::setup(&mut m, n, tile, variant).expect("setup");
    lu.run(&mut m).expect("run");
    m.report(variant.name())
}

fn main() {
    const N: u64 = 256;
    const T: u64 = 32;

    println!("LU factorization of a {N}x{N} matrix, {T}x{T} tiles\n");

    let conv = run(N, T, LuVariant::Conventional);
    let remap = run(N, T, LuVariant::TileRemap);

    println!("{}", Report::paper_header());
    println!("{}", conv.paper_row(&conv));
    println!("{}", remap.paper_row(&conv));

    println!(
        "\nthe trailing-update tiles dominate: remapping lifts their L1 \
         behaviour just as in Table 2,\nwhile the panel/diagonal phases \
         (shared between variants) are untouched."
    );
    println!(
        "controller scatter writes (output tiles going home): {}",
        remap.mc.shadow_line_writes
    );

    // Bonus: a short trace through the remapped alias shows the dense
    // access pattern the CPU sees.
    let mut m = Machine::new(&SystemConfig::paint());
    let mut lu = Lu::setup(&mut m, 64, 32, LuVariant::TileRemap).expect("setup");
    m.attach_tracer(Tracer::new(200_000));
    lu.run(&mut m).expect("run");
    let trace = m.take_tracer().expect("tracer attached");
    let (unique_lines, touches) = trace.line_touch_summary(32);
    println!(
        "\ntrace: {} accesses touched {} distinct 32 B lines ({:.1} touches/line)",
        touches,
        unique_lines,
        touches as f64 / unique_lines as f64
    );
}
