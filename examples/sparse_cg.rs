//! Sparse matrix-vector product (the conjugate gradient kernel) with
//! Impulse scatter/gather remapping — the paper's headline result.
//!
//! Sets up `x'[k] = x[COLUMN[k]]` at the memory controller so the CPU
//! streams a dense vector instead of chasing the indirection vector, and
//! compares all three memory systems from Table 1.
//!
//! Run with: `cargo run --release --example sparse_cg`

use std::sync::Arc;

use impulse::sim::{Machine, Report, SystemConfig};
use impulse::workloads::{Smvp, SmvpVariant, SparsePattern};

fn run(pattern: &Arc<SparsePattern>, variant: SmvpVariant, prefetch: bool) -> Report {
    let cfg = SystemConfig::paint().with_prefetch(prefetch, false);
    let mut machine = Machine::new(&cfg);
    let workload = Smvp::setup(&mut machine, pattern.clone(), variant).expect("workload setup");
    workload.run(&mut machine, 1);
    machine.report(format!(
        "{}{}",
        variant.name(),
        if prefetch {
            " + controller prefetch"
        } else {
            ""
        }
    ))
}

fn main() {
    // A CG-A-shaped matrix, scaled for a quick run: 14,000 rows keeps the
    // multiplicand vector x at 112 KB (bigger than the L1, fits in half
    // the L2), exactly the regime the paper evaluates.
    let pattern = Arc::new(SparsePattern::generate(14_000, 24, 7));
    println!(
        "sparse matrix: {} rows, {} non-zeroes\n",
        pattern.n(),
        pattern.nnz()
    );

    let conventional = run(&pattern, SmvpVariant::Conventional, false);
    let configs = [
        run(&pattern, SmvpVariant::ScatterGather, false),
        run(&pattern, SmvpVariant::ScatterGather, true),
        run(&pattern, SmvpVariant::Recolored, false),
    ];

    println!("{}", Report::paper_header());
    println!("{}", conventional.paper_row(&conventional));
    for r in &configs {
        println!("{}", r.paper_row(&conventional));
    }
    println!(
        "\npaper (Table 1): scatter/gather alone 1.33x, with controller \
         prefetching 1.67x, page recoloring 1.04x"
    );
}
