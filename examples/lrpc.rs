//! LRPC-style cross-process IPC over a shared shadow region — the final
//! suggestion in the paper's conclusions: "fast local IPC mechanisms,
//! such as LRPC, use shared memory to map buffers into sender and
//! receiver address spaces, and Impulse could be used to support fast,
//! no-copy scatter/gather into shared shadow address spaces."
//!
//! The sender's scattered message pieces are gathered by one controller
//! descriptor; the shadow region is mapped into *both* address spaces, so
//! the receiver streams a dense message that was never copied.
//!
//! Run with: `cargo run --release --example lrpc`

use std::sync::Arc;

use impulse::os::Pid;
use impulse::sim::{Machine, SystemConfig};

const PIECES: u64 = 8;
const PIECE_BYTES: u64 = 4096;
const CALLS: u64 = 32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut m = Machine::new(&SystemConfig::paint().with_prefetch(true, false));

    // --- sender process (INIT): scattered buffers + gather descriptor --
    let mut piece_regions = Vec::new();
    let base = m.alloc_region(PIECE_BYTES, 8)?;
    piece_regions.push(base);
    for _ in 1..PIECES {
        piece_regions.push(m.alloc_region(PIECE_BYTES, 8)?);
    }
    let span = piece_regions
        .last()
        .unwrap()
        .end()
        .offset_from(base.start());
    let target = impulse::types::VRange::new(base.start(), span);

    let words: u64 = PIECES * PIECE_BYTES / 8;
    let mut indices = Vec::with_capacity(words as usize);
    for piece in &piece_regions {
        let w0 = piece.start().offset_from(base.start()) / 8;
        for w in 0..PIECE_BYTES / 8 {
            indices.push(w0 + w);
        }
    }
    let index_region = m.alloc_region(words * 4, 8)?;
    let grant = m.sys_remap_gather(target, 8, Arc::new(indices), index_region, 4)?;

    // --- receiver process: gets its own alias onto the shadow region ---
    let receiver = m.sys_spawn();
    let rx_alias = m.sys_share(&grant, receiver)?;

    // --- the RPC loop: sender writes pieces, receiver streams them -----
    m.reset_stats();
    for call in 0..CALLS {
        // Sender fills its scattered buffers in its own address space.
        for piece in &piece_regions {
            for w in (0..PIECE_BYTES).step_by(64) {
                m.store(piece.start().add(w + (call % 8) * 8));
                m.compute(1);
            }
        }
        // Consistency (Section 2.3): make the writes visible to the
        // controller's gathers before the receiver looks.
        m.flush_region(target);

        // Receiver streams the dense message — zero copies.
        m.sys_switch(receiver)?;
        for w in 0..words {
            m.load(rx_alias.start().add(w * 8));
            m.compute(1);
        }
        m.sys_switch(Pid::INIT)?;
    }

    let r = m.report("lrpc");
    println!(
        "{CALLS} calls × {} KB messages across two address spaces:",
        PIECES * PIECE_BYTES / 1024
    );
    println!(
        "  {} cycles total ({} per call), {} loads, {} stores — and not one of\n  \
         those stores is a copy: the receiver reads the sender's buffers\n  \
         through the shared shadow gather.",
        r.cycles,
        r.cycles / CALLS,
        r.mem.loads,
        r.mem.stores
    );
    println!(
        "  receiver-side L1 hit ratio on the gathered message: {:.1}%",
        100.0 * r.mem.l1_ratio()
    );
    Ok(())
}
