//! No-copy page recoloring (Section 3.1 / Table 1, third section).
//!
//! On a conventional machine, controlling which L2 sets a data structure
//! occupies requires *copying* it to better-colored physical pages.
//! Impulse recolors by remapping: the OS picks shadow addresses with the
//! desired color bits and maps them straight back to the original frames.
//!
//! This example keeps a reused vector `x` in the first half of the L2
//! while two streams sweep the other half, and shows the conflict misses
//! disappear.
//!
//! Run with: `cargo run --release --example page_recolor`

use impulse::sim::{Machine, Report, SystemConfig};
use impulse::types::VRange;

const X_BYTES: u64 = 112 * 1024; // reused vector (fits half the 256 KB L2)
const STREAM_BYTES: u64 = 4 << 20; // two 4 MB streams

fn workload(m: &mut Machine, x: VRange, s1: VRange, s2: VRange, rounds: u64) {
    // Interleave stream sweeps with random reuse of x, CG-style.
    let mut lcg = 12345u64;
    for _ in 0..rounds {
        for off in (0..STREAM_BYTES).step_by(8) {
            m.load(s1.start().add(off));
            m.load(s2.start().add(off));
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            let xi = (lcg >> 16) % (X_BYTES / 8);
            m.load(x.start().add(xi * 8));
            m.compute(3);
        }
    }
}

fn run(recolor: bool) -> Report {
    let mut m = Machine::new(&SystemConfig::paint());
    let mut x = m.alloc_region(X_BYTES, 128).expect("alloc x");
    let s1 = m.alloc_region(STREAM_BYTES, 128).expect("alloc s1");
    let s2 = m.alloc_region(STREAM_BYTES, 128).expect("alloc s2");
    if recolor {
        // x → colors 0..16 (first half of the L2); the streams keep their
        // random frames but can no longer touch x's sets... to fully
        // partition, recolor them into the two remaining quadrants.
        let first_half: Vec<u64> = (0..16).collect();
        let q3: Vec<u64> = (16..24).collect();
        let q4: Vec<u64> = (24..32).collect();
        let gx = m.sys_recolor(x, &first_half).expect("recolor x");
        x = gx.alias;
        let g1 = m.sys_recolor(s1, &q3).expect("recolor s1");
        let g2 = m.sys_recolor(s2, &q4).expect("recolor s2");
        m.reset_stats();
        workload(&mut m, x, g1.alias, g2.alias, 1);
    } else {
        m.reset_stats();
        workload(&mut m, x, s1, s2, 1);
    }
    m.report(if recolor {
        "impulse recolored"
    } else {
        "conventional"
    })
}

fn main() {
    let conventional = run(false);
    let recolored = run(true);

    println!("{}", Report::paper_header());
    println!("{}", conventional.paper_row(&conventional));
    println!("{}", recolored.paper_row(&conventional));

    println!(
        "\nx-vector conflict misses: conventional {:.2}% of loads reach \
         memory, recolored {:.2}%",
        100.0 * conventional.mem.mem_ratio(),
        100.0 * recolored.mem.mem_ratio()
    );
    println!(
        "(paper, Table 1: recoloring turned a 5.5% memory ratio into 4.4% \
         and bought 4% end-to-end)"
    );
}
