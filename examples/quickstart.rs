//! Quickstart: build an Impulse machine, remap a matrix diagonal into a
//! dense shadow alias, and compare it against the conventional access
//! path — the paper's Figure 1 in a few lines.
//!
//! Run with: `cargo run --release --example quickstart`

use impulse::sim::{Machine, SystemConfig};
use impulse::types::VAddr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: u64 = 1024; // matrix dimension (f64 elements)

    // A machine with the paper's Paint configuration: 32 KB L1, 256 KB
    // L2, ~40-cycle memory, Impulse controller with prefetching enabled.
    let mut machine = Machine::new(&SystemConfig::paint().with_prefetch(true, false));

    // Allocate a dense N×N matrix.
    let matrix = machine.alloc_region(N * N * 8, 128)?;

    // --- conventional: walk A[i][i] directly -------------------------
    let start = machine.now();
    for i in 0..N {
        machine.load(matrix.start().add(i * (N + 1) * 8));
        machine.compute(2);
    }
    let conventional = machine.now() - start;

    // --- Impulse: remap the diagonal into a dense alias --------------
    // One system call sets up a strided shadow descriptor: 8-byte
    // objects, (N+1)*8-byte stride — the diagonal, packed.
    let grant = machine.sys_remap_strided(matrix.start(), 8, (N + 1) * 8, N, 4096)?;
    let diagonal: VAddr = grant.alias.start();

    let start = machine.now();
    for i in 0..N {
        machine.load(diagonal.add(i * 8));
        machine.compute(2);
    }
    let impulse = machine.now() - start;

    println!("walking the {N}-element diagonal of a dense {N}x{N} matrix:");
    println!("  conventional: {conventional:>8} cycles");
    println!(
        "  impulse:      {impulse:>8} cycles  ({:.1}x faster)",
        conventional as f64 / impulse as f64
    );
    println!(
        "\nfull measurement report:\n{}",
        machine.report("quickstart")
    );
    Ok(())
}
