//! Whole-system integration tests: run the paper's workloads at reduced
//! scale and check that the qualitative results (who wins, and why)
//! reproduce. These exercise every crate in the workspace through the
//! public facade.

use std::sync::Arc;

use impulse::sim::{Machine, Report, SystemConfig};
use impulse::workloads::{
    Diagonal, DiagonalVariant, IpcGather, IpcVariant, Mmp, MmpParams, MmpVariant, Smvp,
    SmvpVariant, SparsePattern, TlbStress, TlbVariant,
};

fn smvp_report(pattern: &Arc<SparsePattern>, v: SmvpVariant, mc_pf: bool, l1_pf: bool) -> Report {
    let cfg = SystemConfig::paint_small().with_prefetch(mc_pf, l1_pf);
    let mut m = Machine::new(&cfg);
    let w = Smvp::setup(&mut m, pattern.clone(), v).expect("setup");
    w.run(&mut m, 1);
    m.report(v.name())
}

#[test]
fn table1_shape_reproduces() {
    // x = 112 KB (≫ 32 KB L1, fits half the 256 KB L2); streams several MB.
    let pattern = Arc::new(SparsePattern::generate(14_000, 12, 3));

    let conv = smvp_report(&pattern, SmvpVariant::Conventional, false, false);
    let conv_l1 = smvp_report(&pattern, SmvpVariant::Conventional, false, true);
    let sg = smvp_report(&pattern, SmvpVariant::ScatterGather, false, false);
    let sg_pf = smvp_report(&pattern, SmvpVariant::ScatterGather, true, false);
    let sg_both = smvp_report(&pattern, SmvpVariant::ScatterGather, true, true);
    let rc = smvp_report(&pattern, SmvpVariant::Recolored, false, false);

    // Paper, Table 1, qualitatively:
    // (1) scatter/gather beats conventional even without prefetching;
    assert!(
        sg.cycles < conv.cycles,
        "sg {} !< conv {}",
        sg.cycles,
        conv.cycles
    );
    // (2) controller prefetching makes scatter/gather much faster;
    assert!(sg_pf.cycles < sg.cycles);
    // (3) the best configuration is scatter/gather with both prefetchers;
    assert!(sg_both.cycles <= sg_pf.cycles);
    // (4) scatter/gather lifts the L1 hit ratio dramatically;
    assert!(sg.mem.l1_ratio() > conv.mem.l1_ratio() + 0.08);
    // (5) ...while collapsing L2 temporal locality (x' is never reused);
    assert!(sg.mem.l2_ratio() < conv.mem.l2_ratio());
    // (6) scatter/gather issues fewer loads (COLUMN reads move to the MC);
    assert!(sg.mem.loads < conv.mem.loads);
    // (7) recoloring removes conflict misses (memory ratio drops)...
    assert!(rc.mem.mem_ratio() < conv.mem.mem_ratio());
    // (8) ...and helps in steady state (the paper amortizes the one-time
    // remap over a multi-billion-cycle run; compare per-pass time here),
    // but less than scatter/gather;
    let steady = |v| {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let w = Smvp::setup(&mut m, pattern.clone(), v).expect("setup");
        w.pass(&mut m); // warm caches
        m.reset_stats();
        w.pass(&mut m);
        m.report("steady").cycles
    };
    let rc_steady = steady(SmvpVariant::Recolored);
    let conv_steady = steady(SmvpVariant::Conventional);
    assert!(
        rc_steady < conv_steady,
        "recolor steady {rc_steady} !< conv steady {conv_steady}"
    );
    assert!(sg_pf.cycles < rc.cycles);
    // (9) L1 prefetching helps the conventional system.
    assert!(conv_l1.cycles < conv.cycles);
}

#[test]
fn table2_shape_reproduces() {
    // 256×256: the row pitch is 2 KB (a power of two), so tile rows 16
    // apart alias in the 32 KB direct-mapped L1 and every tile
    // self-conflicts — the regime Table 2 measures (at 512×512, pitch
    // 4 KB, rows 8 apart alias).
    let params = MmpParams { n: 256, tile: 32 };
    let mut reports = Vec::new();
    for v in MmpVariant::ALL {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let mut w = Mmp::setup(&mut m, params, v).expect("setup");
        w.run(&mut m).expect("run");
        reports.push(m.report(v.name()));
    }
    let (conv, copy, remap) = (&reports[0], &reports[1], &reports[2]);

    // Paper, Table 2, qualitatively: copying and remapping both crush the
    // baseline; remapping is at least as good as copying; both more than
    // double the L1 hit ratio.
    assert!(copy.cycles < conv.cycles);
    assert!(remap.cycles < conv.cycles);
    assert!(remap.cycles <= copy.cycles);
    assert!(remap.mem.l1_ratio() > 0.95);
    assert!(copy.mem.l1_ratio() > 0.95);
    assert!(conv.mem.l1_ratio() < 0.90);
    // Average load latency approaches one cycle for the optimized runs.
    assert!(remap.mem.avg_load_time() < 1.6);
}

#[test]
fn figure1_shape_reproduces() {
    let run = |variant| {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let d = Diagonal::setup(&mut m, 1024, variant).expect("setup");
        m.reset_stats();
        d.run(&mut m, 2);
        m.report("diag")
    };
    let conv = run(DiagonalVariant::Conventional);
    let imp = run(DiagonalVariant::Remapped);
    // A conventional fill moves a full line per element; Impulse moves
    // ~only the diagonal. Expect an order-of-magnitude traffic gap.
    assert!(conv.bus.bytes > 8 * imp.bus.bytes);
    assert!(imp.cycles < conv.cycles);
}

#[test]
fn ipc_and_superpage_extensions_reproduce() {
    // IPC gather (Section 6).
    let ipc = |variant| {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let w = IpcGather::setup(&mut m, 4, 2048, 64, variant).expect("setup");
        m.reset_stats();
        for _ in 0..8 {
            w.send(&mut m);
        }
        m.report("ipc")
    };
    let sw = ipc(IpcVariant::SoftwareGather);
    let imp = ipc(IpcVariant::ImpulseGather);
    assert!(imp.cycles < sw.cycles);
    assert_eq!(imp.mem.stores, 0);

    // Superpages (Section 6).
    let tlb = |variant| {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let w = TlbStress::setup(&mut m, 4, 64, variant).expect("setup");
        m.reset_stats();
        w.sweep(&mut m, 2);
        m.report("tlb")
    };
    let base = tlb(TlbVariant::BasePages);
    let sp = tlb(TlbVariant::Superpages);
    assert!(sp.mem.tlb_penalties * 10 < base.mem.tlb_penalties);
}

#[test]
fn scatter_gather_cpu_never_touches_the_indirection_vector() {
    // The paper's central claim for scatter/gather: "since the read of
    // the indirection vector (COLUMN[]) occurs at the memory controller,
    // the processor does not need to issue the read." Verify it from the
    // access trace: no demand access of the SG run lands in COLUMN.
    use impulse::sim::Tracer;

    let pattern = Arc::new(SparsePattern::generate(2048, 8, 4));
    let mut m = Machine::new(&SystemConfig::paint_small());
    let w = Smvp::setup(&mut m, pattern.clone(), SmvpVariant::ScatterGather).expect("setup");
    m.attach_tracer(Tracer::new(2_000_000));
    w.pass(&mut m);
    let trace = m.take_tracer().expect("tracer attached");
    assert!(trace.dropped() == 0, "trace must capture the whole pass");
    assert!(!trace.events().is_empty());

    // Reconstruct COLUMN's virtual range: the second region allocated by
    // the workload; easier to assert via the conventional run's
    // footprint. Here, use the kernel: COLUMN was downloaded to the MC,
    // so its vaddrs are NOT in the trace.
    let conv = {
        let mut m2 = Machine::new(&SystemConfig::paint_small());
        let w2 = Smvp::setup(&mut m2, pattern, SmvpVariant::Conventional).expect("setup");
        m2.attach_tracer(Tracer::new(2_000_000));
        w2.pass(&mut m2);
        m2.take_tracer().expect("tracer attached")
    };
    // Same allocation order → the conventional run's 4-byte loads are the
    // COLUMN/ROWS accesses; find COLUMN's page set as pages that appear
    // in conventional but never in the SG trace with a 4-byte... simpler:
    // the SG trace must contain no vaddr that the conventional trace
    // touched between DATA's last page and ROWS' first (i.e. COLUMN), so
    // just check footprints differ by at least COLUMN's size in pages.
    use std::collections::HashSet;
    let pages =
        |t: &Tracer| -> HashSet<u64> { t.events().iter().map(|e| e.vaddr.page_number()).collect() };
    let sg_pages = pages(&trace);
    let conv_pages = pages(&conv);
    let conv_only: Vec<u64> = conv_pages.difference(&sg_pages).copied().collect();
    // COLUMN is 2048*8*4 B = 16 pages (plus x pages the SG run reads via
    // the alias instead).
    assert!(
        conv_only.len() >= 16,
        "the SG run must skip COLUMN (and x) pages entirely: {} pages differ",
        conv_only.len()
    );
}

#[test]
fn determinism_same_seed_same_cycles() {
    let pattern = Arc::new(SparsePattern::generate(2048, 8, 9));
    let a = smvp_report(&pattern, SmvpVariant::ScatterGather, true, true);
    let b = smvp_report(&pattern, SmvpVariant::ScatterGather, true, true);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.mem, b.mem);
    assert_eq!(a.dram, b.dram);
}

#[test]
fn impulse_never_slows_nonshadow_accesses() {
    // Design goal from Section 2.2: remapping machinery must not slow
    // plain physical accesses. A machine with descriptors configured but
    // unused must time a non-remapped workload identically.
    let run = |configure_descriptors: bool| {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let data = m.alloc_region(1 << 20, 128).unwrap();
        if configure_descriptors {
            let x = m.alloc_region(1 << 16, 8).unwrap();
            let _ = m.sys_recolor(x, &[0, 1, 2, 3]).unwrap();
        }
        m.reset_stats();
        for i in 0..4096u64 {
            m.load(data.start().add(i * 56 % (1 << 20)));
            m.compute(1);
        }
        m.report("plain").cycles
    };
    assert_eq!(run(false), run(true));
}
