//! Randomized property tests over the core data structures.
//!
//! These were originally written against an external property-testing
//! framework; the workspace is built fully offline, so they now run on a
//! small in-file harness: a seeded splitmix64 generator drives `CASES`
//! random instances of each property, and a failing case prints the seed
//! so it can be replayed by fixing `BASE_SEED`.

use std::sync::Arc;

use impulse::cache::{Cache, CacheConfig, Indexing, Outcome, Replacement, Tlb, TlbConfig};
use impulse::core::{RemapFn, Segment};
use impulse::dram::{Dram, DramConfig, SchedulePolicy, Scheduler};
use impulse::os::{AllocPolicy, PhysMem};
use impulse::types::geom::PAGE_SIZE;
use impulse::types::{AccessKind, MAddr, PAddr, PvAddr, VAddr};

/// Cases per property.
const CASES: u64 = 64;
/// Change to replay a reported failure seed.
const BASE_SEED: u64 = 0x0049_6d70_756c_7365; // "Impulse"

/// Deterministic splitmix64 generator for test inputs.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `lo..hi` (`hi` exclusive).
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi);
        lo + ((self.u64() as u128 * (hi - lo) as u128) >> 64) as u64
    }

    fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// A vector of `range(min_len..max_len)` elements drawn from `f`.
    fn vec<T>(&mut self, min_len: u64, max_len: u64, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.range(min_len, max_len);
        (0..n).map(|_| f(self)).collect()
    }
}

/// Runs `prop` for [`CASES`] seeded generators, printing the failing seed.
fn check(name: &str, prop: impl Fn(&mut Gen)) {
    for case in 0..CASES {
        let seed = BASE_SEED ^ (case.wrapping_mul(0x2545_f491_4f6c_dd1d));
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(&mut Gen::new(seed))));
        if let Err(e) = result {
            eprintln!("property '{name}' failed on case {case} (seed {seed:#x})");
            std::panic::resume_unwind(e);
        }
    }
}

// ---------------------------------------------------------------- remap

/// Every remapping's segments exactly tile the requested byte range, and
/// each segment's start agrees with `pv_of` at that offset.
#[test]
fn strided_segments_tile_the_request() {
    check("strided_segments_tile_the_request", |g| {
        let object = 1u64 << g.range(3, 10); // 8..512-byte objects
        let stride = object + g.range(0, 4096);
        let soffset = g.range(0, 65536);
        let len = g.range(1, 1024);
        let f = RemapFn::strided(PvAddr::new(0x10_0000), object, stride);
        let mut segs = Vec::new();
        f.segments(soffset, len, &mut segs);

        let total: u64 = segs.iter().map(|s| s.bytes).sum();
        assert_eq!(total, len);

        let mut off = soffset;
        for seg in &segs {
            assert_eq!(seg.pv, f.pv_of(off));
            // A segment never crosses an object boundary.
            assert!(off % object + seg.bytes <= object);
            off += seg.bytes;
        }
    });
}

/// Gather segments follow the indirection vector element-by-element.
#[test]
fn gather_segments_follow_indices() {
    check("gather_segments_follow_indices", |g| {
        let indices = g.vec(1, 200, |g| g.range(0, 10_000));
        let elem = 1u64 << g.range(2, 7); // 4..64-byte elements
        let n = indices.len();
        let start = (g.range(0, 100) as usize).min(n - 1);
        let idx = Arc::new(indices.clone());
        let f = RemapFn::gather(PvAddr::new(0), elem, idx, PvAddr::new(1 << 30), 4);

        let count = (n - start).min(16);
        let mut segs = Vec::new();
        f.segments(start as u64 * elem, count as u64 * elem, &mut segs);
        assert_eq!(segs.len(), count);
        for (k, seg) in segs.iter().enumerate() {
            assert_eq!(seg.bytes, elem);
            assert_eq!(seg.pv.raw(), indices[start + k] * elem);
        }
    });
}

/// Direct mapping is a pure offset.
#[test]
fn direct_is_offset() {
    check("direct_is_offset", |g| {
        let base = g.range(0, 1 << 40);
        let off = g.range(0, 1 << 20);
        let f = RemapFn::direct(PvAddr::new(base));
        assert_eq!(f.pv_of(off).raw(), base + off);
        let mut segs = Vec::new();
        f.segments(off, 128, &mut segs);
        assert_eq!(
            &segs[..],
            &[Segment {
                pv: PvAddr::new(base + off),
                bytes: 128
            }]
        );
    });
}

// ---------------------------------------------------------------- cache

/// After any access sequence: a just-loaded line is always present, and
/// the number of valid lines never exceeds capacity.
#[test]
fn cache_presence_and_capacity() {
    check("cache_presence_and_capacity", |g| {
        let ways = g.range(1, 4);
        let ops = g.vec(1, 300, |g| (g.range(0, 64), g.bool()));
        let mut c = Cache::new(CacheConfig {
            name: "prop",
            size: 32 * ways * 4,
            line: 32,
            ways,
            indexing: Indexing::Physical,
            write_allocate: true,
            replacement: Replacement::Lru,
        });
        let capacity = (c.config().sets() * ways) as usize;
        for (slot, is_store) in ops {
            let addr = slot * 32;
            let kind = if is_store {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            c.access(VAddr::new(addr), PAddr::new(addr), kind);
            assert!(c.probe(VAddr::new(addr), PAddr::new(addr)));
            assert!(c.valid_lines() <= capacity);
        }
    });
}

/// Write-back integrity: every line stored to is eventually either still
/// cached (dirty) or was reported as a writeback/flush — dirty data is
/// never silently dropped.
#[test]
fn dirty_lines_are_never_lost() {
    check("dirty_lines_are_never_lost", |g| {
        let ops = g.vec(1, 200, |g| g.range(0, 32));
        let mut c = Cache::new(CacheConfig {
            name: "wb",
            size: 256, // 8 lines, direct-mapped: lots of evictions
            line: 32,
            ways: 1,
            indexing: Indexing::Physical,
            write_allocate: true,
            replacement: Replacement::Lru,
        });
        use std::collections::HashSet;
        let mut dirty: HashSet<u64> = HashSet::new();
        for slot in ops {
            let addr = slot * 32;
            match c.access(VAddr::new(addr), PAddr::new(addr), AccessKind::Store) {
                Outcome::Miss {
                    writeback: Some(wb),
                } => {
                    assert!(
                        dirty.remove(&wb.raw()),
                        "writeback of a line never dirtied: {wb:?}"
                    );
                }
                Outcome::Miss { writeback: None } | Outcome::Hit => {}
                Outcome::Bypass => unreachable!("write-allocate never bypasses"),
            }
            dirty.insert(addr);
        }
        // Whatever is still dirty must be flushable, exactly once each.
        for addr in dirty {
            let out = c.flush_line(VAddr::new(addr), PAddr::new(addr));
            assert_eq!(out, impulse::cache::FlushOutcome::Dirty);
        }
    });
}

/// TLB: a working set no larger than the TLB never misses twice.
#[test]
fn tlb_small_working_set_converges() {
    check("tlb_small_working_set_converges", |g| {
        let pages = g.vec(1, 64, |g| g.range(0, 64));
        let mut t = Tlb::new(TlbConfig { entries: 64 });
        for &p in &pages {
            if !t.lookup(p) {
                t.insert(p, 1);
            }
        }
        // Second pass: everything hits.
        for &p in &pages {
            assert!(t.lookup(p), "page {p} missed on the second pass");
        }
    });
}

// ---------------------------------------------------------------- dram

/// All scheduling policies serve every request, and reordering never
/// changes how many bytes move.
#[test]
fn schedulers_serve_everything() {
    check("schedulers_serve_everything", |g| {
        let addrs = g.vec(1, 64, |g| g.range(0, 1 << 20));
        let now = g.range(0, 10_000);
        let reqs: Vec<MAddr> = addrs.iter().map(|&a| MAddr::new(a & !7)).collect();
        let mut row_hits = Vec::new();
        for policy in SchedulePolicy::ALL {
            let mut dram = Dram::new(DramConfig::default());
            let out = Scheduler::new(policy).run_batch(&mut dram, &reqs, AccessKind::Load, 8, now);
            assert_eq!(out.completions.len(), reqs.len());
            assert!(out.completions.iter().all(|&c| c > now));
            assert_eq!(out.done, *out.completions.iter().max().unwrap());
            assert_eq!(dram.stats().bytes, reqs.len() as u64 * 8);
            row_hits.push(dram.stats().row_hits);
        }
        // Grouping by (bank, row) minimizes row transitions on a cold
        // DRAM, so open-row-first never sees fewer hits than in-order,
        // and bank-parallel preserves the grouping.
        assert!(
            row_hits[1] >= row_hits[0],
            "open-row-first hits {} < in-order hits {}",
            row_hits[1],
            row_hits[0]
        );
        assert_eq!(row_hits[2], row_hits[1]);
    });
}

/// DRAM timing is causal: completions never precede issue, and a busy
/// bank only delays, never rewinds.
#[test]
fn dram_is_causal() {
    check("dram_is_causal", |g| {
        let addrs = g.vec(1, 100, |g| g.range(0, 1 << 18));
        let mut dram = Dram::new(DramConfig::default());
        let mut now = 0;
        for a in addrs {
            let done = dram.access(MAddr::new(a & !7), AccessKind::Load, 8, now);
            assert!(done > now);
            now = done;
        }
        let s = dram.stats();
        assert_eq!(s.row_hits + s.row_misses, s.reads);
    });
}

// --------------------------------------------------------------- machine

/// Whole-machine robustness: arbitrary interleavings of loads, stores,
/// computes, and remap system calls never panic, keep the load-ratio
/// identity, and stay deterministic.
#[test]
fn machine_survives_random_programs() {
    check("machine_survives_random_programs", |g| {
        use impulse::sim::{Machine, SystemConfig};

        let ops = g.vec(1, 150, |g| (g.range(0, 6) as u8, g.range(0, 4096)));
        let run = |ops: &[(u8, u64)]| {
            let mut m = Machine::new(&SystemConfig::paint_small());
            let data = m.alloc_region(64 * 1024, 8).unwrap();
            let mut grant = None;
            for &(op, arg) in ops {
                let off = (arg * 8) % (64 * 1024);
                match op {
                    0 | 1 => m.load(data.start().add(off)),
                    2 => m.store(data.start().add(off)),
                    3 => m.compute(arg % 16 + 1),
                    4 => {
                        if grant.is_none() {
                            let colors = [(arg % 32), (arg.wrapping_add(7) % 32)];
                            grant = m.sys_recolor(data, &colors).ok();
                        } else if let Some(g) = grant.take() {
                            m.sys_release(&g).unwrap();
                        }
                    }
                    _ => {
                        if let Some(g) = &grant {
                            m.load(g.alias.start().add(off));
                        } else {
                            m.flush_region(data);
                        }
                    }
                }
            }
            m.report("fuzz")
        };
        let a = run(&ops);
        let b = run(&ops);
        assert_eq!(a.cycles, b.cycles, "determinism");
        assert_eq!(
            a.mem.l1_load_hits + a.mem.l2_load_hits + a.mem.mem_loads,
            a.mem.loads,
            "every load is served at exactly one level"
        );
        assert!(
            a.mem.load_cycles >= a.mem.loads,
            "loads cost at least a cycle"
        );
    });
}

/// Randomized strided remaps through the whole machine resolve to the
/// same DRAM words as direct MMU accesses.
#[test]
fn machine_strided_remap_is_address_preserving() {
    check("machine_strided_remap_is_address_preserving", |g| {
        use impulse::sim::{Machine, SystemConfig};
        use impulse::types::MAddr;

        let object = 1u64 << g.range(3, 9);
        let stride = object * g.range(1, 6) + object; // ≥ object, varied
        let count = g.range(2, 40);
        let probes = g.vec(1, 20, |g| (g.range(0, 40), g.range(0, 512)));
        let mut m = Machine::new(&SystemConfig::paint_small());
        let span = (count - 1) * stride + object;
        let base = m.alloc_region(span, 128).unwrap();
        let grant = m
            .sys_remap_strided(base.start(), object, stride, count, 4096)
            .unwrap();

        for (obj, within) in probes {
            let obj = obj % count;
            let within = within % object;
            let alias_v = grant.alias.start().add(obj * object + within);
            let p = m.translate(alias_v);
            let via = m
                .memory()
                .mc()
                .resolve_shadow(p)
                .expect("alias must resolve");
            let direct = MAddr::new(m.translate(base.start().add(obj * stride + within)).raw());
            assert_eq!(via, direct);
        }
    });
}

/// Multi-descriptor dispatch: several descriptors with different remap
/// kinds coexist; every probe resolves per the *matching* descriptor's
/// arithmetic.
#[test]
fn controller_dispatches_across_descriptors() {
    check("controller_dispatches_across_descriptors", |g| {
        use impulse::core::{McConfig, MemController, RemapFn};
        use impulse::dram::{Dram, DramConfig};
        use impulse::types::{MAddr, PAddr, PRange, PvAddr};

        let probes = g.vec(1, 40, |g| (g.range(0, 3) as usize, g.range(0, 2048)));
        let stride_extra = g.range(1, 64);
        let seed = g.range(1, 1000);

        let dram = Dram::new(DramConfig {
            capacity: 1 << 24,
            ..DramConfig::default()
        });
        let mut mc = MemController::new(dram, McConfig::default());
        let shadow = mc.shadow_base();

        // Identity page table over the first 8 MB.
        for page in 0..2048u64 {
            mc.map_page(page, MAddr::new(page << 12));
        }

        // Descriptor 0: direct at pv 1 MB.
        let r0 = PRange::new(shadow, 1 << 16);
        mc.claim_descriptor(r0, RemapFn::direct(PvAddr::new(1 << 20)))
            .unwrap();
        // Descriptor 1: strided 8-byte objects.
        let stride = 8 + 8 * stride_extra;
        let r1 = PRange::new(shadow.add(1 << 16), 1 << 14);
        mc.claim_descriptor(r1, RemapFn::strided(PvAddr::new(2 << 20), 8, stride))
            .unwrap();
        // Descriptor 2: gather over 4096 elements.
        let indices: Vec<u64> = (0..4096u64).map(|i| (i * seed) % 4096).collect();
        let r2 = PRange::new(shadow.add(1 << 17), 4096 * 8);
        mc.claim_descriptor(
            r2,
            RemapFn::gather(
                PvAddr::new(4 << 20),
                8,
                std::sync::Arc::new(indices.clone()),
                PvAddr::new(6 << 20),
                4,
            ),
        )
        .unwrap();

        for (which, off) in probes {
            let off8 = off * 8 % (1 << 14);
            let (addr, expect) = match which {
                0 => (r0.start().add(off8), (1u64 << 20) + off8),
                1 => (r1.start().add(off8), (2u64 << 20) + (off8 / 8) * stride),
                _ => (
                    r2.start().add(off8),
                    (4u64 << 20) + indices[(off8 / 8) as usize] * 8,
                ),
            };
            let got = mc.resolve_shadow(addr).expect("must resolve");
            assert_eq!(got, MAddr::new(expect), "descriptor {which} offset {off8}");
            assert!(
                mc.resolve_shadow(PAddr::new(addr.raw() + (1 << 30)))
                    .is_none(),
                "far-away shadow addresses match nothing"
            );
        }
    });
}

// ----------------------------------------------------------------- types

/// Range block iteration covers the range exactly, with aligned steps.
#[test]
fn range_blocks_cover() {
    check("range_blocks_cover", |g| {
        use impulse::types::{VAddr, VRange};
        let start = g.range(0, 1 << 30);
        let len = g.range(1, 1 << 16);
        let step = 1u64 << g.range(3, 10);
        let r = VRange::new(VAddr::new(start), len);
        let blocks: Vec<VAddr> = r.blocks(step).collect();
        assert!(!blocks.is_empty());
        assert!(blocks[0].raw() <= start);
        assert!(blocks.last().unwrap().raw() < start + len);
        for w in blocks.windows(2) {
            assert_eq!(w[1].raw() - w[0].raw(), step);
        }
        for b in &blocks {
            assert!(b.is_aligned(step));
        }
        // Every byte of the range falls inside some block.
        assert!(blocks.last().unwrap().raw() + step >= start + len);
    });
}

/// Alignment helpers are idempotent and ordered.
#[test]
fn alignment_laws() {
    check("alignment_laws", |g| {
        use impulse::types::geom::{round_down, round_up};
        let x = g.range(0, 1 << 40);
        let a = 1u64 << g.range(0, 16);
        let up = round_up(x, a);
        let down = round_down(x, a);
        assert!(down <= x && x <= up);
        assert_eq!(round_up(up, a), up);
        assert_eq!(round_down(down, a), down);
        assert!(up - down < 2 * a);
    });
}

// ---------------------------------------------------------------- phys

/// Frames are handed out uniquely, under either policy.
#[test]
fn frames_are_unique() {
    check("frames_are_unique", |g| {
        let seed = g.range(0, 1000);
        let n = g.range(1, 64);
        for policy in [AllocPolicy::Sequential, AllocPolicy::Random(seed)] {
            let mut p = PhysMem::new(64 * PAGE_SIZE, 0, policy);
            let mut seen = std::collections::HashSet::new();
            for _ in 0..n {
                let f = p.alloc().unwrap();
                assert!(f.raw().is_multiple_of(PAGE_SIZE));
                assert!(seen.insert(f.raw()), "duplicate frame");
            }
        }
    });
}

/// Free then re-alloc cycles never lose or duplicate frames.
#[test]
fn alloc_free_cycles() {
    check("alloc_free_cycles", |g| {
        let ops = g.vec(1, 200, |g| g.bool());
        let mut p = PhysMem::new(16 * PAGE_SIZE, 0, AllocPolicy::Sequential);
        let mut held: Vec<MAddr> = Vec::new();
        for do_alloc in ops {
            if do_alloc {
                if let Ok(f) = p.alloc() {
                    assert!(!held.contains(&f));
                    held.push(f);
                }
            } else if let Some(f) = held.pop() {
                p.free(f);
            }
            assert_eq!(p.allocated_frames(), held.len() as u64);
        }
    });
}
