//! Multi-process integration tests: inter-process protection of the
//! remapping system calls (Section 2.1's design requirement) and the
//! shared-shadow LRPC-style IPC the paper's conclusions describe.

use std::sync::Arc;

use impulse::os::{OsError, Pid};
use impulse::sim::{Machine, SystemConfig};

fn machine() -> Machine {
    Machine::new(&SystemConfig::paint_small())
}

#[test]
fn context_switch_costs_cycles_and_flushes_tlb() {
    let mut m = machine();
    let r = m.alloc_region(4 * 4096, 8).unwrap();
    m.load(r.start());
    let penalties_before = m.memory().stats().tlb_penalties;

    let child = m.sys_spawn();
    let t = m.now();
    m.sys_switch(child).unwrap();
    assert!(m.now() > t, "context switch must cost time");
    m.sys_switch(Pid::INIT).unwrap();

    // Same page again: the TLB was flushed, so a fresh penalty is paid.
    m.load(r.start());
    assert_eq!(m.memory().stats().tlb_penalties, penalties_before + 1);
}

#[test]
fn processes_cannot_touch_each_others_grants() {
    let mut m = machine();
    let x = m.alloc_region(4096, 8).unwrap();
    let grant = m.sys_recolor(x, &[0]).unwrap();
    let intruder = m.sys_spawn();
    m.sys_switch(intruder).unwrap();

    assert!(matches!(
        m.sys_release(&grant),
        Err(OsError::NotOwner(Pid::INIT))
    ));
    assert!(matches!(
        m.sys_share(&grant, intruder),
        Err(OsError::NotOwner(Pid::INIT))
    ));
}

#[test]
fn lrpc_style_no_copy_message_passing() {
    let mut m = machine();

    // Sender: scattered message pieces gathered through one descriptor.
    let pieces = m.alloc_region(64 * 1024, 8).unwrap();
    let colv = m.alloc_region(32 * 1024, 4).unwrap();
    let words = 4096u64;
    let indices: Vec<u64> = (0..words).map(|i| (i * 1237) % (64 * 1024 / 8)).collect();
    let grant = m
        .sys_remap_gather(pieces, 8, Arc::new(indices), colv, 4)
        .unwrap();

    // Receiver gets its own alias onto the same shadow region.
    let receiver = m.sys_spawn();
    let rx_alias = m.sys_share(&grant, receiver).unwrap();

    // Sender-side view and receiver-side view resolve to the same DRAM.
    let tx_dram = m
        .memory()
        .mc()
        .resolve_shadow(m.translate(grant.alias.start()))
        .unwrap();
    m.sys_switch(receiver).unwrap();
    let rx_shadow = m.translate(rx_alias.start());
    let rx_dram = m.memory().mc().resolve_shadow(rx_shadow).unwrap();
    assert_eq!(tx_dram, rx_dram);

    // The receiver streams the message without any copy having happened.
    m.reset_stats();
    for w in 0..words {
        m.load(rx_alias.start().add(w * 8));
    }
    let rep = m.report("receiver stream");
    assert_eq!(rep.mem.loads, words);
    assert_eq!(rep.mem.stores, 0, "no copies anywhere");
    assert!(rep.mem.l1_ratio() > 0.7, "gathered message is dense");
}

#[test]
fn distinct_processes_reuse_virtual_addresses_safely() {
    let mut m = machine();
    let a = m.alloc_region(4096, 8).unwrap();
    let pa_parent = m.translate(a.start());

    let child = m.sys_spawn();
    m.sys_switch(child).unwrap();
    let b = m.alloc_region(4096, 8).unwrap();
    // Identical virtual address, different process, different frame.
    assert_eq!(a.start(), b.start());
    let pa_child = m.translate(b.start());
    assert_ne!(pa_parent, pa_child);

    // Both processes can use their views; the simulator keeps them apart.
    m.load(b.start());
    m.sys_switch(Pid::INIT).unwrap();
    m.load(a.start());
}
