//! End-to-end address-algebra invariants.
//!
//! The heart of Impulse is an address transformation pipeline:
//! virtual alias → (MMU) → shadow → (AddrCalc) → pseudo-virtual →
//! (PgTbl) → DRAM. These tests check, for every remapping flavour, that
//! the pipeline lands on exactly the DRAM words the original virtual
//! addresses reach through the ordinary MMU path — i.e. remapping never
//! changes *which data* you see, only how it is packed.

use std::sync::Arc;

use impulse::sim::{Machine, SystemConfig};
use impulse::types::geom::PAGE_SIZE;
use impulse::types::{MAddr, VAddr};

fn machine() -> Machine {
    Machine::new(&SystemConfig::paint_small())
}

/// DRAM word the ordinary MMU path reaches for `v`.
fn dram_of(m: &Machine, v: VAddr) -> MAddr {
    let p = m.translate(v);
    assert!(
        !m.memory().mc().is_shadow(p),
        "expected a physically-backed address for {v:?}"
    );
    MAddr::new(p.raw())
}

/// DRAM word the Impulse path reaches for alias address `v`.
fn dram_via_impulse(m: &Machine, v: VAddr) -> MAddr {
    let p = m.translate(v);
    assert!(
        m.memory().mc().is_shadow(p),
        "alias must map to shadow space"
    );
    m.memory()
        .mc()
        .resolve_shadow(p)
        .unwrap_or_else(|| panic!("shadow address {p:?} did not resolve"))
}

#[test]
fn gather_alias_reaches_exactly_the_indexed_words() {
    let mut m = machine();
    let n = 4096u64;
    let x = m.alloc_region(n * 8, 8).unwrap();
    let colv = m.alloc_region(n * 4, 4).unwrap();
    let indices: Vec<u64> = (0..n).map(|i| (i * 2654435761) % n).collect();
    let grant = m
        .sys_remap_gather(x, 8, Arc::new(indices.clone()), colv, 4)
        .unwrap();

    for k in (0..n).step_by(37) {
        let via_alias = dram_via_impulse(&m, grant.alias.start().add(k * 8));
        let direct = dram_of(&m, x.start().add(indices[k as usize] * 8));
        assert_eq!(via_alias, direct, "element {k}");
    }
}

#[test]
fn strided_alias_packs_the_diagonal() {
    let mut m = machine();
    let n = 512u64;
    let a = m.alloc_region(n * n * 8, 128).unwrap();
    let stride = (n + 1) * 8;
    let grant = m.sys_remap_strided(a.start(), 8, stride, n, 4096).unwrap();

    for i in (0..n).step_by(13) {
        let via_alias = dram_via_impulse(&m, grant.alias.start().add(i * 8));
        let direct = dram_of(&m, a.start().add(i * stride));
        assert_eq!(via_alias, direct, "diagonal element {i}");
    }
}

#[test]
fn strided_alias_handles_sub_object_offsets() {
    let mut m = machine();
    let a = m.alloc_region(1 << 20, 128).unwrap();
    // 256-byte tile rows, 4 KB pitch.
    let grant = m.sys_remap_strided(a.start(), 256, 4096, 32, 4096).unwrap();
    for (obj, within) in [(0u64, 0u64), (0, 255), (7, 128), (31, 8), (15, 31)] {
        let via_alias = dram_via_impulse(&m, grant.alias.start().add(obj * 256 + within));
        let direct = dram_of(&m, a.start().add(obj * 4096 + within));
        assert_eq!(via_alias, direct, "object {obj} offset {within}");
    }
}

#[test]
fn recolored_alias_is_the_identity_on_data() {
    let mut m = machine();
    let x = m.alloc_region(28 * PAGE_SIZE, 8).unwrap();
    let colors: Vec<u64> = (0..16).collect();
    let grant = m.sys_recolor(x, &colors).unwrap();

    for off in (0..28 * PAGE_SIZE).step_by(997) {
        let via_alias = dram_via_impulse(&m, grant.alias.start().add(off));
        let direct = dram_of(&m, x.start().add(off));
        assert_eq!(via_alias, direct, "offset {off:#x}");
    }
}

#[test]
fn recolored_alias_only_uses_requested_colors() {
    let mut m = machine();
    let x = m.alloc_region(50 * PAGE_SIZE, 8).unwrap();
    let colors = [3u64, 7, 11];
    let grant = m.sys_recolor(x, &colors).unwrap();
    for page in grant.alias.blocks(PAGE_SIZE) {
        let bus = m.translate(page);
        let color = bus.page_number() % 32;
        assert!(colors.contains(&color), "page landed on color {color}");
    }
}

#[test]
fn superpage_preserves_frames_under_new_mapping() {
    let mut m = machine();
    let pages = 32u64;
    let r = m
        .alloc_region(pages * PAGE_SIZE, pages * PAGE_SIZE)
        .unwrap();
    // Capture the original frames through the MMU before the remap.
    let before: Vec<MAddr> = (0..pages)
        .map(|i| dram_of(&m, r.start().add(i * PAGE_SIZE + 123)))
        .collect();

    m.sys_superpage(r).unwrap();

    for (i, &orig) in before.iter().enumerate() {
        let v = r.start().add(i as u64 * PAGE_SIZE + 123);
        let now = dram_via_impulse(&m, v);
        assert_eq!(now, orig, "page {i} must still reach its original frame");
    }
    // And the shadow image is contiguous: consecutive pages, consecutive
    // shadow addresses.
    let s0 = m.translate(r.start());
    let s1 = m.translate(r.start().add(PAGE_SIZE));
    assert_eq!(s1.raw() - s0.raw(), PAGE_SIZE);
}

#[test]
fn loads_through_alias_and_original_stay_coherent_with_flushes() {
    // The paper requires applications to flush between mixed-view
    // accesses; here we just check both views remain *readable* and reach
    // the same DRAM while caches are flushed in between.
    let mut m = machine();
    let x = m.alloc_region(8 * PAGE_SIZE, 8).unwrap();
    let grant = m.sys_recolor(x, &[0, 1]).unwrap();

    for i in 0..64 {
        m.load(x.start().add(i * 64));
    }
    m.flush_region(x);
    for i in 0..64 {
        m.load(grant.alias.start().add(i * 64));
    }
    let r = m.report("coherent");
    assert_eq!(r.mem.loads, 128);
}

#[test]
fn superpage_release_restores_original_frames() {
    let mut m = machine();
    let pages = 16u64;
    let r = m
        .alloc_region(pages * PAGE_SIZE, pages * PAGE_SIZE)
        .unwrap();
    let before: Vec<MAddr> = (0..pages)
        .map(|i| dram_of(&m, r.start().add(i * PAGE_SIZE)))
        .collect();

    let grant = m.sys_superpage(r).unwrap();
    assert!(m.memory().mc().is_shadow(m.translate(r.start())));

    m.sys_release(&grant).unwrap();
    // Every page translates back to its original frame, directly.
    for (i, &orig) in before.iter().enumerate() {
        let v = r.start().add(i as u64 * PAGE_SIZE);
        assert_eq!(dram_of(&m, v), orig, "page {i} restored");
    }
    // The TLB reach is back to single pages.
    assert_eq!(
        m.kernel().tlb_span(r.start().raw() >> 12),
        (r.start().raw() >> 12, 1)
    );
    // And the region is still usable for loads.
    m.load(r.start().add(5 * PAGE_SIZE));
}

#[test]
fn release_recycles_descriptors_indefinitely() {
    let mut m = machine();
    let x = m.alloc_region(PAGE_SIZE, 8).unwrap();
    // Far more than the eight descriptor slots.
    for i in 0..64 {
        let g = m.sys_recolor(x, &[i % 32]).unwrap();
        m.load(g.alias.start());
        m.sys_release(&g).unwrap();
    }
}
