//! Site-specific injectors: owned by a component, consulted at its
//! access points. Each injector wraps its own [`FaultPlan`] stream and
//! keeps its own counters, so components stay decoupled and the
//! schedule stays deterministic.

use impulse_types::snap::{SnapError, SnapReader, SnapWriter};
use impulse_types::Cycle;

use crate::ecc::BitFlip;
use crate::plan::FaultPlan;

/// Snapshot section tags for the five injector types.
const TAG_FLIP: u32 = 0x464C_4950; // "FLIP"
const TAG_BUS: u32 = 0x4255_5346; // "BUSF"
const TAG_PGT: u32 = 0x5047_5446; // "PGTF"
const TAG_CAP: u32 = 0x4341_5046; // "CAPF"
const TAG_TIER: u32 = 0x5449_4552; // "TIER"

/// Counters for the DRAM bit-flip site.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlipStats {
    /// Single-bit flips injected into the array.
    pub injected_single: u64,
    /// Double-bit flips injected into the array.
    pub injected_double: u64,
}

/// Injects single/double bit flips on DRAM accesses. The DRAM model
/// owns one and records flips as they happen; the controller drains
/// them on the return path and runs them through its ECC model.
#[derive(Clone, Debug)]
pub struct FlipInjector {
    plan: FaultPlan,
    double_permille: u32,
    pending: Vec<(u64, BitFlip)>,
    stats: FlipStats,
}

impl FlipInjector {
    /// Creates an injector; `double_permille` of fired flips are
    /// double-bit (uncorrectable under SECDED), the rest single-bit.
    pub fn new(plan: FaultPlan, double_permille: u32) -> Self {
        Self {
            plan,
            double_permille,
            pending: Vec::new(),
            stats: FlipStats::default(),
        }
    }

    /// Called by the DRAM model on each data access. Queues a flip at
    /// `addr` when the plan fires.
    pub fn on_access(&mut self, addr: u64, now: Cycle) {
        if !self.plan.fires(now) {
            return;
        }
        let flip = if self.plan.rng().permille(self.double_permille) {
            self.stats.injected_double += 1;
            BitFlip::Double
        } else {
            self.stats.injected_single += 1;
            BitFlip::Single
        };
        self.pending.push((addr, flip));
    }

    /// Drains the flips queued since the last call (allocation-free
    /// when none are pending — the common case).
    pub fn take(&mut self) -> Vec<(u64, BitFlip)> {
        std::mem::take(&mut self.pending)
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FlipStats {
        self.stats
    }

    /// Serializes the injector's dynamic state: plan position, pending
    /// (undrained) flips, and counters. The trigger/ratio configuration
    /// is rebuilt, not stored.
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_FLIP);
        self.plan.snap_save(w);
        w.usize(self.pending.len());
        for &(addr, flip) in &self.pending {
            w.u64(addr);
            w.u8(match flip {
                BitFlip::Single => 0,
                BitFlip::Double => 1,
            });
        }
        w.u64(self.stats.injected_single);
        w.u64(self.stats.injected_double);
    }

    /// Restores the dynamic state saved by [`FlipInjector::snap_save`]
    /// into an injector freshly built from the same configuration.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_FLIP)?;
        self.plan.snap_load(r)?;
        let n = r.usize()?;
        self.pending.clear();
        for _ in 0..n {
            let addr = r.u64()?;
            let flip = match r.u8()? {
                0 => BitFlip::Single,
                1 => BitFlip::Double,
                _ => return Err(SnapError::Geometry("bit-flip kind out of range")),
            };
            self.pending.push((addr, flip));
        }
        self.stats.injected_single = r.u64()?;
        self.stats.injected_double = r.u64()?;
        Ok(())
    }
}

/// Counters for the bus-timeout site.
#[derive(Clone, Copy, Debug, Default)]
pub struct BusFaultStats {
    /// Requests that hit at least one timeout.
    pub timeouts: u64,
    /// Individual retry attempts issued (bounded by
    /// `timeouts * max_retries` — the chaos harness asserts this).
    pub retries: u64,
    /// Total extra delay cycles spent waiting out timeouts and backoff.
    pub recovery_cycles: u64,
}

/// Injects request timeouts at the bus, recovered by bounded retry with
/// exponential backoff: attempt `i` waits `backoff << i` cycles before
/// re-arbitrating, and a request is retried at most `max_retries` times
/// before the (guaranteed) successful attempt.
#[derive(Clone, Debug)]
pub struct TimeoutInjector {
    plan: FaultPlan,
    max_retries: u32,
    backoff: Cycle,
    stats: BusFaultStats,
}

impl TimeoutInjector {
    /// Creates an injector with the given retry bound and base backoff.
    pub fn new(plan: FaultPlan, max_retries: u32, backoff: Cycle) -> Self {
        Self {
            plan,
            max_retries: max_retries.max(1),
            backoff,
            stats: BusFaultStats::default(),
        }
    }

    /// Consulted once per bus request. Returns the extra delay (0 for a
    /// clean request) the requester spends timing out and backing off.
    pub fn delay(&mut self, now: Cycle) -> Cycle {
        if !self.plan.fires(now) {
            return 0;
        }
        self.stats.timeouts += 1;
        // The fault burst spans 1..=max_retries consecutive timeouts;
        // the next attempt succeeds, so recovery is always bounded.
        let attempts = 1 + self.plan.rng().below(u64::from(self.max_retries));
        let mut delay = 0;
        for i in 0..attempts {
            self.stats.retries += 1;
            delay += self.backoff << i.min(16);
        }
        self.stats.recovery_cycles += delay;
        delay
    }

    /// The configured retry bound.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// Timeout/retry counters so far.
    pub fn stats(&self) -> BusFaultStats {
        self.stats
    }

    /// Serializes the injector's dynamic state (plan position and
    /// counters); retry bound and backoff are configuration.
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_BUS);
        self.plan.snap_save(w);
        w.u64(self.stats.timeouts);
        w.u64(self.stats.retries);
        w.u64(self.stats.recovery_cycles);
    }

    /// Restores the dynamic state saved by [`TimeoutInjector::snap_save`]
    /// into an injector freshly built from the same configuration.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_BUS)?;
        self.plan.snap_load(r)?;
        self.stats.timeouts = r.u64()?;
        self.stats.retries = r.u64()?;
        self.stats.recovery_cycles = r.u64()?;
        Ok(())
    }
}

/// Counters for the MC-TLB/page-table corruption site.
#[derive(Clone, Copy, Debug, Default)]
pub struct PgTblFaultStats {
    /// Cached translation entries corrupted.
    pub corruptions: u64,
    /// Entries recovered by reloading from the backing memory table.
    pub reloads: u64,
    /// Total extra cycles spent detecting and reloading.
    pub recovery_cycles: u64,
}

/// Injects corruption into the controller's cached translation state
/// (MC-TLB and its front cache). The page table detects the corruption
/// at use (parity), discards the entry, and reloads from the backing
/// in-memory table — the authoritative copy — charging the walk.
#[derive(Clone, Debug)]
pub struct PgTblInjector {
    plan: FaultPlan,
    stats: PgTblFaultStats,
}

impl PgTblInjector {
    /// Creates an injector driven by `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            stats: PgTblFaultStats::default(),
        }
    }

    /// Consulted once per translation. True when the entry consulted by
    /// this translation should be treated as corrupted.
    pub fn corrupts(&mut self, now: Cycle) -> bool {
        self.plan.fires(now)
    }

    /// Records one detected corruption of a cached entry.
    pub fn note_corruption(&mut self) {
        self.stats.corruptions += 1;
    }

    /// Records the reload walk that recovered a corrupted entry.
    pub fn note_reload(&mut self, cycles: Cycle) {
        self.stats.reloads += 1;
        self.stats.recovery_cycles += cycles;
    }

    /// Corruption/reload counters so far.
    pub fn stats(&self) -> PgTblFaultStats {
        self.stats
    }

    /// Serializes the injector's dynamic state (plan position and
    /// counters).
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_PGT);
        self.plan.snap_save(w);
        w.u64(self.stats.corruptions);
        w.u64(self.stats.reloads);
        w.u64(self.stats.recovery_cycles);
    }

    /// Restores the dynamic state saved by [`PgTblInjector::snap_save`]
    /// into an injector freshly built from the same configuration.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_PGT)?;
        self.plan.snap_load(r)?;
        self.stats.corruptions = r.u64()?;
        self.stats.reloads = r.u64()?;
        self.stats.recovery_cycles = r.u64()?;
        Ok(())
    }
}

/// Counters for the capability-table corruption site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CapsFaultStats {
    /// Capability-table entries corrupted in the working table.
    pub corruptions: u64,
    /// Entries recovered by reloading from the mirrored table.
    pub reloads: u64,
    /// Total extra cycles spent detecting and reloading.
    pub recovery_cycles: u64,
    /// Corruptions that could not be recovered (mirror also damaged)
    /// and surfaced as a typed error instead.
    pub unrecoverable: u64,
}

/// Injects corruption into the kernel's capability table. The engine
/// checksums every entry and keeps a mirrored copy; a corrupted working
/// entry is detected at validation time (checksum mismatch), discarded,
/// and reloaded from the mirror, charging the sweep. If the mirror is
/// also damaged the operation fails with a typed error — never a panic
/// or a silently-honoured stale capability.
///
/// The plan's clock is the engine's *validation ordinal*, not machine
/// cycles: capability checks are not on the timed data path, so the
/// schedule stays deterministic regardless of workload timing.
#[derive(Clone, Debug)]
pub struct CapsInjector {
    plan: FaultPlan,
    stats: CapsFaultStats,
}

impl CapsInjector {
    /// Creates an injector driven by `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            stats: CapsFaultStats::default(),
        }
    }

    /// Consulted once per capability validation (`now` is the validation
    /// ordinal). True when the consulted entry should be corrupted.
    pub fn corrupts(&mut self, now: Cycle) -> bool {
        self.plan.fires(now)
    }

    /// Deterministically picks one of `n` corruption targets (which
    /// field/bit to damage) from the fault stream.
    pub fn pick(&mut self, n: u64) -> u64 {
        self.plan.rng().below(n)
    }

    /// Records one detected corruption of a working-table entry.
    pub fn note_corruption(&mut self) {
        self.stats.corruptions += 1;
    }

    /// Records the mirror reload that recovered a corrupted entry.
    pub fn note_reload(&mut self, cycles: Cycle) {
        self.stats.reloads += 1;
        self.stats.recovery_cycles += cycles;
    }

    /// Records a corruption the mirror could not repair.
    pub fn note_unrecoverable(&mut self) {
        self.stats.unrecoverable += 1;
    }

    /// Corruption/recovery counters so far.
    pub fn stats(&self) -> CapsFaultStats {
        self.stats
    }

    /// Serializes the injector's dynamic state (plan position and
    /// counters).
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_CAP);
        self.plan.snap_save(w);
        w.u64(self.stats.corruptions);
        w.u64(self.stats.reloads);
        w.u64(self.stats.recovery_cycles);
        w.u64(self.stats.unrecoverable);
    }

    /// Restores the dynamic state saved by [`CapsInjector::snap_save`]
    /// into an injector freshly built from the same configuration.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_CAP)?;
        self.plan.snap_load(r)?;
        self.stats.corruptions = r.u64()?;
        self.stats.reloads = r.u64()?;
        self.stats.recovery_cycles = r.u64()?;
        self.stats.unrecoverable = r.u64()?;
        Ok(())
    }
}

/// Counters for the hybrid-tier fault sites (tag array + tier failure).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierFaultStats {
    /// Tag-array entries found corrupted at lookup time.
    pub tag_corruptions: u64,
    /// Cache lines invalidated to recover from tag corruption.
    pub tag_invalidations: u64,
    /// DRAM channels killed by the tier-fail trigger.
    pub channel_kills: u64,
    /// Demand reads served by SCM bypass because their DRAM channel is
    /// dead (cache mode) — degraded but correct.
    pub bypass_reads: u64,
    /// Demand writes routed straight to SCM for the same reason.
    pub bypass_writes: u64,
    /// Dirty cache lines whose contents were lost to a channel kill or a
    /// tag invalidation before writeback (counted, never silent).
    pub lost_dirty_lines: u64,
    /// Total extra cycles spent detecting and recovering tier faults.
    pub recovery_cycles: u64,
}

impl TierFaultStats {
    /// Sum of fault events (not cycles) — the "did anything fire" probe
    /// the chaos harness uses for its zero-on-clean assertion.
    pub fn events(&self) -> u64 {
        self.tag_corruptions + self.channel_kills + self.bypass_reads + self.bypass_writes
    }
}

/// Injects faults into the hybrid-memory tier engine: tag-array
/// corruption (cache mode detects at lookup via parity, invalidates the
/// set, and re-fetches from SCM — the authoritative copy) and whole
/// DRAM-channel failure (`tier-fail`), after which the engine degrades
/// to SCM bypass (cache mode) or surfaces typed `TierDegraded` errors
/// (flat mode). Two independent plan streams keep the schedules
/// decoupled; both clocks are machine cycles at the tier access point.
#[derive(Clone, Debug)]
pub struct TierInjector {
    tag_plan: FaultPlan,
    fail_plan: FaultPlan,
    stats: TierFaultStats,
}

impl TierInjector {
    /// Creates an injector from independent tag-corruption and
    /// tier-failure streams.
    pub fn new(tag_plan: FaultPlan, fail_plan: FaultPlan) -> Self {
        Self {
            tag_plan,
            fail_plan,
            stats: TierFaultStats::default(),
        }
    }

    /// Consulted once per cache-mode tag lookup. True when the entry
    /// read by this lookup should be treated as corrupted.
    pub fn tag_corrupts(&mut self, now: Cycle) -> bool {
        self.tag_plan.fires(now)
    }

    /// Consulted once per tier access. True when a DRAM channel should
    /// die at this instant.
    pub fn channel_fails(&mut self, now: Cycle) -> bool {
        self.fail_plan.fires(now)
    }

    /// Deterministically picks which of `n` channels dies.
    pub fn pick_channel(&mut self, n: u64) -> u64 {
        self.fail_plan.rng().below(n)
    }

    /// Records one detected tag corruption and the invalidation that
    /// recovered it (`lost_dirty` when the victim line was dirty).
    pub fn note_tag_corruption(&mut self, cycles: Cycle, lost_dirty: bool) {
        self.stats.tag_corruptions += 1;
        self.stats.tag_invalidations += 1;
        self.stats.recovery_cycles += cycles;
        if lost_dirty {
            self.stats.lost_dirty_lines += 1;
        }
    }

    /// Records one channel kill and the dirty lines it took down.
    pub fn note_channel_kill(&mut self, lost_dirty: u64) {
        self.stats.channel_kills += 1;
        self.stats.lost_dirty_lines += lost_dirty;
    }

    /// Records a demand access served by SCM bypass on a dead channel.
    pub fn note_bypass(&mut self, write: bool) {
        if write {
            self.stats.bypass_writes += 1;
        } else {
            self.stats.bypass_reads += 1;
        }
    }

    /// Tier fault counters so far.
    pub fn stats(&self) -> TierFaultStats {
        self.stats
    }

    /// Serializes the injector's dynamic state (both plan positions and
    /// counters).
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_TIER);
        self.tag_plan.snap_save(w);
        self.fail_plan.snap_save(w);
        w.u64(self.stats.tag_corruptions);
        w.u64(self.stats.tag_invalidations);
        w.u64(self.stats.channel_kills);
        w.u64(self.stats.bypass_reads);
        w.u64(self.stats.bypass_writes);
        w.u64(self.stats.lost_dirty_lines);
        w.u64(self.stats.recovery_cycles);
    }

    /// Restores the dynamic state saved by [`TierInjector::snap_save`]
    /// into an injector freshly built from the same configuration.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_TIER)?;
        self.tag_plan.snap_load(r)?;
        self.fail_plan.snap_load(r)?;
        self.stats.tag_corruptions = r.u64()?;
        self.stats.tag_invalidations = r.u64()?;
        self.stats.channel_kills = r.u64()?;
        self.stats.bypass_reads = r.u64()?;
        self.stats.bypass_writes = r.u64()?;
        self.stats.lost_dirty_lines = r.u64()?;
        self.stats.recovery_cycles = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Trigger;

    #[test]
    fn flip_injector_queues_and_drains() {
        let plan = FaultPlan::new(Trigger::EveryN { every: 2, phase: 0 }, 3);
        let mut inj = FlipInjector::new(plan, 0);
        inj.on_access(0x100, 0);
        inj.on_access(0x200, 1);
        inj.on_access(0x300, 2);
        let flips = inj.take();
        assert_eq!(flips.len(), 2);
        assert!(flips.iter().all(|&(_, f)| f == BitFlip::Single));
        assert!(inj.take().is_empty());
        assert_eq!(inj.stats().injected_single, 2);
        assert_eq!(inj.stats().injected_double, 0);
    }

    #[test]
    fn flip_injector_mixes_doubles_deterministically() {
        let mk = || {
            let plan = FaultPlan::new(Trigger::EveryN { every: 1, phase: 0 }, 11);
            let mut inj = FlipInjector::new(plan, 500);
            for a in 0..100 {
                inj.on_access(a * 64, a);
            }
            (inj.stats().injected_single, inj.stats().injected_double)
        };
        let (s, d) = mk();
        assert_eq!(s + d, 100);
        assert!(d > 0, "some doubles at 500 permille");
        assert_eq!(mk(), (s, d), "same seed, same mix");
    }

    #[test]
    fn timeout_delay_is_bounded_by_retry_budget() {
        let plan = FaultPlan::new(Trigger::EveryN { every: 1, phase: 0 }, 5);
        let mut inj = TimeoutInjector::new(plan, 3, 8);
        let mut worst = 0;
        for t in 0..50 {
            worst = worst.max(inj.delay(t));
        }
        let s = inj.stats();
        assert_eq!(s.timeouts, 50);
        assert!(
            s.retries >= s.timeouts,
            "every timeout retries at least once"
        );
        assert!(
            s.retries <= s.timeouts * 3,
            "retries {} exceed bound {}",
            s.retries,
            s.timeouts * 3
        );
        // Worst case: 3 attempts of 8, 16, 32 cycles.
        assert!(worst <= 8 + 16 + 32);
    }

    #[test]
    fn clean_requests_cost_nothing() {
        let mut inj = TimeoutInjector::new(FaultPlan::never(), 3, 8);
        assert_eq!(inj.delay(0), 0);
        assert_eq!(inj.stats().timeouts, 0);
    }

    #[test]
    fn caps_injector_tracks_recovery_deterministically() {
        let mk = || {
            let plan = FaultPlan::new(Trigger::EveryN { every: 3, phase: 0 }, 42);
            let mut inj = CapsInjector::new(plan);
            let mut picks = Vec::new();
            for t in 0..30 {
                if inj.corrupts(t) {
                    inj.note_corruption();
                    picks.push(inj.pick(8));
                    inj.note_reload(25);
                }
            }
            (inj.stats(), picks)
        };
        let (s, picks) = mk();
        assert_eq!(s.corruptions, 10);
        assert_eq!(s.reloads, 10);
        assert_eq!(s.recovery_cycles, 250);
        assert_eq!(s.unrecoverable, 0);
        assert!(picks.iter().all(|&p| p < 8));
        assert_eq!(mk(), (s, picks), "same seed, same schedule");
    }

    #[test]
    fn caps_injector_snapshot_round_trips() {
        let plan = FaultPlan::new(Trigger::EveryN { every: 2, phase: 1 }, 7);
        let mut inj = CapsInjector::new(plan.clone());
        for t in 0..9 {
            if inj.corrupts(t) {
                inj.note_corruption();
                inj.note_reload(12);
            }
        }
        inj.note_unrecoverable();
        let mut w = SnapWriter::new();
        inj.snap_save(&mut w);
        let bytes = w.finish();
        let mut restored = CapsInjector::new(plan);
        let mut r = SnapReader::new(&bytes);
        restored.snap_load(&mut r).expect("load");
        r.finish().expect("fully consumed");
        assert_eq!(restored.stats(), inj.stats());
        // The plan position must resume: both see the same future stream.
        for t in 9..20 {
            assert_eq!(restored.corrupts(t), inj.corrupts(t));
        }
    }

    #[test]
    fn tier_injector_streams_are_independent_and_snapshot() {
        let mk = || {
            TierInjector::new(
                FaultPlan::new(Trigger::EveryN { every: 3, phase: 0 }, 21),
                FaultPlan::new(Trigger::EveryN { every: 7, phase: 2 }, 99),
            )
        };
        let mut inj = mk();
        let mut kills = 0;
        for t in 0..21 {
            if inj.tag_corrupts(t) {
                inj.note_tag_corruption(12, t % 2 == 0);
            }
            if inj.channel_fails(t) {
                let ch = inj.pick_channel(16);
                assert!(ch < 16);
                inj.note_channel_kill(3);
                kills += 1;
            }
        }
        inj.note_bypass(false);
        inj.note_bypass(true);
        let s = inj.stats();
        assert_eq!(s.tag_corruptions, 7);
        assert_eq!(s.channel_kills, kills);
        assert!(s.events() > 0);

        let mut w = SnapWriter::new();
        inj.snap_save(&mut w);
        let bytes = w.finish();
        let mut restored = mk();
        let mut r = SnapReader::new(&bytes);
        restored.snap_load(&mut r).expect("load");
        r.finish().expect("fully consumed");
        assert_eq!(restored.stats(), inj.stats());
        for t in 21..60 {
            assert_eq!(restored.tag_corrupts(t), inj.tag_corrupts(t));
            assert_eq!(restored.channel_fails(t), inj.channel_fails(t));
        }
    }

    #[test]
    fn pgtbl_injector_tracks_recovery() {
        let plan = FaultPlan::new(Trigger::EveryN { every: 2, phase: 0 }, 1);
        let mut inj = PgTblInjector::new(plan);
        assert!(inj.corrupts(0));
        inj.note_corruption();
        inj.note_reload(30);
        assert!(!inj.corrupts(1));
        let s = inj.stats();
        assert_eq!((s.corruptions, s.reloads, s.recovery_cycles), (1, 1, 30));
    }
}
