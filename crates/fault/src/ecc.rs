//! SECDED ECC model at the memory controller.
//!
//! The simulator carries no actual data bytes, so corruption is modeled
//! through a deterministic *data signature*: every uncorrected flip
//! XORs [`word_sig`] of the faulted address into an accumulator. A
//! fault-free run has signature 0; a run whose every injected single
//! was corrected also has signature 0 ("zero data-diff"); silent or
//! detected-but-uncorrectable corruption leaves a nonzero signature the
//! chaos harness can assert on.

use impulse_types::Cycle;

/// Severity of an injected DRAM bit flip within one ECC word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BitFlip {
    /// One flipped bit — correctable under SECDED.
    Single,
    /// Two flipped bits — detectable but not correctable under SECDED.
    Double,
}

/// Whether the controller's ECC logic is present.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EccMode {
    /// No ECC: every flip passes through silently.
    None,
    /// SECDED (single-error-correct, double-error-detect), the
    /// industry-standard (72,64) Hamming+parity organization.
    Secded,
}

/// ECC configuration: mode plus the latency the correction/detection
/// datapath adds to a demand read that hits a fault.
#[derive(Clone, Copy, Debug)]
pub struct EccConfig {
    /// ECC mode.
    pub mode: EccMode,
    /// Extra cycles to correct a single-bit error on the return path.
    pub t_correct: Cycle,
    /// Extra cycles to flag a detected (uncorrectable) double error.
    pub t_detect: Cycle,
}

impl Default for EccConfig {
    fn default() -> Self {
        Self {
            mode: EccMode::Secded,
            t_correct: 3,
            t_detect: 2,
        }
    }
}

/// What the ECC logic concluded about one flip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EccOutcome {
    /// Single-bit error corrected in flight; data is intact.
    Corrected,
    /// Double-bit error detected and reported; data is corrupt but the
    /// corruption is *known* (machine-check style).
    DetectedDouble,
    /// No ECC present: the corruption passes silently.
    Silent,
}

impl EccConfig {
    /// Classifies one flip: the outcome plus the latency penalty the
    /// controller charges on the return path.
    pub fn check(&self, flip: BitFlip) -> (EccOutcome, Cycle) {
        match (self.mode, flip) {
            (EccMode::None, _) => (EccOutcome::Silent, 0),
            (EccMode::Secded, BitFlip::Single) => (EccOutcome::Corrected, self.t_correct),
            (EccMode::Secded, BitFlip::Double) => (EccOutcome::DetectedDouble, self.t_detect),
        }
    }
}

/// Per-controller ECC bookkeeping.
#[derive(Clone, Copy, Debug, Default)]
pub struct EccStats {
    /// Single-bit errors corrected.
    pub corrected: u64,
    /// Double-bit errors detected (uncorrectable, reported).
    pub detected_double: u64,
    /// Flips that passed with no ECC present.
    pub silent: u64,
    /// XOR of [`word_sig`] over every *uncorrected* faulted address.
    /// 0 means the visible data is byte-identical to a fault-free run.
    pub corrupt_sig: u64,
    /// Total extra cycles spent in the correction/detection datapath on
    /// demand reads (recovery-cycle attribution for the ECC class).
    pub recovery_cycles: u64,
}

impl EccStats {
    /// Applies one classified flip at `addr` to the stats. Returns the
    /// latency penalty to charge.
    pub fn absorb(&mut self, outcome: EccOutcome, penalty: Cycle, addr: u64) -> Cycle {
        match outcome {
            EccOutcome::Corrected => self.corrected += 1,
            EccOutcome::DetectedDouble => {
                self.detected_double += 1;
                self.corrupt_sig ^= word_sig(addr);
            }
            EccOutcome::Silent => {
                self.silent += 1;
                self.corrupt_sig ^= word_sig(addr);
            }
        }
        self.recovery_cycles += penalty;
        penalty
    }
}

/// Deterministic 64-bit signature of the data word at `addr`
/// (splitmix64 finalizer). Stands in for the actual memory contents,
/// which the timing simulator does not carry.
pub fn word_sig(addr: u64) -> u64 {
    let mut z = addr.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secded_corrects_singles_and_detects_doubles() {
        let ecc = EccConfig::default();
        assert_eq!(ecc.check(BitFlip::Single), (EccOutcome::Corrected, 3));
        assert_eq!(ecc.check(BitFlip::Double), (EccOutcome::DetectedDouble, 2));
    }

    #[test]
    fn no_ecc_is_silent_and_free() {
        let ecc = EccConfig {
            mode: EccMode::None,
            ..EccConfig::default()
        };
        assert_eq!(ecc.check(BitFlip::Single), (EccOutcome::Silent, 0));
        assert_eq!(ecc.check(BitFlip::Double), (EccOutcome::Silent, 0));
    }

    #[test]
    fn corrected_singles_leave_signature_clean() {
        let mut s = EccStats::default();
        for a in 0..32u64 {
            s.absorb(EccOutcome::Corrected, 3, a * 64);
        }
        assert_eq!(s.corrected, 32);
        assert_eq!(s.corrupt_sig, 0, "corrected data must be byte-identical");
        assert_eq!(s.recovery_cycles, 96);
    }

    #[test]
    fn uncorrected_flips_dirty_the_signature() {
        let mut s = EccStats::default();
        s.absorb(EccOutcome::Silent, 0, 0x1000);
        assert_ne!(s.corrupt_sig, 0);
        // XOR model: the same corruption twice cancels, a different
        // address does not.
        s.absorb(EccOutcome::DetectedDouble, 2, 0x1000);
        assert_eq!(s.corrupt_sig, 0);
        s.absorb(EccOutcome::Silent, 0, 0x2000);
        assert_ne!(s.corrupt_sig, 0);
    }

    #[test]
    fn word_sig_is_stable_and_spread() {
        assert_eq!(word_sig(0x40), word_sig(0x40));
        assert_ne!(word_sig(0x40), word_sig(0x80));
        assert_ne!(word_sig(0), 0);
    }
}
