//! When faults fire: triggers and the per-site fault plan.

use impulse_types::snap::{SnapError, SnapReader, SnapWriter};
use impulse_types::Cycle;

use crate::rng::XorShift64;

/// Snapshot section tag for [`FaultPlan`] (`"PLAN"`).
const TAG_PLAN: u32 = 0x504C_414E;

/// Deterministic firing rule for one fault class at one injection site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// Never fires (the default; zero overhead on hot paths).
    Never,
    /// Access-triggered: fires on every access whose index (counted from
    /// 0 at the site) satisfies `(index + phase) % every == 0`.
    EveryN {
        /// Fire every `every` accesses (0 is treated as never).
        every: u64,
        /// Offset applied to the access index before the modulus.
        phase: u64,
    },
    /// Fires pseudo-randomly with probability `permille / 1000` per
    /// access, drawn from the plan's private seeded stream.
    Permille(u32),
    /// Cycle-triggered: fires on the first access at or after each
    /// multiple of `period` simulated cycles (0 is treated as never).
    EveryCycles(Cycle),
}

impl Trigger {
    /// True if this trigger can never fire.
    pub fn is_never(&self) -> bool {
        matches!(
            self,
            Trigger::Never
                | Trigger::EveryN { every: 0, .. }
                | Trigger::Permille(0)
                | Trigger::EveryCycles(0)
        )
    }
}

/// A seeded, stateful instance of a [`Trigger`] at one injection site.
///
/// Each site owns its own plan (derived from the master seed in
/// [`FaultConfig`](crate::FaultConfig)), so draws at one site never
/// perturb another site's schedule — the property that makes fault runs
/// byte-identical across worker counts.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    trigger: Trigger,
    rng: XorShift64,
    accesses: u64,
    next_due: Cycle,
    fired: u64,
}

impl FaultPlan {
    /// Creates a plan for `trigger` with its own `seed` stream.
    pub fn new(trigger: Trigger, seed: u64) -> Self {
        let next_due = match trigger {
            Trigger::EveryCycles(p) => p,
            _ => 0,
        };
        Self {
            trigger,
            rng: XorShift64::new(seed),
            accesses: 0,
            next_due,
            fired: 0,
        }
    }

    /// A plan that never fires.
    pub fn never() -> Self {
        Self::new(Trigger::Never, 0)
    }

    /// True if the plan can still fire at all (lets hot paths skip the
    /// bookkeeping entirely when fault injection is off).
    pub fn is_active(&self) -> bool {
        !self.trigger.is_never()
    }

    /// Consults the plan for one access at simulated time `now`.
    /// Advances the access counter and (for `Permille`) the RNG stream.
    pub fn fires(&mut self, now: Cycle) -> bool {
        let idx = self.accesses;
        self.accesses += 1;
        let hit = match self.trigger {
            Trigger::Never => false,
            Trigger::EveryN { every, phase } => every != 0 && (idx + phase).is_multiple_of(every),
            Trigger::Permille(p) => self.rng.permille(p),
            Trigger::EveryCycles(period) => {
                if period != 0 && now >= self.next_due {
                    // Skip whole missed windows so bursty access patterns
                    // don't fire repeatedly to "catch up".
                    self.next_due = (now / period + 1) * period;
                    true
                } else {
                    false
                }
            }
        };
        if hit {
            self.fired += 1;
        }
        hit
    }

    /// How many times the plan has fired so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Secondary draws for a fault that already fired (e.g. single
    /// vs. double bit flip), from the plan's private stream.
    pub fn rng(&mut self) -> &mut XorShift64 {
        &mut self.rng
    }

    /// Serializes the plan's dynamic state (RNG stream position, access
    /// counter, next cycle-trigger deadline, fire count). The trigger
    /// itself is configuration and is rebuilt, not stored.
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_PLAN);
        self.rng.snap_save(w);
        w.u64(self.accesses);
        w.u64(self.next_due);
        w.u64(self.fired);
    }

    /// Restores the dynamic state saved by [`FaultPlan::snap_save`] into
    /// a plan freshly built with the same trigger and seed.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_PLAN)?;
        self.rng.snap_load(r)?;
        self.accesses = r.u64()?;
        self.next_due = r.u64()?;
        self.fired = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_never_fires() {
        let mut p = FaultPlan::never();
        assert!(!p.is_active());
        for t in 0..100 {
            assert!(!p.fires(t));
        }
        assert_eq!(p.fired(), 0);
    }

    #[test]
    fn every_n_is_access_triggered() {
        let mut p = FaultPlan::new(Trigger::EveryN { every: 4, phase: 0 }, 1);
        let hits: Vec<bool> = (0..8).map(|_| p.fires(0)).collect();
        assert_eq!(hits, [true, false, false, false, true, false, false, false]);
        assert_eq!(p.fired(), 2);
    }

    #[test]
    fn phase_shifts_the_schedule() {
        let mut p = FaultPlan::new(Trigger::EveryN { every: 4, phase: 3 }, 1);
        let hits: Vec<bool> = (0..5).map(|_| p.fires(0)).collect();
        assert_eq!(hits, [false, true, false, false, false]);
    }

    #[test]
    fn every_cycles_fires_once_per_window() {
        let mut p = FaultPlan::new(Trigger::EveryCycles(100), 1);
        assert!(!p.fires(10)); // before the first window boundary
        assert!(p.fires(120)); // first access past cycle 100
        assert!(!p.fires(150)); // same window
        assert!(p.fires(430)); // skips missed windows, fires once
        assert!(!p.fires(431));
    }

    #[test]
    fn permille_is_deterministic_per_seed() {
        let schedule = |seed| {
            let mut p = FaultPlan::new(Trigger::Permille(200), seed);
            (0..64).map(|t| p.fires(t)).collect::<Vec<_>>()
        };
        assert_eq!(schedule(9), schedule(9));
        assert_ne!(schedule(9), schedule(10));
    }

    #[test]
    fn zero_rates_are_never() {
        assert!(Trigger::EveryN { every: 0, phase: 1 }.is_never());
        assert!(Trigger::Permille(0).is_never());
        assert!(Trigger::EveryCycles(0).is_never());
        let mut p = FaultPlan::new(Trigger::EveryN { every: 0, phase: 0 }, 1);
        assert!(!p.fires(0));
    }
}
