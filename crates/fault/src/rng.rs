//! Seedable in-tree xorshift generator (no external dependencies).

use impulse_types::snap::{SnapError, SnapReader, SnapWriter};

/// A 64-bit xorshift generator, the same recurrence the allocator's
/// `Random` placement policy uses. Deterministic for a fixed seed;
/// never yields the all-zero state (the seed is odd-mixed on entry).
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from `seed`. Any seed is fine, including 0.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }

    /// Uniform draw in `0..n` (`n == 0` returns 0).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }

    /// Bernoulli draw: true with probability `permille / 1000`.
    pub fn permille(&mut self, permille: u32) -> bool {
        if permille == 0 {
            return false;
        }
        self.below(1000) < u64::from(permille)
    }

    /// Serializes the generator state (one word).
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.u64(self.state);
    }

    /// Restores the generator state saved by [`XorShift64::snap_save`].
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.state = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_is_reproducible() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn permille_edges() {
        let mut r = XorShift64::new(7);
        assert!(!r.permille(0));
        assert!(r.permille(1000));
        // Roughly half of draws at 500‰ (loose bound; determinism makes
        // this a fixed number, the bound just documents intent).
        let hits = (0..1000).filter(|_| r.permille(500)).count();
        assert!((350..=650).contains(&hits), "hits = {hits}");
    }
}
