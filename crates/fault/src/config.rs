//! The user-facing fault configuration a full-system config carries.

use impulse_types::Cycle;

use crate::ecc::EccConfig;
use crate::inject::{CapsInjector, FlipInjector, PgTblInjector, TierInjector, TimeoutInjector};
use crate::plan::{FaultPlan, Trigger};

// Per-site seed salts: each injection site derives an independent
// xorshift stream from the master seed, so enabling one fault class
// never perturbs another's schedule.
const SALT_DRAM: u64 = 0xD12A_0001;
const SALT_BUS: u64 = 0xB005_0002;
const SALT_PGTBL: u64 = 0x967B_0003;
const SALT_CAPS: u64 = 0xCA95_0004;
const SALT_SCM: u64 = 0x5C4D_0005;
const SALT_TAG: u64 = 0x7A60_0006;
const SALT_TIER: u64 = 0x71E4_0007;

/// Everything needed to generate a deterministic fault schedule for one
/// simulated machine. The default is fault-free ([`FaultConfig::none`]),
/// which costs nothing on the hot paths (components skip consulting
/// absent injectors entirely).
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Master seed; each injection site derives its own salted stream.
    pub seed: u64,
    /// When DRAM bit flips fire (per DRAM data access).
    pub dram_flip: Trigger,
    /// Fraction (‰) of fired flips that are double-bit, i.e.
    /// uncorrectable under SECDED. The rest are single-bit.
    pub dram_double_permille: u32,
    /// The controller's ECC model.
    pub ecc: EccConfig,
    /// When bus request timeouts fire (per demand transfer).
    pub bus_timeout: Trigger,
    /// Retry bound per timed-out request (≥ 1; recovery is guaranteed
    /// on the attempt after the last retry).
    pub bus_max_retries: u32,
    /// Base backoff in cycles; attempt `i` waits `backoff << i`.
    pub bus_backoff: Cycle,
    /// When MC-TLB/page-table entry corruption fires (per translation).
    pub pgtbl_corrupt: Trigger,
    /// When kernel capability-table corruption fires (per capability
    /// validation; the plan's clock is the validation ordinal).
    pub caps_corrupt: Trigger,
    /// When SCM bit flips fire (per SCM media access). SCM's raw
    /// bit-error rate is typically set well above DRAM's.
    pub scm_flip: Trigger,
    /// Fraction (‰) of fired SCM flips that are double-bit.
    pub scm_double_permille: u32,
    /// When tier tag-array corruption fires (per cache-mode tag lookup).
    pub tag_corrupt: Trigger,
    /// When the tier-fail trigger kills a DRAM channel (per tier
    /// access). Each firing retires one more channel.
    pub tier_fail: Trigger,
}

impl FaultConfig {
    /// A fault-free configuration (the default).
    pub fn none() -> Self {
        Self {
            seed: 0,
            dram_flip: Trigger::Never,
            dram_double_permille: 0,
            ecc: EccConfig::default(),
            bus_timeout: Trigger::Never,
            bus_max_retries: 3,
            bus_backoff: 16,
            pgtbl_corrupt: Trigger::Never,
            caps_corrupt: Trigger::Never,
            scm_flip: Trigger::Never,
            scm_double_permille: 0,
            tag_corrupt: Trigger::Never,
            tier_fail: Trigger::Never,
        }
    }

    /// True when no fault class can ever fire.
    pub fn is_none(&self) -> bool {
        self.dram_flip.is_never()
            && self.bus_timeout.is_never()
            && self.pgtbl_corrupt.is_never()
            && self.caps_corrupt.is_never()
            && self.scm_flip.is_never()
            && self.tag_corrupt.is_never()
            && self.tier_fail.is_never()
    }

    /// The DRAM bit-flip injector, or `None` when the class is off.
    pub fn flip_injector(&self) -> Option<FlipInjector> {
        (!self.dram_flip.is_never()).then(|| {
            FlipInjector::new(
                FaultPlan::new(self.dram_flip, self.seed ^ SALT_DRAM),
                self.dram_double_permille,
            )
        })
    }

    /// The bus-timeout injector, or `None` when the class is off.
    pub fn timeout_injector(&self) -> Option<TimeoutInjector> {
        (!self.bus_timeout.is_never()).then(|| {
            TimeoutInjector::new(
                FaultPlan::new(self.bus_timeout, self.seed ^ SALT_BUS),
                self.bus_max_retries,
                self.bus_backoff,
            )
        })
    }

    /// The page-table corruption injector, or `None` when the class is
    /// off.
    pub fn pgtbl_injector(&self) -> Option<PgTblInjector> {
        (!self.pgtbl_corrupt.is_never())
            .then(|| PgTblInjector::new(FaultPlan::new(self.pgtbl_corrupt, self.seed ^ SALT_PGTBL)))
    }

    /// The capability-table corruption injector, or `None` when the
    /// class is off.
    pub fn caps_injector(&self) -> Option<CapsInjector> {
        (!self.caps_corrupt.is_never())
            .then(|| CapsInjector::new(FaultPlan::new(self.caps_corrupt, self.seed ^ SALT_CAPS)))
    }

    /// The SCM bit-flip injector, or `None` when the class is off.
    /// Independent of the DRAM flip stream even at the same trigger.
    pub fn scm_flip_injector(&self) -> Option<FlipInjector> {
        (!self.scm_flip.is_never()).then(|| {
            FlipInjector::new(
                FaultPlan::new(self.scm_flip, self.seed ^ SALT_SCM),
                self.scm_double_permille,
            )
        })
    }

    /// The tier injector (tag corruption + channel failure), or `None`
    /// when both classes are off.
    pub fn tier_injector(&self) -> Option<TierInjector> {
        (!self.tag_corrupt.is_never() || !self.tier_fail.is_never()).then(|| {
            TierInjector::new(
                FaultPlan::new(self.tag_corrupt, self.seed ^ SALT_TAG),
                FaultPlan::new(self.tier_fail, self.seed ^ SALT_TIER),
            )
        })
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fault_free() {
        let c = FaultConfig::default();
        assert!(c.is_none());
        assert!(c.flip_injector().is_none());
        assert!(c.timeout_injector().is_none());
        assert!(c.pgtbl_injector().is_none());
        assert!(c.caps_injector().is_none());
        assert!(c.scm_flip_injector().is_none());
        assert!(c.tier_injector().is_none());
    }

    #[test]
    fn tier_classes_build_their_injectors() {
        let c = FaultConfig {
            scm_flip: Trigger::Permille(50),
            tier_fail: Trigger::EveryN {
                every: 1000,
                phase: 0,
            },
            ..FaultConfig::none()
        };
        assert!(!c.is_none());
        assert!(c.scm_flip_injector().is_some());
        assert!(c.tier_injector().is_some());
        assert!(c.flip_injector().is_none());

        let tag_only = FaultConfig {
            tag_corrupt: Trigger::Permille(10),
            ..FaultConfig::none()
        };
        assert!(tag_only.tier_injector().is_some());
    }

    #[test]
    fn scm_and_dram_flip_streams_differ() {
        let c = FaultConfig {
            seed: 7,
            dram_flip: Trigger::Permille(500),
            scm_flip: Trigger::Permille(500),
            ..FaultConfig::none()
        };
        let mut d = c.flip_injector().unwrap();
        let mut s = c.scm_flip_injector().unwrap();
        for t in 0..256 {
            d.on_access(t * 64, t);
            s.on_access(t * 64, t);
        }
        let da: Vec<u64> = d.take().iter().map(|&(a, _)| a).collect();
        let sa: Vec<u64> = s.take().iter().map(|&(a, _)| a).collect();
        assert_ne!(da, sa, "same trigger, independent streams");
    }

    #[test]
    fn enabling_one_class_builds_only_that_injector() {
        let c = FaultConfig {
            bus_timeout: Trigger::EveryN { every: 8, phase: 0 },
            ..FaultConfig::none()
        };
        assert!(!c.is_none());
        assert!(c.flip_injector().is_none());
        assert!(c.timeout_injector().is_some());
        assert!(c.pgtbl_injector().is_none());
        assert!(c.caps_injector().is_none());
    }

    #[test]
    fn caps_class_builds_its_injector() {
        let c = FaultConfig {
            caps_corrupt: Trigger::Permille(100),
            ..FaultConfig::none()
        };
        assert!(!c.is_none());
        assert!(c.caps_injector().is_some());
        assert!(c.flip_injector().is_none());
    }

    #[test]
    fn sites_draw_from_independent_streams() {
        // Same master seed, but the DRAM and bus streams differ.
        let c = FaultConfig {
            seed: 99,
            dram_flip: Trigger::Permille(500),
            bus_timeout: Trigger::Permille(500),
            ..FaultConfig::none()
        };
        let mut d = FaultPlan::new(c.dram_flip, c.seed ^ SALT_DRAM);
        let mut b = FaultPlan::new(c.bus_timeout, c.seed ^ SALT_BUS);
        let ds: Vec<bool> = (0..64).map(|t| d.fires(t)).collect();
        let bs: Vec<bool> = (0..64).map(|t| b.fires(t)).collect();
        assert_ne!(ds, bs);
    }
}
