//! Deterministic fault injection for the Impulse simulator.
//!
//! Impulse moves translation state (the controller page table and its
//! TLB), an indirection-vector fetch path, and prefetch buffers into the
//! memory controller, so a flipped DRAM bit or a corrupted MC-TLB entry
//! can silently poison every gather. This crate models those failure
//! modes *deterministically*: every fault is drawn from a seedable
//! in-tree xorshift stream, so a run with a fixed seed produces the same
//! fault schedule — and therefore the same simulated cycle counts — on
//! every host and at any worker count.
//!
//! The pieces:
//!
//! - [`Trigger`] / [`FaultPlan`]: *when* faults fire — access-count
//!   triggered (`EveryN`), pseudo-randomly per access (`Permille`), or
//!   cycle-triggered (`EveryCycles`).
//! - [`EccConfig`]: a SECDED (single-error-correct, double-error-detect)
//!   ECC model at the controller: singles are corrected for a small
//!   latency penalty, doubles are detected and reported, and with ECC
//!   disabled corruption passes silently (but is still tracked via a
//!   deterministic data signature, [`word_sig`]).
//! - [`FlipInjector`]: per-DRAM-access single/double bit flips.
//! - [`TimeoutInjector`]: bus request timeouts with bounded
//!   exponential-backoff retry.
//! - [`PgTblInjector`]: MC-TLB/page-table entry corruption, recovered by
//!   detect-and-reload from the backing in-memory page table.
//! - [`CapsInjector`]: kernel capability-table corruption, detected by
//!   per-entry checksums and recovered from a mirrored table — or
//!   surfaced as a typed error when unrecoverable.
//! - [`TierInjector`]: hybrid-tier faults — tag-array corruption
//!   (detect-and-invalidate) and whole DRAM-channel failure, degraded
//!   to SCM bypass or typed `TierDegraded` errors. SCM's own raw
//!   bit-error rate reuses [`FlipInjector`] on an independent stream.
//! - [`FaultConfig`]: the user-facing bundle a full-system config
//!   carries; each injection site derives its own independent stream
//!   from the master seed so sites never perturb each other's draws.
//!
//! The crate depends only on `impulse-types` and injects nothing by
//! itself — components own an injector and consult it at their access
//! points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod ecc;
mod inject;
mod plan;
mod rng;

pub use config::FaultConfig;
pub use ecc::{word_sig, BitFlip, EccConfig, EccMode, EccOutcome, EccStats};
pub use inject::{
    BusFaultStats, CapsFaultStats, CapsInjector, FlipInjector, FlipStats, PgTblFaultStats,
    PgTblInjector, TierFaultStats, TierInjector, TimeoutInjector,
};
pub use plan::{FaultPlan, Trigger};
pub use rng::XorShift64;
