//! The `impulse-wire-v1` frame codec: length-prefixed, checksummed
//! frames over any byte stream.
//!
//! Every message between the experiment client and daemon travels as
//! one frame:
//!
//! ```text
//! magic:    u32 le   0x3176_5749 ("IWv1")
//! kind:     u8       message discriminant (see [`Kind`])
//! len:      u32 le   payload length in bytes (<= MAX_PAYLOAD)
//! payload:  len bytes
//! checksum: u64 le   FNV-64 over [kind, payload...]
//! ```
//!
//! The codec is defensive by construction: a reader can always decide
//! — in bounded time and bounded memory — whether the bytes in front
//! of it are a frame, and if not, *why* not ([`WireError`]). Dropped,
//! truncated, or bit-flipped frames surface as typed errors, never as
//! misinterpreted payloads; the chaos suite feeds all three through a
//! live socket and asserts exactly that.

use std::fmt;
use std::io::{self, Read, Write};

use impulse_types::snap::fnv64;

/// Frame magic: `"IWv1"` as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"IWv1");

/// Hard cap on payload size (16 MiB): a corrupt length field can waste
/// at most this much allocation, and a legitimate result report is
/// orders of magnitude smaller.
pub const MAX_PAYLOAD: u32 = 16 << 20;

/// Message discriminants. Requests are < 0x80, responses >= 0x80, so a
/// stream position can never confuse direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Kind {
    /// Client → server: run (or fetch) an experiment.
    Run = 0x01,
    /// Client → server: report server metrics.
    Stats = 0x02,
    /// Client → server: graceful shutdown.
    Shutdown = 0x03,
    /// Client → server: liveness probe.
    Ping = 0x04,
    /// Server → client: a completed experiment result.
    Result = 0x81,
    /// Server → client: admission refused (typed, with Retry-After).
    Reject = 0x82,
    /// Server → client: typed request failure.
    Error = 0x83,
    /// Server → client: metrics document.
    StatsReply = 0x84,
    /// Server → client: bare acknowledgement (pong, shutdown ack).
    Ok = 0x85,
}

impl Kind {
    fn from_u8(b: u8) -> Option<Kind> {
        match b {
            0x01 => Some(Kind::Run),
            0x02 => Some(Kind::Stats),
            0x03 => Some(Kind::Shutdown),
            0x04 => Some(Kind::Ping),
            0x81 => Some(Kind::Result),
            0x82 => Some(Kind::Reject),
            0x83 => Some(Kind::Error),
            0x84 => Some(Kind::StatsReply),
            0x85 => Some(Kind::Ok),
            _ => None,
        }
    }
}

/// One decoded frame: discriminant plus raw payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Message discriminant.
    pub kind: Kind,
    /// Raw payload (UTF-8 JSON for every current message type).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a frame from a kind and payload bytes.
    pub fn new(kind: Kind, payload: Vec<u8>) -> Self {
        Self { kind, payload }
    }

    /// Serializes the frame (header, payload, checksum trailer).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(9 + self.payload.len() + 8);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(self.kind as u8);
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&self.checksum().to_le_bytes());
        out
    }

    fn checksum(&self) -> u64 {
        let mut covered = Vec::with_capacity(1 + self.payload.len());
        covered.push(self.kind as u8);
        covered.extend_from_slice(&self.payload);
        fnv64(&covered)
    }
}

/// Everything that can go wrong between bytes and a [`Frame`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended cleanly before any frame byte arrived (EOF at a
    /// frame boundary — a peer hanging up between requests).
    Closed,
    /// The stream ended inside a frame.
    Truncated,
    /// The first four bytes are not [`MAGIC`].
    BadMagic(u32),
    /// The kind byte is not a known discriminant.
    BadKind(u8),
    /// The length field exceeds [`MAX_PAYLOAD`].
    Oversize(u32),
    /// The checksum trailer does not match the received bytes.
    BadChecksum,
    /// An underlying I/O failure (timeout, reset, ...).
    Io(io::ErrorKind, String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed at a frame boundary"),
            WireError::Truncated => write!(f, "stream ended inside a frame"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            WireError::Oversize(n) => {
                write!(
                    f,
                    "frame payload of {n} bytes exceeds the {MAX_PAYLOAD} cap"
                )
            }
            WireError::BadChecksum => write!(f, "frame checksum mismatch"),
            WireError::Io(kind, detail) => write!(f, "frame I/O failed ({kind:?}): {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

fn read_exactly(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    WireError::Closed
                } else {
                    WireError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.kind(), e.to_string())),
        }
    }
    Ok(())
}

/// Reads one frame off `r`, validating magic, kind, length, and
/// checksum.
///
/// # Errors
///
/// [`WireError::Closed`] for a clean EOF at a frame boundary; every
/// other corruption or I/O failure maps to its own [`WireError`]
/// variant.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut header = [0u8; 9];
    read_exactly(r, &mut header, true)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let kind = Kind::from_u8(header[4]).ok_or(WireError::BadKind(header[4]))?;
    let len = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversize(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_exactly(r, &mut payload, false)?;
    let mut trailer = [0u8; 8];
    read_exactly(r, &mut trailer, false)?;
    let frame = Frame { kind, payload };
    if frame.checksum() != u64::from_le_bytes(trailer) {
        return Err(WireError::BadChecksum);
    }
    Ok(frame)
}

/// Writes one frame to `w` and flushes it.
///
/// # Errors
///
/// Propagates I/O failures as [`WireError::Io`].
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    w.write_all(&frame.encode())
        .and_then(|()| w.flush())
        .map_err(|e| WireError::Io(e.kind(), e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::new(Kind::Run, br#"{"experiment":"fig1","seed":7}"#.to_vec())
    }

    #[test]
    fn round_trip_through_a_byte_stream() {
        let f = sample();
        let bytes = f.encode();
        let mut cursor = io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).expect("decodes"), f);
        // A second read sees a clean boundary EOF.
        assert_eq!(read_frame(&mut cursor), Err(WireError::Closed));
    }

    #[test]
    fn empty_payload_frames_are_fine() {
        let f = Frame::new(Kind::Ping, Vec::new());
        let mut cursor = io::Cursor::new(f.encode());
        assert_eq!(read_frame(&mut cursor).expect("decodes"), f);
    }

    #[test]
    fn truncation_at_every_byte_offset_is_typed() {
        let bytes = sample().encode();
        for cut in 1..bytes.len() {
            let mut cursor = io::Cursor::new(&bytes[..cut]);
            assert_eq!(
                read_frame(&mut cursor),
                Err(WireError::Truncated),
                "cut at {cut}"
            );
        }
        let mut empty = io::Cursor::new(&bytes[..0]);
        assert_eq!(read_frame(&mut empty), Err(WireError::Closed));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        // Flip each bit of the encoded frame in turn; the reader must
        // reject every variant with a typed error (which one depends on
        // where the flip lands), never return a different valid frame.
        let f = sample();
        let bytes = f.encode();
        for i in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            corrupt[i / 8] ^= 1 << (i % 8);
            let mut cursor = io::Cursor::new(&corrupt);
            match read_frame(&mut cursor) {
                Err(_) => {}
                Ok(got) => panic!(
                    "bit flip at {i} decoded as a frame: {:?} (original {:?})",
                    got.kind, f.kind
                ),
            }
        }
    }

    #[test]
    fn oversize_length_is_rejected_before_allocation() {
        let mut bytes = sample().encode();
        bytes[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = io::Cursor::new(&bytes);
        assert_eq!(read_frame(&mut cursor), Err(WireError::Oversize(u32::MAX)));
    }

    #[test]
    fn unknown_kind_and_bad_magic_are_distinct_errors() {
        let mut bad_kind = sample().encode();
        bad_kind[4] = 0x7f;
        assert_eq!(
            read_frame(&mut io::Cursor::new(&bad_kind)),
            Err(WireError::BadKind(0x7f))
        );
        let mut bad_magic = sample().encode();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            read_frame(&mut io::Cursor::new(&bad_magic)),
            Err(WireError::BadMagic(_))
        ));
    }

    #[test]
    fn write_frame_emits_exactly_encode_bytes() {
        let f = sample();
        let mut out = Vec::new();
        write_frame(&mut out, &f).expect("write");
        assert_eq!(out, f.encode());
    }
}
