//! Admission control: who gets in, who waits, and who is shed.
//!
//! Three mechanisms compose, in the order a request meets them:
//!
//! 1. **Per-tenant token buckets** — each tenant spends one token per
//!    request from a bucket that refills at a configured rate. An empty
//!    bucket is a typed [`RejectReason::QuotaExhausted`] with a
//!    Retry-After computed from the refill rate, so a well-behaved
//!    client never has to guess.
//! 2. **Per-class queue high-watermarks** — interactive and bulk
//!    requests queue separately; a full queue sheds with
//!    [`RejectReason::QueueFull`] rather than letting latency grow
//!    unboundedly.
//! 3. **A Heracles-style controller** for bulk concurrency — the
//!    server measures how long interactive requests waited to be
//!    picked up, and the controller grows the bulk worker allowance
//!    additively while that wait is comfortably under the limit and
//!    cuts it multiplicatively the moment the limit is breached.
//!    Bulk work soaks up idle capacity without ever holding the
//!    latency-sensitive class hostage.
//!
//! The whole module is a pure state machine: time enters only as
//! `now_ms` arguments, so every policy decision is reproducible in
//! tests without sleeping.

use std::collections::HashMap;

use crate::proto::{Class, Reject, RejectReason};

/// Tunables for the admission controller.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Token-bucket capacity per tenant (burst allowance), in tokens.
    pub tenant_burst: u64,
    /// Token refill rate per tenant, in tokens per second.
    pub tenant_refill_per_sec: u64,
    /// Queued-request high-watermark for the interactive class.
    pub interactive_queue_cap: usize,
    /// Queued-request high-watermark for the bulk class.
    pub bulk_queue_cap: usize,
    /// Floor for the bulk concurrency allowance (never starve bulk
    /// completely — progress guarantees matter for sweeps).
    pub min_bulk_slots: usize,
    /// Ceiling for the bulk concurrency allowance.
    pub max_bulk_slots: usize,
    /// Interactive queue-wait limit in milliseconds; the controller
    /// shrinks bulk slots whenever a measured wait exceeds this.
    pub interactive_wait_limit_ms: u64,
    /// Retry-After hint handed out with queue-full rejections.
    pub queue_full_retry_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            tenant_burst: 32,
            tenant_refill_per_sec: 16,
            interactive_queue_cap: 64,
            bulk_queue_cap: 256,
            min_bulk_slots: 1,
            max_bulk_slots: 8,
            interactive_wait_limit_ms: 500,
            queue_full_retry_ms: 200,
        }
    }
}

/// One tenant's token bucket, tracked in millitokens so refill keeps
/// integer precision at low rates.
#[derive(Clone, Copy, Debug)]
struct Bucket {
    millitokens: u64,
    last_refill_ms: u64,
}

/// Counters the server exports via its stats document.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests admitted.
    pub admitted: u64,
    /// Rejections with [`RejectReason::QuotaExhausted`].
    pub rejected_quota: u64,
    /// Rejections with [`RejectReason::QueueFull`].
    pub rejected_queue_full: u64,
    /// Rejections with [`RejectReason::ShuttingDown`].
    pub rejected_shutting_down: u64,
    /// Times the controller shrank the bulk allowance.
    pub bulk_shrinks: u64,
    /// Times the controller grew the bulk allowance.
    pub bulk_grows: u64,
}

/// The admission state machine. See the module docs for the policy.
#[derive(Clone, Debug)]
pub struct Admission {
    cfg: AdmissionConfig,
    buckets: HashMap<String, Bucket>,
    bulk_slots: usize,
    draining: bool,
    stats: AdmissionStats,
}

impl Admission {
    /// Builds a controller; the bulk allowance starts at its ceiling
    /// and only shrinks if interactive latency actually suffers.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self {
            bulk_slots: cfg.max_bulk_slots.max(cfg.min_bulk_slots),
            cfg,
            buckets: HashMap::new(),
            draining: false,
            stats: AdmissionStats::default(),
        }
    }

    /// Current bulk concurrency allowance.
    pub fn bulk_slots(&self) -> usize {
        self.bulk_slots
    }

    /// Counters snapshot.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Switches to drain mode: every subsequent request is shed with
    /// [`RejectReason::ShuttingDown`].
    pub fn drain(&mut self) {
        self.draining = true;
    }

    /// Decides whether to admit one request.
    ///
    /// `queue_depth` is the current depth of the *target class's*
    /// queue; `now_ms` is any monotonic millisecond clock.
    ///
    /// # Errors
    ///
    /// A typed [`Reject`] carrying the reason and a Retry-After hint.
    pub fn admit(
        &mut self,
        class: Class,
        tenant: &str,
        queue_depth: usize,
        now_ms: u64,
    ) -> Result<(), Reject> {
        if self.draining {
            self.stats.rejected_shutting_down += 1;
            return Err(Reject {
                reason: RejectReason::ShuttingDown,
                retry_after_ms: 1000,
            });
        }
        let cap = match class {
            Class::Interactive => self.cfg.interactive_queue_cap,
            Class::Bulk => self.cfg.bulk_queue_cap,
        };
        if queue_depth >= cap {
            self.stats.rejected_queue_full += 1;
            return Err(Reject {
                reason: RejectReason::QueueFull,
                retry_after_ms: self.cfg.queue_full_retry_ms,
            });
        }
        if let Err(wait_ms) = self.spend_token(tenant, now_ms) {
            self.stats.rejected_quota += 1;
            return Err(Reject {
                reason: RejectReason::QuotaExhausted,
                retry_after_ms: wait_ms,
            });
        }
        self.stats.admitted += 1;
        Ok(())
    }

    /// Refills the tenant's bucket to `now_ms` and spends one token.
    /// On failure returns the milliseconds until one token exists.
    fn spend_token(&mut self, tenant: &str, now_ms: u64) -> Result<(), u64> {
        let burst_milli = self.cfg.tenant_burst.saturating_mul(1000);
        let refill = self.cfg.tenant_refill_per_sec;
        let bucket = self.buckets.entry(tenant.to_string()).or_insert(Bucket {
            millitokens: burst_milli,
            last_refill_ms: now_ms,
        });
        let elapsed = now_ms.saturating_sub(bucket.last_refill_ms);
        bucket.millitokens = bucket
            .millitokens
            .saturating_add(elapsed.saturating_mul(refill))
            .min(burst_milli);
        bucket.last_refill_ms = now_ms;
        if bucket.millitokens >= 1000 {
            bucket.millitokens -= 1000;
            Ok(())
        } else if refill == 0 {
            // No refill configured: the quota is a hard cap; tell the
            // client to back off for a full second and try its luck.
            Err(1000)
        } else {
            let deficit = 1000 - bucket.millitokens;
            Err(deficit.div_ceil(refill).max(1))
        }
    }

    /// Feeds one measured interactive queue wait into the Heracles
    /// loop: breach the limit and the bulk allowance is halved
    /// (multiplicative decrease); stay under half the limit and it
    /// creeps up by one (additive increase). Waits in the middle band
    /// leave the allowance alone, which keeps the loop from
    /// oscillating.
    pub fn observe_interactive_wait(&mut self, wait_ms: u64) {
        if wait_ms > self.cfg.interactive_wait_limit_ms {
            let shrunk = (self.bulk_slots / 2).max(self.cfg.min_bulk_slots);
            if shrunk < self.bulk_slots {
                self.bulk_slots = shrunk;
                self.stats.bulk_shrinks += 1;
            }
        } else if wait_ms <= self.cfg.interactive_wait_limit_ms / 2
            && self.bulk_slots < self.cfg.max_bulk_slots
        {
            self.bulk_slots += 1;
            self.stats.bulk_grows += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Admission {
        Admission::new(AdmissionConfig {
            tenant_burst: 2,
            tenant_refill_per_sec: 1,
            interactive_queue_cap: 4,
            bulk_queue_cap: 8,
            min_bulk_slots: 1,
            max_bulk_slots: 4,
            interactive_wait_limit_ms: 100,
            queue_full_retry_ms: 50,
        })
    }

    #[test]
    fn burst_then_quota_with_accurate_retry_after() {
        let mut a = small();
        assert!(a.admit(Class::Bulk, "t", 0, 0).is_ok());
        assert!(a.admit(Class::Bulk, "t", 0, 0).is_ok());
        let rej = a.admit(Class::Bulk, "t", 0, 0).expect_err("bucket empty");
        assert_eq!(rej.reason, RejectReason::QuotaExhausted);
        // 1 token/s refill and a 1000-millitoken deficit: 1000 ms.
        assert_eq!(rej.retry_after_ms, 1000);
        // Waiting exactly that long makes the next request pass.
        assert!(a.admit(Class::Bulk, "t", 0, rej.retry_after_ms).is_ok());
    }

    #[test]
    fn tenants_are_isolated() {
        let mut a = small();
        for _ in 0..2 {
            assert!(a.admit(Class::Bulk, "greedy", 0, 0).is_ok());
        }
        assert!(a.admit(Class::Bulk, "greedy", 0, 0).is_err());
        assert!(a.admit(Class::Bulk, "other", 0, 0).is_ok());
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut a = small();
        for _ in 0..2 {
            assert!(a.admit(Class::Bulk, "t", 0, 0).is_ok());
        }
        // An hour later the tenant has refilled to burst (2), not 3600.
        let hour = 3_600_000;
        assert!(a.admit(Class::Bulk, "t", 0, hour).is_ok());
        assert!(a.admit(Class::Bulk, "t", 0, hour).is_ok());
        assert!(a.admit(Class::Bulk, "t", 0, hour).is_err());
    }

    #[test]
    fn queue_full_sheds_before_spending_quota() {
        let mut a = small();
        let rej = a
            .admit(Class::Interactive, "t", 4, 0)
            .expect_err("queue at cap");
        assert_eq!(rej.reason, RejectReason::QueueFull);
        assert_eq!(rej.retry_after_ms, 50);
        // The shed request did not consume a token.
        assert!(a.admit(Class::Interactive, "t", 0, 0).is_ok());
        assert!(a.admit(Class::Interactive, "t", 0, 0).is_ok());
    }

    #[test]
    fn draining_sheds_everything() {
        let mut a = small();
        a.drain();
        let rej = a.admit(Class::Interactive, "t", 0, 0).expect_err("drain");
        assert_eq!(rej.reason, RejectReason::ShuttingDown);
    }

    #[test]
    fn heracles_loop_shrinks_fast_and_grows_slow() {
        let mut a = small();
        assert_eq!(a.bulk_slots(), 4);
        // One breach halves the allowance.
        a.observe_interactive_wait(150);
        assert_eq!(a.bulk_slots(), 2);
        a.observe_interactive_wait(150);
        assert_eq!(a.bulk_slots(), 1);
        // The floor holds.
        a.observe_interactive_wait(150);
        assert_eq!(a.bulk_slots(), 1);
        // Recovery is additive, one slot per comfortable observation.
        a.observe_interactive_wait(10);
        assert_eq!(a.bulk_slots(), 2);
        a.observe_interactive_wait(10);
        a.observe_interactive_wait(10);
        assert_eq!(a.bulk_slots(), 4);
        // The ceiling holds.
        a.observe_interactive_wait(10);
        assert_eq!(a.bulk_slots(), 4);
        // Mid-band waits leave the allowance untouched.
        a.observe_interactive_wait(75);
        assert_eq!(a.bulk_slots(), 4);
        let s = a.stats();
        assert_eq!(s.bulk_shrinks, 2);
        assert_eq!(s.bulk_grows, 3);
    }

    #[test]
    fn stats_count_every_outcome() {
        let mut a = small();
        assert!(a.admit(Class::Bulk, "t", 0, 0).is_ok());
        assert!(a.admit(Class::Bulk, "t", 0, 0).is_ok());
        assert!(a.admit(Class::Bulk, "t", 0, 0).is_err());
        assert!(a.admit(Class::Bulk, "t", 8, 0).is_err());
        a.drain();
        assert!(a.admit(Class::Bulk, "t", 0, 0).is_err());
        let s = a.stats();
        assert_eq!(s.admitted, 2);
        assert_eq!(s.rejected_quota, 1);
        assert_eq!(s.rejected_queue_full, 1);
        assert_eq!(s.rejected_shutting_down, 1);
    }
}
