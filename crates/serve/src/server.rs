//! The experiment daemon: Unix-socket accept loop, per-class queues,
//! a supervised worker pool, and crash-consistent result publication.
//!
//! A `Run` request's lifecycle:
//!
//! ```text
//! decode → identity (ExperimentKey) → cache? ── hit ──▶ Result{cached}
//!                                        │
//!                                     inflight? ─ yes ─▶ wait (deduped)
//!                                        │
//!                                    admission ── shed ─▶ Reject{Retry-After}
//!                                        │
//!                                     enqueue → worker → journal fsync
//!                                                              │
//!                                          Result ◀── publish ─┘
//! ```
//!
//! Supervision: each execution attempt runs on its own thread under a
//! watchdog; an attempt that hangs past `watchdog_ms` is abandoned and
//! a replacement attempt spawned, up to `max_retries` attempts, after
//! which the request fails with a typed `worker-failed` error. The
//! journal fsync *precedes* every waiter notification, so no client
//! ever holds a result the restarted server has forgotten.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use impulse_obs::Json;
use impulse_types::{ExperimentKey, TierPolicy};

use crate::admission::{Admission, AdmissionConfig};
use crate::domains::TenantDomains;
use crate::proto::{Class, Request, Response, RunRequest, RunResult, ServerError, ServerErrorKind};
use crate::store::{Recovery, ResultStore, StoredResult};
use crate::wire::{read_frame, write_frame, WireError};

/// What the daemon serves: a catalog of named experiments, each with a
/// stable configuration digest and a deterministic runner.
///
/// The contract that makes caching sound: `run(name, seed)` must be a
/// pure function of `config_digest(name, seed)` — identical digests
/// must produce byte-identical results.
pub trait Backend: Send + Sync + 'static {
    /// Every experiment name this backend can run.
    fn names(&self) -> Vec<String>;
    /// Stable configuration digest for an experiment, or `None` if the
    /// name is unknown. The tier policy is part of the digest: the same
    /// experiment under a different memory organisation is a different
    /// cache entry.
    fn config_digest(&self, experiment: &str, seed: u64, tier: TierPolicy) -> Option<u64>;
    /// Runs the experiment to completion.
    ///
    /// # Errors
    ///
    /// A human-readable reason; the server wraps it in a typed
    /// `worker-failed` error after the retry budget is spent.
    fn run(&self, experiment: &str, seed: u64, tier: TierPolicy) -> Result<StoredResult, String>;
}

/// Daemon tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Unix socket path (created at start, unlinked on shutdown).
    pub socket: PathBuf,
    /// Result journal path.
    pub journal: PathBuf,
    /// Worker threads.
    pub workers: usize,
    /// Watchdog limit per execution attempt, in milliseconds.
    pub watchdog_ms: u64,
    /// Execution attempts per request before `worker-failed`.
    pub max_retries: u32,
    /// Admission-control tunables.
    pub admission: AdmissionConfig,
    /// Maximum concurrently in-flight requests per tenant, enforced by
    /// lease capabilities in the tenant's capability domain (see
    /// [`crate::domains`]). Generous by default: the capability layer is
    /// a backstop below the token buckets, not the primary throttle.
    pub max_inflight_leases: usize,
    /// Server-side cap on how long a connection waits for a result.
    pub request_timeout_ms: u64,
    /// Idle-connection read timeout.
    pub idle_timeout_ms: u64,
    /// Test knob: sleep this long between the journal fsync and the
    /// waiter notification, widening the kill-mid-publish window the
    /// chaos suite aims at. Zero in production.
    pub publish_stall_ms: u64,
}

impl ServerConfig {
    /// Sensible defaults for a socket/journal pair.
    pub fn new(socket: PathBuf, journal: PathBuf) -> Self {
        Self {
            socket,
            journal,
            workers: 4,
            watchdog_ms: 30_000,
            max_retries: 3,
            admission: AdmissionConfig::default(),
            max_inflight_leases: 256,
            request_timeout_ms: 120_000,
            idle_timeout_ms: 30_000,
            publish_stall_ms: 0,
        }
    }
}

/// A parked requester: the slot a worker completes into.
struct Pending {
    state: Mutex<Option<Result<StoredResult, ServerError>>>,
    cv: Condvar,
}

impl Pending {
    fn new() -> Self {
        Self {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn complete(&self, outcome: Result<StoredResult, ServerError>) {
        let mut state = self.state.lock().expect("pending lock");
        *state = Some(outcome);
        self.cv.notify_all();
    }

    /// Waits up to `limit`; `None` on timeout.
    fn wait(&self, limit: Duration) -> Option<Result<StoredResult, ServerError>> {
        let deadline = Instant::now() + limit;
        let mut state = self.state.lock().expect("pending lock");
        loop {
            if let Some(outcome) = state.as_ref() {
                return Some(outcome.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _) = self
                .cv
                .wait_timeout(state, deadline - now)
                .expect("pending lock");
            state = next;
        }
    }
}

struct Job {
    key: ExperimentKey,
    experiment: String,
    seed: u64,
    tier: TierPolicy,
    enqueued_ms: u64,
    pending: Arc<Pending>,
}

#[derive(Default)]
struct Queues {
    interactive: VecDeque<Job>,
    bulk: VecDeque<Job>,
    bulk_running: usize,
    shutdown: bool,
}

#[derive(Clone, Copy, Default)]
struct Counters {
    requests: u64,
    cache_hits: u64,
    dedups: u64,
    executed: u64,
    failed: u64,
    watchdog_kills: u64,
    bad_frames: u64,
}

struct Inner {
    cfg: ServerConfig,
    backend: Arc<dyn Backend>,
    started: Instant,
    admission: Mutex<Admission>,
    domains: Mutex<TenantDomains>,
    store: Mutex<ResultStore>,
    inflight: Mutex<HashMap<ExperimentKey, Arc<Pending>>>,
    queues: Mutex<Queues>,
    queue_cv: Condvar,
    counters: Mutex<Counters>,
    stopping: AtomicBool,
}

impl Inner {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

/// A started daemon; call [`Server::run`] to serve until shutdown.
pub struct Server {
    inner: Arc<Inner>,
    listener: UnixListener,
    recovery: Recovery,
}

impl Server {
    /// Binds the socket, opens (and recovers) the result journal, and
    /// spins up the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates socket and journal I/O failures.
    pub fn start(backend: Arc<dyn Backend>, cfg: ServerConfig) -> io::Result<Server> {
        let (store, recovery) = ResultStore::open(&cfg.journal)?;
        // A stale socket file from a killed daemon would make bind fail.
        let _ = std::fs::remove_file(&cfg.socket);
        let listener = UnixListener::bind(&cfg.socket)?;
        let inner = Arc::new(Inner {
            admission: Mutex::new(Admission::new(cfg.admission)),
            domains: Mutex::new(TenantDomains::new(cfg.max_inflight_leases)),
            store: Mutex::new(store),
            inflight: Mutex::new(HashMap::new()),
            queues: Mutex::new(Queues::default()),
            queue_cv: Condvar::new(),
            counters: Mutex::new(Counters::default()),
            stopping: AtomicBool::new(false),
            started: Instant::now(),
            backend,
            cfg,
        });
        Ok(Server {
            inner,
            listener,
            recovery,
        })
    }

    /// What journal recovery found at startup.
    pub fn recovery(&self) -> Recovery {
        self.recovery
    }

    /// Serves until a `Shutdown` request arrives, then drains workers
    /// and unlinks the socket.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures.
    pub fn run(self) -> io::Result<()> {
        let workers: Vec<_> = (0..self.inner.cfg.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&self.inner);
                thread::Builder::new()
                    .name(format!("impulse-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        for conn in self.listener.incoming() {
            if self.inner.stopping.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    let inner = Arc::clone(&self.inner);
                    // Connection threads are detached: they are bounded
                    // by the idle/request timeouts and die with the
                    // process; shutdown only waits for workers.
                    let _ = thread::Builder::new()
                        .name("impulse-conn".into())
                        .spawn(move || handle_connection(&inner, stream));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        for w in workers {
            let _ = w.join();
        }
        let _ = std::fs::remove_file(&self.inner.cfg.socket);
        Ok(())
    }
}

/// Pops the next runnable job, honoring strict interactive priority
/// and the Heracles bulk allowance. `None` means shutdown with empty
/// queues.
fn next_job(inner: &Inner) -> Option<Job> {
    let mut q = inner.queues.lock().expect("queues lock");
    loop {
        if let Some(job) = q.interactive.pop_front() {
            let wait = inner.now_ms().saturating_sub(job.enqueued_ms);
            inner
                .admission
                .lock()
                .expect("admission lock")
                .observe_interactive_wait(wait);
            return Some(job);
        }
        let allowance = inner.admission.lock().expect("admission lock").bulk_slots();
        if q.bulk_running < allowance {
            if let Some(job) = q.bulk.pop_front() {
                q.bulk_running += 1;
                return Some(job);
            }
        }
        if q.shutdown && q.interactive.is_empty() && q.bulk.is_empty() {
            return None;
        }
        // Timed wait: the bulk allowance can grow while we sleep, and
        // a bare `wait` would never re-check it.
        let (next, _) = inner
            .queue_cv
            .wait_timeout(q, Duration::from_millis(50))
            .expect("queues lock");
        q = next;
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    while let Some(job) = next_job(inner) {
        let outcome = run_job(inner, &job);
        // Publication contract: journal fsync BEFORE any waiter can
        // observe the result.
        let outcome = match outcome {
            Ok(result) => {
                let published = inner
                    .store
                    .lock()
                    .expect("store lock")
                    .publish(job.key, result.clone());
                match published {
                    Ok(()) => Ok(result),
                    Err(e) => Err(ServerError::new(
                        ServerErrorKind::WorkerFailed,
                        format!("result publication failed: {e}"),
                    )),
                }
            }
            Err(e) => Err(e),
        };
        if inner.cfg.publish_stall_ms > 0 {
            thread::sleep(Duration::from_millis(inner.cfg.publish_stall_ms));
        }
        inner
            .inflight
            .lock()
            .expect("inflight lock")
            .remove(&job.key);
        job.pending.complete(outcome);
        let mut q = inner.queues.lock().expect("queues lock");
        q.bulk_running = q.bulk_running.saturating_sub(1);
        drop(q);
        inner.queue_cv.notify_all();
    }
}

/// Runs one job under the watchdog/retry budget. A cached result (for
/// example after a restart mid-queue) short-circuits execution.
fn run_job(inner: &Arc<Inner>, job: &Job) -> Result<StoredResult, ServerError> {
    if let Some(hit) = inner.store.lock().expect("store lock").get(job.key) {
        return Ok(hit.clone());
    }
    let attempts = inner.cfg.max_retries.max(1);
    let limit = Duration::from_millis(inner.cfg.watchdog_ms.max(1));
    let mut last = String::new();
    for attempt in 1..=attempts {
        let (tx, rx) = mpsc::channel();
        let backend = Arc::clone(&inner.backend);
        let name = job.experiment.clone();
        let seed = job.seed;
        let tier = job.tier;
        // The attempt runs detached so a hang cannot wedge the worker:
        // the watchdog abandons it and spawns a replacement attempt.
        let spawned = thread::Builder::new()
            .name(format!("impulse-attempt-{name}"))
            .spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| backend.run(&name, seed, tier)));
                let _ = tx.send(result);
            });
        if spawned.is_err() {
            last = "could not spawn attempt thread".into();
            continue;
        }
        match rx.recv_timeout(limit) {
            Ok(Ok(Ok(result))) => {
                let mut c = inner.counters.lock().expect("counters lock");
                c.executed += 1;
                return Ok(result);
            }
            Ok(Ok(Err(reason))) => {
                last = format!("attempt {attempt}: {reason}");
            }
            Ok(Err(panic)) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked".into());
                last = format!("attempt {attempt} panicked: {msg}");
            }
            Err(_) => {
                inner.counters.lock().expect("counters lock").watchdog_kills += 1;
                last = format!(
                    "attempt {attempt} exceeded the {} ms watchdog",
                    inner.cfg.watchdog_ms
                );
            }
        }
    }
    inner.counters.lock().expect("counters lock").failed += 1;
    Err(ServerError::new(
        ServerErrorKind::WorkerFailed,
        format!("{last} ({attempts} attempt(s))"),
    ))
}

fn handle_connection(inner: &Arc<Inner>, mut stream: UnixStream) {
    let idle = Duration::from_millis(inner.cfg.idle_timeout_ms.max(1));
    let _ = stream.set_read_timeout(Some(idle));
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(WireError::Closed) => return,
            Err(WireError::Io(kind, _))
                if kind == io::ErrorKind::WouldBlock || kind == io::ErrorKind::TimedOut =>
            {
                return; // idle client
            }
            Err(e) => {
                // Corrupt or truncated frame: answer with a typed
                // error (best effort — the peer may be gone), then
                // close; framing sync is lost on this stream.
                inner.counters.lock().expect("counters lock").bad_frames += 1;
                let err = ServerError::new(ServerErrorKind::BadRequest, e.to_string());
                let _ = write_frame(&mut stream, &Response::Error(err).to_frame());
                return;
            }
        };
        let (response, shutdown) = match Request::from_frame(&frame) {
            Ok(Request::Run(req)) => (handle_run(inner, &req), false),
            Ok(Request::Stats) => (Response::Stats(stats_doc(inner)), false),
            Ok(Request::Ping) => (Response::Ok, false),
            Ok(Request::Shutdown) => (Response::Ok, true),
            Err(e) => (
                Response::Error(ServerError::new(ServerErrorKind::BadRequest, e.to_string())),
                false,
            ),
        };
        if write_frame(&mut stream, &response.to_frame()).is_err() {
            return;
        }
        if shutdown {
            begin_shutdown(inner);
            return;
        }
    }
}

fn handle_run(inner: &Arc<Inner>, req: &RunRequest) -> Response {
    inner.counters.lock().expect("counters lock").requests += 1;
    let Some(config) = inner.backend.config_digest(&req.experiment, req.seed, req.tier) else {
        return Response::Error(ServerError::new(
            ServerErrorKind::UnknownExperiment,
            format!("no catalog entry named `{}`", req.experiment),
        ));
    };
    let key = ExperimentKey::new(config, req.seed);
    if let Some(hit) = inner.store.lock().expect("store lock").get(key) {
        inner.counters.lock().expect("counters lock").cache_hits += 1;
        return Response::Result(RunResult {
            key_hex: key.hex(),
            cached: true,
            deduped: false,
            csv: hit.csv.clone(),
            report: hit.report.clone(),
        });
    }
    // Dedup-or-admit, atomically under the inflight lock so two
    // identical requests can never both enqueue.
    let (pending, deduped, lease) = {
        let mut inflight = inner.inflight.lock().expect("inflight lock");
        if let Some(p) = inflight.get(&key) {
            inner.counters.lock().expect("counters lock").dedups += 1;
            (Arc::clone(p), true, None)
        } else {
            let mut q = inner.queues.lock().expect("queues lock");
            let depth = match req.class {
                Class::Interactive => q.interactive.len(),
                Class::Bulk => q.bulk.len(),
            };
            let verdict = inner.admission.lock().expect("admission lock").admit(
                req.class,
                &req.tenant,
                depth,
                inner.now_ms(),
            );
            if let Err(reject) = verdict {
                return Response::Reject(reject);
            }
            // Kernel-enforced backstop below the token buckets: the
            // request holds a lease capability in the tenant's domain
            // until its response is sent.
            let lease = match inner
                .domains
                .lock()
                .expect("domains lock")
                .lease(&req.tenant)
            {
                Ok(cap) => cap,
                Err(reject) => return Response::Reject(reject),
            };
            let pending = Arc::new(Pending::new());
            let job = Job {
                key,
                experiment: req.experiment.clone(),
                seed: req.seed,
                tier: req.tier,
                enqueued_ms: inner.now_ms(),
                pending: Arc::clone(&pending),
            };
            match req.class {
                Class::Interactive => q.interactive.push_back(job),
                Class::Bulk => q.bulk.push_back(job),
            }
            drop(q);
            inflight.insert(key, Arc::clone(&pending));
            inner.queue_cv.notify_all();
            (pending, false, Some(lease))
        }
    };
    let mut wait_ms = inner.cfg.request_timeout_ms.max(1);
    if req.deadline_ms > 0 {
        wait_ms = wait_ms.min(req.deadline_ms);
    }
    let response = match pending.wait(Duration::from_millis(wait_ms)) {
        Some(Ok(result)) => Response::Result(RunResult {
            key_hex: key.hex(),
            cached: false,
            deduped,
            csv: result.csv,
            report: result.report,
        }),
        Some(Err(err)) => Response::Error(err),
        None => Response::Error(ServerError::new(
            ServerErrorKind::DeadlineExceeded,
            format!("no result within {wait_ms} ms"),
        )),
    };
    if let Some(cap) = lease {
        // The lease dies with the request, whatever the outcome —
        // deadline-exceeded included, or the tenant's budget would leak.
        inner
            .domains
            .lock()
            .expect("domains lock")
            .release(&req.tenant, cap);
    }
    response
}

fn stats_doc(inner: &Arc<Inner>) -> Json {
    let c = *inner.counters.lock().expect("counters lock");
    let (iq, bq, br) = {
        let q = inner.queues.lock().expect("queues lock");
        (q.interactive.len(), q.bulk.len(), q.bulk_running)
    };
    let (slots, adm) = {
        let a = inner.admission.lock().expect("admission lock");
        (a.bulk_slots(), a.stats())
    };
    let cached = inner.store.lock().expect("store lock").len();
    let mut doc = Json::obj();
    doc.set("schema", Json::Str("impulse-serve-stats-v1".into()));
    doc.set("uptime_ms", Json::UInt(inner.now_ms()));
    doc.set("requests", Json::UInt(c.requests));
    doc.set("cache_hits", Json::UInt(c.cache_hits));
    doc.set("dedups", Json::UInt(c.dedups));
    doc.set("executed", Json::UInt(c.executed));
    doc.set("failed", Json::UInt(c.failed));
    doc.set("watchdog_kills", Json::UInt(c.watchdog_kills));
    doc.set("bad_frames", Json::UInt(c.bad_frames));
    doc.set("cached_results", Json::UInt(cached as u64));
    doc.set("queue_interactive", Json::UInt(iq as u64));
    doc.set("queue_bulk", Json::UInt(bq as u64));
    doc.set("bulk_running", Json::UInt(br as u64));
    doc.set("bulk_slots", Json::UInt(slots as u64));
    let mut a = Json::obj();
    a.set("admitted", Json::UInt(adm.admitted));
    a.set("rejected_quota", Json::UInt(adm.rejected_quota));
    a.set("rejected_queue_full", Json::UInt(adm.rejected_queue_full));
    a.set(
        "rejected_shutting_down",
        Json::UInt(adm.rejected_shutting_down),
    );
    a.set("bulk_shrinks", Json::UInt(adm.bulk_shrinks));
    a.set("bulk_grows", Json::UInt(adm.bulk_grows));
    doc.set("admission", a);
    let (dstats, live) = {
        let d = inner.domains.lock().expect("domains lock");
        (d.stats(), d.live_total())
    };
    let mut t = Json::obj();
    t.set("domains", Json::UInt(dstats.domains));
    t.set("live_leases", Json::UInt(live as u64));
    t.set("leases_granted", Json::UInt(dstats.leases_granted));
    t.set("leases_revoked", Json::UInt(dstats.leases_revoked));
    t.set("rejected_leases", Json::UInt(dstats.rejected_leases));
    t.set("stale_releases", Json::UInt(dstats.stale_releases));
    doc.set("tenant_domains", t);
    doc
}

/// Flips the daemon into drain mode and unblocks the accept loop.
fn begin_shutdown(inner: &Arc<Inner>) {
    inner.admission.lock().expect("admission lock").drain();
    inner.stopping.store(true, Ordering::SeqCst);
    {
        let mut q = inner.queues.lock().expect("queues lock");
        q.shutdown = true;
    }
    inner.queue_cv.notify_all();
    // The accept loop is parked in `accept`; poke it with a throwaway
    // connection so it observes the stopping flag.
    let _ = UnixStream::connect(&inner.cfg.socket);
}
