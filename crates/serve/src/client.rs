//! The experiment client: one-connection-per-call with bounded,
//! deterministic retry.
//!
//! The retry loop treats the three failure families differently:
//!
//! - **Rejections** ([`crate::proto::Reject`]) carry a server-supplied
//!   Retry-After; the client sleeps the *longer* of that hint and its
//!   own exponential backoff, then tries again.
//! - **Transport faults** (connect refused, frame corruption, peer
//!   hangup) are retried on a fresh connection with pure backoff —
//!   they are exactly what the chaos suite injects.
//! - **Typed server errors** split: `worker-failed` and
//!   `deadline-exceeded` are retryable (a later attempt may hit the
//!   cache or a healthier worker); `unknown-experiment` and
//!   `bad-request` are terminal — retrying a malformed request is
//!   just load.
//!
//! Backoff jitter comes from the in-tree deterministic
//! [`XorShift64`], so two clients seeded differently desynchronize
//! their retries while any single run stays reproducible.

use std::fmt;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::thread;
use std::time::Duration;

use impulse_fault::XorShift64;
use impulse_obs::Json;

use crate::proto::{
    ProtoError, Reject, Request, Response, RunRequest, RunResult, ServerError, ServerErrorKind,
};
use crate::wire::{read_frame, write_frame, WireError};

/// Retry tunables.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts before giving up.
    pub max_attempts: u32,
    /// First backoff step, in milliseconds; doubles per attempt.
    pub base_backoff_ms: u64,
    /// Backoff ceiling, in milliseconds.
    pub max_backoff_ms: u64,
    /// Per-call socket receive timeout, in milliseconds.
    pub recv_timeout_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_backoff_ms: 25,
            max_backoff_ms: 2_000,
            recv_timeout_ms: 120_000,
        }
    }
}

/// Why a call ultimately failed (after retries, where applicable).
#[derive(Clone, Debug, PartialEq)]
pub enum ClientError {
    /// Could not reach the daemon.
    Connect(io::ErrorKind, String),
    /// Frame-level failure.
    Wire(WireError),
    /// The response decoded as a frame but not as a message.
    Proto(ProtoError),
    /// The server answered with a typed terminal error.
    Server(ServerError),
    /// Every attempt failed; the last failure is described inside.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
        /// Human-readable description of the final failure.
        last: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect(kind, detail) => {
                write!(f, "could not connect ({kind:?}): {detail}")
            }
            ClientError::Wire(e) => write!(f, "wire failure: {e}"),
            ClientError::Proto(e) => write!(f, "protocol failure: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "gave up after {attempts} attempt(s); last failure: {last}"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A client bound to one daemon socket.
#[derive(Debug)]
pub struct Client {
    socket: PathBuf,
    policy: RetryPolicy,
    rng: XorShift64,
}

impl Client {
    /// Builds a client; `seed` drives the retry jitter.
    pub fn new(socket: &Path, policy: RetryPolicy, seed: u64) -> Self {
        Self {
            socket: socket.to_path_buf(),
            policy,
            rng: XorShift64::new(seed),
        }
    }

    /// One request/response exchange on a fresh connection.
    fn call_once(&self, request: &Request) -> Result<Response, ClientError> {
        let mut stream = UnixStream::connect(&self.socket)
            .map_err(|e| ClientError::Connect(e.kind(), e.to_string()))?;
        let _ = stream.set_read_timeout(Some(Duration::from_millis(
            self.policy.recv_timeout_ms.max(1),
        )));
        write_frame(&mut stream, &request.to_frame()).map_err(ClientError::Wire)?;
        let frame = read_frame(&mut stream).map_err(ClientError::Wire)?;
        Response::from_frame(&frame).map_err(ClientError::Proto)
    }

    /// Exponential backoff with deterministic jitter: step doubles per
    /// attempt up to the ceiling, plus up to 50% random extra.
    fn backoff_ms(&mut self, attempt: u32, floor_ms: u64) -> u64 {
        let shift = attempt.min(20);
        let step = self
            .policy
            .base_backoff_ms
            .saturating_mul(1u64 << shift)
            .min(self.policy.max_backoff_ms);
        let jitter = self.rng.below(step / 2 + 1);
        step.saturating_add(jitter).max(floor_ms)
    }

    /// Runs (or fetches) one experiment with the full retry loop.
    ///
    /// # Errors
    ///
    /// Terminal [`ClientError`]s immediately; retryable failures only
    /// as [`ClientError::RetriesExhausted`] once the budget is spent.
    pub fn run(&mut self, request: &RunRequest) -> Result<RunResult, ClientError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            let floor = match self.call_once(&Request::Run(request.clone())) {
                Ok(Response::Result(result)) => return Ok(result),
                Ok(Response::Reject(Reject {
                    reason,
                    retry_after_ms,
                })) => {
                    last = format!("rejected: {}", reason.name());
                    retry_after_ms
                }
                Ok(Response::Error(err)) => match err.kind {
                    ServerErrorKind::WorkerFailed | ServerErrorKind::DeadlineExceeded => {
                        last = err.to_string();
                        0
                    }
                    ServerErrorKind::UnknownExperiment | ServerErrorKind::BadRequest => {
                        return Err(ClientError::Server(err));
                    }
                },
                Ok(other) => {
                    last = format!("unexpected response {other:?}");
                    0
                }
                Err(ClientError::Server(err)) => return Err(ClientError::Server(err)),
                Err(e) => {
                    last = match &e {
                        ClientError::Connect(_, detail) => format!("connect failed: {detail}"),
                        ClientError::Wire(w) => format!("wire failure: {w}"),
                        ClientError::Proto(p) => format!("protocol failure: {p}"),
                        other => format!("{other:?}"),
                    };
                    0
                }
            };
            if attempt + 1 < attempts {
                let ms = self.backoff_ms(attempt, floor);
                thread::sleep(Duration::from_millis(ms));
            }
        }
        Err(ClientError::RetriesExhausted { attempts, last })
    }

    /// Fetches the server metrics document (single attempt).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or [`ClientError::Server`] when the
    /// daemon answers with anything but a stats document.
    pub fn stats(&self) -> Result<Json, ClientError> {
        match self.call_once(&Request::Stats)? {
            Response::Stats(doc) => Ok(doc),
            Response::Error(err) => Err(ClientError::Server(err)),
            other => Err(ClientError::Proto(ProtoError {
                what: "stats",
                detail: format!("unexpected response {other:?}"),
            })),
        }
    }

    /// Liveness probe (single attempt).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn ping(&self) -> Result<(), ClientError> {
        match self.call_once(&Request::Ping)? {
            Response::Ok => Ok(()),
            Response::Error(err) => Err(ClientError::Server(err)),
            other => Err(ClientError::Proto(ProtoError {
                what: "ping",
                detail: format!("unexpected response {other:?}"),
            })),
        }
    }

    /// Asks the daemon to drain and exit (single attempt).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        match self.call_once(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            Response::Error(err) => Err(ClientError::Server(err)),
            other => Err(ClientError::Proto(ProtoError {
                what: "shutdown",
                detail: format!("unexpected response {other:?}"),
            })),
        }
    }
}
