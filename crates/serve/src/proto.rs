//! Typed messages over [`wire`](crate::wire) frames.
//!
//! Payloads are compact JSON (the in-tree [`Json`] codec), so a frame
//! dump is human-readable and the formatter's text stability gives
//! byte-stable encodings for identical messages. Decoding is total:
//! any shape mismatch comes back as a typed [`ProtoError`], never a
//! panic — malformed payloads are one of the chaos suite's standard
//! attacks.

use std::fmt;

use impulse_obs::Json;
use impulse_types::TierPolicy;

use crate::wire::{Frame, Kind};

/// A message that decoded as a frame but not as a valid payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError {
    /// What was being decoded.
    pub what: &'static str,
    /// Why it failed.
    pub detail: String,
}

impl ProtoError {
    fn new(what: &'static str, detail: impl Into<String>) -> Self {
        Self {
            what,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed {}: {}", self.what, self.detail)
    }
}

impl std::error::Error for ProtoError {}

/// Request service class, the admission controller's first axis:
/// interactive requests are latency-sensitive and admitted ahead of
/// bulk sweeps; bulk requests absorb the shedding first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Class {
    /// Latency-sensitive: a person (or test) is waiting on the result.
    Interactive,
    /// Throughput work: sweeps and batch refills; first to shed.
    Bulk,
}

impl Class {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Class::Interactive => "interactive",
            Class::Bulk => "bulk",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Class> {
        match s {
            "interactive" => Some(Class::Interactive),
            "bulk" => Some(Class::Bulk),
            _ => None,
        }
    }
}

/// A request to run (or fetch) one experiment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunRequest {
    /// Catalog experiment name.
    pub experiment: String,
    /// Master seed; part of the experiment identity.
    pub seed: u64,
    /// Tenant id for quota accounting.
    pub tenant: String,
    /// Service class.
    pub class: Class,
    /// Client deadline in milliseconds (0 = none): if the result cannot
    /// be produced in time the server answers with a typed
    /// `DeadlineExceeded` error instead of letting the client wait.
    pub deadline_ms: u64,
    /// Hybrid-memory tier policy the experiment runs under; part of the
    /// experiment identity. Absent on the wire means
    /// [`TierPolicy::None`] (pre-tier clients keep working).
    pub tier: TierPolicy,
}

impl RunRequest {
    /// Encodes into a [`Kind::Run`] frame.
    pub fn to_frame(&self) -> Frame {
        let mut j = Json::obj();
        j.set("experiment", Json::Str(self.experiment.clone()));
        j.set("seed", Json::UInt(self.seed));
        j.set("tenant", Json::Str(self.tenant.clone()));
        j.set("class", Json::Str(self.class.name().into()));
        j.set("deadline_ms", Json::UInt(self.deadline_ms));
        j.set("tier", Json::Str(self.tier.name().into()));
        Frame::new(Kind::Run, format!("{j}").into_bytes())
    }

    /// Decodes a [`Kind::Run`] payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on malformed JSON or missing/mistyped fields.
    pub fn from_payload(payload: &[u8]) -> Result<Self, ProtoError> {
        let j = parse_payload("run request", payload)?;
        Ok(Self {
            experiment: str_field(&j, "run request", "experiment")?,
            seed: u64_field(&j, "run request", "seed")?,
            tenant: str_field(&j, "run request", "tenant")?,
            class: Class::parse(&str_field(&j, "run request", "class")?)
                .ok_or_else(|| ProtoError::new("run request", "unknown class"))?,
            deadline_ms: u64_field(&j, "run request", "deadline_ms")?,
            tier: match j.get("tier") {
                None => TierPolicy::None,
                Some(t) => t
                    .as_str()
                    .and_then(TierPolicy::parse)
                    .ok_or_else(|| ProtoError::new("run request", "unknown tier policy"))?,
            },
        })
    }
}

/// A completed experiment result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunResult {
    /// Combined experiment key (hex), for logging and cache audits.
    pub key_hex: String,
    /// Served from the journal-backed cache (no execution).
    pub cached: bool,
    /// Coalesced onto another in-flight execution of the same key.
    pub deduped: bool,
    /// The experiment's CSV row, byte-identical to the batch runner's.
    pub csv: String,
    /// The experiment's compact JSON report text, byte-identical to the
    /// batch runner's fragment.
    pub report: String,
}

impl RunResult {
    /// Encodes into a [`Kind::Result`] frame.
    pub fn to_frame(&self) -> Frame {
        let mut j = Json::obj();
        j.set("key", Json::Str(self.key_hex.clone()));
        j.set("cached", Json::Bool(self.cached));
        j.set("deduped", Json::Bool(self.deduped));
        j.set("csv", Json::Str(self.csv.clone()));
        j.set("report", Json::Str(self.report.clone()));
        Frame::new(Kind::Result, format!("{j}").into_bytes())
    }

    fn from_payload(payload: &[u8]) -> Result<Self, ProtoError> {
        let j = parse_payload("result", payload)?;
        Ok(Self {
            key_hex: str_field(&j, "result", "key")?,
            cached: bool_field(&j, "result", "cached")?,
            deduped: bool_field(&j, "result", "deduped")?,
            csv: str_field(&j, "result", "csv")?,
            report: str_field(&j, "result", "report")?,
        })
    }
}

/// Why admission refused a request. Every variant is retryable — the
/// server is telling the client *when*, via `retry_after_ms`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's token bucket is empty.
    QuotaExhausted,
    /// The queue is at its high-watermark for this class.
    QueueFull,
    /// The server is draining for shutdown.
    ShuttingDown,
}

impl RejectReason {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::QuotaExhausted => "quota-exhausted",
            RejectReason::QueueFull => "queue-full",
            RejectReason::ShuttingDown => "shutting-down",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "quota-exhausted" => Some(RejectReason::QuotaExhausted),
            "queue-full" => Some(RejectReason::QueueFull),
            "shutting-down" => Some(RejectReason::ShuttingDown),
            _ => None,
        }
    }
}

/// A typed admission refusal with a Retry-After hint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reject {
    /// Why the request was refused.
    pub reason: RejectReason,
    /// How long the client should wait before retrying (a hint; the
    /// client's own backoff still applies).
    pub retry_after_ms: u64,
}

impl Reject {
    /// Encodes into a [`Kind::Reject`] frame.
    pub fn to_frame(&self) -> Frame {
        let mut j = Json::obj();
        j.set("reason", Json::Str(self.reason.name().into()));
        j.set("retry_after_ms", Json::UInt(self.retry_after_ms));
        Frame::new(Kind::Reject, format!("{j}").into_bytes())
    }

    fn from_payload(payload: &[u8]) -> Result<Self, ProtoError> {
        let j = parse_payload("reject", payload)?;
        Ok(Self {
            reason: RejectReason::parse(&str_field(&j, "reject", "reason")?)
                .ok_or_else(|| ProtoError::new("reject", "unknown reason"))?,
            retry_after_ms: u64_field(&j, "reject", "retry_after_ms")?,
        })
    }
}

/// Non-admission request failures. Unlike [`Reject`], some of these are
/// terminal for the request as posed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerErrorKind {
    /// The experiment name is not in the server's catalog.
    UnknownExperiment,
    /// The request frame decoded but the payload was malformed.
    BadRequest,
    /// The execution failed after the watchdog/retry budget (worker
    /// panicked, hung past the watchdog, or returned a typed failure).
    WorkerFailed,
    /// The request's deadline passed before a result was ready.
    DeadlineExceeded,
}

impl ServerErrorKind {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ServerErrorKind::UnknownExperiment => "unknown-experiment",
            ServerErrorKind::BadRequest => "bad-request",
            ServerErrorKind::WorkerFailed => "worker-failed",
            ServerErrorKind::DeadlineExceeded => "deadline-exceeded",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "unknown-experiment" => Some(ServerErrorKind::UnknownExperiment),
            "bad-request" => Some(ServerErrorKind::BadRequest),
            "worker-failed" => Some(ServerErrorKind::WorkerFailed),
            "deadline-exceeded" => Some(ServerErrorKind::DeadlineExceeded),
            _ => None,
        }
    }
}

/// A typed request failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerError {
    /// Failure category.
    pub kind: ServerErrorKind,
    /// Human-readable detail (panic message, watchdog limit, ...).
    pub detail: String,
}

impl ServerError {
    /// Builds an error.
    pub fn new(kind: ServerErrorKind, detail: impl Into<String>) -> Self {
        Self {
            kind,
            detail: detail.into(),
        }
    }

    /// Encodes into a [`Kind::Error`] frame.
    pub fn to_frame(&self) -> Frame {
        let mut j = Json::obj();
        j.set("kind", Json::Str(self.kind.name().into()));
        j.set("detail", Json::Str(self.detail.clone()));
        Frame::new(Kind::Error, format!("{j}").into_bytes())
    }

    fn from_payload(payload: &[u8]) -> Result<Self, ProtoError> {
        let j = parse_payload("error", payload)?;
        Ok(Self {
            kind: ServerErrorKind::parse(&str_field(&j, "error", "kind")?)
                .ok_or_else(|| ProtoError::new("error", "unknown kind"))?,
            detail: str_field(&j, "error", "detail")?,
        })
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.name(), self.detail)
    }
}

/// Every server → client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A completed result.
    Result(RunResult),
    /// Admission refused (retry later).
    Reject(Reject),
    /// Typed failure.
    Error(ServerError),
    /// Metrics document.
    Stats(Json),
    /// Bare acknowledgement.
    Ok,
}

impl Response {
    /// Encodes into the matching frame.
    pub fn to_frame(&self) -> Frame {
        match self {
            Response::Result(r) => r.to_frame(),
            Response::Reject(r) => r.to_frame(),
            Response::Error(e) => e.to_frame(),
            Response::Stats(j) => Frame::new(Kind::StatsReply, format!("{j}").into_bytes()),
            Response::Ok => Frame::new(Kind::Ok, Vec::new()),
        }
    }

    /// Decodes any response frame.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] for request-direction kinds or malformed payloads.
    pub fn from_frame(frame: &Frame) -> Result<Self, ProtoError> {
        match frame.kind {
            Kind::Result => Ok(Response::Result(RunResult::from_payload(&frame.payload)?)),
            Kind::Reject => Ok(Response::Reject(Reject::from_payload(&frame.payload)?)),
            Kind::Error => Ok(Response::Error(ServerError::from_payload(&frame.payload)?)),
            Kind::StatsReply => Ok(Response::Stats(parse_payload("stats", &frame.payload)?)),
            Kind::Ok => Ok(Response::Ok),
            other => Err(ProtoError::new(
                "response",
                format!("unexpected request-direction frame {other:?}"),
            )),
        }
    }
}

/// Every client → server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Run (or fetch) an experiment.
    Run(RunRequest),
    /// Fetch server metrics.
    Stats,
    /// Graceful shutdown.
    Shutdown,
    /// Liveness probe.
    Ping,
}

impl Request {
    /// Encodes into the matching frame.
    pub fn to_frame(&self) -> Frame {
        match self {
            Request::Run(r) => r.to_frame(),
            Request::Stats => Frame::new(Kind::Stats, Vec::new()),
            Request::Shutdown => Frame::new(Kind::Shutdown, Vec::new()),
            Request::Ping => Frame::new(Kind::Ping, Vec::new()),
        }
    }

    /// Decodes any request frame.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] for response-direction kinds or malformed payloads.
    pub fn from_frame(frame: &Frame) -> Result<Self, ProtoError> {
        match frame.kind {
            Kind::Run => Ok(Request::Run(RunRequest::from_payload(&frame.payload)?)),
            Kind::Stats => Ok(Request::Stats),
            Kind::Shutdown => Ok(Request::Shutdown),
            Kind::Ping => Ok(Request::Ping),
            other => Err(ProtoError::new(
                "request",
                format!("unexpected response-direction frame {other:?}"),
            )),
        }
    }
}

fn parse_payload(what: &'static str, payload: &[u8]) -> Result<Json, ProtoError> {
    let text =
        std::str::from_utf8(payload).map_err(|_| ProtoError::new(what, "payload is not UTF-8"))?;
    Json::parse(text).map_err(|e| ProtoError::new(what, e))
}

fn str_field(j: &Json, what: &'static str, key: &'static str) -> Result<String, ProtoError> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ProtoError::new(what, format!("missing string field `{key}`")))
}

fn u64_field(j: &Json, what: &'static str, key: &'static str) -> Result<u64, ProtoError> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtoError::new(what, format!("missing integer field `{key}`")))
}

fn bool_field(j: &Json, what: &'static str, key: &'static str) -> Result<bool, ProtoError> {
    j.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| ProtoError::new(what, format!("missing boolean field `{key}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_req() -> RunRequest {
        RunRequest {
            experiment: "fig1/remapped".into(),
            seed: 0xc9a15e,
            tenant: "ci".into(),
            class: Class::Bulk,
            deadline_ms: 5000,
            tier: TierPolicy::Cache,
        }
    }

    #[test]
    fn missing_tier_defaults_to_none_and_bad_tier_is_typed() {
        let ok = br#"{"experiment":"x","seed":1,"tenant":"t","class":"bulk","deadline_ms":0}"#;
        let req = RunRequest::from_payload(ok).expect("pre-tier payload decodes");
        assert_eq!(req.tier, TierPolicy::None);
        let bad =
            br#"{"experiment":"x","seed":1,"tenant":"t","class":"bulk","deadline_ms":0,"tier":"warp"}"#;
        assert!(RunRequest::from_payload(bad).is_err());
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Run(run_req()),
            Request::Stats,
            Request::Shutdown,
            Request::Ping,
        ] {
            let frame = req.to_frame();
            assert_eq!(Request::from_frame(&frame).expect("decodes"), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let mut stats = Json::obj();
        stats.set("queue_depth", Json::UInt(3));
        for rsp in [
            Response::Result(RunResult {
                key_hex: "00c0ffee00c0ffee".into(),
                cached: true,
                deduped: false,
                csv: "fig1,1,2,3".into(),
                report: r#"{"name":"fig1"}"#.into(),
            }),
            Response::Reject(Reject {
                reason: RejectReason::QuotaExhausted,
                retry_after_ms: 250,
            }),
            Response::Error(ServerError::new(
                ServerErrorKind::WorkerFailed,
                "job exceeded its 100 ms deadline",
            )),
            Response::Stats(stats),
            Response::Ok,
        ] {
            let frame = rsp.to_frame();
            assert_eq!(Response::from_frame(&frame).expect("decodes"), rsp);
        }
    }

    #[test]
    fn direction_confusion_is_a_typed_error() {
        let frame = Request::Ping.to_frame();
        assert!(Response::from_frame(&frame).is_err());
        let frame = Response::Ok.to_frame();
        assert!(Request::from_frame(&frame).is_err());
    }

    #[test]
    fn malformed_payloads_never_panic() {
        for garbage in [
            &b"not json"[..],
            b"{}",
            b"{\"experiment\":7}",
            b"\xff\xfe",
            br#"{"experiment":"x","seed":1,"tenant":"t","class":"warp","deadline_ms":0}"#,
        ] {
            let frame = Frame::new(crate::wire::Kind::Run, garbage.to_vec());
            assert!(Request::from_frame(&frame).is_err(), "{garbage:?}");
        }
    }

    #[test]
    fn identical_messages_encode_identically() {
        assert_eq!(
            Request::Run(run_req()).to_frame().encode(),
            Request::Run(run_req()).to_frame().encode()
        );
    }
}
