//! Tenant → capability-domain mapping: kernel-style enforced isolation
//! for the experiment server.
//!
//! Admission control (see [`crate::admission`]) is *policy*: token
//! buckets and queue high-watermarks decide who should get in. This
//! module is *mechanism*: every tenant maps onto its own capability
//! domain in a [`CapEngine`] — the same typed, generation-tagged engine
//! that guards shadow descriptors in the OS model — and every in-flight
//! request holds a **lease capability** granted in that domain. The
//! per-tenant concurrency cap is therefore enforced by the capability
//! table itself (a slot either holds a live generation or it does not),
//! not by a counter that could drift under retries or crashes, and a
//! finished request's lease dies through the same revocation path the
//! kernel uses, so a stale lease handle can never be double-released
//! into another tenant's budget.

use std::collections::HashMap;

use impulse_caps::{CapEngine, CapId, DomainId, Resource};

use crate::proto::{Reject, RejectReason};

/// Counters exported through the server's stats document.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DomainStats {
    /// Tenant domains created (one per distinct tenant seen).
    pub domains: u64,
    /// Lease capabilities granted.
    pub leases_granted: u64,
    /// Lease capabilities revoked on request completion.
    pub leases_revoked: u64,
    /// Lease requests rejected because the tenant was at its cap.
    pub rejected_leases: u64,
    /// Releases that arrived with a stale or foreign capability (a
    /// drifted client, or a lease already torn down).
    pub stale_releases: u64,
}

/// The tenant → capability-domain registry. All methods are cheap; the
/// server keeps one instance behind a mutex.
#[derive(Clone, Debug)]
pub struct TenantDomains {
    engine: CapEngine,
    domains: HashMap<String, DomainId>,
    /// Maximum live lease capabilities per tenant domain.
    max_leases: usize,
    /// Monotonic ordinal making every lease resource distinct (leases
    /// must never coalesce — each is individually revocable).
    next_lease: u64,
    stats: DomainStats,
}

impl TenantDomains {
    /// Builds a registry enforcing `max_leases` concurrent in-flight
    /// requests per tenant.
    pub fn new(max_leases: usize) -> Self {
        Self {
            engine: CapEngine::new(),
            domains: HashMap::new(),
            max_leases: max_leases.max(1),
            next_lease: 0,
            stats: DomainStats::default(),
        }
    }

    /// The tenant's capability domain, created on first sight.
    pub fn domain_of(&mut self, tenant: &str) -> DomainId {
        if let Some(&d) = self.domains.get(tenant) {
            return d;
        }
        let d = self.engine.create_domain();
        self.stats.domains += 1;
        self.domains.insert(tenant.to_string(), d);
        d
    }

    /// Grants a lease capability for one in-flight request.
    ///
    /// # Errors
    ///
    /// A typed [`Reject`] with [`RejectReason::QuotaExhausted`] once the
    /// tenant's domain already holds `max_leases` live capabilities.
    pub fn lease(&mut self, tenant: &str) -> Result<CapId, Reject> {
        let domain = self.domain_of(tenant);
        if self.engine.live_in_domain(domain) >= self.max_leases {
            self.stats.rejected_leases += 1;
            return Err(Reject {
                reason: RejectReason::QuotaExhausted,
                retry_after_ms: 100,
            });
        }
        let start = self.next_lease;
        self.next_lease += 1;
        match self
            .engine
            .grant(domain, Resource::Region { start, len: 1 })
        {
            Ok(cap) => {
                self.stats.leases_granted += 1;
                Ok(cap)
            }
            Err(_) => {
                // Table exhaustion is indistinguishable from quota
                // pressure from the client's point of view.
                self.stats.rejected_leases += 1;
                Err(Reject {
                    reason: RejectReason::QuotaExhausted,
                    retry_after_ms: 1000,
                })
            }
        }
    }

    /// Revokes a lease on request completion. Returns `false` (and
    /// counts a stale release) if the capability is stale, foreign to
    /// the tenant's domain, or the tenant was never seen — a drifted
    /// handle must never free another request's budget.
    pub fn release(&mut self, tenant: &str, cap: CapId) -> bool {
        let Some(&domain) = self.domains.get(tenant) else {
            self.stats.stale_releases += 1;
            return false;
        };
        match self.engine.revoke(cap, Some(domain)) {
            Ok(_) => {
                self.stats.leases_revoked += 1;
                true
            }
            Err(_) => {
                self.stats.stale_releases += 1;
                false
            }
        }
    }

    /// Live leases the tenant currently holds (0 for unknown tenants).
    pub fn live(&self, tenant: &str) -> usize {
        self.domains
            .get(tenant)
            .map_or(0, |&d| self.engine.live_in_domain(d))
    }

    /// Live leases across every tenant.
    pub fn live_total(&self) -> usize {
        self.engine.live()
    }

    /// Counters snapshot.
    pub fn stats(&self) -> DomainStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_are_capped_per_tenant() {
        let mut d = TenantDomains::new(2);
        let a = d.lease("a").expect("first");
        let _b = d.lease("a").expect("second");
        let rej = d.lease("a").expect_err("at cap");
        assert_eq!(rej.reason, RejectReason::QuotaExhausted);
        // Another tenant is unaffected: isolation is per-domain.
        assert!(d.lease("b").is_ok());
        // Releasing frees exactly one slot.
        assert!(d.release("a", a));
        assert!(d.lease("a").is_ok());
        assert_eq!(d.live("a"), 2);
        assert_eq!(d.live("b"), 1);
        assert_eq!(d.live_total(), 3);
    }

    #[test]
    fn stale_and_foreign_releases_never_free_budget() {
        let mut d = TenantDomains::new(1);
        let a = d.lease("a").expect("lease");
        assert!(d.release("a", a));
        // Double release: the generation is stale.
        assert!(!d.release("a", a));
        // A fresh lease reuses the slot under a new generation; the old
        // handle still cannot touch it.
        let a2 = d.lease("a").expect("re-lease");
        assert!(!d.release("a", a));
        // Cross-tenant release: wrong domain.
        d.lease("b").expect("lease b");
        assert!(!d.release("b", a2));
        assert_eq!(d.live("a"), 1);
        let s = d.stats();
        assert_eq!(s.leases_granted, 3);
        assert_eq!(s.leases_revoked, 1);
        assert_eq!(s.stale_releases, 3);
    }

    #[test]
    fn unknown_tenant_release_is_counted() {
        let mut d = TenantDomains::new(4);
        let a = d.lease("a").expect("lease");
        assert!(!d.release("never-seen", a));
        assert_eq!(d.stats().stale_releases, 1);
        assert_eq!(d.live("a"), 1);
    }
}
