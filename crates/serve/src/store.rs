//! The `impulse-result-v1` store: a crash-consistent, append-only
//! result journal with an in-memory index.
//!
//! Each record is
//!
//! ```text
//! len:  LEB128 varint   body length in bytes
//! body: len bytes       varint(config) varint(seed)
//!                       varint(csv.len)    csv bytes
//!                       varint(report.len) report bytes
//! sum:  u64 le          FNV-64 over body
//! ```
//!
//! **Publication contract:** [`ResultStore::publish`] appends the
//! record, fsyncs the file, and only then inserts into the in-memory
//! index. The caller notifies waiters only after `publish` returns, so
//! a result a client has seen is always durable — killing the daemon
//! at any instant leaves either a fully-recoverable record or a torn
//! tail that [`ResultStore::open`] silently truncates. There is no
//! window where a client holds a result the restarted server has
//! forgotten, and no byte position where recovery can misread a torn
//! record as a different valid one (the checksum trailer sees to
//! that).

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use impulse_types::snap::fnv64;
use impulse_types::varint;
use impulse_types::ExperimentKey;

/// One cached experiment result: exactly the bytes the batch runner
/// would have produced for the same (config, seed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoredResult {
    /// CSV row.
    pub csv: String,
    /// Compact JSON report text.
    pub report: String,
}

/// What [`ResultStore::open`] found on disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Recovery {
    /// Intact records loaded into the index.
    pub records: usize,
    /// Torn-tail bytes truncated away.
    pub dropped_bytes: u64,
}

impl fmt::Display for Recovery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} record(s) recovered, {} torn byte(s) dropped",
            self.records, self.dropped_bytes
        )
    }
}

/// The journal-backed result cache. See the module docs for the
/// durability contract.
#[derive(Debug)]
pub struct ResultStore {
    path: PathBuf,
    file: File,
    index: HashMap<ExperimentKey, StoredResult>,
}

fn encode_record(key: ExperimentKey, result: &StoredResult) -> Vec<u8> {
    let mut body = Vec::with_capacity(32 + result.csv.len() + result.report.len());
    varint::put(&mut body, key.config);
    varint::put(&mut body, key.seed);
    varint::put(&mut body, result.csv.len() as u64);
    body.extend_from_slice(result.csv.as_bytes());
    varint::put(&mut body, result.report.len() as u64);
    body.extend_from_slice(result.report.as_bytes());
    let mut record = Vec::with_capacity(body.len() + 18);
    varint::put(&mut record, body.len() as u64);
    record.extend_from_slice(&body);
    record.extend_from_slice(&fnv64(&body).to_le_bytes());
    record
}

/// Decodes one record starting at `pos`; advances `pos` past it on
/// success. `None` means the bytes from `pos` on are not one intact
/// record — a torn tail.
fn decode_record(bytes: &[u8], pos: &mut usize) -> Option<(ExperimentKey, StoredResult)> {
    let mut p = *pos;
    let body_len = varint::get(bytes, &mut p).ok()? as usize;
    let body = bytes.get(p..p.checked_add(body_len)?)?;
    p += body_len;
    let sum_bytes: [u8; 8] = bytes.get(p..p + 8)?.try_into().ok()?;
    p += 8;
    if fnv64(body) != u64::from_le_bytes(sum_bytes) {
        return None;
    }
    let mut b = 0usize;
    let config = varint::get(body, &mut b).ok()?;
    let seed = varint::get(body, &mut b).ok()?;
    let csv = take_string(body, &mut b)?;
    let report = take_string(body, &mut b)?;
    if b != body.len() {
        return None; // trailing garbage inside a checksummed body
    }
    *pos = p;
    Some((
        ExperimentKey::new(config, seed),
        StoredResult { csv, report },
    ))
}

fn take_string(body: &[u8], pos: &mut usize) -> Option<String> {
    let len = varint::get(body, pos).ok()? as usize;
    let bytes = body.get(*pos..pos.checked_add(len)?)?;
    *pos += len;
    let s = std::str::from_utf8(bytes).ok()?;
    Some(s.to_string())
}

impl ResultStore {
    /// Opens (creating if absent) the journal at `path`, replays every
    /// intact record into the index, and truncates any torn tail so
    /// the next append starts at a clean record boundary.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; torn tails are *not* errors.
    pub fn open(path: &Path) -> io::Result<(Self, Recovery)> {
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut index = HashMap::new();
        let mut pos = 0usize;
        let mut records = 0usize;
        while pos < bytes.len() {
            match decode_record(&bytes, &mut pos) {
                Some((key, result)) => {
                    index.insert(key, result);
                    records += 1;
                }
                None => break,
            }
        }
        let dropped = (bytes.len() - pos) as u64;
        if dropped > 0 {
            file.set_len(pos as u64)?;
            file.sync_data()?;
        }
        Ok((
            Self {
                path: path.to_path_buf(),
                file,
                index,
            },
            Recovery {
                records,
                dropped_bytes: dropped,
            },
        ))
    }

    /// Journal path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Cached results count.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no results are cached.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Looks up a cached result.
    pub fn get(&self, key: ExperimentKey) -> Option<&StoredResult> {
        self.index.get(&key)
    }

    /// Durably publishes one result: append, fsync, *then* index. When
    /// this returns `Ok`, the record survives any crash.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on error the index is untouched (the
    /// partial append becomes a torn tail for the next `open`).
    pub fn publish(&mut self, key: ExperimentKey, result: StoredResult) -> io::Result<()> {
        let record = encode_record(key, &result);
        self.file.write_all(&record)?;
        self.file.sync_data()?;
        self.index.insert(key, result);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("impulse-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        dir.join("results.bin")
    }

    fn sample(i: u64) -> (ExperimentKey, StoredResult) {
        (
            ExperimentKey::new(0x1000 + i, 7),
            StoredResult {
                csv: format!("row-{i},1,2,3"),
                report: format!("{{\"name\":\"exp-{i}\"}}"),
            },
        )
    }

    #[test]
    fn publish_then_reopen_round_trips() {
        let path = tmp("roundtrip");
        let (mut store, rec) = ResultStore::open(&path).expect("open");
        assert_eq!(rec, Recovery::default());
        for i in 0..5 {
            let (k, r) = sample(i);
            store.publish(k, r).expect("publish");
        }
        drop(store);
        let (store, rec) = ResultStore::open(&path).expect("reopen");
        assert_eq!(rec.records, 5);
        assert_eq!(rec.dropped_bytes, 0);
        for i in 0..5 {
            let (k, r) = sample(i);
            assert_eq!(store.get(k), Some(&r));
        }
    }

    #[test]
    fn duplicate_keys_keep_the_latest_record() {
        let path = tmp("dup");
        let (mut store, _) = ResultStore::open(&path).expect("open");
        let (k, r0) = sample(0);
        store.publish(k, r0).expect("publish");
        let r1 = StoredResult {
            csv: "newer".into(),
            report: "{}".into(),
        };
        store.publish(k, r1.clone()).expect("publish");
        drop(store);
        let (store, rec) = ResultStore::open(&path).expect("reopen");
        assert_eq!(rec.records, 2);
        assert_eq!(store.get(k), Some(&r1));
    }

    #[test]
    fn torn_tail_at_every_byte_offset_recovers_the_prefix() {
        // Build a journal of three records, then simulate a crash at
        // every possible mid-write position of the third: recovery must
        // keep exactly the first two, truncate the rest, and leave the
        // file appendable.
        let path = tmp("torn");
        let (mut store, _) = ResultStore::open(&path).expect("open");
        for i in 0..3 {
            let (k, r) = sample(i);
            store.publish(k, r).expect("publish");
        }
        drop(store);
        let full = fs::read(&path).expect("read");
        let (k2, _) = sample(2);
        let mut two = Vec::new();
        {
            let mut pos = 0;
            decode_record(&full, &mut pos).expect("rec0");
            decode_record(&full, &mut pos).expect("rec1");
            two.extend_from_slice(&full[..pos]);
        }
        for cut in two.len()..full.len() {
            fs::write(&path, &full[..cut]).expect("write torn");
            let (mut store, rec) = ResultStore::open(&path).expect("open torn");
            assert_eq!(rec.records, 2, "cut at {cut}");
            assert_eq!(rec.dropped_bytes, (cut - two.len()) as u64, "cut at {cut}");
            assert!(store.get(k2).is_none(), "cut at {cut}");
            // The truncated journal accepts new appends cleanly.
            let (k, r) = sample(99);
            store.publish(k, r.clone()).expect("append after recovery");
            drop(store);
            let (store, rec) = ResultStore::open(&path).expect("reopen");
            assert_eq!(rec.records, 3, "cut at {cut}");
            assert_eq!(rec.dropped_bytes, 0, "cut at {cut}");
            assert_eq!(store.get(k), Some(&r), "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_in_the_tail_record_are_dropped_not_misread() {
        let path = tmp("flip");
        let (mut store, _) = ResultStore::open(&path).expect("open");
        for i in 0..2 {
            let (k, r) = sample(i);
            store.publish(k, r).expect("publish");
        }
        drop(store);
        let full = fs::read(&path).expect("read");
        let mut one_end = 0;
        decode_record(&full, &mut one_end).expect("rec0");
        let (k1, r1) = sample(1);
        for bit in (one_end * 8)..(full.len() * 8) {
            let mut corrupt = full.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            fs::write(&path, &corrupt).expect("write");
            let (store, _) = ResultStore::open(&path).expect("open");
            // The flipped record either vanished or (for flips the
            // varint framing tolerates nowhere) never equals a
            // *different* valid result for the same key.
            if let Some(got) = store.get(k1) {
                assert_eq!(got, &r1, "bit {bit} misread a corrupt record");
            }
            let (k0, r0) = sample(0);
            assert_eq!(store.get(k0), Some(&r0), "bit {bit} lost the intact prefix");
        }
    }
}
