//! Simulation-as-a-service for the Impulse reproduction: a persistent
//! experiment daemon with admission control, deadlines, and a
//! chaos-hardened request lifecycle.
//!
//! A batch sweep (`run_all`) re-executes every experiment on every
//! invocation; this crate turns the experiment catalog into a
//! long-lived service so repeated requests for the same (config, seed)
//! cost one execution, ever:
//!
//! - [`wire`] — the `impulse-wire-v1` frame codec: length-prefixed,
//!   FNV-64-checksummed frames where every corruption is a typed error.
//! - [`proto`] — typed request/response messages over those frames.
//! - [`admission`] — per-tenant token quotas, per-class queue caps, and
//!   a Heracles-style controller that lets bulk work soak up idle
//!   capacity without hurting interactive latency.
//! - [`domains`] — tenants mapped onto capability domains of the same
//!   generation-tagged engine that guards shadow descriptors; every
//!   in-flight request holds a revocable lease capability, so the
//!   per-tenant concurrency cap is enforced by the capability table.
//! - [`store`] — the crash-consistent result journal: a result becomes
//!   visible only after its record is fsync'd, and a torn tail from a
//!   mid-write kill is truncated on reopen, never misread.
//! - [`server`] / [`client`] (Unix only) — the daemon's accept loop,
//!   supervised worker pool with watchdog-abandoned attempts, in-flight
//!   request coalescing; and the client's bounded retry loop with
//!   deterministic jittered backoff.
//!
//! Identity everywhere is [`impulse_types::ExperimentKey`]: the same
//! digest names a result in the journal, the cache, and the client —
//! which is what makes "byte-identical to the batch runner" checkable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod domains;
pub mod proto;
pub mod store;
pub mod wire;

#[cfg(unix)]
pub mod client;
#[cfg(unix)]
pub mod server;

pub use admission::{Admission, AdmissionConfig, AdmissionStats};
pub use domains::{DomainStats, TenantDomains};
pub use proto::{
    Class, Reject, RejectReason, Request, Response, RunRequest, RunResult, ServerError,
    ServerErrorKind,
};
pub use store::{Recovery, ResultStore, StoredResult};

#[cfg(unix)]
pub use client::{Client, ClientError, RetryPolicy};
#[cfg(unix)]
pub use server::{Backend, Server, ServerConfig};
