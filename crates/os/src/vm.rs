//! A process address space: virtual page table and region bookkeeping.

use impulse_types::geom::{round_up, PAGE_SHIFT, PAGE_SIZE};
use impulse_types::snap::{SnapError, SnapReader, SnapWriter};
use impulse_types::{FxHashMap, PAddr, VAddr, VRange};

/// Snapshot section tag for [`AddressSpace`] (`"ASPC"`).
const TAG_ASPC: u32 = 0x4153_5043;

/// Errors from address-space operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// The virtual page is not mapped.
    NotMapped(u64),
    /// The virtual page is already mapped.
    AlreadyMapped(u64),
}

impl core::fmt::Display for VmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VmError::NotMapped(p) => write!(f, "virtual page {p:#x} is not mapped"),
            VmError::AlreadyMapped(p) => write!(f, "virtual page {p:#x} is already mapped"),
        }
    }
}

impl std::error::Error for VmError {}

/// A single process's virtual address space.
///
/// Page-grained mapping from virtual pages to bus addresses (real physical
/// pages or shadow pages — the MMU does not distinguish). Virtual regions
/// are carved from a bump allocator with guard gaps.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    pages: FxHashMap<u64, PAddr>,
    next_va: u64,
}

impl Default for AddressSpace {
    /// Same as [`AddressSpace::new`]: the null page is never handed out.
    fn default() -> Self {
        Self::new()
    }
}

/// Lowest virtual address handed out.
const VA_BASE: u64 = 0x0001_0000;
/// Guard gap between regions, to catch stray pointer arithmetic.
const GUARD: u64 = PAGE_SIZE;

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self {
            pages: FxHashMap::default(),
            next_va: VA_BASE,
        }
    }

    /// Reserves a virtual range of `bytes`, aligned to `align` (a power of
    /// two, at least the page size). No pages are mapped yet.
    pub fn reserve(&mut self, bytes: u64, align: u64) -> VRange {
        self.reserve_phased(bytes, align, 0)
    }

    /// Reserves a virtual range whose start is congruent to `phase`
    /// modulo `align` — the "appropriate alignment and offset
    /// characteristics" the Impulse paper's remap protocol lets
    /// applications request so that a new alias does not conflict with an
    /// existing stream in a virtually-indexed cache.
    ///
    /// `align` must be a power of two and `phase` a page-aligned offset
    /// below it; the kernel syscall layer validates user-supplied values
    /// and returns typed errors, so this is an internal invariant
    /// (debug-checked).
    pub fn reserve_phased(&mut self, bytes: u64, align: u64, phase: u64) -> VRange {
        let align = align.max(PAGE_SIZE);
        debug_assert!(align.is_power_of_two(), "alignment must be a power of two");
        debug_assert!(
            phase < align && phase.is_multiple_of(PAGE_SIZE),
            "phase must be a page-aligned offset below the alignment"
        );
        let base = round_up(self.next_va, align);
        let start = if base + phase >= self.next_va {
            base + phase
        } else {
            base + align + phase
        };
        let len = round_up(bytes.max(1), PAGE_SIZE);
        self.next_va = start + len + GUARD;
        VRange::new(VAddr::new(start), len)
    }

    /// Maps one virtual page to a bus page.
    ///
    /// # Errors
    ///
    /// Fails if the virtual page is already mapped.
    ///
    /// Both addresses must be page-aligned — the kernel only produces
    /// aligned pages, so this is an internal invariant (debug-checked).
    pub fn map_page(&mut self, v: VAddr, p: PAddr) -> Result<(), VmError> {
        debug_assert!(
            v.is_aligned(PAGE_SIZE),
            "virtual page must be aligned: {v:?}"
        );
        debug_assert!(p.is_aligned(PAGE_SIZE), "bus page must be aligned: {p:?}");
        let vpage = v.raw() >> PAGE_SHIFT;
        if self.pages.contains_key(&vpage) {
            return Err(VmError::AlreadyMapped(vpage));
        }
        self.pages.insert(vpage, p);
        Ok(())
    }

    /// Replaces the mapping of one virtual page (used when remapping an
    /// existing alias, e.g. re-pointing a tile alias at the next tile).
    ///
    /// # Errors
    ///
    /// Fails if the page was not previously mapped.
    pub fn remap_page(&mut self, v: VAddr, p: PAddr) -> Result<PAddr, VmError> {
        let vpage = v.raw() >> PAGE_SHIFT;
        match self.pages.insert(vpage, p) {
            Some(old) => Ok(old),
            None => {
                self.pages.remove(&vpage);
                Err(VmError::NotMapped(vpage))
            }
        }
    }

    /// Removes the mapping of one virtual page, returning what it mapped
    /// to.
    ///
    /// # Errors
    ///
    /// Fails if the page was not mapped.
    pub fn unmap_page(&mut self, v: VAddr) -> Result<PAddr, VmError> {
        let vpage = v.raw() >> PAGE_SHIFT;
        self.pages.remove(&vpage).ok_or(VmError::NotMapped(vpage))
    }

    /// Translates a virtual address to a bus address.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NotMapped`] for an unmapped address — what a
    /// real MMU reports as a page fault. Callers modeling a CPU access
    /// with no handler installed treat it as a segfault.
    #[inline]
    pub fn translate(&self, v: VAddr) -> Result<PAddr, VmError> {
        let vpage = v.raw() >> PAGE_SHIFT;
        self.pages
            .get(&vpage)
            .map(|base| base.add(v.page_offset()))
            .ok_or(VmError::NotMapped(vpage))
    }

    /// Translates, returning `None` for an unmapped address.
    #[inline]
    pub fn try_translate(&self, v: VAddr) -> Option<PAddr> {
        let vpage = v.raw() >> PAGE_SHIFT;
        self.pages.get(&vpage).map(|base| base.add(v.page_offset()))
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Serializes the page table (in sorted page order, so the image is
    /// independent of hash-map iteration order) and the bump pointer.
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_ASPC);
        let mut pages: Vec<(u64, u64)> = self.pages.iter().map(|(&v, p)| (v, p.raw())).collect();
        pages.sort_unstable();
        w.usize(pages.len());
        for (v, p) in pages {
            w.u64(v);
            w.u64(p);
        }
        w.u64(self.next_va);
    }

    /// Restores the state saved by [`AddressSpace::snap_save`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] if the image is malformed.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_ASPC)?;
        let n = r.usize()?;
        self.pages = FxHashMap::default();
        self.pages.reserve(n);
        for _ in 0..n {
            let v = r.u64()?;
            let p = r.u64()?;
            self.pages.insert(v, PAddr::new(p));
        }
        self.next_va = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_is_page_aligned_and_disjoint() {
        let mut a = AddressSpace::new();
        let r1 = a.reserve(100, 1);
        let r2 = a.reserve(5000, 1);
        assert!(r1.start().is_aligned(PAGE_SIZE));
        assert_eq!(r1.len(), PAGE_SIZE);
        assert_eq!(r2.len(), 2 * PAGE_SIZE);
        assert!(!r1.overlaps(&r2));
        assert!(r2.start().raw() >= r1.end().raw() + GUARD);
    }

    #[test]
    fn reserve_honors_alignment() {
        let mut a = AddressSpace::new();
        let r = a.reserve(10, 1 << 16);
        assert!(r.start().is_aligned(1 << 16));
    }

    #[test]
    fn map_translate_roundtrip() {
        let mut a = AddressSpace::new();
        a.map_page(VAddr::new(0x10000), PAddr::new(0x80_0000))
            .unwrap();
        assert_eq!(a.translate(VAddr::new(0x10abc)), Ok(PAddr::new(0x80_0abc)));
        assert_eq!(a.try_translate(VAddr::new(0x20000)), None);
    }

    #[test]
    fn double_map_rejected() {
        let mut a = AddressSpace::new();
        a.map_page(VAddr::new(0x10000), PAddr::new(0)).unwrap();
        assert_eq!(
            a.map_page(VAddr::new(0x10000), PAddr::new(PAGE_SIZE)),
            Err(VmError::AlreadyMapped(0x10))
        );
    }

    #[test]
    fn remap_returns_old_target() {
        let mut a = AddressSpace::new();
        a.map_page(VAddr::new(0x10000), PAddr::new(0)).unwrap();
        let old = a
            .remap_page(VAddr::new(0x10000), PAddr::new(PAGE_SIZE))
            .unwrap();
        assert_eq!(old, PAddr::new(0));
        assert_eq!(a.translate(VAddr::new(0x10000)), Ok(PAddr::new(PAGE_SIZE)));
        assert!(a.remap_page(VAddr::new(0x20000), PAddr::new(0)).is_err());
    }

    #[test]
    fn unmap_removes() {
        let mut a = AddressSpace::new();
        a.map_page(VAddr::new(0x10000), PAddr::new(0)).unwrap();
        assert_eq!(a.unmap_page(VAddr::new(0x10000)), Ok(PAddr::new(0)));
        assert_eq!(a.mapped_pages(), 0);
        assert!(a.unmap_page(VAddr::new(0x10000)).is_err());
    }

    #[test]
    fn translate_unmapped_is_a_typed_error() {
        assert_eq!(
            AddressSpace::new().translate(VAddr::new(0x1234)),
            Err(VmError::NotMapped(0x1))
        );
    }

    #[test]
    fn default_never_hands_out_the_null_page() {
        let mut a = AddressSpace::default();
        let r = a.reserve(8, 1);
        assert!(r.start().raw() >= VA_BASE, "null page must stay unmapped");
    }

    #[test]
    fn reserve_phased_lands_on_requested_offset() {
        let mut a = AddressSpace::new();
        let r = a.reserve_phased(PAGE_SIZE, 32 * 1024, 16 * 1024);
        assert_eq!(r.start().raw() % (32 * 1024), 16 * 1024);
        // A second phased reservation still respects ordering.
        let r2 = a.reserve_phased(PAGE_SIZE, 32 * 1024, 4096);
        assert_eq!(r2.start().raw() % (32 * 1024), 4096);
        assert!(r2.start().raw() > r.end().raw());
    }
}
