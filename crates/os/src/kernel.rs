//! The OS model: region allocation and the Impulse remapping system calls.
//!
//! Section 2.1 of the paper describes the remapping protocol. For the
//! diagonal example the OS (1) accepts an application request for a new
//! virtual alias, (2) allocates shadow addresses from the pool of physical
//! addresses not backed by DRAM, (3) downloads the shadow→pseudo-virtual
//! mapping function to the controller, (4) downloads page mappings for the
//! pseudo-virtual space, and (5) maps the virtual alias onto the shadow
//! region and flushes the original data from the caches.
//!
//! [`Kernel`] implements steps 1–5 as resource management; the *timing* of
//! the system calls (trap overhead, per-page download cost, cache-flush
//! cost) is charged by the system model in `impulse-sim`, which is also
//! responsible for performing the flushes against its caches. Shadow
//! addresses and virtual addresses are both system resources managed here,
//! preserving inter-process protection exactly as the paper requires.

use std::sync::Arc;

use impulse_caps::{CapEngine, CapError, CapId, DomainId, Resource, RevokedCap};
use impulse_core::flight::TraceError;
use impulse_core::{DescId, McError, MemController, RemapFn};
use impulse_fault::CapsInjector;
use impulse_types::geom::{round_up, PAGE_SHIFT, PAGE_SIZE};
use impulse_types::snap::{SnapError, SnapReader, SnapWriter};
use impulse_types::{Cycle, MAddr, PAddr, PRange, PvAddr, VAddr, VRange};

/// Snapshot section tag for [`Kernel`] (`"KERN"`).
const TAG_KERN: u32 = 0x4B45_524E;

use crate::phys::{AllocPolicy, PhysError, PhysMem};
use crate::vm::{AddressSpace, VmError};

/// A process identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(u32);

impl Pid {
    /// The boot process.
    pub const INIT: Pid = Pid(0);

    /// Raw id.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl core::fmt::Display for Pid {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// The typed error hierarchy every fallible Impulse operation surfaces.
///
/// Syscall-level misuse (overlapping shadow ranges, zero or overflowing
/// strides, out-of-bounds indirection vectors, shadow-space exhaustion)
/// comes back as a value of this type instead of aborting the simulated
/// machine; callers degrade gracefully (e.g. fall back to non-remapped
/// access) and account for the failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImpulseError {
    /// Physical frame allocation failed.
    Phys(PhysError),
    /// Virtual memory operation failed.
    Vm(VmError),
    /// The memory controller rejected a descriptor operation.
    Mc(McError),
    /// A request violated an alignment requirement.
    BadAlignment(&'static str),
    /// A syscall argument is malformed (zero stride, overflowing span,
    /// empty vector, …).
    InvalidArg(&'static str),
    /// An indirection-vector entry points past the end of the gather
    /// target.
    IndexOutOfBounds {
        /// The offending index value.
        index: u64,
        /// Number of elements the target actually holds.
        limit: u64,
    },
    /// The shadow address space is exhausted (the configured
    /// [`KernelConfig::shadow_span`] is fully allocated).
    ShadowExhausted {
        /// Bytes the request needed.
        requested: u64,
        /// Bytes still unallocated.
        available: u64,
    },
    /// The remap target contains shadow pages already (double remap).
    TargetNotPhysical(VAddr),
    /// The calling process does not own the resource (inter-process
    /// protection: shadow regions and descriptors are per-process).
    NotOwner(Pid),
    /// The process id does not exist.
    NoSuchProcess(Pid),
    /// A recorded trace or replay capture could not be decoded.
    Trace(TraceError),
    /// The capability behind the access or operation has been revoked —
    /// the handle's generation is stale. Raised both for syscalls on a
    /// revoked grant and for demand accesses to an alias torn down by a
    /// transitive revocation (no stale data is ever served).
    RevokedCapability {
        /// Capability table slot.
        slot: u32,
        /// Generation the stale handle (or torn-down mapping) carried.
        stale: u32,
        /// The slot's current generation.
        current: u32,
    },
    /// A capability table entry failed its integrity check and the
    /// mirrored copy could not repair it; the entry was quarantined.
    CapTableCorrupt {
        /// The quarantined capability slot.
        slot: u32,
    },
}

/// Historical name for [`ImpulseError`], kept so existing call sites and
/// signatures keep compiling; variants resolve through the alias.
pub type OsError = ImpulseError;

impl core::fmt::Display for ImpulseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OsError::Phys(e) => write!(f, "physical allocation failed: {e}"),
            OsError::Vm(e) => write!(f, "virtual memory error: {e}"),
            OsError::Mc(e) => write!(f, "memory controller error: {e}"),
            OsError::BadAlignment(what) => write!(f, "bad alignment: {what}"),
            OsError::InvalidArg(what) => write!(f, "invalid argument: {what}"),
            OsError::IndexOutOfBounds { index, limit } => write!(
                f,
                "indirection index {index} is out of bounds for a {limit}-element target"
            ),
            OsError::ShadowExhausted {
                requested,
                available,
            } => write!(
                f,
                "shadow address space exhausted: {requested} bytes requested, {available} available"
            ),
            OsError::TargetNotPhysical(v) => {
                write!(f, "remap target {v:?} is not backed by physical memory")
            }
            OsError::NotOwner(p) => {
                write!(f, "resource is owned by another process ({p})")
            }
            OsError::NoSuchProcess(p) => write!(f, "no such process: {p}"),
            OsError::Trace(e) => write!(f, "trace capture error: {e}"),
            OsError::RevokedCapability {
                slot,
                stale,
                current,
            } => write!(
                f,
                "capability slot {slot} has been revoked: generation {stale} is stale (current {current})"
            ),
            OsError::CapTableCorrupt { slot } => write!(
                f,
                "capability table entry {slot} failed its integrity check and could not be recovered"
            ),
        }
    }
}

impl std::error::Error for ImpulseError {}

impl From<PhysError> for ImpulseError {
    fn from(e: PhysError) -> Self {
        OsError::Phys(e)
    }
}
impl From<VmError> for ImpulseError {
    fn from(e: VmError) -> Self {
        OsError::Vm(e)
    }
}
impl From<McError> for ImpulseError {
    fn from(e: McError) -> Self {
        OsError::Mc(e)
    }
}
impl From<TraceError> for ImpulseError {
    fn from(e: TraceError) -> Self {
        OsError::Trace(e)
    }
}
impl From<CapError> for ImpulseError {
    fn from(e: CapError) -> Self {
        match e {
            CapError::Revoked {
                slot,
                stale,
                current,
            } => OsError::RevokedCapability {
                slot,
                stale,
                current,
            },
            CapError::NotOwner { owner } => OsError::NotOwner(Pid(owner)),
            CapError::NoSuchDomain(d) => OsError::NoSuchProcess(Pid(d)),
            CapError::BadSlot(_) => OsError::InvalidArg("capability slot was never allocated"),
            CapError::Corrupt { slot } => OsError::CapTableCorrupt { slot },
        }
    }
}

/// Cost model for kernel entry and remap setup, in CPU cycles. Charged by
/// the system model around each system call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyscallCosts {
    /// Fixed trap + kernel entry/exit cost.
    pub t_trap: Cycle,
    /// Cost per page mapping downloaded to the controller or installed in
    /// the MMU.
    pub t_per_page: Cycle,
    /// Cost per cache line flushed or purged during remap consistency
    /// actions.
    pub t_per_flush_line: Cycle,
}

impl Default for SyscallCosts {
    fn default() -> Self {
        Self {
            t_trap: 500,
            t_per_page: 20,
            t_per_flush_line: 4,
        }
    }
}

/// Kernel configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelConfig {
    /// Installed DRAM capacity in bytes (must match the controller's DRAM).
    pub dram_capacity: u64,
    /// Bytes reserved at the top of DRAM for the controller page table.
    pub reserved_top: u64,
    /// Frame placement policy for ordinary allocations.
    pub policy: AllocPolicy,
    /// Number of page colors in the physically-indexed L2
    /// (`l2_size / ways / page_size`; 32 for the Paint L2).
    pub l2_colors: u64,
    /// Bytes of shadow address space above DRAM the kernel may hand out
    /// (the paper's shadow space is the unused physical address range,
    /// which is vast but finite). Exhaustion surfaces as
    /// [`ImpulseError::ShadowExhausted`].
    pub shadow_span: u64,
    /// System call cost model.
    pub costs: SyscallCosts,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self {
            dram_capacity: 1 << 30,
            reserved_top: 1 << 20,
            policy: AllocPolicy::Sequential,
            l2_colors: 32,
            shadow_span: 1 << 36,
            costs: SyscallCosts::default(),
        }
    }
}

/// What a remapping system call granted: the new virtual alias, the shadow
/// region behind it, the descriptor serving it, and the setup volume (for
/// cost accounting).
#[derive(Clone, Debug)]
pub struct RemapGrant {
    /// The virtual alias the application should use.
    pub alias: VRange,
    /// The shadow region the alias maps to.
    pub shadow: PRange,
    /// The controller descriptor serving the region.
    pub desc: DescId,
    /// Remap flavour ("gather", "strided", "direct").
    pub kind: &'static str,
    /// Page mappings installed (MMU + controller) during setup.
    pub pages_installed: u64,
    /// The generation-tagged capability protecting the grant. Every
    /// later operation on the grant (share, release, retarget, revoke)
    /// validates this handle; a stale generation surfaces as
    /// [`ImpulseError::RevokedCapability`].
    pub cap: CapId,
}

/// What a revocation walk tore down, for syscall cost accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RevokeOutcome {
    /// Capabilities revoked (root + every derived alias).
    pub caps_revoked: u64,
    /// Alias pages unmapped across all affected processes.
    pub pages_unmapped: u64,
    /// Cycle cost of the revocation walk (charged by the machine on
    /// top of the usual trap + per-page costs).
    pub cycles: Cycle,
}

/// Kernel statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Remapping system calls served.
    pub remap_syscalls: u64,
    /// Total page mappings downloaded to the controller.
    pub controller_pages: u64,
    /// Shadow bytes allocated.
    pub shadow_bytes: u64,
}

/// A revoked alias range: pages that were unmapped by a capability
/// revocation. A later access to the range is answered with
/// [`ImpulseError::RevokedCapability`] instead of a bare page fault, so
/// receivers can tell "torn down under me" from "never mapped".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Tombstone {
    /// First virtual address of the revoked range.
    start: u64,
    /// Range length in pages.
    pages: u64,
    /// Capability slot that protected the range.
    slot: u32,
    /// Generation the mapping was torn down at.
    stale: u32,
}

/// One process: its address space and superpage registrations.
#[derive(Clone, Debug, Default)]
struct Process {
    aspace: AddressSpace,
    superpages: Vec<(u64, u64)>, // (base vpage, span in pages)
    /// Allocated regions, for the online superpage-promotion policy.
    regions: Vec<VRange>,
    /// TLB-miss counts per region (parallel to `regions`).
    tlb_misses: Vec<u64>,
    /// Alias ranges torn down by capability revocation (consulted only
    /// on the translation *fault* path — the hot path never sees them).
    revoked: Vec<Tombstone>,
}

/// The operating system model.
///
/// Multi-process: each process has its own virtual address space, and
/// remapping grants are *owned* — only the creating process may release,
/// retarget, or share them. This is the inter-process protection the
/// paper's system-call design promises (Section 2.1).
#[derive(Clone, Debug)]
pub struct Kernel {
    cfg: KernelConfig,
    phys: PhysMem,
    procs: Vec<Process>,
    current: usize,
    shadow_next: u64,
    /// The typed capability table protecting descriptors, shared
    /// aliases, and shadow regions. Domain *n* is process *n*.
    caps: CapEngine,
    stats: KernelStats,
}

impl Kernel {
    /// Boots a kernel.
    pub fn new(cfg: KernelConfig) -> Self {
        let mut caps = CapEngine::new();
        caps.create_domain(); // domain 0 = the boot process
        Self {
            phys: PhysMem::new(cfg.dram_capacity, cfg.reserved_top, cfg.policy),
            procs: vec![Process::default()],
            current: 0,
            shadow_next: cfg.dram_capacity,
            caps,
            stats: KernelStats::default(),
            cfg,
        }
    }

    /// Attaches (or detaches) the capability-table corruption injector
    /// (see [`impulse_fault::FaultConfig::caps_injector`]).
    pub fn attach_caps_injector(&mut self, injector: Option<CapsInjector>) {
        self.caps.attach_injector(injector);
    }

    /// The capability engine (inspection: stats, live counts, fault
    /// counters).
    pub fn caps(&self) -> &CapEngine {
        &self.caps
    }

    /// Mutable access to the capability engine — the chaos/fault hooks
    /// (e.g. [`CapEngine::inject_corruption`]) and nothing else; syscall
    /// paths go through the typed kernel API.
    pub fn caps_mut(&mut self) -> &mut CapEngine {
        &mut self.caps
    }

    /// Creates a new (empty) process and returns its id. The current
    /// process is unchanged.
    pub fn spawn(&mut self) -> Pid {
        self.procs.push(Process::default());
        let domain = self.caps.create_domain();
        debug_assert_eq!(domain.0 as usize, self.procs.len() - 1);
        Pid(self.procs.len() as u32 - 1)
    }

    /// The currently-running process.
    pub fn current(&self) -> Pid {
        Pid(self.current as u32)
    }

    /// Switches the current process.
    ///
    /// # Errors
    ///
    /// Fails if `pid` was never spawned.
    pub fn switch(&mut self, pid: Pid) -> Result<(), OsError> {
        if (pid.0 as usize) < self.procs.len() {
            self.current = pid.0 as usize;
            Ok(())
        } else {
            Err(OsError::NoSuchProcess(pid))
        }
    }

    /// The current process's capability domain.
    fn domain(&self) -> DomainId {
        DomainId(self.current as u32)
    }

    /// Validates a grant's capability for the current process: integrity,
    /// generation (stale ⇒ [`ImpulseError::RevokedCapability`]), and
    /// ownership.
    fn validate_cap(&mut self, cap: CapId) -> Result<Resource, OsError> {
        let domain = self.domain();
        Ok(self.caps.validate(cap, Some(domain))?)
    }

    /// Grants the capabilities behind a fresh remapping: a root
    /// descriptor capability plus a (coalescing) region capability over
    /// the grant's shadow footprint.
    fn grant_caps(&mut self, desc: DescId, shadow: PRange) -> Result<CapId, OsError> {
        let domain = self.domain();
        let cap = self.caps.grant(
            domain,
            Resource::Descriptor {
                desc: desc.index() as u32,
            },
        )?;
        self.caps
            .grant_region(domain, shadow.start().raw(), shadow.len())?;
        Ok(cap)
    }

    /// Unmaps every revoked alias and records tombstones, so later
    /// accesses surface [`ImpulseError::RevokedCapability`]. The owner's
    /// own alias (`owner_alias`, when given) is torn down with the root
    /// capability; derived [`Resource::Alias`] entries are torn down in
    /// their receiver's address space. Returns pages unmapped.
    fn teardown_revoked(
        &mut self,
        revoked: &[RevokedCap],
        root: CapId,
        owner_alias: Option<(usize, VRange, PRange)>,
    ) -> Result<u64, OsError> {
        let mut pages_unmapped = 0;
        for rc in revoked {
            match rc.resource {
                Resource::Alias { start, pages, .. } => {
                    let pidx = rc.domain.0 as usize;
                    if pidx >= self.procs.len() {
                        continue;
                    }
                    let range = VRange::new(VAddr::new(start), pages * PAGE_SIZE);
                    let proc = &mut self.procs[pidx];
                    for page in range.blocks(PAGE_SIZE) {
                        if proc.aspace.try_translate(page).is_some() {
                            proc.aspace.unmap_page(page)?;
                            pages_unmapped += 1;
                        }
                    }
                    proc.revoked.push(Tombstone {
                        start,
                        pages,
                        slot: rc.cap.index,
                        stale: rc.cap.generation,
                    });
                }
                Resource::Descriptor { .. } => {
                    if rc.cap != root {
                        continue;
                    }
                    let Some((pidx, alias, shadow)) = owner_alias else {
                        continue;
                    };
                    let proc = &mut self.procs[pidx];
                    for page in alias.blocks(PAGE_SIZE) {
                        if proc
                            .aspace
                            .try_translate(page)
                            .is_some_and(|p| shadow.contains(p))
                        {
                            proc.aspace.unmap_page(page)?;
                            pages_unmapped += 1;
                        }
                    }
                    proc.revoked.push(Tombstone {
                        start: alias.start().raw(),
                        pages: alias.page_count(),
                        slot: rc.cap.index,
                        stale: rc.cap.generation,
                    });
                }
                Resource::Region { .. } => {}
            }
        }
        Ok(pages_unmapped)
    }

    /// The configuration the kernel booted with.
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// The current process's address space (read-only).
    pub fn aspace(&self) -> &AddressSpace {
        &self.procs[self.current].aspace
    }

    fn aspace_mut(&mut self) -> &mut AddressSpace {
        &mut self.procs[self.current].aspace
    }

    /// Translates a virtual address (MMU behaviour).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NotMapped`] (wrapped) for unmapped addresses —
    /// a page fault with no handler, i.e. a segfault at the CPU model —
    /// except addresses inside an alias torn down by capability
    /// revocation, which surface [`ImpulseError::RevokedCapability`]
    /// (never stale data; tombstones are consulted only on this fault
    /// path, so mapped translations cost the same as before).
    #[inline]
    pub fn translate(&self, v: VAddr) -> Result<PAddr, OsError> {
        match self.aspace().translate(v) {
            Ok(p) => Ok(p),
            Err(e) => Err(self.classify_fault(v, e.into())),
        }
    }

    /// Refines a translation fault: an address inside a revoked alias
    /// range reports the revocation rather than a bare page fault.
    fn classify_fault(&self, v: VAddr, fallback: OsError) -> OsError {
        for t in &self.procs[self.current].revoked {
            if v.raw() >= t.start && v.raw() < t.start + t.pages * PAGE_SIZE {
                let current = self.caps.generation(t.slot).unwrap_or(t.stale + 1);
                return OsError::RevokedCapability {
                    slot: t.slot,
                    stale: t.stale,
                    current,
                };
            }
        }
        fallback
    }

    /// Allocates and maps an ordinary region of `bytes`, returning its
    /// virtual range.
    ///
    /// # Errors
    ///
    /// Fails when physical memory is exhausted.
    pub fn alloc_region(&mut self, bytes: u64, align: u64) -> Result<VRange, OsError> {
        check_alignment(align)?;
        let range = self.aspace_mut().reserve(bytes, align);
        for block in range.blocks(PAGE_SIZE) {
            let frame = self.phys.alloc()?;
            self.aspace_mut().map_page(block, PAddr::new(frame.raw()))?;
        }
        let proc = &mut self.procs[self.current];
        proc.regions.push(range);
        proc.tlb_misses.push(0);
        Ok(range)
    }

    /// Online superpage promotion (the "dynamically build superpages" of
    /// Section 6): records a TLB miss at `v` and returns a region that
    /// has crossed `threshold` misses and is *promotable* — multi-page,
    /// span-aligned, and not already covered by a superpage. The caller
    /// (the system model) performs the actual promotion system call.
    pub fn note_tlb_miss(&mut self, v: VAddr, threshold: u64) -> Option<VRange> {
        let current = self.current;
        let proc = &mut self.procs[current];
        let idx = proc.regions.iter().position(|r| r.contains(v))?;
        proc.tlb_misses[idx] += 1;
        if proc.tlb_misses[idx] != threshold {
            return None;
        }
        let region = proc.regions[idx];
        let pages = region.page_count();
        if pages < 2 {
            return None;
        }
        let span = pages.next_power_of_two();
        let vpage = region.start().raw() >> PAGE_SHIFT;
        if !region.start().is_aligned(span * PAGE_SIZE) {
            return None; // not span-aligned; a fancier policy would split
        }
        if proc.superpages.iter().any(|&(b, _)| b == vpage) {
            return None;
        }
        Some(region)
    }

    /// Allocates a region whose frames all have page colors from `colors`
    /// — the *copying* way to control placement, for baselines.
    ///
    /// # Errors
    ///
    /// Fails when no frame of an acceptable color remains.
    pub fn alloc_region_colored(
        &mut self,
        bytes: u64,
        align: u64,
        colors: &[u64],
    ) -> Result<VRange, OsError> {
        check_alignment(align)?;
        let range = self.aspace_mut().reserve(bytes, align);
        for block in range.blocks(PAGE_SIZE) {
            let frame = self.phys.alloc_colored(colors, self.cfg.l2_colors)?;
            self.aspace_mut().map_page(block, PAddr::new(frame.raw()))?;
        }
        Ok(range)
    }

    /// Allocates a shadow range (bus addresses with no DRAM behind them).
    ///
    /// # Errors
    ///
    /// Returns [`ImpulseError::ShadowExhausted`] when the configured
    /// shadow span above DRAM cannot hold the request.
    fn alloc_shadow(&mut self, bytes: u64, align: u64) -> Result<PRange, OsError> {
        let align = align.max(PAGE_SIZE);
        let limit = self.cfg.dram_capacity.saturating_add(self.cfg.shadow_span);
        let exhausted = |requested: u64, start: u64| OsError::ShadowExhausted {
            requested,
            available: limit.saturating_sub(start),
        };
        let len = bytes
            .max(1)
            .checked_add(PAGE_SIZE - 1)
            .map(|b| b & !(PAGE_SIZE - 1))
            .ok_or(OsError::InvalidArg("shadow region size overflows"))?;
        let start = self
            .shadow_next
            .checked_add(align - 1)
            .map(|s| s / align * align)
            .ok_or_else(|| exhausted(len, self.shadow_next))?;
        let end = start
            .checked_add(len)
            .filter(|&e| e <= limit)
            .ok_or_else(|| exhausted(len, start))?;
        self.shadow_next = end;
        self.stats.shadow_bytes += len;
        Ok(PRange::new(PAddr::new(start), len))
    }

    /// Real DRAM frame backing a mapped virtual page.
    fn frame_of(&self, v: VAddr) -> Result<MAddr, OsError> {
        let p = self
            .aspace()
            .try_translate(v.page_base())
            .ok_or(OsError::TargetNotPhysical(v))?;
        if p.raw() >= self.cfg.dram_capacity {
            return Err(OsError::TargetNotPhysical(v));
        }
        Ok(MAddr::new(p.raw()))
    }

    /// Downloads controller page mappings for every *mapped* page in
    /// `[base, base + len)` of the virtual space, mirroring it into
    /// pseudo-virtual space (pv address = virtual address). Unmapped holes
    /// are skipped: a gather target may legitimately span several
    /// disjoint buffers (e.g. IPC message pieces), but at least one page
    /// must be mapped.
    fn download_target_pages(
        &mut self,
        mc: &mut MemController,
        base: VAddr,
        len: u64,
    ) -> Result<u64, OsError> {
        let range = VRange::new(base, len);
        let mut n = 0;
        for page in range.blocks(PAGE_SIZE) {
            if self.aspace().try_translate(page).is_none() {
                continue;
            }
            let frame = self.frame_of(page)?;
            mc.map_page(page.raw() >> PAGE_SHIFT, frame);
            n += 1;
        }
        if n == 0 {
            return Err(OsError::TargetNotPhysical(base));
        }
        self.stats.controller_pages += n;
        Ok(n)
    }

    /// Maps a fresh virtual alias 1:1 onto a shadow region, with the
    /// requested virtual alignment and phase (cache-placement control).
    fn map_alias(&mut self, shadow: PRange, align: u64, phase: u64) -> Result<VRange, OsError> {
        check_alignment(align)?;
        let eff_align = align.max(PAGE_SIZE);
        if phase >= eff_align || !phase.is_multiple_of(PAGE_SIZE) {
            return Err(OsError::BadAlignment(
                "alias phase must be a page-aligned offset below the alignment",
            ));
        }
        let alias = self.aspace_mut().reserve_phased(shadow.len(), align, phase);
        let mut s = shadow.start();
        for page in alias.blocks(PAGE_SIZE) {
            self.aspace_mut().map_page(page, s)?;
            s = s.add(PAGE_SIZE);
        }
        Ok(alias)
    }

    /// System call: scatter/gather remapping. Creates an alias `x'` such
    /// that `x'[k] = target[indices[k]]` for `elem_size`-byte elements,
    /// with the indirection vector (`index_region`, entries of
    /// `index_bytes`) read at the memory controller.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use impulse_core::{McConfig, MemController};
    /// use impulse_dram::{Dram, DramConfig};
    /// use impulse_os::{Kernel, KernelConfig};
    ///
    /// let kcfg = KernelConfig::default();
    /// let dram = Dram::new(DramConfig { capacity: kcfg.dram_capacity, ..DramConfig::default() });
    /// let mut mc = MemController::new(dram, McConfig::default());
    /// let mut kernel = Kernel::new(kcfg);
    ///
    /// let x = kernel.alloc_region(1024 * 8, 8)?;
    /// let column = kernel.alloc_region(512 * 4, 4)?;
    /// let indices = Arc::new((0..512u64).map(|i| (i * 7) % 1024).collect::<Vec<_>>());
    /// let grant = kernel.remap_gather(&mut mc, x, 8, indices, column, 4)?;
    /// // The alias is backed by shadow addresses the controller serves.
    /// assert!(mc.is_shadow(kernel.translate(grant.alias.start())?));
    /// # Ok::<(), impulse_os::OsError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Fails if the target is misaligned, descriptors are exhausted, or
    /// any page involved is not physically backed.
    pub fn remap_gather(
        &mut self,
        mc: &mut MemController,
        target: VRange,
        elem_size: u64,
        indices: Arc<Vec<u64>>,
        index_region: VRange,
        index_bytes: u64,
    ) -> Result<RemapGrant, OsError> {
        self.remap_gather_aligned(
            mc,
            target,
            elem_size,
            indices,
            index_region,
            index_bytes,
            0,
            0,
        )
    }

    /// Like [`Kernel::remap_gather`], but places the alias at virtual
    /// `phase` modulo `align` — step 1 of the paper's protocol: "to
    /// improve L1 cache utilization, an application can allocate virtual
    /// addresses with appropriate alignment and offset characteristics"
    /// (so a gathered stream does not conflict with the stream it is
    /// consumed alongside in a virtually-indexed cache).
    ///
    /// # Errors
    ///
    /// As [`Kernel::remap_gather`].
    #[allow(clippy::too_many_arguments)]
    pub fn remap_gather_aligned(
        &mut self,
        mc: &mut MemController,
        target: VRange,
        elem_size: u64,
        indices: Arc<Vec<u64>>,
        index_region: VRange,
        index_bytes: u64,
        alias_align: u64,
        alias_phase: u64,
    ) -> Result<RemapGrant, OsError> {
        if elem_size == 0 {
            return Err(OsError::InvalidArg("gather element size must be non-zero"));
        }
        if indices.is_empty() {
            return Err(OsError::InvalidArg("gather indirection vector is empty"));
        }
        if index_bytes == 0 {
            return Err(OsError::InvalidArg(
                "gather index entries must be non-empty",
            ));
        }
        if !target.start().is_aligned(elem_size) {
            return Err(OsError::BadAlignment(
                "gather target must be element-aligned",
            ));
        }
        // Every indirection entry must land inside the target: a stray
        // index would make the controller gather unrelated memory.
        let limit = target.len() / elem_size;
        if let Some(&bad) = indices.iter().find(|&&i| i >= limit) {
            return Err(OsError::IndexOutOfBounds { index: bad, limit });
        }
        let line = mc.config().line_bytes;
        let image_bytes = (indices.len() as u64)
            .checked_mul(elem_size)
            .map(|b| round_up(b, line))
            .ok_or(OsError::InvalidArg("gather image size overflows"))?;
        let shadow = self.alloc_shadow(image_bytes, PAGE_SIZE)?;

        let remap = RemapFn::gather(
            PvAddr::new(target.start().raw()),
            elem_size,
            indices,
            PvAddr::new(index_region.start().raw()),
            index_bytes,
        );
        let desc = mc.claim_descriptor(shadow, remap)?;
        let cap = self.grant_caps(desc, shadow)?;
        let mut pages = self.download_target_pages(mc, target.start(), target.len())?;
        pages += self.download_target_pages(mc, index_region.start(), index_region.len())?;
        let alias = self.map_alias(shadow, alias_align.max(PAGE_SIZE), alias_phase)?;
        pages += alias.page_count();

        self.stats.remap_syscalls += 1;
        Ok(RemapGrant {
            alias,
            shadow,
            desc,
            kind: "gather",
            pages_installed: pages,
            cap,
        })
    }

    /// System call: strided remapping. Packs `count` objects of
    /// `object_size` bytes, spaced `stride` bytes apart starting at
    /// `base`, into a dense alias.
    ///
    /// # Errors
    ///
    /// Fails on zero or overflowing stride parameters, exhausted
    /// descriptors or shadow space, or unbacked target pages.
    pub fn remap_strided(
        &mut self,
        mc: &mut MemController,
        base: VAddr,
        object_size: u64,
        stride: u64,
        count: u64,
        alias_align: u64,
    ) -> Result<RemapGrant, OsError> {
        let span = strided_span(object_size, stride, count)?;
        let line = mc.config().line_bytes;
        let image_bytes = count
            .checked_mul(object_size)
            .map(|b| round_up(b, line))
            .ok_or(OsError::InvalidArg("strided image size overflows"))?;
        let shadow = self.alloc_shadow(image_bytes, PAGE_SIZE)?;

        let remap = RemapFn::strided(PvAddr::new(base.raw()), object_size, stride);
        let desc = mc.claim_descriptor(shadow, remap)?;
        let cap = self.grant_caps(desc, shadow)?;
        let mut pages = self.download_target_pages(mc, base, span)?;
        let alias = self.map_alias(shadow, alias_align, 0)?;
        pages += alias.page_count();

        self.stats.remap_syscalls += 1;
        Ok(RemapGrant {
            alias,
            shadow,
            desc,
            kind: "strided",
            pages_installed: pages,
            cap,
        })
    }

    /// Retargets an existing strided grant at a new base address (e.g.
    /// pointing the tile alias at the next tile). Reuses the shadow region
    /// and alias; replaces the descriptor and downloads fresh page
    /// mappings. Returns the number of page mappings downloaded.
    ///
    /// The replacement is *atomic from the grant's point of view*: if
    /// claiming the new descriptor fails (e.g. malformed stride geometry
    /// caught at descriptor validation), the old descriptor is restored
    /// and the grant stays fully usable. Only if even the restore fails
    /// — which a single-threaded kernel cannot normally make happen — is
    /// the grant invalidated, by revoking its capability so every later
    /// use surfaces [`ImpulseError::RevokedCapability`] instead of
    /// dangling.
    ///
    /// # Errors
    ///
    /// Fails if the grant's descriptor cannot be replaced or pages are
    /// unbacked; the grant survives unless noted above.
    pub fn retarget_strided(
        &mut self,
        mc: &mut MemController,
        grant: &mut RemapGrant,
        new_base: VAddr,
        object_size: u64,
        stride: u64,
        count: u64,
    ) -> Result<u64, OsError> {
        self.validate_cap(grant.cap)?;
        let span = strided_span(object_size, stride, count)?;
        let old_remap = mc
            .descriptor(grant.desc)
            .ok_or(OsError::Mc(McError::InvalidDescriptor(grant.desc.index())))?
            .remap()
            .clone();
        mc.release_descriptor(grant.desc)?;
        // Built as a literal (not via RemapFn::strided) so stride-geometry
        // misuse surfaces as the descriptor-install typed error this
        // error path exists to handle, in debug builds too.
        let remap = RemapFn::Strided {
            pv_base: PvAddr::new(new_base.raw()),
            object_size,
            stride,
        };
        let new_desc = match mc.claim_descriptor(grant.shadow, remap) {
            Ok(d) => d,
            Err(e) => {
                // Roll back: re-claim the old descriptor over the same
                // shadow region (the slot we just freed guarantees one
                // is available) so the grant keeps working.
                match mc.claim_descriptor(grant.shadow, old_remap) {
                    Ok(d) => {
                        self.caps.retarget_desc(grant.cap, d.index() as u32)?;
                        grant.desc = d;
                        return Err(e.into());
                    }
                    Err(_) => {
                        // Unrecoverable: invalidate the grant with a
                        // typed error rather than leaving it dangling.
                        let rev = self.caps.revoke(grant.cap, Some(self.domain()))?;
                        self.teardown_revoked(
                            &rev.revoked,
                            grant.cap,
                            Some((self.current, grant.alias, grant.shadow)),
                        )?;
                        return Err(e.into());
                    }
                }
            }
        };
        self.caps
            .retarget_desc(grant.cap, new_desc.index() as u32)?;
        grant.desc = new_desc;
        let pages = self.download_target_pages(mc, new_base, span)?;
        self.stats.remap_syscalls += 1;
        Ok(pages)
    }

    /// System call: no-copy page recoloring. Creates an alias of `target`
    /// whose bus addresses fall only on the given L2 page `colors`, so the
    /// aliased data occupies exactly that slice of a physically-indexed
    /// cache — without copying any data.
    ///
    /// # Errors
    ///
    /// Fails if `colors` is empty or contains an out-of-range color, or on
    /// descriptor exhaustion.
    pub fn remap_recolor(
        &mut self,
        mc: &mut MemController,
        target: VRange,
        colors: &[u64],
    ) -> Result<RemapGrant, OsError> {
        if colors.is_empty() {
            return Err(OsError::BadAlignment("recolor needs at least one color"));
        }
        let nc = self.cfg.l2_colors;
        if colors.iter().any(|&c| c >= nc) {
            return Err(OsError::BadAlignment("color out of range"));
        }
        let n = target.page_count();
        let cycles = n.div_ceil(colors.len() as u64);
        let region_bytes = cycles
            .checked_mul(nc)
            .and_then(|p| p.checked_mul(PAGE_SIZE))
            .ok_or(OsError::InvalidArg("recolor region size overflows"))?;
        // Align the shadow region to a full color cycle so that page k of
        // the region has color k mod l2_colors.
        let shadow = self.alloc_shadow(region_bytes, nc * PAGE_SIZE)?;

        let pv_base = PvAddr::new(shadow.start().raw());
        let desc = mc.claim_descriptor(shadow, RemapFn::direct(pv_base))?;
        let cap = self.grant_caps(desc, shadow)?;

        let alias = self.aspace_mut().reserve(n * PAGE_SIZE, PAGE_SIZE);
        let mut pages = 0;
        for (i, (alias_page, target_page)) in alias
            .blocks(PAGE_SIZE)
            .zip(target.blocks(PAGE_SIZE))
            .enumerate()
        {
            let i = i as u64;
            let color = colors[(i % colors.len() as u64) as usize];
            let slot = (i / colors.len() as u64) * nc + color;
            let shadow_page = shadow.start().add(slot * PAGE_SIZE);
            debug_assert_eq!(shadow_page.page_number() % nc, color);
            self.aspace_mut().map_page(alias_page, shadow_page)?;
            let frame = self.frame_of(target_page)?;
            mc.map_page(pv_base.add(slot * PAGE_SIZE).raw() >> PAGE_SHIFT, frame);
            pages += 2;
        }
        self.stats.controller_pages += n;
        self.stats.remap_syscalls += 1;
        Ok(RemapGrant {
            alias,
            shadow,
            desc,
            kind: "direct",
            pages_installed: pages,
            cap,
        })
    }

    /// System call: build a superpage. Re-points the virtual pages of
    /// `target` (which must be aligned to its power-of-two page count) at
    /// a contiguous shadow region backed by the *original, possibly
    /// scattered* frames, and registers a single TLB entry spanning the
    /// whole range (Swanson et al., ISCA '98).
    ///
    /// # Errors
    ///
    /// Fails if `target` is not aligned to its superpage span.
    pub fn build_superpage(
        &mut self,
        mc: &mut MemController,
        target: VRange,
    ) -> Result<RemapGrant, OsError> {
        let n = target.page_count();
        let span = n.next_power_of_two();
        let base_vpage = target.start().raw() >> PAGE_SHIFT;
        if !target.start().is_aligned(span * PAGE_SIZE) {
            return Err(OsError::BadAlignment(
                "superpage target must be aligned to its span",
            ));
        }
        let span_bytes = span
            .checked_mul(PAGE_SIZE)
            .ok_or(OsError::InvalidArg("superpage span overflows"))?;
        let shadow = self.alloc_shadow(span_bytes, span_bytes)?;
        let pv_base = PvAddr::new(shadow.start().raw());
        let desc = mc.claim_descriptor(shadow, RemapFn::direct(pv_base))?;
        let cap = self.grant_caps(desc, shadow)?;

        let mut pages = 0;
        for (i, target_page) in target.blocks(PAGE_SIZE).enumerate() {
            let i = i as u64;
            let frame = self.frame_of(target_page)?;
            let shadow_page = shadow.start().add(i * PAGE_SIZE);
            self.aspace_mut().remap_page(target_page, shadow_page)?;
            mc.map_page(pv_base.add(i * PAGE_SIZE).raw() >> PAGE_SHIFT, frame);
            pages += 2;
        }
        self.procs[self.current].superpages.push((base_vpage, span));
        self.stats.controller_pages += n;
        self.stats.remap_syscalls += 1;
        Ok(RemapGrant {
            alias: target,
            shadow,
            desc,
            kind: "superpage",
            pages_installed: pages,
            cap,
        })
    }

    /// Transitively revokes a grant's capability: the owner's descriptor
    /// capability and **every** alias derived from it (receivers of
    /// [`Kernel::share_remap`], including re-shares) go stale together.
    /// All affected alias pages are unmapped and tombstoned, so any
    /// later access — owner or receiver, even mid-gather — surfaces
    /// [`ImpulseError::RevokedCapability`]: no stale data, no panic.
    ///
    /// # Errors
    ///
    /// Fails with [`ImpulseError::RevokedCapability`] if the grant was
    /// already revoked or released, or [`ImpulseError::NotOwner`] if the
    /// caller does not own it.
    pub fn revoke_remap(
        &mut self,
        mc: &mut MemController,
        grant: &RemapGrant,
    ) -> Result<RevokeOutcome, OsError> {
        self.validate_cap(grant.cap)?;
        if grant.kind == "superpage" {
            // Recover each page's frame through the still-configured
            // descriptor, then re-point the virtual page at it. The
            // owner's "alias" is the original range and stays mapped
            // (to real frames); only derived receiver aliases tear down.
            if mc.descriptor(grant.desc).is_none() {
                return Err(OsError::Mc(McError::InvalidDescriptor(grant.desc.index())));
            }
            for page in grant.alias.blocks(PAGE_SIZE) {
                if let Some(shadow_p) = self.aspace().try_translate(page) {
                    if grant.shadow.contains(shadow_p) {
                        let frame = mc
                            .resolve_shadow(shadow_p)
                            .ok_or(OsError::TargetNotPhysical(page))?;
                        self.aspace_mut()
                            .remap_page(page, PAddr::new(frame.raw()))?;
                    }
                }
            }
            let base_vpage = grant.alias.start().raw() >> PAGE_SHIFT;
            self.procs[self.current]
                .superpages
                .retain(|&(b, _)| b != base_vpage);
            mc.release_descriptor(grant.desc)?;
            let rev = self.caps.revoke(grant.cap, Some(self.domain()))?;
            let pages_unmapped = self.teardown_revoked(&rev.revoked, grant.cap, None)?;
            return Ok(RevokeOutcome {
                caps_revoked: rev.revoked.len() as u64,
                pages_unmapped,
                cycles: rev.cycles,
            });
        }
        mc.release_descriptor(grant.desc)?;
        let rev = self.caps.revoke(grant.cap, Some(self.domain()))?;
        let pages_unmapped = self.teardown_revoked(
            &rev.revoked,
            grant.cap,
            Some((self.current, grant.alias, grant.shadow)),
        )?;
        Ok(RevokeOutcome {
            caps_revoked: rev.revoked.len() as u64,
            pages_unmapped,
            cycles: rev.cycles,
        })
    }

    /// Releases a remapping: frees the descriptor and unmaps the alias
    /// pages (shadow addresses are not recycled; the space is vast).
    ///
    /// Release *is* a transitive revocation: every receiver alias
    /// created by [`Kernel::share_remap`] is unmapped and tombstoned too
    /// — a receiver access after release yields a typed
    /// [`ImpulseError::RevokedCapability`], never data from a recycled
    /// descriptor.
    ///
    /// Superpage grants are special: their "alias" *is* the original
    /// virtual range, re-pointed at shadow space, so releasing one
    /// restores the original frame mappings instead of unmapping.
    ///
    /// # Errors
    ///
    /// Fails if the grant was already released or revoked.
    pub fn release_remap(
        &mut self,
        mc: &mut MemController,
        grant: &RemapGrant,
    ) -> Result<RevokeOutcome, OsError> {
        self.revoke_remap(mc, grant)
    }

    /// Maps an existing grant's shadow region into another process's
    /// address space — the shared-shadow no-copy IPC of the paper's
    /// conclusions ("fast local IPC mechanisms, such as LRPC, use shared
    /// memory to map buffers into sender and receiver address spaces").
    /// Only the owning process may share; the receiving process gets its
    /// own read alias, protected by a capability *derived* from the
    /// grant's — revoking or releasing the grant tears the alias down
    /// transitively.
    ///
    /// # Errors
    ///
    /// Fails if the caller does not own the grant (or it was revoked) or
    /// `with` does not exist.
    pub fn share_remap(&mut self, grant: &RemapGrant, with: Pid) -> Result<VRange, OsError> {
        self.share_remap_cap(grant, with).map(|(alias, _)| alias)
    }

    /// Like [`Kernel::share_remap`], but also returns the derived
    /// capability handle protecting the receiver's alias (for explicit
    /// handoff bookkeeping).
    ///
    /// # Errors
    ///
    /// As [`Kernel::share_remap`].
    pub fn share_remap_cap(
        &mut self,
        grant: &RemapGrant,
        with: Pid,
    ) -> Result<(VRange, CapId), OsError> {
        self.validate_cap(grant.cap)?;
        let target = with.0 as usize;
        if target >= self.procs.len() {
            return Err(OsError::NoSuchProcess(with));
        }
        let proc = &mut self.procs[target];
        let alias = proc.aspace.reserve(grant.shadow.len(), PAGE_SIZE);
        let mut s = grant.shadow.start();
        for page in alias.blocks(PAGE_SIZE) {
            proc.aspace.map_page(page, s)?;
            s = s.add(PAGE_SIZE);
        }
        let child = self.caps.derive(
            grant.cap,
            Some(self.domain()),
            DomainId(with.0),
            Resource::Alias {
                desc: grant.desc.index() as u32,
                start: alias.start().raw(),
                pages: alias.page_count(),
            },
        )?;
        Ok((alias, child))
    }

    /// TLB reach for a virtual page: its superpage `(base_vpage, span)` if
    /// one covers it, else `(vpage, 1)`. The system model uses this when
    /// refilling its TLB.
    pub fn tlb_span(&self, vpage: u64) -> (u64, u64) {
        for &(base, span) in &self.procs[self.current].superpages {
            if vpage >= base && vpage < base + span {
                return (base, span);
            }
        }
        (vpage, 1)
    }

    /// Serializes the frame allocator, every process (address space,
    /// superpage registrations, region bookkeeping, revocation
    /// tombstones), the shadow-space bump pointer, the full capability
    /// table, and statistics. The configuration is not written — restore
    /// rebuilds it from the same config the snapshot was taken under.
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_KERN);
        self.phys.snap_save(w);
        w.usize(self.procs.len());
        for p in &self.procs {
            p.aspace.snap_save(w);
            w.usize(p.superpages.len());
            for &(base, span) in &p.superpages {
                w.u64(base);
                w.u64(span);
            }
            w.usize(p.regions.len());
            for r in &p.regions {
                w.u64(r.start().raw());
                w.u64(r.len());
            }
            w.u64_slice(&p.tlb_misses);
            w.usize(p.revoked.len());
            for t in &p.revoked {
                w.u64(t.start);
                w.u64(t.pages);
                w.u32(t.slot);
                w.u32(t.stale);
            }
        }
        w.usize(self.current);
        w.u64(self.shadow_next);
        self.caps.snap_save(w);
        w.u64(self.stats.remap_syscalls);
        w.u64(self.stats.controller_pages);
        w.u64(self.stats.shadow_bytes);
    }

    /// Restores the state saved by [`Kernel::snap_save`] into a kernel
    /// freshly booted with the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] if the image is malformed or the machine
    /// geometry disagrees.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_KERN)?;
        self.phys.snap_load(r)?;
        let nprocs = r.usize()?;
        if nprocs == 0 {
            return Err(SnapError::Geometry("kernel process table is empty"));
        }
        self.procs = Vec::with_capacity(nprocs);
        for _ in 0..nprocs {
            let mut p = Process::default();
            p.aspace.snap_load(r)?;
            let nsup = r.usize()?;
            p.superpages = Vec::with_capacity(nsup);
            for _ in 0..nsup {
                let base = r.u64()?;
                let span = r.u64()?;
                p.superpages.push((base, span));
            }
            let nreg = r.usize()?;
            p.regions = Vec::with_capacity(nreg);
            for _ in 0..nreg {
                let start = r.u64()?;
                let len = r.u64()?;
                p.regions.push(VRange::new(VAddr::new(start), len));
            }
            p.tlb_misses = r.u64_vec()?;
            if p.tlb_misses.len() != p.regions.len() {
                return Err(SnapError::Geometry("region TLB-miss table length"));
            }
            let ntomb = r.usize()?;
            p.revoked = Vec::with_capacity(ntomb);
            for _ in 0..ntomb {
                let start = r.u64()?;
                let pages = r.u64()?;
                let slot = r.u32()?;
                let stale = r.u32()?;
                p.revoked.push(Tombstone {
                    start,
                    pages,
                    slot,
                    stale,
                });
            }
            self.procs.push(p);
        }
        let current = r.usize()?;
        if current >= self.procs.len() {
            return Err(SnapError::Geometry("current process index"));
        }
        self.current = current;
        self.shadow_next = r.u64()?;
        self.caps.snap_load(r)?;
        if (self.caps.domain_count() as usize) < self.procs.len() {
            return Err(SnapError::Geometry("capability domain count"));
        }
        self.stats.remap_syscalls = r.u64()?;
        self.stats.controller_pages = r.u64()?;
        self.stats.shadow_bytes = r.u64()?;
        Ok(())
    }
}

/// Validates a user-supplied alignment: values at or below the page size
/// round up to it; larger values must be powers of two.
fn check_alignment(align: u64) -> Result<(), OsError> {
    if align.max(PAGE_SIZE).is_power_of_two() {
        Ok(())
    } else {
        Err(OsError::BadAlignment("alignment must be a power of two"))
    }
}

/// Validates strided-remap parameters and computes the bytes the stride
/// pattern spans in the target (`(count - 1) * stride + object_size`),
/// with every arithmetic step checked.
fn strided_span(object_size: u64, stride: u64, count: u64) -> Result<u64, OsError> {
    if count == 0 {
        return Err(OsError::InvalidArg(
            "strided remap needs at least one object",
        ));
    }
    if object_size == 0 {
        return Err(OsError::InvalidArg("strided object size must be non-zero"));
    }
    if stride == 0 {
        return Err(OsError::InvalidArg("strided stride must be non-zero"));
    }
    (count - 1)
        .checked_mul(stride)
        .and_then(|s| s.checked_add(object_size))
        .ok_or(OsError::InvalidArg(
            "strided span overflows the address space",
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use impulse_core::McConfig;
    use impulse_dram::{Dram, DramConfig};

    fn small_setup() -> (Kernel, MemController) {
        let cfg = KernelConfig {
            dram_capacity: 1 << 24, // 16 MB to keep tests light
            reserved_top: 1 << 20,
            ..KernelConfig::default()
        };
        let dram = Dram::new(DramConfig {
            capacity: cfg.dram_capacity,
            ..DramConfig::default()
        });
        (
            Kernel::new(cfg),
            MemController::new(dram, McConfig::default()),
        )
    }

    #[test]
    fn alloc_region_maps_every_page() {
        let (mut k, _) = small_setup();
        let r = k.alloc_region(3 * PAGE_SIZE + 5, 1).unwrap();
        assert_eq!(r.page_count(), 4);
        for page in r.blocks(PAGE_SIZE) {
            assert!(k.aspace().try_translate(page).is_some());
        }
    }

    #[test]
    fn colored_alloc_gets_requested_colors() {
        let (mut k, _) = small_setup();
        let r = k.alloc_region_colored(4 * PAGE_SIZE, 1, &[2, 9]).unwrap();
        for page in r.blocks(PAGE_SIZE) {
            let color = k.translate(page).unwrap().page_number() % 32;
            assert!(color == 2 || color == 9, "got color {color}");
        }
    }

    #[test]
    fn gather_grant_roundtrip() {
        let (mut k, mut mc) = small_setup();
        let x = k.alloc_region(1024 * 8, 8).unwrap();
        let col = k.alloc_region(512 * 4, 4).unwrap();
        let indices = Arc::new((0..512u64).map(|i| (i * 7) % 1024).collect::<Vec<_>>());
        let g = k.remap_gather(&mut mc, x, 8, indices, col, 4).unwrap();
        assert_eq!(g.kind, "gather");
        assert_eq!(g.alias.len(), g.shadow.len());
        // The alias translates into the shadow region.
        let p = k.translate(g.alias.start()).unwrap();
        assert!(g.shadow.contains(p));
        assert!(mc.is_shadow(p));
        // Reading through the alias reaches DRAM.
        let done = mc.read_line(p, 0);
        assert!(done > 0);
        assert!(k.stats().remap_syscalls == 1);
    }

    #[test]
    fn strided_grant_packs_rows() {
        let (mut k, mut mc) = small_setup();
        // A 64x64 f64 matrix; remap a 8x8 tile (64-byte rows, 512-byte pitch).
        let m = k.alloc_region(64 * 64 * 8, 8).unwrap();
        let g = k
            .remap_strided(&mut mc, m.start(), 64, 512, 8, PAGE_SIZE)
            .unwrap();
        assert_eq!(g.kind, "strided");
        let p = k.translate(g.alias.start()).unwrap();
        assert!(mc.is_shadow(p));
        mc.read_line(p, 0);
        assert_eq!(mc.desc_stats().gathers, 1);
        // One 128-byte line = two 64-byte rows.
        assert_eq!(mc.desc_stats().dram_requests, 2);
    }

    #[test]
    fn retarget_strided_moves_window() {
        let (mut k, mut mc) = small_setup();
        let m = k.alloc_region(64 * 64 * 8, 8).unwrap();
        let mut g = k
            .remap_strided(&mut mc, m.start(), 64, 512, 8, PAGE_SIZE)
            .unwrap();
        let desc_before = g.desc;
        let pages = k
            .retarget_strided(&mut mc, &mut g, m.start().add(64), 64, 512, 8)
            .unwrap();
        assert!(pages > 0);
        let _ = desc_before; // slot may be reused; behaviour checked below
        let p = k.translate(g.alias.start()).unwrap();
        mc.read_line(p, 0);
        assert!(mc.descriptor(g.desc).is_some());
    }

    #[test]
    fn recolor_alias_hits_requested_colors_only() {
        let (mut k, mut mc) = small_setup();
        let x = k.alloc_region(28 * PAGE_SIZE, 1).unwrap();
        let colors: Vec<u64> = (0..16).collect();
        let g = k.remap_recolor(&mut mc, x, &colors).unwrap();
        assert_eq!(g.alias.page_count(), 28);
        for page in g.alias.blocks(PAGE_SIZE) {
            let bus = k.translate(page).unwrap();
            assert!(mc.is_shadow(bus));
            let color = bus.page_number() % 32;
            assert!(color < 16, "alias page landed on color {color}");
        }
        // Data is reachable through the recolored alias.
        let done = mc.read_line(k.translate(g.alias.start()).unwrap(), 0);
        assert!(done > 0);
    }

    #[test]
    fn recolor_rejects_bad_colors() {
        let (mut k, mut mc) = small_setup();
        let x = k.alloc_region(PAGE_SIZE, 1).unwrap();
        assert!(matches!(
            k.remap_recolor(&mut mc, x, &[]),
            Err(OsError::BadAlignment(_))
        ));
        assert!(matches!(
            k.remap_recolor(&mut mc, x, &[99]),
            Err(OsError::BadAlignment(_))
        ));
    }

    #[test]
    fn superpage_installs_single_span() {
        let (mut k, mut mc) = small_setup();
        // 8 pages, aligned to 8 pages.
        let r = k.alloc_region(8 * PAGE_SIZE, 8 * PAGE_SIZE).unwrap();
        let before = k.translate(r.start()).unwrap();
        let g = k.build_superpage(&mut mc, r).unwrap();
        let after = k.translate(r.start()).unwrap();
        assert_ne!(before, after, "pages must now point into shadow space");
        assert!(g.shadow.contains(after));
        let (base, span) = k.tlb_span(r.start().raw() >> PAGE_SHIFT);
        assert_eq!(span, 8);
        assert_eq!(base, r.start().raw() >> PAGE_SHIFT);
        // Addresses within the region remain readable.
        mc.read_line(k.translate(r.start().add(5 * PAGE_SIZE)).unwrap(), 0);
    }

    #[test]
    fn superpage_requires_alignment() {
        let (mut k, mut mc) = small_setup();
        let _pad = k.alloc_region(PAGE_SIZE, 1).unwrap();
        let r = k.alloc_region(8 * PAGE_SIZE, PAGE_SIZE).unwrap();
        if r.start().is_aligned(8 * PAGE_SIZE) {
            // Unlucky layout; skip rather than assert a tautology.
            return;
        }
        assert!(matches!(
            k.build_superpage(&mut mc, r),
            Err(OsError::BadAlignment(_))
        ));
    }

    #[test]
    fn release_remap_unmaps_alias() {
        let (mut k, mut mc) = small_setup();
        let x = k.alloc_region(PAGE_SIZE, 1).unwrap();
        let g = k.remap_recolor(&mut mc, x, &[0]).unwrap();
        k.release_remap(&mut mc, &g).unwrap();
        assert!(k.aspace().try_translate(g.alias.start()).is_none());
        assert!(mc.descriptor(g.desc).is_none());
        assert!(k.release_remap(&mut mc, &g).is_err());
    }

    #[test]
    fn processes_have_isolated_address_spaces() {
        let (mut k, _) = small_setup();
        let r0 = k.alloc_region(PAGE_SIZE, 1).unwrap();
        let child = k.spawn();
        assert_eq!(k.current(), Pid::INIT);
        k.switch(child).unwrap();
        // The child cannot see the parent's mapping.
        assert!(k.aspace().try_translate(r0.start()).is_none());
        // Its own allocation may reuse the same virtual addresses.
        let r1 = k.alloc_region(PAGE_SIZE, 1).unwrap();
        assert_eq!(
            r1.start(),
            r0.start(),
            "fresh address space starts at the same base"
        );
        k.switch(Pid::INIT).unwrap();
        // But the frames differ: no aliasing between processes.
        let f0 = k.translate(r0.start()).unwrap();
        k.switch(child).unwrap();
        let f1 = k.translate(r1.start()).unwrap();
        assert_ne!(f0, f1);
    }

    #[test]
    fn descriptor_ownership_is_enforced() {
        let (mut k, mut mc) = small_setup();
        let x = k.alloc_region(PAGE_SIZE, 8).unwrap();
        let grant = k.remap_recolor(&mut mc, x, &[0]).unwrap();
        let intruder = k.spawn();
        k.switch(intruder).unwrap();
        // Another process cannot release or share someone else's grant.
        assert_eq!(
            k.release_remap(&mut mc, &grant),
            Err(OsError::NotOwner(Pid::INIT))
        );
        assert_eq!(
            k.share_remap(&grant, intruder),
            Err(OsError::NotOwner(Pid::INIT))
        );
        // The owner still can.
        k.switch(Pid::INIT).unwrap();
        k.release_remap(&mut mc, &grant).unwrap();
    }

    #[test]
    fn shared_shadow_region_crosses_processes() {
        let (mut k, mut mc) = small_setup();
        let buf = k.alloc_region(4 * PAGE_SIZE, 8).unwrap();
        let grant = k.remap_recolor(&mut mc, buf, &[0, 1]).unwrap();
        let receiver = k.spawn();
        let rx_alias = k.share_remap(&grant, receiver).unwrap();

        // Sender view and receiver view reach the same shadow addresses.
        let tx_p = k.translate(grant.alias.start()).unwrap();
        k.switch(receiver).unwrap();
        let rx_p = k.translate(rx_alias.start()).unwrap();
        assert_eq!(tx_p, rx_p, "both views land on the same shadow page");
        assert!(mc.is_shadow(rx_p));
    }

    #[test]
    fn switch_to_unknown_process_fails() {
        // A Pid from one kernel is meaningless on another.
        let (mut k1, _) = small_setup();
        let foreign = k1.spawn();
        let (mut k2, _) = small_setup();
        assert_eq!(k2.switch(foreign), Err(OsError::NoSuchProcess(foreign)));
    }

    #[test]
    fn tlb_span_default_is_single_page() {
        let (k, _) = small_setup();
        assert_eq!(k.tlb_span(42), (42, 1));
    }

    #[test]
    fn gather_requires_element_alignment() {
        let (mut k, mut mc) = small_setup();
        let x = k.alloc_region(1024, 8).unwrap();
        let col = k.alloc_region(512, 4).unwrap();
        // Misaligned target: element size 8 but base offset 4.
        let bad = impulse_types::VRange::new(x.start().add(4), 512);
        let res = k.remap_gather(&mut mc, bad, 8, Arc::new(vec![0; 64]), col, 4);
        assert!(matches!(res, Err(OsError::BadAlignment(_))));
    }

    #[test]
    fn colored_allocation_can_exhaust_a_color() {
        let cfg = KernelConfig {
            dram_capacity: 40 * PAGE_SIZE,
            reserved_top: 0,
            ..KernelConfig::default()
        };
        let mut k = Kernel::new(cfg);
        // Only one frame of color 7 exists in 40 frames (colors mod 32).
        let _first = k.alloc_region_colored(PAGE_SIZE, 1, &[7]).unwrap();
        let second = k.alloc_region_colored(2 * PAGE_SIZE, 1, &[7]);
        assert!(matches!(second, Err(OsError::Phys(_))));
    }

    #[test]
    fn overlapping_shadow_regions_are_rejected() {
        let (mut k, mut mc) = small_setup();
        // Squat on the start of shadow space directly at the controller —
        // the kernel's next shadow allocation must collide with it.
        let squat = PRange::new(PAddr::new(1 << 24), 64 * PAGE_SIZE);
        mc.claim_descriptor(squat, RemapFn::strided(PvAddr::new(0), 8, 1024))
            .unwrap();
        let x = k.alloc_region(PAGE_SIZE, 1).unwrap();
        let res = k.remap_recolor(&mut mc, x, &[0]);
        assert!(
            matches!(res, Err(OsError::Mc(McError::RegionOverlap(_)))),
            "expected a RegionOverlap error, got {res:?}"
        );
    }

    #[test]
    fn shadow_space_exhaustion_is_a_typed_error() {
        let cfg = KernelConfig {
            dram_capacity: 1 << 24,
            reserved_top: 1 << 20,
            shadow_span: 2 * PAGE_SIZE, // a nearly-empty shadow pool
            ..KernelConfig::default()
        };
        let dram = Dram::new(DramConfig {
            capacity: cfg.dram_capacity,
            ..DramConfig::default()
        });
        let mut k = Kernel::new(cfg);
        let mut mc = MemController::new(dram, McConfig::default());
        let r = k.alloc_region(8 * PAGE_SIZE, 8 * PAGE_SIZE).unwrap();
        match k.build_superpage(&mut mc, r) {
            Err(OsError::ShadowExhausted {
                requested,
                available,
            }) => {
                assert_eq!(requested, 8 * PAGE_SIZE);
                assert_eq!(available, 2 * PAGE_SIZE);
            }
            other => panic!("expected ShadowExhausted, got {other:?}"),
        }
        // The failed call must not leak shadow space or descriptors.
        assert_eq!(k.stats().shadow_bytes, 0);
        // A request that fits the remaining pool still succeeds.
        let small = k.alloc_region(2 * PAGE_SIZE, 2 * PAGE_SIZE).unwrap();
        k.build_superpage(&mut mc, small).unwrap();
        assert_eq!(k.stats().shadow_bytes, 2 * PAGE_SIZE);
    }

    #[test]
    fn gather_index_out_of_bounds_is_rejected() {
        let (mut k, mut mc) = small_setup();
        // 128 elements of 8 bytes; index 128 is one past the end.
        let x = k.alloc_region(128 * 8, 8).unwrap();
        let col = k.alloc_region(512, 4).unwrap();
        let target = VRange::new(x.start(), 128 * 8);
        let indices = Arc::new(vec![0u64, 5, 128]);
        let res = k.remap_gather(&mut mc, target, 8, indices, col, 4);
        assert_eq!(
            res.err(),
            Some(OsError::IndexOutOfBounds {
                index: 128,
                limit: 128
            })
        );
    }

    #[test]
    fn strided_misuse_is_invalid_arg() {
        let (mut k, mut mc) = small_setup();
        let m = k.alloc_region(64 * 64 * 8, 8).unwrap();
        for (object_size, stride, count) in [(64, 512, 0), (64, 0, 8), (0, 512, 8)] {
            let res = k.remap_strided(&mut mc, m.start(), object_size, stride, count, PAGE_SIZE);
            assert!(
                matches!(res, Err(OsError::InvalidArg(_))),
                "({object_size},{stride},{count}) should be InvalidArg, got {res:?}"
            );
        }
        // An overflowing span is caught rather than wrapping.
        let res = k.remap_strided(&mut mc, m.start(), 64, u64::MAX / 2, 8, PAGE_SIZE);
        assert!(matches!(res, Err(OsError::InvalidArg(_))));
        // Misuse must not consume descriptor slots: a valid remap still works.
        k.remap_strided(&mut mc, m.start(), 64, 512, 8, PAGE_SIZE)
            .unwrap();
    }

    #[test]
    fn retarget_misuse_keeps_grant_alive() {
        let (mut k, mut mc) = small_setup();
        let m = k.alloc_region(64 * 64 * 8, 8).unwrap();
        let mut g = k
            .remap_strided(&mut mc, m.start(), 64, 512, 8, PAGE_SIZE)
            .unwrap();
        // Invalid retarget parameters are rejected *before* the old
        // descriptor is released, so the working grant survives.
        let res = k.retarget_strided(&mut mc, &mut g, m.start(), 64, 0, 8);
        assert!(matches!(res, Err(OsError::InvalidArg(_))));
        assert!(mc.descriptor(g.desc).is_some());
        mc.read_line(k.translate(g.alias.start()).unwrap(), 0);
    }

    #[test]
    fn superpage_release_restores_mappings() {
        let (mut k, mut mc) = small_setup();
        let r = k.alloc_region(8 * PAGE_SIZE, 8 * PAGE_SIZE).unwrap();
        let before = k.translate(r.start()).unwrap();
        let g = k.build_superpage(&mut mc, r).unwrap();
        assert_eq!(g.kind, "superpage");
        assert_ne!(k.translate(r.start()).unwrap(), before);
        k.release_remap(&mut mc, &g).unwrap();
        assert_eq!(k.translate(r.start()).unwrap(), before);
        assert_eq!(k.tlb_span(r.start().raw() >> 12).1, 1);
    }

    #[test]
    fn release_revokes_shared_receiver_alias_transitively() {
        let (mut k, mut mc) = small_setup();
        let buf = k.alloc_region(2 * PAGE_SIZE, 8).unwrap();
        let grant = k.remap_recolor(&mut mc, buf, &[0]).unwrap();
        let receiver = k.spawn();
        let rx_alias = k.share_remap(&grant, receiver).unwrap();
        k.switch(receiver).unwrap();
        assert!(k.translate(rx_alias.start()).is_ok());
        k.switch(Pid::INIT).unwrap();

        // Release is a transitive revocation: the receiver's alias pages
        // go stale together with the owner's (the stale-shared-alias
        // leak regression).
        let out = k.release_remap(&mut mc, &grant).unwrap();
        assert!(out.caps_revoked >= 2, "root + derived alias revoked");
        assert!(out.pages_unmapped >= grant.alias.page_count() + rx_alias.page_count());
        assert!(out.cycles > 0, "revocation walk must charge cycles");

        k.switch(receiver).unwrap();
        for page in rx_alias.blocks(PAGE_SIZE) {
            match k.translate(page) {
                Err(OsError::RevokedCapability { stale, current, .. }) => {
                    assert!(current > stale, "generation must have advanced");
                }
                other => panic!("expected RevokedCapability, got {other:?}"),
            }
        }
    }

    #[test]
    fn double_release_reports_stale_generation() {
        let (mut k, mut mc) = small_setup();
        let x = k.alloc_region(PAGE_SIZE, 1).unwrap();
        let g = k.remap_recolor(&mut mc, x, &[0]).unwrap();
        k.release_remap(&mut mc, &g).unwrap();
        match k.release_remap(&mut mc, &g) {
            Err(OsError::RevokedCapability { stale, current, .. }) => {
                assert_eq!(stale, g.cap.generation);
                assert!(current > stale);
            }
            other => panic!("expected RevokedCapability, got {other:?}"),
        }
    }

    #[test]
    fn retarget_rollback_survives_a_full_descriptor_table() {
        let (mut k, mut mc) = small_setup();
        let m = k.alloc_region(64 * 64 * 8, 8).unwrap();
        let mut g = k
            .remap_strided(&mut mc, m.start(), 64, 512, 8, PAGE_SIZE)
            .unwrap();
        // Occupy every remaining descriptor slot so the rollback must
        // reuse the very slot the failed retarget just freed.
        let mut fillers = Vec::new();
        loop {
            let r = k.alloc_region(PAGE_SIZE, 1).unwrap();
            match k.remap_recolor(&mut mc, r, &[0]) {
                Ok(f) => fillers.push(f),
                Err(OsError::Mc(McError::NoFreeDescriptor)) => break,
                Err(e) => panic!("unexpected fill error: {e:?}"),
            }
        }
        // stride < object_size passes the syscall's span check but fails
        // descriptor validation *after* the old descriptor was released:
        // the error path must restore it, not leave the grant dangling.
        let res = k.retarget_strided(&mut mc, &mut g, m.start(), 64, 32, 8);
        assert!(matches!(res, Err(OsError::Mc(McError::BadDescriptor(_)))));
        assert!(mc.descriptor(g.desc).is_some(), "old descriptor restored");
        mc.read_line(k.translate(g.alias.start()).unwrap(), 0);
        // A valid retarget and the eventual release still work.
        let pages = k
            .retarget_strided(&mut mc, &mut g, m.start().add(64), 64, 512, 8)
            .unwrap();
        assert!(pages > 0);
        k.release_remap(&mut mc, &g).unwrap();
        for f in &fillers {
            k.release_remap(&mut mc, f).unwrap();
        }
    }

    #[test]
    fn snapshot_round_trips_sharing_state_and_tombstones() {
        let (mut k, mut mc) = small_setup();
        let buf = k.alloc_region(2 * PAGE_SIZE, 8).unwrap();
        let live = k.remap_recolor(&mut mc, buf, &[0]).unwrap();
        let doomed_buf = k.alloc_region(PAGE_SIZE, 8).unwrap();
        let doomed = k.remap_recolor(&mut mc, doomed_buf, &[1]).unwrap();
        let receiver = k.spawn();
        let (rx_alias, rx_cap) = k.share_remap_cap(&live, receiver).unwrap();
        let (dead_alias, _) = k.share_remap_cap(&doomed, receiver).unwrap();
        // Leave tombstones behind in the receiver's process entry.
        k.release_remap(&mut mc, &doomed).unwrap();

        let mut w = SnapWriter::new();
        k.snap_save(&mut w);
        let img = w.finish();

        let mut k2 = Kernel::new(*k.config());
        let mut r = SnapReader::new(&img);
        k2.snap_load(&mut r).unwrap();
        r.finish().unwrap();

        // Re-serialization is bit-exact.
        let mut w2 = SnapWriter::new();
        k2.snap_save(&mut w2);
        assert_eq!(img, w2.finish(), "snapshot must round-trip bit-exactly");

        // The live share still validates; tombstones still classify.
        assert!(k2.caps_mut().validate(rx_cap, None).is_ok());
        k2.switch(receiver).unwrap();
        assert!(k2.translate(rx_alias.start()).is_ok());
        assert!(matches!(
            k2.translate(dead_alias.start()),
            Err(OsError::RevokedCapability { .. })
        ));

        // Post-restore revocation behaves exactly like pre-snapshot:
        // releasing the live grant tears the receiver alias down too.
        k2.switch(Pid::INIT).unwrap();
        k2.release_remap(&mut mc, &live).unwrap();
        k2.switch(receiver).unwrap();
        assert!(matches!(
            k2.translate(rx_alias.start()),
            Err(OsError::RevokedCapability { .. })
        ));
    }
}
