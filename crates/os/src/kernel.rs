//! The OS model: region allocation and the Impulse remapping system calls.
//!
//! Section 2.1 of the paper describes the remapping protocol. For the
//! diagonal example the OS (1) accepts an application request for a new
//! virtual alias, (2) allocates shadow addresses from the pool of physical
//! addresses not backed by DRAM, (3) downloads the shadow→pseudo-virtual
//! mapping function to the controller, (4) downloads page mappings for the
//! pseudo-virtual space, and (5) maps the virtual alias onto the shadow
//! region and flushes the original data from the caches.
//!
//! [`Kernel`] implements steps 1–5 as resource management; the *timing* of
//! the system calls (trap overhead, per-page download cost, cache-flush
//! cost) is charged by the system model in `impulse-sim`, which is also
//! responsible for performing the flushes against its caches. Shadow
//! addresses and virtual addresses are both system resources managed here,
//! preserving inter-process protection exactly as the paper requires.

use std::sync::Arc;

use impulse_core::{DescId, McError, MemController, RemapFn};
use impulse_types::geom::{round_up, PAGE_SHIFT, PAGE_SIZE};
use impulse_types::{Cycle, MAddr, PAddr, PRange, PvAddr, VAddr, VRange};

use crate::phys::{AllocPolicy, PhysError, PhysMem};
use crate::vm::{AddressSpace, VmError};

/// A process identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(u32);

impl Pid {
    /// The boot process.
    pub const INIT: Pid = Pid(0);

    /// Raw id.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl core::fmt::Display for Pid {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Errors surfaced by kernel operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OsError {
    /// Physical frame allocation failed.
    Phys(PhysError),
    /// Virtual memory operation failed.
    Vm(VmError),
    /// The memory controller rejected a descriptor operation.
    Mc(McError),
    /// A request violated an alignment requirement.
    BadAlignment(&'static str),
    /// The remap target contains shadow pages already (double remap).
    TargetNotPhysical(VAddr),
    /// The calling process does not own the resource (inter-process
    /// protection: shadow regions and descriptors are per-process).
    NotOwner(Pid),
    /// The process id does not exist.
    NoSuchProcess(Pid),
}

impl core::fmt::Display for OsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OsError::Phys(e) => write!(f, "physical allocation failed: {e}"),
            OsError::Vm(e) => write!(f, "virtual memory error: {e}"),
            OsError::Mc(e) => write!(f, "memory controller error: {e}"),
            OsError::BadAlignment(what) => write!(f, "bad alignment: {what}"),
            OsError::TargetNotPhysical(v) => {
                write!(f, "remap target {v:?} is not backed by physical memory")
            }
            OsError::NotOwner(p) => {
                write!(f, "resource is owned by another process ({p})")
            }
            OsError::NoSuchProcess(p) => write!(f, "no such process: {p}"),
        }
    }
}

impl std::error::Error for OsError {}

impl From<PhysError> for OsError {
    fn from(e: PhysError) -> Self {
        OsError::Phys(e)
    }
}
impl From<VmError> for OsError {
    fn from(e: VmError) -> Self {
        OsError::Vm(e)
    }
}
impl From<McError> for OsError {
    fn from(e: McError) -> Self {
        OsError::Mc(e)
    }
}

/// Cost model for kernel entry and remap setup, in CPU cycles. Charged by
/// the system model around each system call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyscallCosts {
    /// Fixed trap + kernel entry/exit cost.
    pub t_trap: Cycle,
    /// Cost per page mapping downloaded to the controller or installed in
    /// the MMU.
    pub t_per_page: Cycle,
    /// Cost per cache line flushed or purged during remap consistency
    /// actions.
    pub t_per_flush_line: Cycle,
}

impl Default for SyscallCosts {
    fn default() -> Self {
        Self {
            t_trap: 500,
            t_per_page: 20,
            t_per_flush_line: 4,
        }
    }
}

/// Kernel configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelConfig {
    /// Installed DRAM capacity in bytes (must match the controller's DRAM).
    pub dram_capacity: u64,
    /// Bytes reserved at the top of DRAM for the controller page table.
    pub reserved_top: u64,
    /// Frame placement policy for ordinary allocations.
    pub policy: AllocPolicy,
    /// Number of page colors in the physically-indexed L2
    /// (`l2_size / ways / page_size`; 32 for the Paint L2).
    pub l2_colors: u64,
    /// System call cost model.
    pub costs: SyscallCosts,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self {
            dram_capacity: 1 << 30,
            reserved_top: 1 << 20,
            policy: AllocPolicy::Sequential,
            l2_colors: 32,
            costs: SyscallCosts::default(),
        }
    }
}

/// What a remapping system call granted: the new virtual alias, the shadow
/// region behind it, the descriptor serving it, and the setup volume (for
/// cost accounting).
#[derive(Clone, Debug)]
pub struct RemapGrant {
    /// The virtual alias the application should use.
    pub alias: VRange,
    /// The shadow region the alias maps to.
    pub shadow: PRange,
    /// The controller descriptor serving the region.
    pub desc: DescId,
    /// Remap flavour ("gather", "strided", "direct").
    pub kind: &'static str,
    /// Page mappings installed (MMU + controller) during setup.
    pub pages_installed: u64,
}

/// Kernel statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Remapping system calls served.
    pub remap_syscalls: u64,
    /// Total page mappings downloaded to the controller.
    pub controller_pages: u64,
    /// Shadow bytes allocated.
    pub shadow_bytes: u64,
}

/// One process: its address space and superpage registrations.
#[derive(Clone, Debug, Default)]
struct Process {
    aspace: AddressSpace,
    superpages: Vec<(u64, u64)>, // (base vpage, span in pages)
    /// Allocated regions, for the online superpage-promotion policy.
    regions: Vec<VRange>,
    /// TLB-miss counts per region (parallel to `regions`).
    tlb_misses: Vec<u64>,
}

/// The operating system model.
///
/// Multi-process: each process has its own virtual address space, and
/// remapping grants are *owned* — only the creating process may release,
/// retarget, or share them. This is the inter-process protection the
/// paper's system-call design promises (Section 2.1).
#[derive(Clone, Debug)]
pub struct Kernel {
    cfg: KernelConfig,
    phys: PhysMem,
    procs: Vec<Process>,
    current: usize,
    shadow_next: u64,
    /// Descriptor slot → owning process.
    desc_owner: impulse_types::FxHashMap<usize, usize>,
    stats: KernelStats,
}

impl Kernel {
    /// Boots a kernel.
    pub fn new(cfg: KernelConfig) -> Self {
        Self {
            phys: PhysMem::new(cfg.dram_capacity, cfg.reserved_top, cfg.policy),
            procs: vec![Process::default()],
            current: 0,
            shadow_next: cfg.dram_capacity,
            desc_owner: impulse_types::FxHashMap::default(),
            stats: KernelStats::default(),
            cfg,
        }
    }

    /// Creates a new (empty) process and returns its id. The current
    /// process is unchanged.
    pub fn spawn(&mut self) -> Pid {
        self.procs.push(Process::default());
        Pid(self.procs.len() as u32 - 1)
    }

    /// The currently-running process.
    pub fn current(&self) -> Pid {
        Pid(self.current as u32)
    }

    /// Switches the current process.
    ///
    /// # Errors
    ///
    /// Fails if `pid` was never spawned.
    pub fn switch(&mut self, pid: Pid) -> Result<(), OsError> {
        if (pid.0 as usize) < self.procs.len() {
            self.current = pid.0 as usize;
            Ok(())
        } else {
            Err(OsError::NoSuchProcess(pid))
        }
    }

    fn check_owner(&self, desc: DescId) -> Result<(), OsError> {
        match self.desc_owner.get(&desc.index()) {
            Some(&owner) if owner == self.current => Ok(()),
            Some(&owner) => Err(OsError::NotOwner(Pid(owner as u32))),
            None => Ok(()), // never granted through this kernel: MC will reject
        }
    }

    /// The configuration the kernel booted with.
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// The current process's address space (read-only).
    pub fn aspace(&self) -> &AddressSpace {
        &self.procs[self.current].aspace
    }

    fn aspace_mut(&mut self) -> &mut AddressSpace {
        &mut self.procs[self.current].aspace
    }

    /// Translates a virtual address (MMU behaviour).
    ///
    /// # Panics
    ///
    /// Panics on unmapped addresses.
    #[inline]
    pub fn translate(&self, v: VAddr) -> PAddr {
        self.aspace().translate(v)
    }

    /// Allocates and maps an ordinary region of `bytes`, returning its
    /// virtual range.
    ///
    /// # Errors
    ///
    /// Fails when physical memory is exhausted.
    pub fn alloc_region(&mut self, bytes: u64, align: u64) -> Result<VRange, OsError> {
        let range = self.aspace_mut().reserve(bytes, align);
        for block in range.blocks(PAGE_SIZE) {
            let frame = self.phys.alloc()?;
            self.aspace_mut().map_page(block, PAddr::new(frame.raw()))?;
        }
        let proc = &mut self.procs[self.current];
        proc.regions.push(range);
        proc.tlb_misses.push(0);
        Ok(range)
    }

    /// Online superpage promotion (the "dynamically build superpages" of
    /// Section 6): records a TLB miss at `v` and returns a region that
    /// has crossed `threshold` misses and is *promotable* — multi-page,
    /// span-aligned, and not already covered by a superpage. The caller
    /// (the system model) performs the actual promotion system call.
    pub fn note_tlb_miss(&mut self, v: VAddr, threshold: u64) -> Option<VRange> {
        let current = self.current;
        let proc = &mut self.procs[current];
        let idx = proc.regions.iter().position(|r| r.contains(v))?;
        proc.tlb_misses[idx] += 1;
        if proc.tlb_misses[idx] != threshold {
            return None;
        }
        let region = proc.regions[idx];
        let pages = region.page_count();
        if pages < 2 {
            return None;
        }
        let span = pages.next_power_of_two();
        let vpage = region.start().raw() >> PAGE_SHIFT;
        if !region.start().is_aligned(span * PAGE_SIZE) {
            return None; // not span-aligned; a fancier policy would split
        }
        if proc.superpages.iter().any(|&(b, _)| b == vpage) {
            return None;
        }
        Some(region)
    }

    /// Allocates a region whose frames all have page colors from `colors`
    /// — the *copying* way to control placement, for baselines.
    ///
    /// # Errors
    ///
    /// Fails when no frame of an acceptable color remains.
    pub fn alloc_region_colored(
        &mut self,
        bytes: u64,
        align: u64,
        colors: &[u64],
    ) -> Result<VRange, OsError> {
        let range = self.aspace_mut().reserve(bytes, align);
        for block in range.blocks(PAGE_SIZE) {
            let frame = self.phys.alloc_colored(colors, self.cfg.l2_colors)?;
            self.aspace_mut().map_page(block, PAddr::new(frame.raw()))?;
        }
        Ok(range)
    }

    /// Allocates a shadow range (bus addresses with no DRAM behind them).
    fn alloc_shadow(&mut self, bytes: u64, align: u64) -> PRange {
        let start = round_up(self.shadow_next, align.max(PAGE_SIZE));
        let len = round_up(bytes.max(1), PAGE_SIZE);
        self.shadow_next = start + len;
        self.stats.shadow_bytes += len;
        PRange::new(PAddr::new(start), len)
    }

    /// Real DRAM frame backing a mapped virtual page.
    fn frame_of(&self, v: VAddr) -> Result<MAddr, OsError> {
        let p = self.aspace().translate(v.page_base());
        if p.raw() >= self.cfg.dram_capacity {
            return Err(OsError::TargetNotPhysical(v));
        }
        Ok(MAddr::new(p.raw()))
    }

    /// Downloads controller page mappings for every *mapped* page in
    /// `[base, base + len)` of the virtual space, mirroring it into
    /// pseudo-virtual space (pv address = virtual address). Unmapped holes
    /// are skipped: a gather target may legitimately span several
    /// disjoint buffers (e.g. IPC message pieces), but at least one page
    /// must be mapped.
    fn download_target_pages(
        &mut self,
        mc: &mut MemController,
        base: VAddr,
        len: u64,
    ) -> Result<u64, OsError> {
        let range = VRange::new(base, len);
        let mut n = 0;
        for page in range.blocks(PAGE_SIZE) {
            if self.aspace().try_translate(page).is_none() {
                continue;
            }
            let frame = self.frame_of(page)?;
            mc.map_page(page.raw() >> PAGE_SHIFT, frame);
            n += 1;
        }
        if n == 0 {
            return Err(OsError::TargetNotPhysical(base));
        }
        self.stats.controller_pages += n;
        Ok(n)
    }

    /// Maps a fresh virtual alias 1:1 onto a shadow region, with the
    /// requested virtual alignment and phase (cache-placement control).
    fn map_alias(&mut self, shadow: PRange, align: u64, phase: u64) -> Result<VRange, OsError> {
        let alias = self.aspace_mut().reserve_phased(shadow.len(), align, phase);
        let mut s = shadow.start();
        for page in alias.blocks(PAGE_SIZE) {
            self.aspace_mut().map_page(page, s)?;
            s = s.add(PAGE_SIZE);
        }
        Ok(alias)
    }

    /// System call: scatter/gather remapping. Creates an alias `x'` such
    /// that `x'[k] = target[indices[k]]` for `elem_size`-byte elements,
    /// with the indirection vector (`index_region`, entries of
    /// `index_bytes`) read at the memory controller.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use impulse_core::{McConfig, MemController};
    /// use impulse_dram::{Dram, DramConfig};
    /// use impulse_os::{Kernel, KernelConfig};
    ///
    /// let kcfg = KernelConfig::default();
    /// let dram = Dram::new(DramConfig { capacity: kcfg.dram_capacity, ..DramConfig::default() });
    /// let mut mc = MemController::new(dram, McConfig::default());
    /// let mut kernel = Kernel::new(kcfg);
    ///
    /// let x = kernel.alloc_region(1024 * 8, 8)?;
    /// let column = kernel.alloc_region(512 * 4, 4)?;
    /// let indices = Arc::new((0..512u64).map(|i| (i * 7) % 1024).collect::<Vec<_>>());
    /// let grant = kernel.remap_gather(&mut mc, x, 8, indices, column, 4)?;
    /// // The alias is backed by shadow addresses the controller serves.
    /// assert!(mc.is_shadow(kernel.translate(grant.alias.start())));
    /// # Ok::<(), impulse_os::OsError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Fails if the target is misaligned, descriptors are exhausted, or
    /// any page involved is not physically backed.
    pub fn remap_gather(
        &mut self,
        mc: &mut MemController,
        target: VRange,
        elem_size: u64,
        indices: Arc<Vec<u64>>,
        index_region: VRange,
        index_bytes: u64,
    ) -> Result<RemapGrant, OsError> {
        self.remap_gather_aligned(
            mc,
            target,
            elem_size,
            indices,
            index_region,
            index_bytes,
            0,
            0,
        )
    }

    /// Like [`Kernel::remap_gather`], but places the alias at virtual
    /// `phase` modulo `align` — step 1 of the paper's protocol: "to
    /// improve L1 cache utilization, an application can allocate virtual
    /// addresses with appropriate alignment and offset characteristics"
    /// (so a gathered stream does not conflict with the stream it is
    /// consumed alongside in a virtually-indexed cache).
    ///
    /// # Errors
    ///
    /// As [`Kernel::remap_gather`].
    #[allow(clippy::too_many_arguments)]
    pub fn remap_gather_aligned(
        &mut self,
        mc: &mut MemController,
        target: VRange,
        elem_size: u64,
        indices: Arc<Vec<u64>>,
        index_region: VRange,
        index_bytes: u64,
        alias_align: u64,
        alias_phase: u64,
    ) -> Result<RemapGrant, OsError> {
        if !target.start().is_aligned(elem_size) {
            return Err(OsError::BadAlignment(
                "gather target must be element-aligned",
            ));
        }
        let line = mc.config().line_bytes;
        let image_bytes = round_up(indices.len() as u64 * elem_size, line);
        let shadow = self.alloc_shadow(image_bytes, PAGE_SIZE);

        let remap = RemapFn::gather(
            PvAddr::new(target.start().raw()),
            elem_size,
            indices,
            PvAddr::new(index_region.start().raw()),
            index_bytes,
        );
        let desc = mc.claim_descriptor(shadow, remap)?;
        self.desc_owner.insert(desc.index(), self.current);
        let mut pages = self.download_target_pages(mc, target.start(), target.len())?;
        pages += self.download_target_pages(mc, index_region.start(), index_region.len())?;
        let alias = self.map_alias(shadow, alias_align.max(PAGE_SIZE), alias_phase)?;
        pages += alias.page_count();

        self.stats.remap_syscalls += 1;
        Ok(RemapGrant {
            alias,
            shadow,
            desc,
            kind: "gather",
            pages_installed: pages,
        })
    }

    /// System call: strided remapping. Packs `count` objects of
    /// `object_size` bytes, spaced `stride` bytes apart starting at
    /// `base`, into a dense alias.
    ///
    /// # Errors
    ///
    /// Fails on exhausted descriptors or unbacked target pages.
    pub fn remap_strided(
        &mut self,
        mc: &mut MemController,
        base: VAddr,
        object_size: u64,
        stride: u64,
        count: u64,
        alias_align: u64,
    ) -> Result<RemapGrant, OsError> {
        let line = mc.config().line_bytes;
        let image_bytes = round_up(count * object_size, line);
        let shadow = self.alloc_shadow(image_bytes, PAGE_SIZE);

        let remap = RemapFn::strided(PvAddr::new(base.raw()), object_size, stride);
        let desc = mc.claim_descriptor(shadow, remap)?;
        self.desc_owner.insert(desc.index(), self.current);
        let span = (count - 1) * stride + object_size;
        let mut pages = self.download_target_pages(mc, base, span)?;
        let alias = self.map_alias(shadow, alias_align, 0)?;
        pages += alias.page_count();

        self.stats.remap_syscalls += 1;
        Ok(RemapGrant {
            alias,
            shadow,
            desc,
            kind: "strided",
            pages_installed: pages,
        })
    }

    /// Retargets an existing strided grant at a new base address (e.g.
    /// pointing the tile alias at the next tile). Reuses the shadow region
    /// and alias; replaces the descriptor and downloads fresh page
    /// mappings. Returns the number of page mappings downloaded.
    ///
    /// # Errors
    ///
    /// Fails if the grant's descriptor cannot be replaced or pages are
    /// unbacked.
    pub fn retarget_strided(
        &mut self,
        mc: &mut MemController,
        grant: &mut RemapGrant,
        new_base: VAddr,
        object_size: u64,
        stride: u64,
        count: u64,
    ) -> Result<u64, OsError> {
        self.check_owner(grant.desc)?;
        mc.release_descriptor(grant.desc)?;
        self.desc_owner.remove(&grant.desc.index());
        let remap = RemapFn::strided(PvAddr::new(new_base.raw()), object_size, stride);
        grant.desc = mc.claim_descriptor(grant.shadow, remap)?;
        self.desc_owner.insert(grant.desc.index(), self.current);
        let span = (count - 1) * stride + object_size;
        let pages = self.download_target_pages(mc, new_base, span)?;
        self.stats.remap_syscalls += 1;
        Ok(pages)
    }

    /// System call: no-copy page recoloring. Creates an alias of `target`
    /// whose bus addresses fall only on the given L2 page `colors`, so the
    /// aliased data occupies exactly that slice of a physically-indexed
    /// cache — without copying any data.
    ///
    /// # Errors
    ///
    /// Fails if `colors` is empty or contains an out-of-range color, or on
    /// descriptor exhaustion.
    pub fn remap_recolor(
        &mut self,
        mc: &mut MemController,
        target: VRange,
        colors: &[u64],
    ) -> Result<RemapGrant, OsError> {
        if colors.is_empty() {
            return Err(OsError::BadAlignment("recolor needs at least one color"));
        }
        let nc = self.cfg.l2_colors;
        if colors.iter().any(|&c| c >= nc) {
            return Err(OsError::BadAlignment("color out of range"));
        }
        let n = target.page_count();
        let cycles = n.div_ceil(colors.len() as u64);
        let region_pages = cycles * nc;
        // Align the shadow region to a full color cycle so that page k of
        // the region has color k mod l2_colors.
        let shadow = self.alloc_shadow(region_pages * PAGE_SIZE, nc * PAGE_SIZE);

        let pv_base = PvAddr::new(shadow.start().raw());
        let desc = mc.claim_descriptor(shadow, RemapFn::direct(pv_base))?;
        self.desc_owner.insert(desc.index(), self.current);

        let alias = self.aspace_mut().reserve(n * PAGE_SIZE, PAGE_SIZE);
        let mut pages = 0;
        for (i, (alias_page, target_page)) in alias
            .blocks(PAGE_SIZE)
            .zip(target.blocks(PAGE_SIZE))
            .enumerate()
        {
            let i = i as u64;
            let color = colors[(i % colors.len() as u64) as usize];
            let slot = (i / colors.len() as u64) * nc + color;
            let shadow_page = shadow.start().add(slot * PAGE_SIZE);
            debug_assert_eq!(shadow_page.page_number() % nc, color);
            self.aspace_mut().map_page(alias_page, shadow_page)?;
            let frame = self.frame_of(target_page)?;
            mc.map_page(pv_base.add(slot * PAGE_SIZE).raw() >> PAGE_SHIFT, frame);
            pages += 2;
        }
        self.stats.controller_pages += n;
        self.stats.remap_syscalls += 1;
        Ok(RemapGrant {
            alias,
            shadow,
            desc,
            kind: "direct",
            pages_installed: pages,
        })
    }

    /// System call: build a superpage. Re-points the virtual pages of
    /// `target` (which must be aligned to its power-of-two page count) at
    /// a contiguous shadow region backed by the *original, possibly
    /// scattered* frames, and registers a single TLB entry spanning the
    /// whole range (Swanson et al., ISCA '98).
    ///
    /// # Errors
    ///
    /// Fails if `target` is not aligned to its superpage span.
    pub fn build_superpage(
        &mut self,
        mc: &mut MemController,
        target: VRange,
    ) -> Result<RemapGrant, OsError> {
        let n = target.page_count();
        let span = n.next_power_of_two();
        let base_vpage = target.start().raw() >> PAGE_SHIFT;
        if !target.start().is_aligned(span * PAGE_SIZE) {
            return Err(OsError::BadAlignment(
                "superpage target must be aligned to its span",
            ));
        }
        let shadow = self.alloc_shadow(span * PAGE_SIZE, span * PAGE_SIZE);
        let pv_base = PvAddr::new(shadow.start().raw());
        let desc = mc.claim_descriptor(shadow, RemapFn::direct(pv_base))?;
        self.desc_owner.insert(desc.index(), self.current);

        let mut pages = 0;
        for (i, target_page) in target.blocks(PAGE_SIZE).enumerate() {
            let i = i as u64;
            let frame = self.frame_of(target_page)?;
            let shadow_page = shadow.start().add(i * PAGE_SIZE);
            self.aspace_mut().remap_page(target_page, shadow_page)?;
            mc.map_page(pv_base.add(i * PAGE_SIZE).raw() >> PAGE_SHIFT, frame);
            pages += 2;
        }
        self.procs[self.current].superpages.push((base_vpage, span));
        self.stats.controller_pages += n;
        self.stats.remap_syscalls += 1;
        Ok(RemapGrant {
            alias: target,
            shadow,
            desc,
            kind: "superpage",
            pages_installed: pages,
        })
    }

    /// Releases a remapping: frees the descriptor and unmaps the alias
    /// pages (shadow addresses are not recycled; the space is vast).
    ///
    /// Superpage grants are special: their "alias" *is* the original
    /// virtual range, re-pointed at shadow space, so releasing one
    /// restores the original frame mappings instead of unmapping.
    ///
    /// # Errors
    ///
    /// Fails if the descriptor was already released.
    pub fn release_remap(
        &mut self,
        mc: &mut MemController,
        grant: &RemapGrant,
    ) -> Result<(), OsError> {
        self.check_owner(grant.desc)?;
        if grant.kind == "superpage" {
            // Recover each page's frame through the still-configured
            // descriptor, then re-point the virtual page at it.
            if mc.descriptor(grant.desc).is_none() {
                return Err(OsError::Mc(McError::InvalidDescriptor(grant.desc.index())));
            }
            for page in grant.alias.blocks(PAGE_SIZE) {
                if let Some(shadow_p) = self.aspace().try_translate(page) {
                    if grant.shadow.contains(shadow_p) {
                        let frame = mc
                            .resolve_shadow(shadow_p)
                            .ok_or(OsError::TargetNotPhysical(page))?;
                        self.aspace_mut()
                            .remap_page(page, PAddr::new(frame.raw()))?;
                    }
                }
            }
            let base_vpage = grant.alias.start().raw() >> PAGE_SHIFT;
            self.procs[self.current]
                .superpages
                .retain(|&(b, _)| b != base_vpage);
            mc.release_descriptor(grant.desc)?;
            self.desc_owner.remove(&grant.desc.index());
            return Ok(());
        }
        mc.release_descriptor(grant.desc)?;
        self.desc_owner.remove(&grant.desc.index());
        for page in grant.alias.blocks(PAGE_SIZE) {
            if self
                .aspace()
                .try_translate(page)
                .is_some_and(|p| grant.shadow.contains(p))
            {
                self.aspace_mut().unmap_page(page)?;
            }
        }
        Ok(())
    }

    /// Maps an existing grant's shadow region into another process's
    /// address space — the shared-shadow no-copy IPC of the paper's
    /// conclusions ("fast local IPC mechanisms, such as LRPC, use shared
    /// memory to map buffers into sender and receiver address spaces").
    /// Only the owning process may share; the receiving process gets its
    /// own read alias.
    ///
    /// # Errors
    ///
    /// Fails if the caller does not own the grant or `with` does not
    /// exist.
    pub fn share_remap(&mut self, grant: &RemapGrant, with: Pid) -> Result<VRange, OsError> {
        self.check_owner(grant.desc)?;
        let target = with.0 as usize;
        if target >= self.procs.len() {
            return Err(OsError::NoSuchProcess(with));
        }
        let proc = &mut self.procs[target];
        let alias = proc.aspace.reserve(grant.shadow.len(), PAGE_SIZE);
        let mut s = grant.shadow.start();
        for page in alias.blocks(PAGE_SIZE) {
            proc.aspace.map_page(page, s)?;
            s = s.add(PAGE_SIZE);
        }
        Ok(alias)
    }

    /// TLB reach for a virtual page: its superpage `(base_vpage, span)` if
    /// one covers it, else `(vpage, 1)`. The system model uses this when
    /// refilling its TLB.
    pub fn tlb_span(&self, vpage: u64) -> (u64, u64) {
        for &(base, span) in &self.procs[self.current].superpages {
            if vpage >= base && vpage < base + span {
                return (base, span);
            }
        }
        (vpage, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impulse_core::McConfig;
    use impulse_dram::{Dram, DramConfig};

    fn small_setup() -> (Kernel, MemController) {
        let cfg = KernelConfig {
            dram_capacity: 1 << 24, // 16 MB to keep tests light
            reserved_top: 1 << 20,
            ..KernelConfig::default()
        };
        let dram = Dram::new(DramConfig {
            capacity: cfg.dram_capacity,
            ..DramConfig::default()
        });
        (
            Kernel::new(cfg),
            MemController::new(dram, McConfig::default()),
        )
    }

    #[test]
    fn alloc_region_maps_every_page() {
        let (mut k, _) = small_setup();
        let r = k.alloc_region(3 * PAGE_SIZE + 5, 1).unwrap();
        assert_eq!(r.page_count(), 4);
        for page in r.blocks(PAGE_SIZE) {
            assert!(k.aspace().try_translate(page).is_some());
        }
    }

    #[test]
    fn colored_alloc_gets_requested_colors() {
        let (mut k, _) = small_setup();
        let r = k.alloc_region_colored(4 * PAGE_SIZE, 1, &[2, 9]).unwrap();
        for page in r.blocks(PAGE_SIZE) {
            let color = k.translate(page).page_number() % 32;
            assert!(color == 2 || color == 9, "got color {color}");
        }
    }

    #[test]
    fn gather_grant_roundtrip() {
        let (mut k, mut mc) = small_setup();
        let x = k.alloc_region(1024 * 8, 8).unwrap();
        let col = k.alloc_region(512 * 4, 4).unwrap();
        let indices = Arc::new((0..512u64).map(|i| (i * 7) % 1024).collect::<Vec<_>>());
        let g = k.remap_gather(&mut mc, x, 8, indices, col, 4).unwrap();
        assert_eq!(g.kind, "gather");
        assert_eq!(g.alias.len(), g.shadow.len());
        // The alias translates into the shadow region.
        let p = k.translate(g.alias.start());
        assert!(g.shadow.contains(p));
        assert!(mc.is_shadow(p));
        // Reading through the alias reaches DRAM.
        let done = mc.read_line(p, 0);
        assert!(done > 0);
        assert!(k.stats().remap_syscalls == 1);
    }

    #[test]
    fn strided_grant_packs_rows() {
        let (mut k, mut mc) = small_setup();
        // A 64x64 f64 matrix; remap a 8x8 tile (64-byte rows, 512-byte pitch).
        let m = k.alloc_region(64 * 64 * 8, 8).unwrap();
        let g = k
            .remap_strided(&mut mc, m.start(), 64, 512, 8, PAGE_SIZE)
            .unwrap();
        assert_eq!(g.kind, "strided");
        let p = k.translate(g.alias.start());
        assert!(mc.is_shadow(p));
        mc.read_line(p, 0);
        assert_eq!(mc.desc_stats().gathers, 1);
        // One 128-byte line = two 64-byte rows.
        assert_eq!(mc.desc_stats().dram_requests, 2);
    }

    #[test]
    fn retarget_strided_moves_window() {
        let (mut k, mut mc) = small_setup();
        let m = k.alloc_region(64 * 64 * 8, 8).unwrap();
        let mut g = k
            .remap_strided(&mut mc, m.start(), 64, 512, 8, PAGE_SIZE)
            .unwrap();
        let desc_before = g.desc;
        let pages = k
            .retarget_strided(&mut mc, &mut g, m.start().add(64), 64, 512, 8)
            .unwrap();
        assert!(pages > 0);
        let _ = desc_before; // slot may be reused; behaviour checked below
        let p = k.translate(g.alias.start());
        mc.read_line(p, 0);
        assert!(mc.descriptor(g.desc).is_some());
    }

    #[test]
    fn recolor_alias_hits_requested_colors_only() {
        let (mut k, mut mc) = small_setup();
        let x = k.alloc_region(28 * PAGE_SIZE, 1).unwrap();
        let colors: Vec<u64> = (0..16).collect();
        let g = k.remap_recolor(&mut mc, x, &colors).unwrap();
        assert_eq!(g.alias.page_count(), 28);
        for page in g.alias.blocks(PAGE_SIZE) {
            let bus = k.translate(page);
            assert!(mc.is_shadow(bus));
            let color = bus.page_number() % 32;
            assert!(color < 16, "alias page landed on color {color}");
        }
        // Data is reachable through the recolored alias.
        let done = mc.read_line(k.translate(g.alias.start()), 0);
        assert!(done > 0);
    }

    #[test]
    fn recolor_rejects_bad_colors() {
        let (mut k, mut mc) = small_setup();
        let x = k.alloc_region(PAGE_SIZE, 1).unwrap();
        assert!(matches!(
            k.remap_recolor(&mut mc, x, &[]),
            Err(OsError::BadAlignment(_))
        ));
        assert!(matches!(
            k.remap_recolor(&mut mc, x, &[99]),
            Err(OsError::BadAlignment(_))
        ));
    }

    #[test]
    fn superpage_installs_single_span() {
        let (mut k, mut mc) = small_setup();
        // 8 pages, aligned to 8 pages.
        let r = k.alloc_region(8 * PAGE_SIZE, 8 * PAGE_SIZE).unwrap();
        let before = k.translate(r.start());
        let g = k.build_superpage(&mut mc, r).unwrap();
        let after = k.translate(r.start());
        assert_ne!(before, after, "pages must now point into shadow space");
        assert!(g.shadow.contains(after));
        let (base, span) = k.tlb_span(r.start().raw() >> PAGE_SHIFT);
        assert_eq!(span, 8);
        assert_eq!(base, r.start().raw() >> PAGE_SHIFT);
        // Addresses within the region remain readable.
        mc.read_line(k.translate(r.start().add(5 * PAGE_SIZE)), 0);
    }

    #[test]
    fn superpage_requires_alignment() {
        let (mut k, mut mc) = small_setup();
        let _pad = k.alloc_region(PAGE_SIZE, 1).unwrap();
        let r = k.alloc_region(8 * PAGE_SIZE, PAGE_SIZE).unwrap();
        if r.start().is_aligned(8 * PAGE_SIZE) {
            // Unlucky layout; skip rather than assert a tautology.
            return;
        }
        assert!(matches!(
            k.build_superpage(&mut mc, r),
            Err(OsError::BadAlignment(_))
        ));
    }

    #[test]
    fn release_remap_unmaps_alias() {
        let (mut k, mut mc) = small_setup();
        let x = k.alloc_region(PAGE_SIZE, 1).unwrap();
        let g = k.remap_recolor(&mut mc, x, &[0]).unwrap();
        k.release_remap(&mut mc, &g).unwrap();
        assert!(k.aspace().try_translate(g.alias.start()).is_none());
        assert!(mc.descriptor(g.desc).is_none());
        assert!(k.release_remap(&mut mc, &g).is_err());
    }

    #[test]
    fn processes_have_isolated_address_spaces() {
        let (mut k, _) = small_setup();
        let r0 = k.alloc_region(PAGE_SIZE, 1).unwrap();
        let child = k.spawn();
        assert_eq!(k.current(), Pid::INIT);
        k.switch(child).unwrap();
        // The child cannot see the parent's mapping.
        assert!(k.aspace().try_translate(r0.start()).is_none());
        // Its own allocation may reuse the same virtual addresses.
        let r1 = k.alloc_region(PAGE_SIZE, 1).unwrap();
        assert_eq!(
            r1.start(),
            r0.start(),
            "fresh address space starts at the same base"
        );
        k.switch(Pid::INIT).unwrap();
        // But the frames differ: no aliasing between processes.
        let f0 = k.translate(r0.start());
        k.switch(child).unwrap();
        let f1 = k.translate(r1.start());
        assert_ne!(f0, f1);
    }

    #[test]
    fn descriptor_ownership_is_enforced() {
        let (mut k, mut mc) = small_setup();
        let x = k.alloc_region(PAGE_SIZE, 8).unwrap();
        let grant = k.remap_recolor(&mut mc, x, &[0]).unwrap();
        let intruder = k.spawn();
        k.switch(intruder).unwrap();
        // Another process cannot release or share someone else's grant.
        assert_eq!(
            k.release_remap(&mut mc, &grant),
            Err(OsError::NotOwner(Pid::INIT))
        );
        assert_eq!(
            k.share_remap(&grant, intruder),
            Err(OsError::NotOwner(Pid::INIT))
        );
        // The owner still can.
        k.switch(Pid::INIT).unwrap();
        k.release_remap(&mut mc, &grant).unwrap();
    }

    #[test]
    fn shared_shadow_region_crosses_processes() {
        let (mut k, mut mc) = small_setup();
        let buf = k.alloc_region(4 * PAGE_SIZE, 8).unwrap();
        let grant = k.remap_recolor(&mut mc, buf, &[0, 1]).unwrap();
        let receiver = k.spawn();
        let rx_alias = k.share_remap(&grant, receiver).unwrap();

        // Sender view and receiver view reach the same shadow addresses.
        let tx_p = k.translate(grant.alias.start());
        k.switch(receiver).unwrap();
        let rx_p = k.translate(rx_alias.start());
        assert_eq!(tx_p, rx_p, "both views land on the same shadow page");
        assert!(mc.is_shadow(rx_p));
    }

    #[test]
    fn switch_to_unknown_process_fails() {
        // A Pid from one kernel is meaningless on another.
        let (mut k1, _) = small_setup();
        let foreign = k1.spawn();
        let (mut k2, _) = small_setup();
        assert_eq!(k2.switch(foreign), Err(OsError::NoSuchProcess(foreign)));
    }

    #[test]
    fn tlb_span_default_is_single_page() {
        let (k, _) = small_setup();
        assert_eq!(k.tlb_span(42), (42, 1));
    }

    #[test]
    fn gather_requires_element_alignment() {
        let (mut k, mut mc) = small_setup();
        let x = k.alloc_region(1024, 8).unwrap();
        let col = k.alloc_region(512, 4).unwrap();
        // Misaligned target: element size 8 but base offset 4.
        let bad = impulse_types::VRange::new(x.start().add(4), 512);
        let res = k.remap_gather(&mut mc, bad, 8, Arc::new(vec![0; 64]), col, 4);
        assert!(matches!(res, Err(OsError::BadAlignment(_))));
    }

    #[test]
    fn colored_allocation_can_exhaust_a_color() {
        let cfg = KernelConfig {
            dram_capacity: 40 * PAGE_SIZE,
            reserved_top: 0,
            ..KernelConfig::default()
        };
        let mut k = Kernel::new(cfg);
        // Only one frame of color 7 exists in 40 frames (colors mod 32).
        let _first = k.alloc_region_colored(PAGE_SIZE, 1, &[7]).unwrap();
        let second = k.alloc_region_colored(2 * PAGE_SIZE, 1, &[7]);
        assert!(matches!(second, Err(OsError::Phys(_))));
    }

    #[test]
    fn superpage_release_restores_mappings() {
        let (mut k, mut mc) = small_setup();
        let r = k.alloc_region(8 * PAGE_SIZE, 8 * PAGE_SIZE).unwrap();
        let before = k.translate(r.start());
        let g = k.build_superpage(&mut mc, r).unwrap();
        assert_eq!(g.kind, "superpage");
        assert_ne!(k.translate(r.start()), before);
        k.release_remap(&mut mc, &g).unwrap();
        assert_eq!(k.translate(r.start()), before);
        assert_eq!(k.tlb_span(r.start().raw() >> 12).1, 1);
    }
}
