//! Operating-system model for the Impulse simulator.
//!
//! Impulse needs OS cooperation: shadow addresses and virtual addresses
//! are system resources, and applications configure remappings through
//! system calls that the OS validates and downloads to the controller
//! (paper, Section 2.1). This crate provides:
//!
//! * [`phys`] — the physical frame allocator (sequential or fragmented
//!   placement, plus colored allocation for copy-based baselines),
//! * [`vm`] — per-process page tables and virtual region bookkeeping,
//! * [`kernel`] — the remapping system calls: scatter/gather, strided,
//!   no-copy page recoloring, and superpage construction, together with
//!   the system-call cost model charged by the system simulator.
//!
//! # Examples
//!
//! ```
//! use impulse_core::{McConfig, MemController};
//! use impulse_dram::{Dram, DramConfig};
//! use impulse_os::{Kernel, KernelConfig};
//!
//! let kcfg = KernelConfig::default();
//! let dram = Dram::new(DramConfig { capacity: kcfg.dram_capacity, ..DramConfig::default() });
//! let mut mc = MemController::new(dram, McConfig::default());
//! let mut kernel = Kernel::new(kcfg);
//!
//! // Allocate a vector and recolor it into the first half of the L2.
//! let x = kernel.alloc_region(64 * 1024, 8)?;
//! let colors: Vec<u64> = (0..16).collect();
//! let grant = kernel.remap_recolor(&mut mc, x, &colors)?;
//! assert_eq!(grant.alias.len(), x.len());
//! # Ok::<(), impulse_os::OsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Syscall paths must return typed errors, not panic: unwrap/expect are
// confined to #[cfg(test)] code (enforced by CI clippy with -D warnings).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod kernel;
pub mod phys;
pub mod vm;

pub use impulse_caps::{CapEngine, CapError, CapId, CapStats, DomainId, Resource};
pub use kernel::{
    ImpulseError, Kernel, KernelConfig, KernelStats, OsError, Pid, RemapGrant, RevokeOutcome,
    SyscallCosts,
};
pub use phys::{AllocPolicy, PhysError, PhysMem};
pub use vm::{AddressSpace, VmError};
