//! Physical page-frame allocation.
//!
//! The allocator hands out 4 KB DRAM frames under one of two placement
//! policies: `Sequential` (first-touch, the common contiguous case) or
//! `Random` (a fragmented machine — the situation that makes conventional
//! page recoloring expensive and Impulse's no-copy recoloring attractive).
//! It also supports *colored* allocation, used by tests and by the
//! software-copying baselines.

use impulse_types::geom::{PAGE_SHIFT, PAGE_SIZE};
use impulse_types::snap::{SnapError, SnapReader, SnapWriter};
use impulse_types::MAddr;

/// Snapshot section tag for [`PhysMem`] (`"PHYS"`).
const TAG_PHYS: u32 = 0x5048_5953;

/// Frame placement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Allocate frames in ascending order.
    Sequential,
    /// Allocate frames in a pseudo-random order derived from the seed.
    Random(u64),
}

/// Errors from the frame allocator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhysError {
    /// No free frame satisfies the request.
    OutOfMemory,
}

impl core::fmt::Display for PhysError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PhysError::OutOfMemory => write!(f, "out of physical memory"),
        }
    }
}

impl std::error::Error for PhysError {}

/// The physical frame allocator.
///
/// # Examples
///
/// ```
/// use impulse_os::{AllocPolicy, PhysMem};
///
/// let mut phys = PhysMem::new(1 << 20, 0, AllocPolicy::Sequential);
/// let a = phys.alloc()?;
/// let b = phys.alloc()?;
/// assert_ne!(a, b);
/// phys.free(a);
/// # Ok::<(), impulse_os::PhysError>(())
/// ```
#[derive(Clone, Debug)]
pub struct PhysMem {
    /// Free frame numbers, popped from the back.
    free: Vec<u64>,
    total_frames: u64,
    allocated: u64,
}

impl PhysMem {
    /// Builds an allocator over `capacity` bytes of DRAM, keeping the top
    /// `reserved_top` bytes out of the pool (the controller page table
    /// lives there).
    ///
    /// A reservation at or beyond the capacity leaves an empty pool: the
    /// machine boots with no allocatable frames and every [`alloc`]
    /// returns [`PhysError::OutOfMemory`], rather than aborting
    /// construction.
    ///
    /// [`alloc`]: Self::alloc
    pub fn new(capacity: u64, reserved_top: u64, policy: AllocPolicy) -> Self {
        let usable = capacity.saturating_sub(reserved_top);
        let frames = usable / PAGE_SIZE;
        let mut free: Vec<u64> = (0..frames).rev().collect();
        if let AllocPolicy::Random(seed) = policy {
            shuffle(&mut free, seed);
        }
        Self {
            free,
            total_frames: frames,
            allocated: 0,
        }
    }

    /// Frames currently allocated.
    pub fn allocated_frames(&self) -> u64 {
        self.allocated
    }

    /// Frames still free.
    pub fn free_frames(&self) -> u64 {
        self.total_frames - self.allocated
    }

    /// Allocates one frame.
    ///
    /// # Errors
    ///
    /// Returns [`PhysError::OutOfMemory`] when the pool is exhausted.
    pub fn alloc(&mut self) -> Result<MAddr, PhysError> {
        let frame = self.free.pop().ok_or(PhysError::OutOfMemory)?;
        self.allocated += 1;
        Ok(MAddr::new(frame << PAGE_SHIFT))
    }

    /// Allocates a frame whose *page color* (frame number modulo
    /// `num_colors`) is in `colors`. Used by copy-based baselines that pay
    /// for color control with data movement.
    ///
    /// # Errors
    ///
    /// Returns [`PhysError::OutOfMemory`] if no free frame has an
    /// acceptable color.
    pub fn alloc_colored(&mut self, colors: &[u64], num_colors: u64) -> Result<MAddr, PhysError> {
        let pos = self
            .free
            .iter()
            .rposition(|f| colors.contains(&(f % num_colors)))
            .ok_or(PhysError::OutOfMemory)?;
        let frame = self.free.swap_remove(pos);
        self.allocated += 1;
        Ok(MAddr::new(frame << PAGE_SHIFT))
    }

    /// Returns a frame to the pool.
    ///
    /// The allocator only hands out page-aligned frames, so an unaligned
    /// `frame` is an internal invariant violation (debug-checked).
    pub fn free(&mut self, frame: MAddr) {
        debug_assert!(
            frame.raw().is_multiple_of(PAGE_SIZE),
            "freeing a non-page-aligned frame: {frame:?}"
        );
        self.free.push(frame.raw() >> PAGE_SHIFT);
        self.allocated = self.allocated.saturating_sub(1);
    }

    /// Serializes the free list verbatim (its order is the allocation
    /// order, so it must survive bit-exactly) plus the frame counters.
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_PHYS);
        w.u64(self.total_frames);
        w.u64(self.allocated);
        w.u64_slice(&self.free);
    }

    /// Restores the state saved by [`PhysMem::snap_save`] into an
    /// allocator built over the same capacity and reservation.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] if the image is malformed or the frame
    /// pool sizes disagree.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_PHYS)?;
        if r.u64()? != self.total_frames {
            return Err(SnapError::Geometry("physical frame pool size"));
        }
        self.allocated = r.u64()?;
        self.free = r.u64_vec()?;
        Ok(())
    }
}

/// Fisher–Yates with an xorshift generator (keeps this crate free of a
/// rand dependency; determinism is all the simulator needs).
fn shuffle(v: &mut [u64], seed: u64) {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_allocates_ascending() {
        let mut p = PhysMem::new(16 * PAGE_SIZE, 0, AllocPolicy::Sequential);
        assert_eq!(p.alloc().unwrap(), MAddr::new(0));
        assert_eq!(p.alloc().unwrap(), MAddr::new(PAGE_SIZE));
        assert_eq!(p.allocated_frames(), 2);
        assert_eq!(p.free_frames(), 14);
    }

    #[test]
    fn random_is_deterministic_and_complete() {
        let mut a = PhysMem::new(64 * PAGE_SIZE, 0, AllocPolicy::Random(7));
        let mut b = PhysMem::new(64 * PAGE_SIZE, 0, AllocPolicy::Random(7));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            let fa = a.alloc().unwrap();
            assert_eq!(fa, b.alloc().unwrap());
            assert!(seen.insert(fa));
        }
        assert!(a.alloc().is_err());
    }

    #[test]
    fn random_actually_permutes() {
        let mut p = PhysMem::new(64 * PAGE_SIZE, 0, AllocPolicy::Random(1));
        let first: Vec<u64> = (0..8).map(|_| p.alloc().unwrap().raw()).collect();
        assert_ne!(first, (0..8).map(|i| i * PAGE_SIZE).collect::<Vec<_>>());
    }

    #[test]
    fn reservation_shrinks_pool() {
        let p = PhysMem::new(16 * PAGE_SIZE, 4 * PAGE_SIZE, AllocPolicy::Sequential);
        assert_eq!(p.free_frames(), 12);
    }

    #[test]
    fn colored_allocation_respects_colors() {
        let mut p = PhysMem::new(64 * PAGE_SIZE, 0, AllocPolicy::Sequential);
        for _ in 0..8 {
            let f = p.alloc_colored(&[3, 5], 8).unwrap();
            let color = (f.raw() >> 12) % 8;
            assert!(color == 3 || color == 5);
        }
    }

    #[test]
    fn colored_allocation_exhausts() {
        let mut p = PhysMem::new(8 * PAGE_SIZE, 0, AllocPolicy::Sequential);
        assert!(p.alloc_colored(&[0], 8).is_ok());
        assert_eq!(p.alloc_colored(&[0], 8), Err(PhysError::OutOfMemory));
    }

    #[test]
    fn free_returns_frame_to_pool() {
        let mut p = PhysMem::new(PAGE_SIZE, 0, AllocPolicy::Sequential);
        let f = p.alloc().unwrap();
        assert!(p.alloc().is_err());
        p.free(f);
        assert_eq!(p.alloc().unwrap(), f);
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    #[cfg(debug_assertions)]
    fn free_rejects_unaligned() {
        let mut p = PhysMem::new(2 * PAGE_SIZE, 0, AllocPolicy::Sequential);
        p.free(MAddr::new(1));
    }

    #[test]
    fn over_reservation_degrades_to_empty_pool() {
        // Reserving more than the capacity no longer aborts construction:
        // the machine simply has nothing to allocate.
        let mut p = PhysMem::new(4 * PAGE_SIZE, 8 * PAGE_SIZE, AllocPolicy::Sequential);
        assert_eq!(p.free_frames(), 0);
        assert_eq!(p.alloc(), Err(PhysError::OutOfMemory));
    }
}
