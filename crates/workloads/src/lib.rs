//! Workloads from the Impulse paper, execution-driven against
//! [`impulse_sim::Machine`].
//!
//! * [`sparse`] / [`smvp`] / [`cg`] — the NAS conjugate-gradient sparse
//!   matrix-vector product and the full CG iteration, in conventional,
//!   scatter/gather-remapped, and page-recolored configurations
//!   (Table 1); plus a Spark98-like finite-element mesh pattern.
//! * [`mmp`] / [`lu`] — tiled dense matrix-matrix product (Table 2) and
//!   tiled LU decomposition: no-copy tiling, software tile copying, and
//!   Impulse tile remapping.
//! * [`diagonal`] / [`transpose`] — the dense-matrix diagonal walk of
//!   Figure 1, and its big sibling: a no-copy transposed alias built from
//!   a permutation indirection vector.
//! * [`ipc`] — IPC message assembly by software copy vs. controller
//!   gather (Section 6).
//! * [`tlbstress`] — the superpage TLB experiment (Section 6 /
//!   ISCA '98 recap).
//! * [`dbscan`] / [`media`] — the abstract's "commercial importance"
//!   classes: a database selection scan (gather through an index's
//!   row-id list) and a multimedia channel extraction (byte-granularity
//!   strided remap of interleaved RGBA).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use impulse_sim::{Machine, SystemConfig};
//! use impulse_workloads::{SparsePattern, Smvp, SmvpVariant};
//!
//! let mut m = Machine::new(&SystemConfig::paint_small());
//! let pattern = Arc::new(SparsePattern::generate(1024, 8, 42));
//! let w = Smvp::setup(&mut m, pattern, SmvpVariant::ScatterGather)?;
//! w.run(&mut m, 1);
//! println!("{}", m.report("CG scatter/gather"));
//! # Ok::<(), impulse_os::OsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cg;
pub mod dbscan;
pub mod diagonal;
pub mod ipc;
pub mod lu;
pub mod media;
pub mod mmp;
pub mod smvp;
pub mod sparse;
pub mod tlbstress;
pub mod transpose;

pub use cg::CgBenchmark;
pub use dbscan::{DbScan, DbVariant};
pub use diagonal::{Diagonal, DiagonalVariant};
pub use ipc::{IpcGather, IpcVariant};
pub use lu::{Lu, LuVariant};
pub use media::{ChannelFilter, MediaVariant};
pub use mmp::{Mmp, MmpParams, MmpVariant};
pub use smvp::{Smvp, SmvpVariant};
pub use sparse::SparsePattern;
pub use tlbstress::{TlbStress, TlbVariant};
pub use transpose::{Transpose, TransposeVariant};
