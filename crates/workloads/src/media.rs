//! A multimedia channel-extraction workload — the other "commercial
//! importance" class from the paper's abstract.
//!
//! Interleaved RGBA pixels are the classic regularly-strided layout: a
//! grayscale conversion reads three of every four bytes, but a
//! *single-channel* filter (e.g. alpha test, luminance histogram) reads
//! one byte per 4-byte pixel and wastes the rest of every cache line.
//! Impulse's strided remapping packs one channel densely: byte `i` of
//! the alias is channel byte `c` of pixel `i` (1-byte objects — a power
//! of two, so within the paper's no-divider restriction — on a 4-byte
//! stride).

use impulse_os::OsError;
use impulse_sim::Machine;
use impulse_types::VRange;

/// How the channel is accessed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MediaVariant {
    /// Strided byte reads of the interleaved image.
    Conventional,
    /// A dense strided alias of the channel.
    ChannelRemap,
}

impl MediaVariant {
    /// Label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            MediaVariant::Conventional => "interleaved channel walk",
            MediaVariant::ChannelRemap => "impulse channel remap",
        }
    }
}

/// Bytes per interleaved pixel (RGBA).
const PIXEL: u64 = 4;

/// A single-channel image filter workload.
#[derive(Clone, Debug)]
pub struct ChannelFilter {
    image: VRange,
    pixels: u64,
    channel: u64,
    alias: Option<VRange>,
    variant: MediaVariant,
}

impl ChannelFilter {
    /// Allocates an RGBA image of `pixels` and, for the Impulse variant,
    /// a dense alias of channel `channel` (0–3).
    ///
    /// # Errors
    ///
    /// Propagates allocation and remapping failures.
    ///
    /// # Panics
    ///
    /// Panics if `channel >= 4`.
    pub fn setup(
        m: &mut Machine,
        pixels: u64,
        channel: u64,
        variant: MediaVariant,
    ) -> Result<Self, OsError> {
        assert!(channel < PIXEL, "RGBA has four channels");
        let image = m.alloc_region(pixels * PIXEL, 128)?;
        let alias = match variant {
            MediaVariant::Conventional => None,
            MediaVariant::ChannelRemap => {
                // 1-byte objects, 4-byte stride, starting at the channel.
                let grant =
                    m.sys_remap_strided(image.start().add(channel), 1, PIXEL, pixels, 4096)?;
                Some(grant.alias)
            }
        };
        Ok(Self {
            image,
            pixels,
            channel,
            alias,
            variant,
        })
    }

    /// The variant in use.
    pub fn variant(&self) -> MediaVariant {
        self.variant
    }

    /// Runs the filter: one byte load + accumulate per pixel.
    pub fn filter(&self, m: &mut Machine) {
        match self.variant {
            MediaVariant::Conventional => {
                for p in 0..self.pixels {
                    m.load(self.image.start().add(p * PIXEL + self.channel));
                    m.compute(2);
                }
            }
            MediaVariant::ChannelRemap => {
                let alias = self.alias.expect("alias configured");
                for p in 0..self.pixels {
                    m.load(alias.start().add(p));
                    m.compute(2);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impulse_sim::{Report, SystemConfig};

    fn run_variant(variant: MediaVariant) -> Report {
        let cfg = SystemConfig::paint_small().with_prefetch(true, false);
        let mut m = Machine::new(&cfg);
        // A 1-megapixel frame (4 MB), alpha channel.
        let w = ChannelFilter::setup(&mut m, 1 << 20, 3, variant).expect("setup");
        m.reset_stats();
        w.filter(&mut m);
        m.report(variant.name())
    }

    #[test]
    fn channel_remap_cuts_bus_traffic_by_about_four() {
        let conv = run_variant(MediaVariant::Conventional);
        let imp = run_variant(MediaVariant::ChannelRemap);
        assert_eq!(conv.mem.loads, imp.mem.loads);
        let ratio = conv.bus.bytes as f64 / imp.bus.bytes as f64;
        assert!(
            (3.0..5.0).contains(&ratio),
            "one useful byte in four: traffic ratio {ratio}"
        );
        assert!(imp.cycles < conv.cycles);
    }

    #[test]
    fn alias_maps_to_the_requested_channel() {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let w = ChannelFilter::setup(&mut m, 4096, 2, MediaVariant::ChannelRemap).unwrap();
        let alias = w.alias.unwrap();
        for p in [0u64, 1, 17, 4095] {
            let bus = m.translate(alias.start().add(p));
            let via = m.memory().mc().resolve_shadow(bus).unwrap();
            let direct = m.translate(w.image.start().add(p * PIXEL + 2));
            assert_eq!(via.raw(), direct.raw(), "pixel {p}");
        }
    }

    #[test]
    #[should_panic(expected = "four channels")]
    fn channel_out_of_range_rejected() {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let _ = ChannelFilter::setup(&mut m, 64, 4, MediaVariant::Conventional);
    }
}
