//! Sparse matrix-vector product (the conjugate gradient inner loop),
//! Section 3.1 of the paper.
//!
//! ```text
//! for i := 1 to n do
//!   sum := 0
//!   for j := ROWS[i] to ROWS[i+1]-1 do
//!     sum += DATA[j] * x[COLUMN[j]]
//!   b[i] := sum
//! ```
//!
//! Three memory-system configurations are modeled:
//!
//! * [`SmvpVariant::Conventional`] — the loop as written: every `x` access
//!   is an indirect, sparse load.
//! * [`SmvpVariant::ScatterGather`] — the Impulse optimization: the OS
//!   remaps `x'[j] = x[COLUMN[j]]` through a shadow gather region, so the
//!   processor streams a dense `x'` and never loads `COLUMN` itself.
//! * [`SmvpVariant::Recolored`] — the Impulse page-recoloring alternative:
//!   `x` is aliased into the first half of the physically-indexed L2,
//!   `DATA` and `COLUMN` into one quadrant each of the second half, so the
//!   streams never evict the reused `x`.

use std::sync::Arc;

use impulse_os::OsError;
use impulse_sim::Machine;
use impulse_types::{VAddr, VRange};

use crate::sparse::SparsePattern;

/// Which memory-system strategy the kernel runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SmvpVariant {
    /// Indirect accesses through `COLUMN`, no remapping.
    Conventional,
    /// Controller-side scatter/gather of `x` (Impulse).
    ScatterGather,
    /// No-copy page recoloring of `x`, `DATA`, `COLUMN` (Impulse).
    Recolored,
}

impl SmvpVariant {
    /// All variants, in the paper's table order.
    pub const ALL: [SmvpVariant; 3] = [
        SmvpVariant::Conventional,
        SmvpVariant::ScatterGather,
        SmvpVariant::Recolored,
    ];

    /// Label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SmvpVariant::Conventional => "conventional",
            SmvpVariant::ScatterGather => "impulse scatter/gather",
            SmvpVariant::Recolored => "impulse page recoloring",
        }
    }
}

/// Byte sizes of the CG arrays.
const F64: u64 = 8;
const IDX: u64 = 4;

/// A set-up SMVP computation bound to a machine's address space.
#[derive(Clone, Debug)]
pub struct Smvp {
    pattern: Arc<SparsePattern>,
    variant: SmvpVariant,
    /// DATA (non-zero values), possibly recolored alias.
    data: VRange,
    /// COLUMN (indices), possibly recolored alias.
    column: VRange,
    /// ROWS (row pointers).
    rows: VRange,
    /// x (multiplicand), possibly recolored alias.
    x: VRange,
    /// b (result).
    b: VRange,
    /// Gathered alias x' (scatter/gather variant only).
    x_gather: Option<VRange>,
}

impl Smvp {
    /// Allocates the CG data structures on `m` and performs the remapping
    /// system calls the variant requires.
    ///
    /// # Errors
    ///
    /// Propagates allocation and remapping failures.
    pub fn setup(
        m: &mut Machine,
        pattern: Arc<SparsePattern>,
        variant: SmvpVariant,
    ) -> Result<Self, OsError> {
        let n = pattern.n();
        let nnz = pattern.nnz();
        let data = m.alloc_region(nnz * F64, 128)?;
        let column = m.alloc_region(nnz * IDX, 128)?;
        let rows = m.alloc_region((n + 1) * IDX, 128)?;
        let x = m.alloc_region(n * F64, 128)?;
        let b = m.alloc_region(n * F64, 128)?;

        let mut w = Self {
            pattern,
            variant,
            data,
            column,
            rows,
            x,
            b,
            x_gather: None,
        };

        match variant {
            SmvpVariant::Conventional => {}
            SmvpVariant::ScatterGather => {
                // setup x', where x'[k] = x[COLUMN[k]]. The alias is
                // placed half an L1 away from DATA (paper §2.1 step 1):
                // the inner loop streams DATA[j] and x'[j] in lock-step,
                // and a virtually-indexed direct-mapped L1 would thrash
                // if the two streams shared cache sets.
                let indices = Arc::new(w.pattern.cols().to_vec());
                let grant = m.sys_remap_gather_interleaved(
                    w.x,
                    F64,
                    indices,
                    w.column,
                    IDX,
                    w.data.start(),
                )?;
                w.x_gather = Some(grant.alias);
            }
            SmvpVariant::Recolored => {
                // x → first half of the L2; DATA and COLUMN → one quadrant
                // of the second half each (Section 4.1).
                let half: Vec<u64> = (0..16).collect();
                let q3: Vec<u64> = (16..24).collect();
                let q4: Vec<u64> = (24..32).collect();
                w.x = m.sys_recolor(w.x, &half)?.alias;
                w.data = m.sys_recolor(w.data, &q3)?.alias;
                w.column = m.sys_recolor(w.column, &q4)?.alias;
            }
        }
        Ok(w)
    }

    /// The variant this instance was set up for.
    pub fn variant(&self) -> SmvpVariant {
        self.variant
    }

    /// The result vector region (for inspection).
    pub fn b(&self) -> VRange {
        self.b
    }

    /// The gathered alias, if the scatter/gather variant is active.
    pub fn x_gather(&self) -> Option<VRange> {
        self.x_gather
    }

    #[inline]
    fn addr(r: VRange, elem: u64, size: u64) -> VAddr {
        r.start().add(elem * size)
    }

    /// Executes one sparse matrix-vector product pass.
    pub fn pass(&self, m: &mut Machine) {
        let n = self.pattern.n();
        let cols = self.pattern.cols();
        match self.variant {
            SmvpVariant::Conventional | SmvpVariant::Recolored => {
                for i in 0..n {
                    // Loop header: load ROWS[i] and ROWS[i+1] (one of them
                    // is generally still in a register from the previous
                    // iteration — charge one load), clear sum.
                    m.load(Self::addr(self.rows, i + 1, IDX));
                    m.compute(2);
                    for j in self.pattern.row_range(i) {
                        m.load(Self::addr(self.column, j, IDX));
                        m.load(Self::addr(self.data, j, F64));
                        m.load(Self::addr(self.x, cols[j as usize], F64));
                        // multiply-add + index increment + branch
                        m.compute(3);
                    }
                    m.store(Self::addr(self.b, i, F64));
                    m.compute(1);
                }
            }
            SmvpVariant::ScatterGather => {
                let xg = self.x_gather.expect("gather alias configured");
                for i in 0..n {
                    m.load(Self::addr(self.rows, i + 1, IDX));
                    m.compute(2);
                    for j in self.pattern.row_range(i) {
                        // The COLUMN read happens at the memory controller;
                        // the processor streams DATA and x'.
                        m.load(Self::addr(self.data, j, F64));
                        m.load(Self::addr(xg, j, F64));
                        m.compute(3);
                    }
                    m.store(Self::addr(self.b, i, F64));
                    m.compute(1);
                }
            }
        }
    }

    /// Runs `iterations` passes (the CG outer loop re-uses the same
    /// matrix and multiplicand repeatedly).
    pub fn run(&self, m: &mut Machine, iterations: u64) {
        for _ in 0..iterations {
            self.pass(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impulse_sim::SystemConfig;

    fn quick_pattern() -> Arc<SparsePattern> {
        Arc::new(SparsePattern::generate(512, 8, 1))
    }

    /// A pattern whose `x` exceeds the 32 KB L1 — the regime the paper
    /// evaluates. (With `x` L1-resident, scatter/gather's loss of temporal
    /// locality outweighs its density gain; the paper's matrices are far
    /// past that point.)
    fn paper_regime_pattern() -> Arc<SparsePattern> {
        Arc::new(SparsePattern::generate(8192, 6, 2))
    }

    fn run_pattern(
        pattern: Arc<SparsePattern>,
        variant: SmvpVariant,
        mc_pf: bool,
        l1_pf: bool,
        passes: u64,
    ) -> impulse_sim::Report {
        let cfg = SystemConfig::paint_small().with_prefetch(mc_pf, l1_pf);
        let mut m = Machine::new(&cfg);
        let w = Smvp::setup(&mut m, pattern, variant).expect("setup");
        w.run(&mut m, passes);
        m.report(variant.name())
    }

    fn run_variant(variant: SmvpVariant, mc_pf: bool, l1_pf: bool) -> impulse_sim::Report {
        run_pattern(quick_pattern(), variant, mc_pf, l1_pf, 2)
    }

    #[test]
    fn all_variants_issue_same_useful_work() {
        // b is written n times per pass in every variant.
        for v in SmvpVariant::ALL {
            let r = run_variant(v, false, false);
            assert_eq!(r.mem.stores, 2 * 512, "{}", v.name());
        }
    }

    #[test]
    fn scatter_gather_issues_fewer_loads() {
        let conv = run_variant(SmvpVariant::Conventional, false, false);
        let sg = run_variant(SmvpVariant::ScatterGather, false, false);
        assert!(
            sg.mem.loads < conv.mem.loads,
            "gather removes the COLUMN loads: {} !< {}",
            sg.mem.loads,
            conv.mem.loads
        );
    }

    #[test]
    fn scatter_gather_improves_l1_hit_ratio_at_paper_scale() {
        let p = paper_regime_pattern();
        let conv = run_pattern(p.clone(), SmvpVariant::Conventional, false, false, 1);
        let sg = run_pattern(p, SmvpVariant::ScatterGather, false, false, 1);
        assert!(
            sg.mem.l1_ratio() > conv.mem.l1_ratio() + 0.05,
            "{} !> {}",
            sg.mem.l1_ratio(),
            conv.mem.l1_ratio()
        );
    }

    #[test]
    fn scatter_gather_with_prefetch_is_fastest_at_paper_scale() {
        let p = paper_regime_pattern();
        let conv = run_pattern(p.clone(), SmvpVariant::Conventional, false, false, 1);
        let sg = run_pattern(p.clone(), SmvpVariant::ScatterGather, false, false, 1);
        let sg_pf = run_pattern(p, SmvpVariant::ScatterGather, true, false, 1);
        assert!(sg.cycles < conv.cycles, "{} !< {}", sg.cycles, conv.cycles);
        assert!(
            sg_pf.cycles < sg.cycles,
            "{} !< {}",
            sg_pf.cycles,
            sg.cycles
        );
    }

    #[test]
    fn gather_uses_shadow_reads() {
        let sg = run_variant(SmvpVariant::ScatterGather, false, false);
        assert!(sg.mc.shadow_line_reads > 0);
        assert!(sg.desc.gathers > 0);
    }

    #[test]
    fn recolored_uses_three_descriptors_worth_of_aliases() {
        let rc = run_variant(SmvpVariant::Recolored, false, false);
        assert!(rc.mc.shadow_line_reads > 0);
        // Direct remapping: every gather is a single DRAM request.
        assert_eq!(rc.desc.gathers, rc.desc.dram_requests);
    }
}
