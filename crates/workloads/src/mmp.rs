//! Tiled dense matrix-matrix product (`C = A × B`), Section 3.2 of the
//! paper.
//!
//! Three configurations:
//!
//! * [`MmpVariant::Conventional`] — no-copy tiling: tiles are
//!   non-contiguous in the address space and interfere in the caches.
//! * [`MmpVariant::SoftwareCopy`] — each tile is copied into a contiguous
//!   buffer before use (the classic software fix, paying O(n²) copies for
//!   O(n³) work).
//! * [`MmpVariant::TileRemap`] — the Impulse optimization: base-stride
//!   remapping presents each tile as a dense shadow alias; moving to the
//!   next tile is a system call (retarget), a purge of the clean input
//!   tiles, and a flush of the output tile — no copying.
//!
//! All variants issue the identical compute/access pattern; only the
//! addresses differ, exactly as in the paper's comparison. Matrices are
//! padded so tiles align to 128-byte L2 lines (the paper's constraint).

use impulse_os::{OsError, RemapGrant};
use impulse_sim::Machine;
use impulse_types::geom::PAGE_SIZE;
use impulse_types::{VAddr, VRange};

/// Which memory-system strategy the kernel runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MmpVariant {
    /// No-copy tiling on a conventional memory system.
    Conventional,
    /// Software tile copying on a conventional memory system.
    SoftwareCopy,
    /// Impulse base-stride tile remapping.
    TileRemap,
}

impl MmpVariant {
    /// All variants, in the paper's table order.
    pub const ALL: [MmpVariant; 3] = [
        MmpVariant::Conventional,
        MmpVariant::SoftwareCopy,
        MmpVariant::TileRemap,
    ];

    /// Label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            MmpVariant::Conventional => "conventional no-copy tiling",
            MmpVariant::SoftwareCopy => "software tile copying",
            MmpVariant::TileRemap => "impulse tile remapping",
        }
    }
}

/// Problem size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MmpParams {
    /// Matrix dimension (`n × n` doubles); must be a multiple of `tile`.
    pub n: u64,
    /// Tile dimension (the paper uses 32 × 32 tiles of 512 × 512
    /// matrices).
    pub tile: u64,
}

impl Default for MmpParams {
    fn default() -> Self {
        Self { n: 256, tile: 32 }
    }
}

impl MmpParams {
    /// The paper's Table 2 size: 512 × 512 matrices, 32 × 32 tiles.
    pub fn paper() -> Self {
        Self { n: 512, tile: 32 }
    }

    fn validate(&self) {
        assert!(
            self.tile > 0 && self.n.is_multiple_of(self.tile),
            "n must be a multiple of tile"
        );
        assert!(
            (self.tile * 8).is_power_of_two(),
            "tile rows must be a power of two bytes (Impulse strided-object restriction)"
        );
    }
}

const F64: u64 = 8;

/// State for one strided tile alias (Impulse variant).
#[derive(Clone, Debug)]
struct TileAlias {
    grant: RemapGrant,
    /// Tile-origin element (row, col) the alias currently targets.
    at: (u64, u64),
}

/// A set-up matrix-matrix product bound to a machine.
#[derive(Clone, Debug)]
pub struct Mmp {
    p: MmpParams,
    a: VRange,
    b: VRange,
    c: VRange,
    /// Copy buffers (software-copy variant).
    bufs: Option<(VRange, VRange, VRange)>,
    /// Tile aliases (Impulse variant).
    aliases: Option<(TileAlias, TileAlias, TileAlias)>,
    variant: MmpVariant,
}

impl Mmp {
    /// Allocates the matrices (and buffers/aliases) for `variant`.
    ///
    /// # Errors
    ///
    /// Propagates allocation and remapping failures.
    ///
    /// # Panics
    ///
    /// Panics if the parameters violate the tiling constraints.
    pub fn setup(m: &mut Machine, p: MmpParams, variant: MmpVariant) -> Result<Self, OsError> {
        p.validate();
        let bytes = p.n * p.n * F64;
        // Arrays padded/aligned so tiles start on 128-byte boundaries (the
        // paper's alignment restriction on remapped tiles).
        let a = m.alloc_region(bytes, 128)?;
        let b = m.alloc_region(bytes, 128)?;
        let c = m.alloc_region(bytes, 128)?;

        let mut w = Self {
            p,
            a,
            b,
            c,
            bufs: None,
            aliases: None,
            variant,
        };
        match variant {
            MmpVariant::Conventional => {}
            MmpVariant::SoftwareCopy => {
                let t = p.tile * p.tile * F64;
                let ba = m.alloc_region(t, 128)?;
                let bb = m.alloc_region(t, 128)?;
                let bc = m.alloc_region(t, 128)?;
                w.bufs = Some((ba, bb, bc));
            }
            MmpVariant::TileRemap => {
                let row_bytes = p.tile * F64;
                let pitch = p.n * F64;
                let ga = m.sys_remap_strided(w.a.start(), row_bytes, pitch, p.tile, PAGE_SIZE)?;
                let gb = m.sys_remap_strided(w.b.start(), row_bytes, pitch, p.tile, PAGE_SIZE)?;
                let gc = m.sys_remap_strided(w.c.start(), row_bytes, pitch, p.tile, PAGE_SIZE)?;
                w.aliases = Some((
                    TileAlias {
                        grant: ga,
                        at: (0, 0),
                    },
                    TileAlias {
                        grant: gb,
                        at: (0, 0),
                    },
                    TileAlias {
                        grant: gc,
                        at: (0, 0),
                    },
                ));
            }
        }
        Ok(w)
    }

    /// The variant this instance was set up for.
    pub fn variant(&self) -> MmpVariant {
        self.variant
    }

    /// Address of element `(r, c)` of a matrix starting at `base`.
    #[inline]
    fn elem(&self, base: VAddr, r: u64, c: u64) -> VAddr {
        base.add((r * self.p.n + c) * F64)
    }

    /// Address of element `(r, c)` of a dense tile buffer/alias.
    #[inline]
    fn tile_elem(&self, base: VAddr, r: u64, c: u64) -> VAddr {
        base.add((r * self.p.tile + c) * F64)
    }

    /// Copies the `tile × tile` tile at `(tr, tc)` of `src` into the dense
    /// buffer `dst` (software-copy variant).
    fn copy_tile_in(&self, m: &mut Machine, src: VRange, dst: VRange, tr: u64, tc: u64) {
        let t = self.p.tile;
        for r in 0..t {
            for c in 0..t {
                m.load(self.elem(src.start(), tr * t + r, tc * t + c));
                m.store(self.tile_elem(dst.start(), r, c));
                m.compute(1);
            }
        }
    }

    /// Copies the dense buffer back into the tile at `(tr, tc)` of `dst`.
    fn copy_tile_out(&self, m: &mut Machine, src: VRange, dst: VRange, tr: u64, tc: u64) {
        let t = self.p.tile;
        for r in 0..t {
            for c in 0..t {
                m.load(self.tile_elem(src.start(), r, c));
                m.store(self.elem(dst.start(), tr * t + r, tc * t + c));
                m.compute(1);
            }
        }
    }

    /// Points a tile alias at tile `(tr, tc)` of `matrix`; purges or
    /// flushes the alias lines per the paper's consistency protocol.
    fn retarget(
        &self,
        m: &mut Machine,
        alias: &mut TileAlias,
        matrix: VRange,
        tr: u64,
        tc: u64,
        dirty: bool,
    ) -> Result<(), OsError> {
        if alias.at == (tr, tc) {
            return Ok(());
        }
        if dirty {
            // Output tile: write the previous tile's data back through the
            // scatter path before moving the window.
            m.flush_region(alias.grant.alias);
        } else {
            // Input tiles are clean copies: purge, no writeback.
            m.purge_region(alias.grant.alias);
        }
        let t = self.p.tile;
        let new_base = self.elem(matrix.start(), tr * t, tc * t);
        m.sys_retarget_strided(&mut alias.grant, new_base, t * F64, self.p.n * F64, t)?;
        alias.at = (tr, tc);
        Ok(())
    }

    /// The inner tile product: `Cview += Aview × Bview` where each view is
    /// addressed through `(base, dense)` — dense views index `tile × tile`,
    /// strided views index the full matrix.
    #[allow(clippy::too_many_arguments)]
    fn tile_product(
        &self,
        m: &mut Machine,
        (a, a_dense, ar, ac): (VAddr, bool, u64, u64),
        (b, b_dense, br, bc): (VAddr, bool, u64, u64),
        (c, c_dense, cr, cc): (VAddr, bool, u64, u64),
    ) {
        let t = self.p.tile;
        let addr = |dense: bool, base: VAddr, tr0: u64, tc0: u64, r: u64, col: u64| {
            if dense {
                self.tile_elem(base, r, col)
            } else {
                self.elem(base, tr0 + r, tc0 + col)
            }
        };
        for i in 0..t {
            for j in 0..t {
                // sum = C[i][j]
                m.load(addr(c_dense, c, cr, cc, i, j));
                m.compute(1);
                for k in 0..t {
                    m.load(addr(a_dense, a, ar, ac, i, k));
                    m.load(addr(b_dense, b, br, bc, k, j));
                    m.compute(2); // multiply-add + loop bookkeeping
                }
                m.store(addr(c_dense, c, cr, cc, i, j));
                m.compute(1);
            }
        }
    }

    /// Zeroes the C tile view (stores).
    fn zero_tile(&self, m: &mut Machine, (c, dense, cr, cc): (VAddr, bool, u64, u64)) {
        let t = self.p.tile;
        for i in 0..t {
            for j in 0..t {
                let v = if dense {
                    self.tile_elem(c, i, j)
                } else {
                    self.elem(c, cr + i, cc + j)
                };
                m.store(v);
                m.compute(1);
            }
        }
    }

    /// Runs the full tiled product once.
    ///
    /// # Errors
    ///
    /// Propagates remapping failures (Impulse variant).
    pub fn run(&mut self, m: &mut Machine) -> Result<(), OsError> {
        let t = self.p.tile;
        let nt = self.p.n / t;
        match self.variant {
            MmpVariant::Conventional => {
                for it in 0..nt {
                    for jt in 0..nt {
                        let cview = (self.c.start(), false, it * t, jt * t);
                        self.zero_tile(m, cview);
                        for kt in 0..nt {
                            self.tile_product(
                                m,
                                (self.a.start(), false, it * t, kt * t),
                                (self.b.start(), false, kt * t, jt * t),
                                cview,
                            );
                        }
                    }
                }
            }
            MmpVariant::SoftwareCopy => {
                let (ba, bb, bc) = self.bufs.expect("buffers allocated");
                for it in 0..nt {
                    for jt in 0..nt {
                        let cview = (bc.start(), true, 0, 0);
                        self.zero_tile(m, cview);
                        for kt in 0..nt {
                            self.copy_tile_in(m, self.a, ba, it, kt);
                            self.copy_tile_in(m, self.b, bb, kt, jt);
                            self.tile_product(
                                m,
                                (ba.start(), true, 0, 0),
                                (bb.start(), true, 0, 0),
                                cview,
                            );
                        }
                        self.copy_tile_out(m, bc, self.c, it, jt);
                    }
                }
            }
            MmpVariant::TileRemap => {
                let (mut ta, mut tb, mut tc) = self.aliases.take().expect("aliases configured");
                for it in 0..nt {
                    for jt in 0..nt {
                        self.retarget(m, &mut tc, self.c, it, jt, true)?;
                        let cview = (tc.grant.alias.start(), true, 0, 0);
                        self.zero_tile(m, cview);
                        for kt in 0..nt {
                            self.retarget(m, &mut ta, self.a, it, kt, false)?;
                            self.retarget(m, &mut tb, self.b, kt, jt, false)?;
                            self.tile_product(
                                m,
                                (ta.grant.alias.start(), true, 0, 0),
                                (tb.grant.alias.start(), true, 0, 0),
                                cview,
                            );
                        }
                    }
                }
                // Write the final output tile back.
                m.flush_region(tc.grant.alias);
                self.aliases = Some((ta, tb, tc));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impulse_sim::{Report, SystemConfig};

    fn run_variant(variant: MmpVariant, n: u64, tile: u64) -> Report {
        let cfg = SystemConfig::paint_small();
        let mut m = Machine::new(&cfg);
        let mut w = Mmp::setup(&mut m, MmpParams { n, tile }, variant).expect("setup");
        w.run(&mut m).expect("run");
        m.report(variant.name())
    }

    #[test]
    fn compute_work_is_identical_across_variants() {
        // The multiply-add count (n³ twice per element plus bookkeeping)
        // must match between conventional and remap; copying adds its own
        // copy instructions.
        let conv = run_variant(MmpVariant::Conventional, 64, 16);
        let remap = run_variant(MmpVariant::TileRemap, 64, 16);
        let copy = run_variant(MmpVariant::SoftwareCopy, 64, 16);
        // Loads: conventional and remap issue identical demand loads.
        assert_eq!(conv.mem.loads, remap.mem.loads);
        assert!(copy.mem.loads > conv.mem.loads, "copies add loads");
    }

    #[test]
    fn remap_and_copy_beat_conventional_on_large_tiles() {
        // 256×256 with 32×32 tiles: tile rows are 2 KB apart, so a tile
        // self-conflicts in the 32 KB direct-mapped L1.
        let conv = run_variant(MmpVariant::Conventional, 128, 32);
        let copy = run_variant(MmpVariant::SoftwareCopy, 128, 32);
        let remap = run_variant(MmpVariant::TileRemap, 128, 32);
        assert!(
            remap.mem.l1_ratio() > conv.mem.l1_ratio(),
            "remap L1 {} !> conv {}",
            remap.mem.l1_ratio(),
            conv.mem.l1_ratio()
        );
        assert!(remap.cycles < conv.cycles);
        assert!(copy.cycles < conv.cycles);
    }

    #[test]
    fn remap_not_slower_than_copy() {
        let copy = run_variant(MmpVariant::SoftwareCopy, 128, 32);
        let remap = run_variant(MmpVariant::TileRemap, 128, 32);
        assert!(
            remap.cycles <= copy.cycles,
            "remap {} !<= copy {}",
            remap.cycles,
            copy.cycles
        );
    }

    #[test]
    fn remap_issues_scatter_writes_for_output_tiles() {
        let remap = run_variant(MmpVariant::TileRemap, 64, 16);
        assert!(remap.mc.shadow_line_writes > 0, "C tiles scatter back");
    }

    #[test]
    #[should_panic(expected = "multiple of tile")]
    fn bad_tiling_rejected() {
        let cfg = SystemConfig::paint_small();
        let mut m = Machine::new(&cfg);
        let _ = Mmp::setup(
            &mut m,
            MmpParams { n: 100, tile: 32 },
            MmpVariant::Conventional,
        );
    }
}
