//! No-copy matrix transpose via scatter/gather remapping.
//!
//! Walking a row-major matrix by *columns* is the degenerate strided
//! pattern of Figure 1 writ large: every access drags a full cache line
//! across the bus for one useful word. Impulse's indirection-vector
//! remapping handles arbitrary permutations, so the OS can expose a
//! *transposed alias* of the whole matrix — `At[c][r] = A[r][c]` —
//! without copying; column walks of `A` become dense row walks of `At`.

use std::sync::Arc;

use impulse_os::OsError;
use impulse_sim::Machine;
use impulse_types::VRange;

/// How the column reduction accesses the matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TransposeVariant {
    /// Column-major walk of the row-major matrix (stride `n` elements).
    Conventional,
    /// Dense walk of a gather-remapped transposed alias.
    Remapped,
}

impl TransposeVariant {
    /// Label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            TransposeVariant::Conventional => "conventional column walk",
            TransposeVariant::Remapped => "impulse transposed alias",
        }
    }
}

const F64: u64 = 8;

/// A column-reduction workload over an `n × n` row-major matrix.
#[derive(Clone, Debug)]
pub struct Transpose {
    n: u64,
    a: VRange,
    alias: Option<VRange>,
    variant: TransposeVariant,
}

impl Transpose {
    /// Allocates the matrix and, for the remapped variant, builds the
    /// transposed alias (an `n²`-entry indirection vector holding the
    /// transpose permutation).
    ///
    /// # Errors
    ///
    /// Propagates allocation and remapping failures.
    pub fn setup(m: &mut Machine, n: u64, variant: TransposeVariant) -> Result<Self, OsError> {
        let a = m.alloc_region(n * n * F64, 128)?;
        let alias = match variant {
            TransposeVariant::Conventional => None,
            TransposeVariant::Remapped => {
                let mut indices = Vec::with_capacity((n * n) as usize);
                for c in 0..n {
                    for r in 0..n {
                        indices.push(r * n + c);
                    }
                }
                let index_region = m.alloc_region(n * n * 4, 128)?;
                let grant = m.sys_remap_gather(a, F64, Arc::new(indices), index_region, 4)?;
                Some(grant.alias)
            }
        };
        Ok(Self {
            n,
            a,
            alias,
            variant,
        })
    }

    /// The variant in use.
    pub fn variant(&self) -> TransposeVariant {
        self.variant
    }

    /// Reduces every column (load + accumulate per element), walking in
    /// column-major order.
    pub fn column_reduce(&self, m: &mut Machine) {
        let n = self.n;
        match self.variant {
            TransposeVariant::Conventional => {
                for c in 0..n {
                    for r in 0..n {
                        m.load(self.a.start().add((r * n + c) * F64));
                        m.compute(2);
                    }
                }
            }
            TransposeVariant::Remapped => {
                let alias = self.alias.expect("alias configured");
                for w in 0..n * n {
                    m.load(alias.start().add(w * F64));
                    m.compute(2);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impulse_sim::{Report, SystemConfig};
    use impulse_types::MAddr;

    fn run_variant(variant: TransposeVariant, n: u64) -> Report {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let w = Transpose::setup(&mut m, n, variant).expect("setup");
        m.reset_stats();
        w.column_reduce(&mut m);
        m.report(variant.name())
    }

    #[test]
    fn remapped_walk_is_dense_and_faster() {
        // n large enough that a column walk thrashes both caches.
        let conv = run_variant(TransposeVariant::Conventional, 512);
        let imp = run_variant(TransposeVariant::Remapped, 512);
        assert_eq!(conv.mem.loads, imp.mem.loads);
        assert!(
            imp.mem.l1_ratio() > 0.7,
            "alias walk is dense: {}",
            imp.mem.l1_ratio()
        );
        assert!(
            conv.mem.l1_ratio() < 0.3,
            "column walk thrashes: {}",
            conv.mem.l1_ratio()
        );
        assert!(imp.cycles < conv.cycles);
        assert!(imp.bus.bytes < conv.bus.bytes);
    }

    #[test]
    fn alias_is_the_transpose_permutation() {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let n = 64u64;
        let w = Transpose::setup(&mut m, n, TransposeVariant::Remapped).unwrap();
        let alias = w.alias.unwrap();
        for (c, r) in [(0u64, 0u64), (3, 7), (63, 1), (10, 63)] {
            let via_alias = {
                let p = m.translate(alias.start().add((c * n + r) * F64));
                m.memory().mc().resolve_shadow(p).unwrap()
            };
            let direct = MAddr::new(m.translate(w.a.start().add((r * n + c) * F64)).raw());
            assert_eq!(via_alias, direct, "At[{c}][{r}] == A[{r}][{c}]");
        }
    }
}
