//! A database-style selection scan — the "commercial importance"
//! workload class the paper's abstract calls out ("we expect that
//! Impulse will benefit regularly strided, memory-bound applications of
//! commercial importance, such as database and multimedia programs").
//!
//! A table of fixed-width records is filtered by an index: the query
//! produces a row-id list, then fetches one field from each selected
//! record. Conventionally each fetch drags a whole cache line for an
//! 8-byte field; with Impulse the row-id list *is* a gather indirection
//! vector, and the selected fields arrive densely packed.

use std::sync::Arc;

use impulse_os::OsError;
use impulse_sim::Machine;
use impulse_types::VRange;

/// How the field fetch is performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DbVariant {
    /// Random record accesses through the row-id list.
    Conventional,
    /// Gather remapping: the controller walks the row-id list.
    ImpulseGather,
}

impl DbVariant {
    /// Label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DbVariant::Conventional => "conventional index fetch",
            DbVariant::ImpulseGather => "impulse gathered fetch",
        }
    }
}

const FIELD: u64 = 8;

/// A selection-scan workload over a fixed-width record table.
#[derive(Clone, Debug)]
pub struct DbScan {
    /// The table (row-major records).
    table: VRange,
    /// Bytes per record (power of two so records stay line-aligned).
    record_bytes: u64,
    /// The row-id list produced by the index.
    row_ids: Arc<Vec<u64>>,
    /// Region holding the row-id list in memory.
    id_region: VRange,
    /// Gather alias of the selected fields (Impulse variant).
    alias: Option<VRange>,
    variant: DbVariant,
}

impl DbScan {
    /// Builds a table of `records` × `record_bytes` and a selection of
    /// `selected` pseudo-random row-ids (seeded).
    ///
    /// # Errors
    ///
    /// Propagates allocation and remapping failures.
    ///
    /// # Panics
    ///
    /// Panics if `record_bytes` is not a power of two of at least a
    /// field, or no rows are selected.
    pub fn setup(
        m: &mut Machine,
        records: u64,
        record_bytes: u64,
        selected: u64,
        seed: u64,
        variant: DbVariant,
    ) -> Result<Self, OsError> {
        assert!(
            record_bytes.is_power_of_two() && record_bytes >= FIELD,
            "records must be a power of two of at least one field"
        );
        assert!(selected > 0, "a query must select at least one row");
        let table = m.alloc_region(records * record_bytes, 128)?;
        let id_region = m.alloc_region(selected * 4, 128)?;

        // The "index result": pseudo-random row ids (with repeats, as a
        // real non-unique predicate produces).
        let mut state = seed | 1;
        let mut ids = Vec::with_capacity(selected as usize);
        for _ in 0..selected {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ids.push(state % records);
        }
        let row_ids = Arc::new(ids);

        let alias = match variant {
            DbVariant::Conventional => None,
            DbVariant::ImpulseGather => {
                // Gather element k = field 0 of record row_ids[k]: the
                // stride between gatherable elements is the record size,
                // expressed by scaling the indices to field units.
                let scale = record_bytes / FIELD;
                let field_indices: Vec<u64> = row_ids.iter().map(|&r| r * scale).collect();
                let grant =
                    m.sys_remap_gather(table, FIELD, Arc::new(field_indices), id_region, 4)?;
                Some(grant.alias)
            }
        };
        Ok(Self {
            table,
            record_bytes,
            row_ids,
            id_region,
            alias,
            variant,
        })
    }

    /// The variant in use.
    pub fn variant(&self) -> DbVariant {
        self.variant
    }

    /// Number of selected rows.
    pub fn selected(&self) -> u64 {
        self.row_ids.len() as u64
    }

    /// Executes the fetch phase of the query: read the field of every
    /// selected record and accumulate.
    pub fn fetch(&self, m: &mut Machine) {
        match self.variant {
            DbVariant::Conventional => {
                for (k, &rid) in self.row_ids.iter().enumerate() {
                    // Load the row id itself (the CPU walks the list)...
                    m.load(self.id_region.start().add(k as u64 * 4));
                    // ...then the field of the selected record.
                    m.load(self.table.start().add(rid * self.record_bytes));
                    m.compute(2);
                }
            }
            DbVariant::ImpulseGather => {
                let alias = self.alias.expect("alias configured");
                // The controller walks the row-id list; the CPU streams
                // the packed fields.
                for k in 0..self.selected() {
                    m.load(alias.start().add(k * FIELD));
                    m.compute(2);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impulse_sim::{Report, SystemConfig};

    fn run_variant(variant: DbVariant) -> Report {
        let cfg = SystemConfig::paint_small().with_prefetch(true, false);
        let mut m = Machine::new(&cfg);
        // 64K records of 64 B (4 MB table), 16K selected rows.
        let w = DbScan::setup(&mut m, 65_536, 64, 16_384, 0xdb, variant).expect("setup");
        m.reset_stats();
        w.fetch(&mut m);
        m.report(variant.name())
    }

    #[test]
    fn gather_beats_random_record_fetches() {
        let conv = run_variant(DbVariant::Conventional);
        let imp = run_variant(DbVariant::ImpulseGather);
        assert!(
            imp.cycles < conv.cycles,
            "{} !< {}",
            imp.cycles,
            conv.cycles
        );
        // Half the loads (no row-id reads at the CPU)...
        assert_eq!(imp.mem.loads * 2, conv.mem.loads);
        // ...and far less bus traffic (packed fields, not whole lines).
        assert!(imp.bus.bytes * 2 < conv.bus.bytes);
        assert!(imp.mem.l1_ratio() > 0.7);
    }

    #[test]
    fn gather_alias_resolves_to_selected_records() {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let w = DbScan::setup(&mut m, 4096, 64, 512, 7, DbVariant::ImpulseGather).unwrap();
        let alias = w.alias.unwrap();
        for k in (0..512).step_by(61) {
            let p = m.translate(alias.start().add(k * FIELD));
            let via = m.memory().mc().resolve_shadow(p).unwrap();
            let direct = m.translate(w.table.start().add(w.row_ids[k as usize] * 64));
            assert_eq!(via.raw(), direct.raw(), "selected row {k}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_record_size_rejected() {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let _ = DbScan::setup(&mut m, 100, 48, 10, 1, DbVariant::Conventional);
    }
}
