//! Tiled LU decomposition (right-looking, no pivoting) — one of the
//! "important class of scientific kernels" Section 3.2 motivates tiling
//! with (dense Cholesky factorization has the same structure).
//!
//! Per step `k`: factor the diagonal tile, solve the row and column
//! panels, then apply the trailing GEMM update `A[i][j] -= A[i][k] ·
//! A[k][j]` to every remaining tile. The trailing update is the O(n³)
//! bulk of the work and the part that benefits from dense tiles, so the
//! Impulse variant remaps exactly those three tile roles, with the same
//! purge/flush consistency protocol as matrix product. Because *all
//! three* views alias the same matrix, the output alias is additionally
//! flushed at the top of every step, before the panels read tiles the
//! previous step wrote.

use impulse_os::{OsError, RemapGrant};
use impulse_sim::Machine;
use impulse_types::geom::PAGE_SIZE;
use impulse_types::{VAddr, VRange};

/// Memory-system strategy for the trailing update.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LuVariant {
    /// Direct (non-contiguous) tile accesses.
    Conventional,
    /// Impulse base-stride tile remapping of the GEMM tiles.
    TileRemap,
}

impl LuVariant {
    /// Label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            LuVariant::Conventional => "conventional tiled LU",
            LuVariant::TileRemap => "impulse tile-remapped LU",
        }
    }
}

const F64: u64 = 8;

/// A tiled LU factorization bound to a machine.
#[derive(Clone, Debug)]
pub struct Lu {
    n: u64,
    tile: u64,
    a: VRange,
    aliases: Option<[(RemapGrant, (u64, u64)); 3]>,
    variant: LuVariant,
}

impl Lu {
    /// Allocates the matrix and, for the Impulse variant, the three tile
    /// aliases.
    ///
    /// # Errors
    ///
    /// Propagates allocation and remapping failures.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a multiple of `tile` or tile rows are not a
    /// power of two bytes.
    pub fn setup(m: &mut Machine, n: u64, tile: u64, variant: LuVariant) -> Result<Self, OsError> {
        assert!(
            tile > 0 && n.is_multiple_of(tile),
            "n must be a multiple of tile"
        );
        assert!(
            (tile * F64).is_power_of_two(),
            "tile rows must be a power of two bytes"
        );
        let a = m.alloc_region(n * n * F64, 128)?;
        let aliases = match variant {
            LuVariant::Conventional => None,
            LuVariant::TileRemap => {
                let mk = |m: &mut Machine| {
                    m.sys_remap_strided(a.start(), tile * F64, n * F64, tile, PAGE_SIZE)
                };
                Some([(mk(m)?, (0, 0)), (mk(m)?, (0, 0)), (mk(m)?, (0, 0))])
            }
        };
        Ok(Self {
            n,
            tile,
            a,
            aliases,
            variant,
        })
    }

    /// The variant in use.
    pub fn variant(&self) -> LuVariant {
        self.variant
    }

    #[inline]
    fn elem(&self, r: u64, c: u64) -> VAddr {
        self.a.start().add((r * self.n + c) * F64)
    }

    #[inline]
    fn tile_elem(base: VAddr, tile: u64, r: u64, c: u64) -> VAddr {
        base.add((r * tile + c) * F64)
    }

    /// Factor the diagonal tile in place (≈T³/3 multiply-subtract ops).
    fn factor_diag(&self, m: &mut Machine, k: u64) {
        let t = self.tile;
        let (r0, c0) = (k * t, k * t);
        for p in 0..t {
            for r in (p + 1)..t {
                m.load(self.elem(r0 + r, c0 + p));
                m.load(self.elem(r0 + p, c0 + p));
                m.store(self.elem(r0 + r, c0 + p));
                m.compute(3); // divide + bookkeeping
                for c in (p + 1)..t {
                    m.load(self.elem(r0 + p, c0 + c));
                    m.load(self.elem(r0 + r, c0 + c));
                    m.store(self.elem(r0 + r, c0 + c));
                    m.compute(2);
                }
            }
        }
    }

    /// Triangular solve of one panel tile against the diagonal tile
    /// (≈T³/2 ops). `row_panel` selects U-row (true) or L-column update.
    fn solve_panel(&self, m: &mut Machine, k: u64, other: u64, row_panel: bool) {
        let t = self.tile;
        for p in 0..t {
            for q in 0..t {
                let (r, c) = if row_panel {
                    (k * t + p, other * t + q)
                } else {
                    (other * t + q, k * t + p)
                };
                m.load(self.elem(r, c));
                m.compute(1);
                for s in 0..p {
                    let (dr, dc) = if row_panel {
                        (k * t + s, other * t + q)
                    } else {
                        (other * t + q, k * t + s)
                    };
                    m.load(self.elem(k * t + p, k * t + s));
                    m.load(self.elem(dr, dc));
                    m.compute(2);
                }
                m.store(self.elem(r, c));
                m.compute(1);
            }
        }
    }

    /// Points alias `idx` at tile `(tr, tc)`; flush (output) or purge
    /// (input) per the consistency protocol.
    fn retarget(
        &mut self,
        m: &mut Machine,
        idx: usize,
        tr: u64,
        tc: u64,
        dirty: bool,
    ) -> Result<VAddr, OsError> {
        let t = self.tile;
        let n = self.n;
        let base = self.elem(tr * t, tc * t);
        let aliases = self.aliases.as_mut().expect("aliases configured");
        let (grant, at) = &mut aliases[idx];
        if *at != (tr, tc) {
            if dirty {
                m.flush_region(grant.alias);
            } else {
                m.purge_region(grant.alias);
            }
            m.sys_retarget_strided(grant, base, t * F64, n * F64, t)?;
            *at = (tr, tc);
        }
        Ok(grant.alias.start())
    }

    /// Trailing GEMM update `A[i][j] -= A[i][k] · A[k][j]` for one tile,
    /// through tile views (dense alias or direct).
    #[allow(clippy::too_many_arguments)]
    fn gemm_tile(
        &self,
        m: &mut Machine,
        a_view: (VAddr, bool, u64, u64),
        b_view: (VAddr, bool, u64, u64),
        c_view: (VAddr, bool, u64, u64),
    ) {
        let t = self.tile;
        let addr = |(base, dense, r0, c0): (VAddr, bool, u64, u64), r: u64, c: u64| {
            if dense {
                Self::tile_elem(base, t, r, c)
            } else {
                self.elem(r0 + r, c0 + c)
            }
        };
        for i in 0..t {
            for j in 0..t {
                m.load(addr(c_view, i, j));
                m.compute(1);
                for k in 0..t {
                    m.load(addr(a_view, i, k));
                    m.load(addr(b_view, k, j));
                    m.compute(2);
                }
                m.store(addr(c_view, i, j));
                m.compute(1);
            }
        }
    }

    /// Runs the full factorization once.
    ///
    /// # Errors
    ///
    /// Propagates remapping failures (Impulse variant).
    pub fn run(&mut self, m: &mut Machine) -> Result<(), OsError> {
        let nt = self.n / self.tile;
        for k in 0..nt {
            if self.variant == LuVariant::TileRemap {
                // The previous step's last output tile may still be dirty
                // under its shadow address; write it back before the
                // panels read the matrix directly.
                let alias = self.aliases.as_ref().expect("aliases")[2].0.alias;
                m.flush_region(alias);
            }
            self.factor_diag(m, k);
            for j in (k + 1)..nt {
                self.solve_panel(m, k, j, true);
            }
            for i in (k + 1)..nt {
                self.solve_panel(m, k, i, false);
            }
            for i in (k + 1)..nt {
                for j in (k + 1)..nt {
                    match self.variant {
                        LuVariant::Conventional => {
                            let t = self.tile;
                            self.gemm_tile(
                                m,
                                (self.a.start(), false, i * t, k * t),
                                (self.a.start(), false, k * t, j * t),
                                (self.a.start(), false, i * t, j * t),
                            );
                        }
                        LuVariant::TileRemap => {
                            let av = self.retarget(m, 0, i, k, false)?;
                            let bv = self.retarget(m, 1, k, j, false)?;
                            let cv = self.retarget(m, 2, i, j, true)?;
                            self.gemm_tile(m, (av, true, 0, 0), (bv, true, 0, 0), (cv, true, 0, 0));
                        }
                    }
                }
            }
        }
        if self.variant == LuVariant::TileRemap {
            let alias = self.aliases.as_ref().expect("aliases")[2].0.alias;
            m.flush_region(alias);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impulse_sim::{Report, SystemConfig};

    fn run_variant(variant: LuVariant, n: u64, tile: u64) -> Report {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let mut lu = Lu::setup(&mut m, n, tile, variant).expect("setup");
        lu.run(&mut m).expect("run");
        m.report(variant.name())
    }

    #[test]
    fn remap_beats_conventional_in_the_conflict_regime() {
        // 256×256: power-of-two pitch, tiles self-conflict in the L1.
        let conv = run_variant(LuVariant::Conventional, 256, 32);
        let remap = run_variant(LuVariant::TileRemap, 256, 32);
        assert!(
            remap.cycles < conv.cycles,
            "remap {} !< conv {}",
            remap.cycles,
            conv.cycles
        );
        assert!(remap.mem.l1_ratio() > conv.mem.l1_ratio());
    }

    #[test]
    fn both_variants_do_the_same_factorization_work() {
        let conv = run_variant(LuVariant::Conventional, 128, 32);
        let remap = run_variant(LuVariant::TileRemap, 128, 32);
        // The GEMM loads are identical; panel/diag work is shared code.
        assert_eq!(conv.mem.loads, remap.mem.loads);
        assert_eq!(conv.mem.stores, remap.mem.stores);
    }

    #[test]
    fn remap_scatters_output_tiles() {
        let remap = run_variant(LuVariant::TileRemap, 128, 32);
        assert!(remap.mc.shadow_line_writes > 0);
    }

    #[test]
    #[should_panic(expected = "multiple of tile")]
    fn bad_tiling_rejected() {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let _ = Lu::setup(&mut m, 100, 32, LuVariant::Conventional);
    }
}
