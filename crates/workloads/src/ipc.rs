//! IPC message assembly (Section 6 of the paper).
//!
//! "A major chore of remote IPC is collecting message data from multiple
//! user buffers and protocol headers. Impulse's support for scatter/gather
//! can remove the overhead of gathering data in software." This workload
//! assembles a message from scattered user buffers plus a protocol header
//! and then streams it out (modelling the NIC or receiving process
//! reading the assembled message):
//!
//! * [`IpcVariant::SoftwareGather`] — the CPU copies every word into a
//!   contiguous message buffer, then the message is streamed.
//! * [`IpcVariant::ImpulseGather`] — the OS builds a gather alias over the
//!   scattered pieces; the stream reads the alias directly, no copy.

use std::sync::Arc;

use impulse_os::OsError;
use impulse_sim::Machine;
use impulse_types::VRange;

/// Message-assembly strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IpcVariant {
    /// CPU copies the pieces into a contiguous buffer.
    SoftwareGather,
    /// Impulse gathers the pieces at the memory controller.
    ImpulseGather,
}

impl IpcVariant {
    /// Label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            IpcVariant::SoftwareGather => "software gather (copy)",
            IpcVariant::ImpulseGather => "impulse no-copy gather",
        }
    }
}

const WORD: u64 = 8;

/// An IPC message-assembly workload.
#[derive(Clone, Debug)]
pub struct IpcGather {
    /// Scattered source buffers.
    buffers: Vec<VRange>,
    /// Words per buffer.
    words_per_buffer: u64,
    /// Protocol header region.
    header: VRange,
    /// Header words.
    header_words: u64,
    /// Message buffer (software variant) or gather alias (Impulse).
    message: VRange,
    variant: IpcVariant,
}

impl IpcGather {
    /// Allocates `buffers` user buffers of `buffer_bytes` each plus a
    /// `header_bytes` protocol header, and prepares the assembly target.
    ///
    /// # Errors
    ///
    /// Propagates allocation and remapping failures.
    pub fn setup(
        m: &mut Machine,
        buffers: u64,
        buffer_bytes: u64,
        header_bytes: u64,
        variant: IpcVariant,
    ) -> Result<Self, OsError> {
        let words_per_buffer = buffer_bytes / WORD;
        let header_words = header_bytes / WORD;
        let header = m.alloc_region(header_bytes, 128)?;
        let mut user = Vec::with_capacity(buffers as usize);
        for _ in 0..buffers {
            user.push(m.alloc_region(buffer_bytes, 128)?);
        }
        let total_words = header_words + buffers * words_per_buffer;

        let message = match variant {
            IpcVariant::SoftwareGather => m.alloc_region(total_words * WORD, 128)?,
            IpcVariant::ImpulseGather => {
                // One gather descriptor over a pseudo-virtual window that
                // contains the header and all buffers: indices address
                // words relative to the *header* region start (the buffers
                // follow it in virtual space, since allocation is a bump).
                let base = header.start();
                let mut indices = Vec::with_capacity(total_words as usize);
                for w in 0..header_words {
                    indices.push(w);
                }
                for b in &user {
                    let word0 = b.start().offset_from(base) / WORD;
                    for w in 0..words_per_buffer {
                        indices.push(word0 + w);
                    }
                }
                let span = user
                    .last()
                    .expect("at least one buffer")
                    .end()
                    .offset_from(base);
                let target = VRange::new(base, span);
                // The OS materializes the indirection vector in memory so
                // the controller can read it.
                let index_region = m.alloc_region(total_words * 4, 128)?;
                let grant = m.sys_remap_gather(target, WORD, Arc::new(indices), index_region, 4)?;
                grant.alias
            }
        };
        Ok(Self {
            buffers: user,
            words_per_buffer,
            header,
            header_words,
            message,
            variant,
        })
    }

    /// The variant in use.
    pub fn variant(&self) -> IpcVariant {
        self.variant
    }

    /// Total message words.
    pub fn message_words(&self) -> u64 {
        self.header_words + self.buffers.len() as u64 * self.words_per_buffer
    }

    /// Assembles and streams one message: the software variant copies
    /// everything first; the Impulse variant streams the gather alias
    /// directly.
    pub fn send(&self, m: &mut Machine) {
        if self.variant == IpcVariant::SoftwareGather {
            let mut out = self.message.start();
            for w in 0..self.header_words {
                m.load(self.header.start().add(w * WORD));
                m.store(out);
                m.compute(1);
                out = out.add(WORD);
            }
            for b in &self.buffers {
                for w in 0..self.words_per_buffer {
                    m.load(b.start().add(w * WORD));
                    m.store(out);
                    m.compute(1);
                    out = out.add(WORD);
                }
            }
        }
        // The "NIC" (or receiver) streams the assembled message.
        for w in 0..self.message_words() {
            m.load(self.message.start().add(w * WORD));
            m.compute(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impulse_sim::{Report, SystemConfig};

    fn run_variant(variant: IpcVariant, messages: u64) -> Report {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let w = IpcGather::setup(&mut m, 4, 4096, 64, variant).expect("setup");
        m.reset_stats();
        for _ in 0..messages {
            w.send(&mut m);
        }
        m.report(variant.name())
    }

    #[test]
    fn impulse_eliminates_copy_instructions() {
        let sw = run_variant(IpcVariant::SoftwareGather, 1);
        let imp = run_variant(IpcVariant::ImpulseGather, 1);
        assert!(imp.mem.loads < sw.mem.loads);
        assert_eq!(imp.mem.stores, 0, "no copy stores with Impulse");
        assert!(sw.mem.stores > 0);
    }

    #[test]
    fn impulse_send_is_faster() {
        let sw = run_variant(IpcVariant::SoftwareGather, 4);
        let imp = run_variant(IpcVariant::ImpulseGather, 4);
        assert!(
            imp.cycles < sw.cycles,
            "impulse {} !< software {}",
            imp.cycles,
            sw.cycles
        );
    }

    #[test]
    fn message_word_count_matches() {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let w = IpcGather::setup(&mut m, 3, 1024, 64, IpcVariant::SoftwareGather).unwrap();
        assert_eq!(w.message_words(), 8 + 3 * 128);
    }
}
