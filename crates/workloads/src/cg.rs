//! The full conjugate-gradient iteration (the NAS CG benchmark), not just
//! its SMVP kernel.
//!
//! Each CG iteration is one sparse matrix-vector product `q = A·p` plus a
//! handful of dense vector operations (two dot products, three AXPYs).
//! Reproducing the whole iteration matters for two reasons:
//!
//! * the paper's Table 1 times the complete benchmark, where the dense
//!   vector work dilutes the SMVP speedup, and
//! * under scatter/gather remapping the *multiplicand changes every
//!   iteration* — the application must flush the freshly-written `p` from
//!   the caches before the controller gathers it ("we assume that an
//!   application that uses Impulse ensures data consistency through
//!   appropriate flushing of the caches", Section 2.3). This module
//!   implements that protocol.

use std::sync::Arc;

use impulse_os::OsError;
use impulse_sim::Machine;
use impulse_types::{VAddr, VRange};

use crate::smvp::SmvpVariant;
use crate::sparse::SparsePattern;

const F64: u64 = 8;
const IDX: u64 = 4;

/// A complete CG solve bound to a machine.
#[derive(Clone, Debug)]
pub struct CgBenchmark {
    pattern: Arc<SparsePattern>,
    variant: SmvpVariant,
    data: VRange,
    column: VRange,
    rows: VRange,
    /// Search direction (the SMVP multiplicand).
    p: VRange,
    /// q = A·p.
    q: VRange,
    /// Solution estimate.
    x: VRange,
    /// Residual.
    r: VRange,
    /// Gathered alias p' (scatter/gather variant only).
    p_gather: Option<VRange>,
}

impl CgBenchmark {
    /// Allocates the CG state and performs the remapping system calls the
    /// variant requires.
    ///
    /// # Errors
    ///
    /// Propagates allocation and remapping failures.
    pub fn setup(
        m: &mut Machine,
        pattern: Arc<SparsePattern>,
        variant: SmvpVariant,
    ) -> Result<Self, OsError> {
        let n = pattern.n();
        let nnz = pattern.nnz();
        let data = m.alloc_region(nnz * F64, 128)?;
        let column = m.alloc_region(nnz * IDX, 128)?;
        let rows = m.alloc_region((n + 1) * IDX, 128)?;
        let p = m.alloc_region(n * F64, 128)?;
        let q = m.alloc_region(n * F64, 128)?;
        let x = m.alloc_region(n * F64, 128)?;
        let r = m.alloc_region(n * F64, 128)?;

        let mut cg = Self {
            pattern,
            variant,
            data,
            column,
            rows,
            p,
            q,
            x,
            r,
            p_gather: None,
        };
        match variant {
            SmvpVariant::Conventional => {}
            SmvpVariant::ScatterGather => {
                // p' placed half an L1 away from DATA (see smvp.rs).
                let indices = Arc::new(cg.pattern.cols().to_vec());
                let grant = m.sys_remap_gather_interleaved(
                    cg.p,
                    F64,
                    indices,
                    cg.column,
                    IDX,
                    cg.data.start(),
                )?;
                cg.p_gather = Some(grant.alias);
            }
            SmvpVariant::Recolored => {
                let half: Vec<u64> = (0..16).collect();
                let q3: Vec<u64> = (16..24).collect();
                let q4: Vec<u64> = (24..32).collect();
                cg.p = m.sys_recolor(cg.p, &half)?.alias;
                cg.data = m.sys_recolor(cg.data, &q3)?.alias;
                cg.column = m.sys_recolor(cg.column, &q4)?.alias;
            }
        }
        Ok(cg)
    }

    /// The variant this benchmark was set up for.
    pub fn variant(&self) -> SmvpVariant {
        self.variant
    }

    #[inline]
    fn at(r: VRange, i: u64, size: u64) -> VAddr {
        r.start().add(i * size)
    }

    /// `q = A·p` through whichever view the variant uses.
    fn smvp(&self, m: &mut Machine) {
        let n = self.pattern.n();
        let cols = self.pattern.cols();
        match self.variant {
            SmvpVariant::Conventional | SmvpVariant::Recolored => {
                for i in 0..n {
                    m.load(Self::at(self.rows, i + 1, IDX));
                    m.compute(2);
                    for j in self.pattern.row_range(i) {
                        m.load(Self::at(self.column, j, IDX));
                        m.load(Self::at(self.data, j, F64));
                        m.load(Self::at(self.p, cols[j as usize], F64));
                        m.compute(3);
                    }
                    m.store(Self::at(self.q, i, F64));
                    m.compute(1);
                }
            }
            SmvpVariant::ScatterGather => {
                let pg = self.p_gather.expect("gather alias configured");
                for i in 0..n {
                    m.load(Self::at(self.rows, i + 1, IDX));
                    m.compute(2);
                    for j in self.pattern.row_range(i) {
                        m.load(Self::at(self.data, j, F64));
                        m.load(Self::at(pg, j, F64));
                        m.compute(3);
                    }
                    m.store(Self::at(self.q, i, F64));
                    m.compute(1);
                }
            }
        }
    }

    /// Dot product of two vectors (2 loads + multiply-add per element).
    fn dot(&self, m: &mut Machine, a: VRange, b: VRange) {
        for i in 0..self.pattern.n() {
            m.load(Self::at(a, i, F64));
            m.load(Self::at(b, i, F64));
            m.compute(2);
        }
    }

    /// `y ← y + α·x` (2 loads + 1 store + multiply-add per element).
    fn axpy(&self, m: &mut Machine, y: VRange, x: VRange) {
        for i in 0..self.pattern.n() {
            m.load(Self::at(y, i, F64));
            m.load(Self::at(x, i, F64));
            m.store(Self::at(y, i, F64));
            m.compute(2);
        }
    }

    /// Runs one full CG iteration:
    /// `q = A·p; α = ρ/(p·q); x += α·p; r -= α·q; ρ' = r·r; p = r + β·p`.
    pub fn iteration(&self, m: &mut Machine) {
        self.smvp(m);
        self.dot(m, self.p, self.q); // α denominator
        m.compute(8); // scalar α, β arithmetic
        self.axpy(m, self.x, self.p);
        self.axpy(m, self.r, self.q);
        self.dot(m, self.r, self.r); // ρ'
        self.axpy(m, self.p, self.r); // p = r + β·p (fused update)

        // Consistency protocol (Section 2.3): p changed, and the next
        // iteration's gather must see the new values in DRAM — flush it.
        if self.variant == SmvpVariant::ScatterGather {
            m.flush_region(self.p);
        }
    }

    /// Runs `iterations` CG iterations.
    pub fn run(&self, m: &mut Machine, iterations: u64) {
        for _ in 0..iterations {
            self.iteration(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impulse_sim::{Report, SystemConfig};

    fn run_variant(variant: SmvpVariant, mc_pf: bool) -> Report {
        // Densities well below CG-A's 156 nnz/row let the dense vector
        // phases dominate and mask the SMVP effect; 24/row keeps the
        // paper's balance at test scale.
        let pattern = Arc::new(SparsePattern::generate(14_000, 24, 5));
        let cfg = SystemConfig::paint_small().with_prefetch(mc_pf, false);
        let mut m = Machine::new(&cfg);
        let cg = CgBenchmark::setup(&mut m, pattern, variant).expect("setup");
        cg.run(&mut m, 2);
        m.report(variant.name())
    }

    #[test]
    fn full_cg_issues_vector_work_on_top_of_smvp() {
        let r = run_variant(SmvpVariant::Conventional, false);
        // Per iteration: n SMVP stores + 3 AXPYs × n stores.
        assert_eq!(r.mem.stores, 2 * (14_000 + 3 * 14_000));
    }

    #[test]
    fn scatter_gather_with_prefetch_still_wins_on_full_cg() {
        let conv = run_variant(SmvpVariant::Conventional, false);
        let sg_pf = run_variant(SmvpVariant::ScatterGather, true);
        assert!(
            sg_pf.cycles < conv.cycles,
            "sg+pf {} !< conv {}",
            sg_pf.cycles,
            conv.cycles
        );
        // The dense vector phases dilute the speedup relative to
        // SMVP-only, as in the paper's whole-benchmark numbers.
        let speedup = conv.cycles as f64 / sg_pf.cycles as f64;
        assert!(speedup > 1.05 && speedup < 3.0, "speedup {speedup}");
    }

    #[test]
    fn gather_consistency_flush_happens_every_iteration() {
        let pattern = Arc::new(SparsePattern::generate(2048, 4, 5));
        let mut m = Machine::new(&SystemConfig::paint_small());
        let cg = CgBenchmark::setup(&mut m, pattern, SmvpVariant::ScatterGather).unwrap();
        let wb_before = m.memory().stats().mem_writebacks;
        cg.run(&mut m, 2);
        // The p-vector flushes force dirty lines back to DRAM each
        // iteration.
        assert!(m.memory().stats().mem_writebacks > wb_before);
    }
}
