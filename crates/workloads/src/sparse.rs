//! Sparse matrix patterns in compressed-sparse-row form.
//!
//! The NAS CG benchmark builds its matrix from pseudo-randomly placed
//! non-zeroes; we generate an equivalent pattern with a seeded RNG (the
//! Class A instance is 14,000 × 14,000 with 2.19 million non-zeroes,
//! ≈ 156 per row). Only the *pattern* matters to the memory system — the
//! simulator models addresses, not values.

/// Minimal deterministic PRNG (splitmix64), replacing an external RNG
/// dependency: the simulator only needs a fixed, seedable pseudo-random
/// pattern, not cryptographic or statistical-suite quality.
#[derive(Clone, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (multiply-shift range reduction).
    fn next_below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A CSR sparsity pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparsePattern {
    n: u64,
    row_ptr: Vec<u64>,
    cols: Vec<u64>,
}

impl SparsePattern {
    /// Generates an `n × n` pattern with `nnz_per_row` uniformly random,
    /// sorted column indices per row (duplicates removed, so rows may be
    /// slightly shorter).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `nnz_per_row == 0`.
    pub fn generate(n: u64, nnz_per_row: u64, seed: u64) -> Self {
        assert!(n > 0, "matrix must be non-empty");
        assert!(nnz_per_row > 0, "rows must have at least one non-zero");
        let mut rng = SplitMix64::new(seed);
        let mut row_ptr = Vec::with_capacity(n as usize + 1);
        let mut cols = Vec::with_capacity((n * nnz_per_row) as usize);
        row_ptr.push(0);
        let mut scratch = Vec::with_capacity(nnz_per_row as usize);
        for _ in 0..n {
            scratch.clear();
            for _ in 0..nnz_per_row {
                scratch.push(rng.next_below(n));
            }
            scratch.sort_unstable();
            scratch.dedup();
            cols.extend_from_slice(&scratch);
            row_ptr.push(cols.len() as u64);
        }
        Self { n, row_ptr, cols }
    }

    /// The NAS CG Class A pattern dimensions (14,000 rows, ≈ 156 nnz/row
    /// → ≈ 2.19 M non-zeroes), seeded deterministically.
    pub fn cg_class_a() -> Self {
        Self::generate(14_000, 156, 0x00c9_a15e)
    }

    /// A scaled-down CG-like pattern that preserves the memory-system
    /// relationships (x exceeds the 32 KB L1, fits in half the 256 KB L2;
    /// DATA/COLUMN streams dwarf the L2).
    pub fn cg_scaled(nnz_per_row: u64, seed: u64) -> Self {
        Self::generate(14_000, nnz_per_row, seed)
    }

    /// A Spark98-like pattern: the stiffness matrix of a 2-D `side ×
    /// side` finite-element mesh (each node couples to its ≤8 grid
    /// neighbours and itself). Spark98's earthquake kernels spend most of
    /// their time in SMVP over exactly this kind of matrix (Section 3.1
    /// cites them alongside CG); unlike CG's uniform pattern, mesh columns
    /// are *clustered*, so the multiplicand has real spatial locality.
    pub fn mesh2d(side: u64) -> Self {
        assert!(side > 0, "mesh must be non-empty");
        let n = side * side;
        let mut row_ptr = Vec::with_capacity(n as usize + 1);
        let mut cols = Vec::new();
        row_ptr.push(0);
        for r in 0..side {
            for c in 0..side {
                for dr in -1i64..=1 {
                    for dc in -1i64..=1 {
                        let nr = r as i64 + dr;
                        let nc = c as i64 + dc;
                        if (0..side as i64).contains(&nr) && (0..side as i64).contains(&nc) {
                            cols.push(nr as u64 * side + nc as u64);
                        }
                    }
                }
                row_ptr.push(cols.len() as u64);
            }
        }
        Self { n, row_ptr, cols }
    }

    /// Matrix dimension.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Total non-zeroes.
    pub fn nnz(&self) -> u64 {
        self.cols.len() as u64
    }

    /// Row start offsets (length `n + 1`).
    pub fn row_ptr(&self) -> &[u64] {
        &self.row_ptr
    }

    /// Column index of each non-zero, row-major.
    pub fn cols(&self) -> &[u64] {
        &self.cols
    }

    /// The half-open non-zero range of row `i`.
    pub fn row_range(&self, i: u64) -> core::ops::Range<u64> {
        self.row_ptr[i as usize]..self.row_ptr[i as usize + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_is_well_formed() {
        let p = SparsePattern::generate(100, 8, 42);
        assert_eq!(p.n(), 100);
        assert_eq!(p.row_ptr().len(), 101);
        assert_eq!(*p.row_ptr().last().unwrap(), p.nnz());
        for i in 0..100 {
            let r = p.row_range(i);
            let cols = &p.cols()[r.start as usize..r.end as usize];
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            assert!(cols.iter().all(|&c| c < 100));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SparsePattern::generate(64, 4, 7);
        let b = SparsePattern::generate(64, 4, 7);
        assert_eq!(a, b);
        let c = SparsePattern::generate(64, 4, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn nnz_close_to_requested() {
        let p = SparsePattern::generate(1000, 16, 3);
        // Dedup trims a little; must stay within a few percent.
        assert!(p.nnz() > 1000 * 15 && p.nnz() <= 1000 * 16);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_rows_rejected() {
        let _ = SparsePattern::generate(0, 4, 0);
    }

    #[test]
    fn mesh2d_has_nine_point_stencil_interior() {
        let p = SparsePattern::mesh2d(8);
        assert_eq!(p.n(), 64);
        // Interior node (3,3) = row 27: nine neighbours including itself.
        let r = p.row_range(27);
        assert_eq!(r.end - r.start, 9);
        // Corner node 0: four neighbours.
        let r0 = p.row_range(0);
        assert_eq!(r0.end - r0.start, 4);
        // All sorted within each row.
        for i in 0..p.n() {
            let rr = p.row_range(i);
            let cs = &p.cols()[rr.start as usize..rr.end as usize];
            assert!(cs.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
