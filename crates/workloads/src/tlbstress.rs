//! TLB-stress workload for the superpage experiment.
//!
//! The paper's Section 6 recaps earlier work (Swanson et al., ISCA '98):
//! Impulse's direct remapping can weld non-contiguous physical pages into
//! a contiguous shadow superpage, cutting TLB misses. This workload walks
//! several large regions with a working set of pages far beyond the
//! 120-entry TLB; with one superpage per region the whole working set
//! needs only a handful of entries.

use impulse_os::OsError;
use impulse_sim::Machine;
use impulse_types::geom::PAGE_SIZE;
use impulse_types::VRange;

/// Whether the regions are welded into superpages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TlbVariant {
    /// One TLB entry per 4 KB page.
    BasePages,
    /// One Impulse shadow superpage per region.
    Superpages,
}

impl TlbVariant {
    /// Label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            TlbVariant::BasePages => "base pages",
            TlbVariant::Superpages => "impulse superpages",
        }
    }
}

/// A TLB-stress workload over several page-aligned regions.
#[derive(Clone, Debug)]
pub struct TlbStress {
    regions: Vec<VRange>,
    pages_per_region: u64,
}

impl TlbStress {
    /// Allocates `regions` regions of `pages_per_region` pages each
    /// (power of two), building superpages per the variant.
    ///
    /// # Errors
    ///
    /// Propagates allocation and remapping failures.
    pub fn setup(
        m: &mut Machine,
        regions: u64,
        pages_per_region: u64,
        variant: TlbVariant,
    ) -> Result<Self, OsError> {
        let mut rs = Vec::with_capacity(regions as usize);
        for _ in 0..regions {
            let r = m.alloc_region(
                pages_per_region * PAGE_SIZE,
                pages_per_region.next_power_of_two() * PAGE_SIZE,
            )?;
            if variant == TlbVariant::Superpages {
                m.sys_superpage(r)?;
            }
            rs.push(r);
        }
        Ok(Self {
            regions: rs,
            pages_per_region,
        })
    }

    /// Round-robins across regions touching one word per page — the TLB
    /// worst case — for `rounds` full sweeps.
    pub fn sweep(&self, m: &mut Machine, rounds: u64) {
        for round in 0..rounds {
            for p in 0..self.pages_per_region {
                for r in &self.regions {
                    m.load(r.start().add(p * PAGE_SIZE + (round % 8) * 8));
                    m.compute(2);
                }
            }
        }
    }

    /// Total pages in the working set.
    pub fn working_set_pages(&self) -> u64 {
        self.regions.len() as u64 * self.pages_per_region
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impulse_sim::{Report, SystemConfig};

    fn run_variant(variant: TlbVariant) -> Report {
        let mut m = Machine::new(&SystemConfig::paint_small());
        // 4 regions × 64 pages = 256 pages ≫ 120 TLB entries.
        let w = TlbStress::setup(&mut m, 4, 64, variant).expect("setup");
        m.reset_stats();
        w.sweep(&mut m, 3);
        m.report(variant.name())
    }

    #[test]
    fn superpages_eliminate_tlb_thrash() {
        let base = run_variant(TlbVariant::BasePages);
        let sp = run_variant(TlbVariant::Superpages);
        assert!(
            sp.mem.tlb_penalties * 10 < base.mem.tlb_penalties,
            "superpages {} !≪ base {}",
            sp.mem.tlb_penalties,
            base.mem.tlb_penalties
        );
        assert!(sp.cycles < base.cycles);
    }

    #[test]
    fn working_set_exceeds_tlb() {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let w = TlbStress::setup(&mut m, 4, 64, TlbVariant::BasePages).unwrap();
        assert!(w.working_set_pages() > 120);
    }
}
