//! The diagonal-of-a-dense-matrix example (Figure 1 of the paper).
//!
//! On a conventional system every access to `A[i][i]` drags a full cache
//! line across the bus to deliver one useful word. With Impulse the OS
//! remaps the diagonal to a dense shadow alias, so every byte moved is a
//! diagonal element. The figure-1 bench measures exactly this: cycles and
//! bus traffic for walking the diagonal, conventional vs. remapped.

use impulse_os::OsError;
use impulse_sim::Machine;
use impulse_types::VRange;

/// Which view the walker reads the diagonal through.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DiagonalVariant {
    /// Direct accesses to `A[i][i]`.
    Conventional,
    /// Accesses through a dense strided shadow alias.
    Remapped,
}

impl DiagonalVariant {
    /// Label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DiagonalVariant::Conventional => "conventional",
            DiagonalVariant::Remapped => "impulse diagonal remap",
        }
    }
}

const F64: u64 = 8;

/// A dense `n × n` matrix with a walkable diagonal.
#[derive(Clone, Debug)]
pub struct Diagonal {
    n: u64,
    a: VRange,
    alias: Option<VRange>,
    variant: DiagonalVariant,
}

impl Diagonal {
    /// Allocates the matrix and, for the remapped variant, sets up the
    /// strided alias (8-byte objects, `(n+1)*8`-byte stride).
    ///
    /// # Errors
    ///
    /// Propagates allocation and remapping failures.
    pub fn setup(m: &mut Machine, n: u64, variant: DiagonalVariant) -> Result<Self, OsError> {
        let a = m.alloc_region(n * n * F64, 128)?;
        let alias = match variant {
            DiagonalVariant::Conventional => None,
            DiagonalVariant::Remapped => {
                let grant = m.sys_remap_strided(a.start(), F64, (n + 1) * F64, n, 4096)?;
                Some(grant.alias)
            }
        };
        Ok(Self {
            n,
            a,
            alias,
            variant,
        })
    }

    /// The variant in use.
    pub fn variant(&self) -> DiagonalVariant {
        self.variant
    }

    /// Walks the diagonal once, multiplying each element into an
    /// accumulator.
    pub fn pass(&self, m: &mut Machine) {
        match self.variant {
            DiagonalVariant::Conventional => {
                for i in 0..self.n {
                    m.load(self.a.start().add(i * (self.n + 1) * F64));
                    m.compute(2);
                }
            }
            DiagonalVariant::Remapped => {
                let alias = self.alias.expect("alias configured");
                for i in 0..self.n {
                    m.load(alias.start().add(i * F64));
                    m.compute(2);
                }
            }
        }
    }

    /// Walks the diagonal `passes` times.
    pub fn run(&self, m: &mut Machine, passes: u64) {
        for _ in 0..passes {
            self.pass(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impulse_sim::{Report, SystemConfig};

    fn run_variant(variant: DiagonalVariant, n: u64, passes: u64) -> Report {
        let mut m = Machine::new(&SystemConfig::paint_small());
        let d = Diagonal::setup(&mut m, n, variant).expect("setup");
        m.reset_stats();
        d.run(&mut m, passes);
        m.report(variant.name())
    }

    #[test]
    fn remap_saves_bus_bandwidth() {
        let conv = run_variant(DiagonalVariant::Conventional, 1024, 1);
        let imp = run_variant(DiagonalVariant::Remapped, 1024, 1);
        assert!(
            imp.bus.bytes * 4 < conv.bus.bytes,
            "remapped bus bytes {} should be a small fraction of {}",
            imp.bus.bytes,
            conv.bus.bytes
        );
    }

    #[test]
    fn remap_improves_hit_ratio_and_time() {
        let conv = run_variant(DiagonalVariant::Conventional, 1024, 2);
        let imp = run_variant(DiagonalVariant::Remapped, 1024, 2);
        assert!(imp.mem.l1_ratio() > conv.mem.l1_ratio());
        assert!(imp.cycles < conv.cycles);
    }

    #[test]
    fn both_variants_load_n_elements_per_pass() {
        let conv = run_variant(DiagonalVariant::Conventional, 256, 3);
        let imp = run_variant(DiagonalVariant::Remapped, 256, 3);
        assert_eq!(conv.mem.loads, 3 * 256);
        assert_eq!(imp.mem.loads, 3 * 256);
    }
}
