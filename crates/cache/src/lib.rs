//! Cache and TLB models for the Impulse simulator.
//!
//! Reproduces the Paint cache hierarchy from the paper's evaluation
//! (Section 4):
//!
//! * **L1 data cache** — 32 KB, direct-mapped, 32-byte lines, *virtually
//!   indexed / physically tagged*, write-back, **write-around** (no
//!   allocation on store misses), 1-cycle hits.
//! * **L2 data cache** — 256 KB, 2-way set-associative, 128-byte lines,
//!   physically indexed and tagged, write-back, write-allocate, 7-cycle
//!   hits.
//! * **TLB** — unified, fully associative, not-recently-used replacement.
//! * **Stream buffers** ([`stream`]) — the Jouppi/McKee related-work
//!   baseline of the paper's Section 5, as an optional L1-side unit.
//!
//! The cache model is generic over geometry, indexing space, write policy,
//! and replacement, so the same type implements both levels (and any
//! configuration an experiment wants to sweep). Timing lives in the system
//! model (`impulse-sim`); this crate tracks state and statistics.
//!
//! # Examples
//!
//! ```
//! use impulse_cache::{Cache, CacheConfig, Outcome};
//! use impulse_types::{AccessKind, PAddr, VAddr};
//!
//! let mut l1 = Cache::new(CacheConfig::paint_l1());
//! let (v, p) = (VAddr::new(0x1000), PAddr::new(0x8000));
//! assert!(matches!(l1.access(v, p, AccessKind::Load), Outcome::Miss { .. }));
//! assert!(matches!(l1.access(v, p, AccessKind::Load), Outcome::Hit));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod stream;
pub mod tlb;

pub use cache::{Cache, CacheConfig, CacheStats, FlushOutcome, Indexing, Outcome, Replacement};
pub use stream::{StreamBuffers, StreamConfig, StreamOutcome, StreamStats};
pub use tlb::{Tlb, TlbConfig, TlbStats};
