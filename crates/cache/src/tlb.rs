//! Fully-associative TLB with not-recently-used replacement.
//!
//! Models the Paint TLB: unified, single-cycle on a hit, fully associative,
//! NRU replacement. Entries may cover a power-of-two *span* of pages so the
//! superpage experiment (Impulse direct remapping used to build superpages
//! from non-contiguous physical pages, Swanson et al. ISCA '98, recapped in
//! Section 6) can be reproduced.

use impulse_obs::{MetricsRegistry, Observe};
use impulse_types::geom::is_pow2;
use impulse_types::snap::{SnapError, SnapReader, SnapWriter};
use impulse_types::FxHashMap;

/// Snapshot section tag for [`Tlb`] (`"TLB "`).
const TAG_TLB: u32 = 0x544C_4220;

/// TLB geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (the HP PA-7200's TLB held 120).
    pub entries: usize,
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self { entries: 120 }
    }
}

/// TLB statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations attempted.
    pub lookups: u64,
    /// Translations that hit.
    pub hits: u64,
    /// Entries inserted after a miss.
    pub inserts: u64,
    /// Valid entries evicted to make room.
    pub evictions: u64,
}

impl TlbStats {
    /// Misses (lookups − hits).
    pub fn misses(&self) -> u64 {
        self.lookups - self.hits
    }

    /// Hit ratio, or 0 when no lookups occurred.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    valid: bool,
    /// First virtual page covered.
    base_vpage: u64,
    /// Pages covered (power of two; 1 for a normal entry).
    span: u64,
    referenced: bool,
}

impl Entry {
    const INVALID: Self = Self {
        valid: false,
        base_vpage: 0,
        span: 1,
        referenced: false,
    };

    #[inline]
    fn covers(&self, vpage: u64) -> bool {
        self.valid && vpage >= self.base_vpage && vpage < self.base_vpage + self.span
    }
}

/// A fully-associative, NRU-replaced TLB.
///
/// Lookups are O(1): an index maps single-page entries by page number, and
/// superpage entries (rare) live on a short side list.
///
/// # Examples
///
/// ```
/// use impulse_cache::{Tlb, TlbConfig};
///
/// let mut tlb = Tlb::new(TlbConfig::default());
/// assert!(!tlb.lookup(42));
/// tlb.insert(42, 1);
/// assert!(tlb.lookup(42));
/// // A superpage entry covers a whole power-of-two span of pages.
/// tlb.insert(64, 16);
/// assert!(tlb.lookup(79));
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<Entry>,
    /// vpage → slot, for span-1 entries only.
    index: FxHashMap<u64, usize>,
    /// Slots holding superpage entries (span > 1).
    super_slots: Vec<usize>,
    stats: TlbStats,
    /// Bumped on every mutation of the entry array (insert, flush,
    /// shootdown, snapshot restore). Hit memos keyed on `(vpage,
    /// generation)` are therefore valid exactly as long as a repeat
    /// lookup would hit with no replacement-state change: reference bits
    /// only ever clear inside [`insert`](Tlb::insert), which bumps the
    /// generation.
    generation: u64,
}

impl Tlb {
    /// Builds a TLB.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.entries` is zero.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.entries > 0, "TLB must have at least one entry");
        Self {
            entries: vec![Entry::INVALID; cfg.entries],
            index: FxHashMap::default(),
            super_slots: Vec::new(),
            stats: TlbStats::default(),
            generation: 0,
        }
    }

    fn slot_of(&self, vpage: u64) -> Option<usize> {
        if let Some(&i) = self.index.get(&vpage) {
            return Some(i);
        }
        self.super_slots
            .iter()
            .copied()
            .find(|&i| self.entries[i].covers(vpage))
    }

    fn clear_slot(&mut self, i: usize) {
        let e = self.entries[i];
        if e.valid {
            if e.span == 1 {
                self.index.remove(&e.base_vpage);
            } else {
                self.super_slots.retain(|&s| s != i);
            }
        }
        self.entries[i] = Entry::INVALID;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets statistics; contents are preserved.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Looks up a virtual page; returns `true` on a hit and marks the
    /// entry referenced.
    pub fn lookup(&mut self, vpage: u64) -> bool {
        self.stats.lookups += 1;
        if let Some(i) = self.slot_of(vpage) {
            self.entries[i].referenced = true;
            self.stats.hits += 1;
            true
        } else {
            false
        }
    }

    /// Inserts a (super)page entry covering `span` pages starting at
    /// `base_vpage`, evicting a not-recently-used entry if full.
    ///
    /// # Panics
    ///
    /// Panics if `span` is not a power of two or `base_vpage` is not
    /// aligned to it.
    pub fn insert(&mut self, base_vpage: u64, span: u64) {
        assert!(is_pow2(span), "superpage span must be a power of two");
        assert!(
            base_vpage.is_multiple_of(span),
            "superpage base must be span-aligned"
        );
        self.stats.inserts += 1;
        self.generation += 1;

        let victim = if let Some(i) = self.entries.iter().position(|e| !e.valid) {
            i
        } else {
            // NRU: first unreferenced entry; if all are referenced, clear
            // all reference bits and take entry 0.
            match self.entries.iter().position(|e| !e.referenced) {
                Some(i) => i,
                None => {
                    for e in &mut self.entries {
                        e.referenced = false;
                    }
                    0
                }
            }
        };
        if self.entries[victim].valid {
            self.stats.evictions += 1;
            self.clear_slot(victim);
        }
        self.entries[victim] = Entry {
            valid: true,
            base_vpage,
            span,
            referenced: true,
        };
        if span == 1 {
            self.index.insert(base_vpage, victim);
        } else {
            self.super_slots.push(victim);
        }
    }

    /// Invalidates every entry.
    pub fn flush(&mut self) {
        self.generation += 1;
        for e in &mut self.entries {
            *e = Entry::INVALID;
        }
        self.index.clear();
        self.super_slots.clear();
    }

    /// Invalidates any entry covering `vpage`; returns whether one existed.
    pub fn flush_page(&mut self, vpage: u64) -> bool {
        if let Some(i) = self.slot_of(vpage) {
            self.generation += 1;
            self.clear_slot(i);
            true
        } else {
            false
        }
    }

    /// Number of valid entries.
    pub fn valid_entries(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Current mutation generation (see the field docs). Replay-style
    /// evaluators memoize hits as `(vpage, generation)` pairs.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Side-effect-free probe: would [`Tlb::lookup`] hit for `vpage`?
    /// Touches neither statistics nor reference bits.
    pub fn peek(&self, vpage: u64) -> bool {
        self.slot_of(vpage).is_some()
    }

    /// Folds `n` memoized hits into the statistics in one step — exactly
    /// what `n` calls to [`Tlb::lookup`] on an already-referenced entry
    /// would record. Callers must only use this for accesses proven to
    /// hit (e.g. via an unexpired `(vpage, generation)` memo).
    pub fn add_hits_bulk(&mut self, n: u64) {
        self.stats.lookups += n;
        self.stats.hits += n;
    }

    /// Serializes the entry array verbatim (slot order is NRU-relevant
    /// state), the superpage side list, and statistics. The single-page
    /// index is derivable and rebuilt on load.
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_TLB);
        w.usize(self.entries.len());
        for e in &self.entries {
            w.bool(e.valid);
            w.u64(e.base_vpage);
            w.u64(e.span);
            w.bool(e.referenced);
        }
        w.usize(self.super_slots.len());
        for &s in &self.super_slots {
            w.usize(s);
        }
        w.u64(self.stats.lookups);
        w.u64(self.stats.hits);
        w.u64(self.stats.inserts);
        w.u64(self.stats.evictions);
    }

    /// Restores the state saved by [`Tlb::snap_save`] into a TLB freshly
    /// built from the same configuration, rebuilding the lookup index.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_TLB)?;
        self.generation += 1;
        let n = r.usize()?;
        if n != self.entries.len() {
            return Err(SnapError::Geometry("TLB entry count"));
        }
        for e in &mut self.entries {
            e.valid = r.bool()?;
            e.base_vpage = r.u64()?;
            e.span = r.u64()?;
            e.referenced = r.bool()?;
        }
        let supers = r.usize()?;
        self.super_slots.clear();
        for _ in 0..supers {
            let s = r.usize()?;
            if s >= n {
                return Err(SnapError::Geometry("TLB superpage slot out of range"));
            }
            self.super_slots.push(s);
        }
        self.index.clear();
        for (i, e) in self.entries.iter().enumerate() {
            if e.valid && e.span == 1 {
                self.index.insert(e.base_vpage, i);
            }
        }
        self.stats.lookups = r.u64()?;
        self.stats.hits = r.u64()?;
        self.stats.inserts = r.u64()?;
        self.stats.evictions = r.u64()?;
        Ok(())
    }
}

impl Observe for Tlb {
    fn observe(&self, m: &mut MetricsRegistry) {
        let s = self.stats();
        m.counter("tlb.lookups", s.lookups);
        m.counter("tlb.hits", s.hits);
        m.counter("tlb.misses", s.misses());
        m.counter("tlb.inserts", s.inserts);
        m.counter("tlb.evictions", s.evictions);
        m.gauge("tlb.hit_ratio", s.hit_ratio());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb(n: usize) -> Tlb {
        Tlb::new(TlbConfig { entries: n })
    }

    #[test]
    fn miss_insert_hit() {
        let mut t = tlb(4);
        assert!(!t.lookup(7));
        t.insert(7, 1);
        assert!(t.lookup(7));
        let s = t.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses(), 1);
    }

    #[test]
    fn nru_evicts_unreferenced() {
        let mut t = tlb(2);
        t.insert(1, 1);
        t.insert(2, 1);
        // Reference both, then insert: all referenced → bits cleared,
        // entry 0 victimized.
        t.lookup(1);
        t.lookup(2);
        t.insert(3, 1);
        assert!(!t.lookup(1));
        assert!(t.lookup(3));
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn superpage_entry_covers_span() {
        let mut t = tlb(4);
        t.insert(16, 16);
        for p in 16..32 {
            assert!(t.lookup(p), "page {p} should hit the superpage entry");
        }
        assert!(!t.lookup(32));
        assert_eq!(t.valid_entries(), 1);
    }

    #[test]
    fn flush_page_removes_covering_entry() {
        let mut t = tlb(4);
        t.insert(0, 4);
        assert!(t.flush_page(2));
        assert!(!t.lookup(0));
        assert!(!t.flush_page(2));
    }

    #[test]
    fn flush_clears_everything() {
        let mut t = tlb(4);
        t.insert(1, 1);
        t.insert(2, 1);
        t.flush();
        assert_eq!(t.valid_entries(), 0);
    }

    #[test]
    fn generation_tracks_entry_mutations_only() {
        let mut t = tlb(4);
        let g0 = t.generation();
        assert!(!t.lookup(9)); // lookups never bump
        assert_eq!(t.generation(), g0);
        t.insert(9, 1);
        let g1 = t.generation();
        assert!(g1 > g0);
        t.lookup(9); // hit: reference bit set, no bump
        assert_eq!(t.generation(), g1);
        assert!(t.flush_page(9));
        assert!(t.generation() > g1);
        let g2 = t.generation();
        assert!(!t.flush_page(9)); // no covering entry: no bump
        assert_eq!(t.generation(), g2);
        t.flush();
        assert!(t.generation() > g2);
    }

    #[test]
    fn peek_is_side_effect_free() {
        let mut t = tlb(4);
        t.insert(5, 1);
        let stats = t.stats();
        let gen = t.generation();
        assert!(t.peek(5));
        assert!(!t.peek(6));
        assert_eq!(t.stats(), stats);
        assert_eq!(t.generation(), gen);
    }

    #[test]
    fn add_hits_bulk_matches_repeat_lookups() {
        let mut a = tlb(4);
        let mut b = tlb(4);
        a.insert(3, 1);
        b.insert(3, 1);
        a.lookup(3); // establish the referenced bit, as a memo would require
        b.lookup(3);
        for _ in 0..7 {
            a.lookup(3);
        }
        b.add_hits_bulk(7);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn hit_ratio_zero_when_unused() {
        assert_eq!(TlbStats::default().hit_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "span-aligned")]
    fn misaligned_superpage_rejected() {
        tlb(2).insert(3, 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_span_rejected() {
        tlb(2).insert(0, 3);
    }
}
