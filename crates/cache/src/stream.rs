//! Stream buffers — the related-work baseline of the paper's Section 5.
//!
//! Jouppi's stream buffers \[13\] sit beside the L1: each is a small FIFO
//! that, once allocated on a miss, runs ahead fetching successive lines;
//! a miss that matches a buffer head is served from the buffer. McKee et
//! al. \[16\] made them *programmable*: the application declares its vector
//! strides instead of relying on next-line detection. The paper argues
//! both "allow applications to improve their performance on regular
//! applications, but they do not support irregular applications" — the
//! claim the `streambuf` bench tests against Impulse.
//!
//! This unit models the allocation/replacement and hit behaviour; fetch
//! timing is charged by the memory system, which owns the path to the L2
//! and the controller.

use impulse_types::snap::{SnapError, SnapReader, SnapWriter};
use impulse_types::{Cycle, PAddr};

/// Snapshot section tag for [`StreamBuffers`] (`"STRM"`).
const TAG_STREAM: u32 = 0x5354_524D;

/// Stream buffer geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamConfig {
    /// Number of independent buffers (Jouppi evaluated four).
    pub buffers: usize,
    /// Entries (lines) each buffer runs ahead.
    pub depth: usize,
    /// Line size fetched into the buffer, bytes.
    pub line: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            buffers: 4,
            depth: 4,
            line: 32,
        }
    }
}

/// Stream buffer statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// L1-miss lookups presented to the buffers.
    pub lookups: u64,
    /// Lookups served by a buffer head.
    pub hits: u64,
    /// Buffers (re)allocated on misses.
    pub allocations: u64,
    /// Lines fetched into buffers.
    pub fetches: u64,
}

impl StreamStats {
    /// Fraction of lookups served by a buffer.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

#[derive(Clone, Debug)]
struct Buffer {
    /// Line addresses queued, oldest first, with their ready times.
    fifo: std::collections::VecDeque<(PAddr, Cycle)>,
    /// Next line address the buffer will fetch.
    next: PAddr,
    /// Stride between fetched lines, bytes.
    stride: i64,
    /// LRU stamp.
    stamp: u64,
    valid: bool,
}

/// What the memory system must do after presenting a miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamOutcome {
    /// The head of a buffer matched: data available at `ready` (may be in
    /// the future if the fetch is in flight). The buffer advanced; one
    /// refill fetch of `fetch` should be issued.
    Hit {
        /// When the matched line's data is available.
        ready: Cycle,
        /// Line the buffer now wants fetched (its new tail), if in range.
        fetch: Option<PAddr>,
    },
    /// No buffer matched; a fresh buffer was allocated and wants `fetches`
    /// issued (the new stream's first lines).
    Miss {
        /// Lines the newly-allocated buffer wants fetched.
        fetches: [Option<PAddr>; 4],
    },
}

/// A set of stream buffers with next-line allocation and optional
/// programmed strides.
#[derive(Clone, Debug)]
pub struct StreamBuffers {
    cfg: StreamConfig,
    buffers: Vec<Buffer>,
    tick: u64,
    stats: StreamStats,
}

impl StreamBuffers {
    /// Builds the buffer set.
    ///
    /// # Panics
    ///
    /// Panics on zero buffers/depth or depth beyond 4 (the fixed fetch
    /// fan-out of [`StreamOutcome::Miss`]).
    pub fn new(cfg: StreamConfig) -> Self {
        assert!(
            cfg.buffers > 0 && cfg.depth > 0,
            "buffers must be non-empty"
        );
        assert!(cfg.depth <= 4, "depth beyond 4 is not modeled");
        Self {
            buffers: vec![
                Buffer {
                    fifo: std::collections::VecDeque::new(),
                    next: PAddr::ZERO,
                    stride: 0,
                    stamp: 0,
                    valid: false,
                };
                cfg.buffers
            ],
            tick: 0,
            stats: StreamStats::default(),
            cfg,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Programs a buffer with an explicit stride stream starting at
    /// `base` — McKee-style software-declared vector access. Returns the
    /// first lines to fetch.
    pub fn program(&mut self, base: PAddr, stride: i64) -> [Option<PAddr>; 4] {
        self.tick += 1;
        let idx = self.victim();
        self.stats.allocations += 1;
        let line = self.cfg.line;
        let buf = &mut self.buffers[idx];
        buf.valid = true;
        buf.stamp = self.tick;
        buf.stride = stride;
        buf.fifo.clear();
        buf.next = base.align_down(line);
        self.prefill(idx)
    }

    /// Presents an L1 miss for the line containing `p` at time `now`;
    /// `record_fetch` is called back by the memory system with each
    /// requested line's ready time (via [`StreamBuffers::fill`]).
    pub fn lookup(&mut self, p: PAddr, now: Cycle) -> StreamOutcome {
        self.stats.lookups += 1;
        self.tick += 1;
        let tick = self.tick;
        let line = p.align_down(self.cfg.line);

        for i in 0..self.buffers.len() {
            let matches = self.buffers[i]
                .fifo
                .front()
                .is_some_and(|&(head, _)| head == line);
            if matches && self.buffers[i].valid {
                let (_, ready) = self.buffers[i].fifo.pop_front().expect("head present");
                self.buffers[i].stamp = tick;
                self.stats.hits += 1;
                let fetch = self.advance(i);
                return StreamOutcome::Hit {
                    ready: ready.max(now),
                    fetch,
                };
            }
        }

        // Allocate a new next-line stream starting after the miss.
        let idx = self.victim();
        self.stats.allocations += 1;
        let stride = self.cfg.line as i64;
        let buf = &mut self.buffers[idx];
        buf.valid = true;
        buf.stamp = tick;
        buf.stride = stride;
        buf.fifo.clear();
        buf.next = PAddr::new((line.raw() as i64 + stride) as u64);
        StreamOutcome::Miss {
            fetches: self.prefill(idx),
        }
    }

    /// Records that a previously-requested line will be ready at `ready`.
    pub fn fill(&mut self, lineaddr: PAddr, ready: Cycle) {
        for buf in &mut self.buffers {
            if let Some(entry) = buf
                .fifo
                .iter_mut()
                .find(|(a, r)| *a == lineaddr && *r == Cycle::MAX)
            {
                entry.1 = ready;
                self.stats.fetches += 1;
                return;
            }
        }
    }

    /// Drops any buffered line matching `p` (stores must not see stale
    /// stream data).
    pub fn invalidate(&mut self, p: PAddr) {
        let line = p.align_down(self.cfg.line);
        for buf in &mut self.buffers {
            buf.fifo.retain(|&(a, _)| a != line);
        }
    }

    fn victim(&self) -> usize {
        self.buffers
            .iter()
            .enumerate()
            .min_by_key(|(_, b)| if b.valid { b.stamp } else { 0 })
            .map(|(i, _)| i)
            .expect("at least one buffer")
    }

    /// Queues the next fetch for buffer `i`; returns the line to request.
    /// The stride accumulates exactly (programmed strides need not be
    /// line multiples); each queued fetch is the containing line.
    fn advance(&mut self, i: usize) -> Option<PAddr> {
        let buf = &mut self.buffers[i];
        if buf.fifo.len() >= self.cfg.depth {
            return None;
        }
        let line = buf.next.align_down(self.cfg.line);
        buf.fifo.push_back((line, Cycle::MAX));
        buf.next = PAddr::new((buf.next.raw() as i64 + buf.stride).max(0) as u64);
        Some(line)
    }

    /// Fills an empty buffer's fetch plan (up to `depth` lines).
    fn prefill(&mut self, i: usize) -> [Option<PAddr>; 4] {
        let mut out = [None; 4];
        for slot in out.iter_mut().take(self.cfg.depth) {
            *slot = self.advance(i);
        }
        out
    }

    /// Serializes every buffer verbatim — FIFO contents front-to-back
    /// (including `Cycle::MAX` in-flight markers), next-fetch cursor,
    /// stride, LRU stamp — plus the allocation tick and statistics.
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_STREAM);
        w.usize(self.buffers.len());
        for buf in &self.buffers {
            w.usize(buf.fifo.len());
            for &(a, ready) in &buf.fifo {
                w.u64(a.raw());
                w.u64(ready);
            }
            w.u64(buf.next.raw());
            w.u64(buf.stride as u64);
            w.u64(buf.stamp);
            w.bool(buf.valid);
        }
        w.u64(self.tick);
        w.u64(self.stats.lookups);
        w.u64(self.stats.hits);
        w.u64(self.stats.allocations);
        w.u64(self.stats.fetches);
    }

    /// Restores the state saved by [`StreamBuffers::snap_save`] into a
    /// buffer set freshly built from the same configuration.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_STREAM)?;
        let n = r.usize()?;
        if n != self.buffers.len() {
            return Err(SnapError::Geometry("stream buffer count"));
        }
        for buf in &mut self.buffers {
            let depth = r.usize()?;
            if depth > self.cfg.depth {
                return Err(SnapError::Geometry("stream buffer depth"));
            }
            buf.fifo.clear();
            for _ in 0..depth {
                let a = r.u64()?;
                let ready = r.u64()?;
                buf.fifo.push_back((PAddr::new(a), ready));
            }
            buf.next = PAddr::new(r.u64()?);
            buf.stride = r.u64()? as i64;
            buf.stamp = r.u64()?;
            buf.valid = r.bool()?;
        }
        self.tick = r.u64()?;
        self.stats.lookups = r.u64()?;
        self.stats.hits = r.u64()?;
        self.stats.allocations = r.u64()?;
        self.stats.fetches = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pa(x: u64) -> PAddr {
        PAddr::new(x)
    }

    fn sb() -> StreamBuffers {
        StreamBuffers::new(StreamConfig::default())
    }

    #[test]
    fn miss_allocates_and_requests_depth_lines() {
        let mut s = sb();
        match s.lookup(pa(0x1000), 0) {
            StreamOutcome::Miss { fetches } => {
                let got: Vec<u64> = fetches.iter().flatten().map(|p| p.raw()).collect();
                assert_eq!(got, vec![0x1020, 0x1040, 0x1060, 0x1080]);
            }
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn sequential_stream_hits_after_allocation() {
        let mut s = sb();
        let StreamOutcome::Miss { fetches } = s.lookup(pa(0x1000), 0) else {
            panic!("first miss allocates");
        };
        for f in fetches.iter().flatten() {
            s.fill(*f, 50);
        }
        match s.lookup(pa(0x1020), 100) {
            StreamOutcome::Hit { ready, fetch } => {
                assert_eq!(ready, 100, "data arrived before the demand");
                assert_eq!(fetch, Some(pa(0x10a0)), "buffer keeps running ahead");
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(s.stats().hit_ratio() > 0.0);
    }

    #[test]
    fn early_demand_waits_for_inflight_fetch() {
        let mut s = sb();
        let StreamOutcome::Miss { fetches } = s.lookup(pa(0), 0) else {
            panic!()
        };
        s.fill(fetches[0].unwrap(), 500);
        match s.lookup(pa(0x20), 10) {
            StreamOutcome::Hit { ready, .. } => assert_eq!(ready, 500),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn random_accesses_never_hit() {
        let mut s = sb();
        let mut state = 12345u64;
        for _ in 0..64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = ((state >> 16) % (1 << 20)) & !31;
            match s.lookup(pa(addr), 0) {
                StreamOutcome::Miss { .. } => {}
                StreamOutcome::Hit { .. } => {
                    // A random collision with a prefetched next-line is
                    // astronomically unlikely at this footprint.
                    panic!("irregular stream must not hit");
                }
            }
        }
        assert_eq!(s.stats().hits, 0);
    }

    #[test]
    fn programmed_stride_serves_strided_walk() {
        let mut s = sb();
        let stride = 8200i64; // a matrix-row stride, not next-line
        let fetches = s.program(pa(0), stride);
        for f in fetches.iter().flatten() {
            s.fill(*f, 10);
        }
        // The strided walk hits the programmed buffer head every time,
        // consuming from the stream's base onward.
        for k in 0..=2u64 {
            match s.lookup(pa(k * 8200), 1000) {
                StreamOutcome::Hit { fetch, .. } => {
                    // The k-th hit requests line k+depth along the stride.
                    let expect = ((k + 4) as i64 * stride) as u64 & !31;
                    assert_eq!(fetch.unwrap().raw(), expect);
                    if let Some(f) = fetch {
                        s.fill(f, 1000);
                    }
                }
                other => panic!("expected programmed hit at {k}, got {other:?}"),
            }
        }
        assert_eq!(s.stats().hits, 3);
    }

    #[test]
    fn lru_reallocates_oldest_buffer() {
        let mut s = StreamBuffers::new(StreamConfig {
            buffers: 2,
            depth: 2,
            line: 32,
        });
        s.lookup(pa(0x1000), 0); // buffer A
        s.lookup(pa(0x8000), 0); // buffer B
        s.lookup(pa(0x20000), 0); // reallocates A (oldest)
        assert_eq!(s.stats().allocations, 3);
    }

    #[test]
    fn invalidate_drops_buffered_line() {
        let mut s = sb();
        let StreamOutcome::Miss { fetches } = s.lookup(pa(0), 0) else {
            panic!()
        };
        s.fill(fetches[0].unwrap(), 1);
        s.invalidate(pa(0x20));
        match s.lookup(pa(0x20), 10) {
            StreamOutcome::Miss { .. } => {}
            other => panic!("stale line must be gone, got {other:?}"),
        }
    }

    #[test]
    fn head_only_matching_is_fifo() {
        // A hit must match the *head*; skipping ahead (an out-of-order
        // touch) misses and reallocates, as in Jouppi's design.
        let mut s = sb();
        let StreamOutcome::Miss { fetches } = s.lookup(pa(0), 0) else {
            panic!()
        };
        for f in fetches.iter().flatten() {
            s.fill(*f, 1);
        }
        match s.lookup(pa(0x40), 10) {
            StreamOutcome::Miss { .. } => {}
            other => panic!("expected head-miss, got {other:?}"),
        }
    }
}
