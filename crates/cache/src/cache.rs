//! Generic set-associative cache model.

use impulse_obs::{MetricsRegistry, Observe};
use impulse_types::geom::{is_pow2, log2};
use impulse_types::snap::{SnapError, SnapReader, SnapWriter};
use impulse_types::{AccessKind, PAddr, VAddr};

/// Snapshot section tag for [`Cache`] (`"CACH"`).
const TAG_CACHE: u32 = 0x4341_4348;

/// Which address space selects the cache set.
///
/// Tags are always physical (bus) addresses, as in both Paint caches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Indexing {
    /// Set index comes from the virtual address (the Paint L1).
    Virtual,
    /// Set index comes from the physical address (the Paint L2).
    Physical,
}

/// Replacement policy within a set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Replacement {
    /// Least-recently-used (exact, via access stamps).
    Lru,
    /// Not-recently-used (reference bits, cleared when all are set).
    Nru,
}

/// Geometry and policy of one cache level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable name used in reports ("L1", "L2").
    pub name: &'static str,
    /// Total capacity in bytes. Must be `line * ways * sets` for a
    /// power-of-two set count.
    pub size: u64,
    /// Line size in bytes (power of two).
    pub line: u64,
    /// Associativity.
    pub ways: u64,
    /// Which address selects the set.
    pub indexing: Indexing,
    /// Whether store misses allocate a line (`true` = write-allocate,
    /// `false` = write-around).
    pub write_allocate: bool,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// The Paint L1 data cache: 32 KB direct-mapped, 32 B lines, virtually
    /// indexed / physically tagged, write-back, write-around.
    pub fn paint_l1() -> Self {
        Self {
            name: "L1",
            size: 32 * 1024,
            line: 32,
            ways: 1,
            indexing: Indexing::Virtual,
            write_allocate: false,
            replacement: Replacement::Lru,
        }
    }

    /// The Paint L2 data cache: 256 KB 2-way, 128 B lines, physically
    /// indexed and tagged, write-back, write-allocate.
    pub fn paint_l2() -> Self {
        Self {
            name: "L2",
            size: 256 * 1024,
            line: 128,
            ways: 2,
            indexing: Indexing::Physical,
            write_allocate: true,
            replacement: Replacement::Lru,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size / self.line / self.ways
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics if sizes are not powers of two or do not divide evenly.
    fn validate(&self) {
        assert!(
            is_pow2(self.line),
            "{}: line size must be a power of two",
            self.name
        );
        assert!(self.ways > 0, "{}: must have at least one way", self.name);
        assert!(
            self.size.is_multiple_of(self.line * self.ways),
            "{}: size must be line*ways*sets",
            self.name
        );
        assert!(
            is_pow2(self.sets()),
            "{}: set count must be a power of two",
            self.name
        );
    }
}

/// Counters for one cache level.
///
/// Hit/miss counters are split by access kind because the paper's tables
/// report *load*-based hit ratios.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Load accesses.
    pub loads: u64,
    /// Load hits.
    pub load_hits: u64,
    /// Store accesses.
    pub stores: u64,
    /// Store hits.
    pub store_hits: u64,
    /// Store misses that bypassed the cache (write-around).
    pub store_bypasses: u64,
    /// Lines filled (demand).
    pub fills: u64,
    /// Lines filled by prefetch.
    pub prefetch_fills: u64,
    /// Demand hits on lines brought in by prefetch (useful prefetches).
    pub prefetch_useful: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// Valid lines evicted (clean or dirty).
    pub evictions: u64,
}

impl CacheStats {
    /// Load hit ratio, or 0 when no loads occurred.
    pub fn load_hit_ratio(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.load_hits as f64 / self.loads as f64
        }
    }
}

/// Result of a demand access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The line was present.
    Hit,
    /// The line was fetched and filled; `writeback` is the physical line
    /// address of a dirty victim that must be written to the next level.
    Miss {
        /// Dirty victim line (physical line base), if any.
        writeback: Option<PAddr>,
    },
    /// Store miss on a write-around cache: the store is forwarded to the
    /// next level without allocating.
    Bypass,
}

/// Result of flushing a single line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushOutcome {
    /// The line was not cached.
    NotPresent,
    /// The line was cached and clean; it was invalidated.
    Clean,
    /// The line was cached and dirty; it was invalidated and its contents
    /// must be written back.
    Dirty,
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    /// Physical line base address (the tag, kept unhashed for clarity).
    ptag: u64,
    /// LRU stamp or NRU reference bit (0/1).
    stamp: u64,
    /// Set when the line was filled by a prefetch and not yet demanded.
    prefetched: bool,
}

/// A set-associative cache.
///
/// # Examples
///
/// The Paint L1 is write-around: store misses bypass it rather than
/// allocating.
///
/// ```
/// use impulse_cache::{Cache, CacheConfig, Outcome};
/// use impulse_types::{AccessKind, PAddr, VAddr};
///
/// let mut l1 = Cache::new(CacheConfig::paint_l1());
/// let (v, p) = (VAddr::new(0x2000), PAddr::new(0x9000));
/// assert_eq!(l1.access(v, p, AccessKind::Store), Outcome::Bypass);
/// assert!(!l1.probe(v, p));
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>, // sets * ways, way-major within a set
    set_mask: u64,
    line_shift: u32,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not internally consistent (see
    /// [`CacheConfig`]).
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        let sets = cfg.sets();
        let lines = vec![Line::default(); (sets * cfg.ways) as usize];
        let line_shift = log2(cfg.line);
        Self {
            set_mask: sets - 1,
            line_shift,
            lines,
            tick: 0,
            stats: CacheStats::default(),
            cfg,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics; contents are preserved.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Line base (physical) for an address.
    #[inline]
    pub fn line_base(&self, p: PAddr) -> PAddr {
        p.align_down(self.cfg.line)
    }

    #[inline]
    fn set_of(&self, v: VAddr, p: PAddr) -> usize {
        let idx_addr = match self.cfg.indexing {
            Indexing::Virtual => v.raw(),
            Indexing::Physical => p.raw(),
        };
        ((idx_addr >> self.line_shift) & self.set_mask) as usize
    }

    #[inline]
    fn ptag_of(&self, p: PAddr) -> u64 {
        p.raw() >> self.line_shift
    }

    fn set_range(&self, set: usize) -> core::ops::Range<usize> {
        let ways = self.cfg.ways as usize;
        set * ways..(set + 1) * ways
    }

    /// Whether the line containing `(v, p)` is present (no state change).
    pub fn probe(&self, v: VAddr, p: PAddr) -> bool {
        let set = self.set_of(v, p);
        let ptag = self.ptag_of(p);
        self.lines[self.set_range(set)]
            .iter()
            .any(|l| l.valid && l.ptag == ptag)
    }

    /// Batched tag probe: counts how many `(v, p)` pairs are present,
    /// touching no state. One bounds check and set/tag derivation per
    /// element, no per-element dispatch — the query kernel the replay
    /// evaluator's verify pass and the `hotpath` bench are built on.
    pub fn probe_batch(&self, pairs: &[(VAddr, PAddr)]) -> u64 {
        let ways = self.cfg.ways as usize;
        let mut hits = 0u64;
        for &(v, p) in pairs {
            let set = self.set_of(v, p);
            let ptag = self.ptag_of(p);
            let base = set * ways;
            let mut found = 0u64;
            for l in &self.lines[base..base + ways] {
                found |= u64::from(l.valid && l.ptag == ptag);
            }
            hits += found;
        }
        hits
    }

    /// Attempts the demand-hit half of [`access`](Cache::access) without
    /// touching hit/miss counters: on a hit it applies exactly the state
    /// transitions `access` would (replacement tick and stamp, the
    /// prefetched-bit clear, dirtying on store) and returns whether the
    /// line was a not-yet-demanded prefetch; on a miss it changes
    /// *nothing* and returns `None`, so the caller can re-issue the full
    /// `access` untainted.
    ///
    /// Callers own the statistics delta: they must account one
    /// load/store, one hit, and (when `Some(true)`) one useful prefetch —
    /// usually batched across many hits and flushed through
    /// [`stats_mut`](Cache::stats_mut).
    #[inline]
    pub fn try_demand_hit(&mut self, v: VAddr, p: PAddr, kind: AccessKind) -> Option<bool> {
        let set = self.set_of(v, p);
        let ptag = self.ptag_of(p);
        let range = self.set_range(set);
        let line = self.lines[range]
            .iter_mut()
            .find(|l| l.valid && l.ptag == ptag)?;
        self.tick += 1;
        let was_prefetched = line.prefetched;
        line.prefetched = false;
        line.stamp = self.tick;
        if kind.is_store() {
            line.dirty = true;
        }
        Some(was_prefetched)
    }

    /// Current replacement tick — the value
    /// [`try_demand_hit`](Cache::try_demand_hit) would stamp the *next*
    /// hit with, minus
    /// one. Batched evaluators that know an access's position in the
    /// global order compute stamps from this and commit them through
    /// [`demand_hit_stamped`](Cache::demand_hit_stamped).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Advances the replacement tick by `n` without touching any line —
    /// the bulk counterpart of the `tick += 1` that `n` individual
    /// demand hits would have performed. Callers pair this with
    /// `demand_hit_stamped` so the final tick equals the per-access
    /// sequence's.
    pub fn advance_tick(&mut self, n: u64) {
        self.tick += n;
    }

    /// Applies the line-state effects of one *or more* demand hits to a
    /// resident line when the access order is known externally: clears
    /// the prefetched bit, dirties on store, and raises the line's stamp
    /// to `stamp` (the tick the line's **last** hit in the run would
    /// have received). Does not advance the shared tick — the caller
    /// advances it once per access via
    /// [`advance_tick`](Cache::advance_tick). Returns `None` untouched
    /// on a miss.
    ///
    /// Stamps are monotone (`max`), so overlapping runs from different
    /// access streams may commit in any order and still reproduce the
    /// interleaved per-access stamp exactly.
    #[inline]
    pub fn demand_hit_stamped(
        &mut self,
        v: VAddr,
        p: PAddr,
        kind: AccessKind,
        stamp: u64,
    ) -> Option<bool> {
        let set = self.set_of(v, p);
        let ptag = self.ptag_of(p);
        let range = self.set_range(set);
        let line = self.lines[range]
            .iter_mut()
            .find(|l| l.valid && l.ptag == ptag)?;
        let was_prefetched = line.prefetched;
        line.prefetched = false;
        line.stamp = line.stamp.max(stamp);
        if kind.is_store() {
            line.dirty = true;
        }
        Some(was_prefetched)
    }

    /// Mutable access to the counters, for callers that batch statistics
    /// across many [`try_demand_hit`](Cache::try_demand_hit) probes and
    /// flush them in one step. The flushed state must equal what the
    /// equivalent `access` calls would have produced — the replay
    /// equivalence tests hold this to the byte.
    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// Performs a demand access; updates replacement state, allocates on
    /// miss per the write policy, and reports any dirty victim.
    pub fn access(&mut self, v: VAddr, p: PAddr, kind: AccessKind) -> Outcome {
        self.tick += 1;
        let set = self.set_of(v, p);
        let ptag = self.ptag_of(p);
        let range = self.set_range(set);
        let tick = self.tick;

        if let Some(line) = self.lines[range.clone()]
            .iter_mut()
            .find(|l| l.valid && l.ptag == ptag)
        {
            if line.prefetched {
                line.prefetched = false;
                self.stats.prefetch_useful += 1;
            }
            line.stamp = tick;
            match kind {
                AccessKind::Load => {
                    self.stats.loads += 1;
                    self.stats.load_hits += 1;
                }
                AccessKind::Store => {
                    self.stats.stores += 1;
                    self.stats.store_hits += 1;
                    line.dirty = true;
                }
            }
            return Outcome::Hit;
        }

        // Miss.
        match kind {
            AccessKind::Load => self.stats.loads += 1,
            AccessKind::Store => {
                self.stats.stores += 1;
                if !self.cfg.write_allocate {
                    self.stats.store_bypasses += 1;
                    return Outcome::Bypass;
                }
            }
        }

        let writeback = self.fill_at(set, ptag, kind.is_store(), false);
        self.stats.fills += 1;
        Outcome::Miss { writeback }
    }

    /// Fills the line containing `(v, p)` without a demand access — the
    /// path used by hardware prefetchers. Returns a dirty victim, if any.
    ///
    /// Filling an already-present line is a no-op (`None`).
    pub fn prefetch_fill(&mut self, v: VAddr, p: PAddr) -> Option<PAddr> {
        if self.probe(v, p) {
            return None;
        }
        self.tick += 1;
        let set = self.set_of(v, p);
        let ptag = self.ptag_of(p);
        let wb = self.fill_at(set, ptag, false, true);
        self.stats.prefetch_fills += 1;
        wb
    }

    /// Chooses a victim in `set`, evicts it, installs `ptag`; returns the
    /// dirty victim's physical line address if one was displaced.
    fn fill_at(&mut self, set: usize, ptag: u64, dirty: bool, prefetched: bool) -> Option<PAddr> {
        let range = self.set_range(set);
        let victim_idx = self.choose_victim(range.clone());
        let line_shift = self.line_shift;
        let tick = self.tick;

        let line = &mut self.lines[victim_idx];
        let mut writeback = None;
        if line.valid {
            self.stats.evictions += 1;
            if line.dirty {
                self.stats.writebacks += 1;
                writeback = Some(PAddr::new(line.ptag << line_shift));
            }
        }
        *line = Line {
            valid: true,
            dirty,
            ptag,
            stamp: tick,
            prefetched,
        };
        if self.cfg.replacement == Replacement::Nru {
            self.normalize_nru(range, victim_idx);
        }
        writeback
    }

    fn choose_victim(&self, range: core::ops::Range<usize>) -> usize {
        // Prefer an invalid way.
        if let Some(i) = range.clone().find(|&i| !self.lines[i].valid) {
            return i;
        }
        match self.cfg.replacement {
            Replacement::Lru => range
                .clone()
                .min_by_key(|&i| self.lines[i].stamp)
                .expect("cache sets are never empty"),
            Replacement::Nru => {
                // First way whose reference stamp is "old" (not the current
                // generation); fall back to the first way.
                range
                    .clone()
                    .find(|&i| self.lines[i].stamp == 0)
                    .unwrap_or(range.start)
            }
        }
    }

    /// For NRU: when every line in the set has been referenced, clear all
    /// reference marks except the just-installed line.
    fn normalize_nru(&mut self, range: core::ops::Range<usize>, keep: usize) {
        if range.clone().all(|i| self.lines[i].stamp != 0) {
            for i in range {
                if i != keep {
                    self.lines[i].stamp = 0;
                }
            }
        }
    }

    /// Flushes (writes back and invalidates) the line containing `(v, p)`.
    pub fn flush_line(&mut self, v: VAddr, p: PAddr) -> FlushOutcome {
        let set = self.set_of(v, p);
        let ptag = self.ptag_of(p);
        let range = self.set_range(set);
        for i in range {
            let line = &mut self.lines[i];
            if line.valid && line.ptag == ptag {
                line.valid = false;
                let was_dirty = line.dirty;
                line.dirty = false;
                if was_dirty {
                    self.stats.writebacks += 1;
                    return FlushOutcome::Dirty;
                }
                return FlushOutcome::Clean;
            }
        }
        FlushOutcome::NotPresent
    }

    /// Purges (invalidates *without* writeback) the line containing
    /// `(v, p)` — used for remapped input tiles whose contents are clean
    /// copies of other memory.
    pub fn purge_line(&mut self, v: VAddr, p: PAddr) -> bool {
        let set = self.set_of(v, p);
        let ptag = self.ptag_of(p);
        let range = self.set_range(set);
        for i in range {
            let line = &mut self.lines[i];
            if line.valid && line.ptag == ptag {
                line.valid = false;
                line.dirty = false;
                return true;
            }
        }
        false
    }

    /// Invalidates everything (no writebacks); statistics are preserved.
    pub fn invalidate_all(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
            line.dirty = false;
        }
    }

    /// Number of valid lines currently cached (for tests/diagnostics).
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Serializes the cache contents (every line verbatim), replacement
    /// tick, and statistics. Geometry is configuration and is rebuilt.
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_CACHE);
        w.usize(self.lines.len());
        for l in &self.lines {
            w.bool(l.valid);
            w.bool(l.dirty);
            w.u64(l.ptag);
            w.u64(l.stamp);
            w.bool(l.prefetched);
        }
        w.u64(self.tick);
        let s = &self.stats;
        for v in [
            s.loads,
            s.load_hits,
            s.stores,
            s.store_hits,
            s.store_bypasses,
            s.fills,
            s.prefetch_fills,
            s.prefetch_useful,
            s.writebacks,
            s.evictions,
        ] {
            w.u64(v);
        }
    }

    /// Restores the state saved by [`Cache::snap_save`] into a cache
    /// freshly built from the same configuration.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_CACHE)?;
        let n = r.usize()?;
        if n != self.lines.len() {
            return Err(SnapError::Geometry("cache line count"));
        }
        for l in &mut self.lines {
            l.valid = r.bool()?;
            l.dirty = r.bool()?;
            l.ptag = r.u64()?;
            l.stamp = r.u64()?;
            l.prefetched = r.bool()?;
        }
        self.tick = r.u64()?;
        let s = &mut self.stats;
        for v in [
            &mut s.loads,
            &mut s.load_hits,
            &mut s.stores,
            &mut s.store_hits,
            &mut s.store_bypasses,
            &mut s.fills,
            &mut s.prefetch_fills,
            &mut s.prefetch_useful,
            &mut s.writebacks,
            &mut s.evictions,
        ] {
            *v = r.u64()?;
        }
        Ok(())
    }
}

impl Observe for Cache {
    fn observe(&self, m: &mut MetricsRegistry) {
        let s = self.stats();
        m.counter("cache.loads", s.loads);
        m.counter("cache.load_hits", s.load_hits);
        m.counter("cache.stores", s.stores);
        m.counter("cache.store_hits", s.store_hits);
        m.counter("cache.store_bypasses", s.store_bypasses);
        m.counter("cache.fills", s.fills);
        m.counter("cache.prefetch_fills", s.prefetch_fills);
        m.counter("cache.prefetch_useful", s.prefetch_useful);
        m.counter("cache.writebacks", s.writebacks);
        m.counter("cache.evictions", s.evictions);
        m.gauge("cache.load_hit_ratio", s.load_hit_ratio());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn va(x: u64) -> VAddr {
        VAddr::new(x)
    }
    fn pa(x: u64) -> PAddr {
        PAddr::new(x)
    }

    fn tiny(ways: u64, write_allocate: bool) -> Cache {
        Cache::new(CacheConfig {
            name: "T",
            size: 32 * ways * 4, // 4 sets
            line: 32,
            ways,
            indexing: Indexing::Physical,
            write_allocate,
            replacement: Replacement::Lru,
        })
    }

    #[test]
    fn paint_geometries() {
        let l1 = Cache::new(CacheConfig::paint_l1());
        assert_eq!(l1.config().sets(), 1024);
        let l2 = Cache::new(CacheConfig::paint_l2());
        assert_eq!(l2.config().sets(), 1024);
    }

    #[test]
    fn load_miss_then_hit() {
        let mut c = tiny(1, true);
        assert!(matches!(
            c.access(va(0), pa(0), AccessKind::Load),
            Outcome::Miss { writeback: None }
        ));
        assert_eq!(c.access(va(0), pa(0), AccessKind::Load), Outcome::Hit);
        assert_eq!(c.access(va(8), pa(8), AccessKind::Load), Outcome::Hit);
        let s = c.stats();
        assert_eq!(s.loads, 3);
        assert_eq!(s.load_hits, 2);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = tiny(1, true);
        // 4 sets of 32B: addresses 0 and 128 share set 0.
        c.access(va(0), pa(0), AccessKind::Load);
        c.access(va(128), pa(128), AccessKind::Load);
        assert!(!c.probe(va(0), pa(0)));
        assert!(c.probe(va(128), pa(128)));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().writebacks, 0, "clean eviction has no writeback");
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny(1, true);
        c.access(va(0), pa(0), AccessKind::Store); // allocate dirty
        match c.access(va(128), pa(128), AccessKind::Load) {
            Outcome::Miss { writeback } => assert_eq!(writeback, Some(pa(0))),
            other => panic!("expected miss, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_around_bypasses_on_store_miss() {
        let mut c = tiny(1, false);
        assert_eq!(c.access(va(0), pa(0), AccessKind::Store), Outcome::Bypass);
        assert!(!c.probe(va(0), pa(0)));
        assert_eq!(c.stats().store_bypasses, 1);
        // But store hits still update in place.
        c.access(va(0), pa(0), AccessKind::Load);
        assert_eq!(c.access(va(0), pa(0), AccessKind::Store), Outcome::Hit);
    }

    #[test]
    fn lru_two_way_keeps_recent() {
        let mut c = tiny(2, true);
        // Set 0 aliases: 0, 256, 512 (8 lines total, 4 sets, 2 ways).
        c.access(va(0), pa(0), AccessKind::Load);
        c.access(va(256), pa(256), AccessKind::Load);
        c.access(va(0), pa(0), AccessKind::Load); // touch 0: 256 is LRU
        c.access(va(512), pa(512), AccessKind::Load); // evicts 256
        assert!(c.probe(va(0), pa(0)));
        assert!(!c.probe(va(256), pa(256)));
        assert!(c.probe(va(512), pa(512)));
    }

    #[test]
    fn virtual_indexing_uses_vaddr_for_set() {
        let mut c = Cache::new(CacheConfig {
            indexing: Indexing::Virtual,
            ..CacheConfig::paint_l1()
        });
        // Same physical line, two virtual aliases with different set bits:
        // both can live in the cache simultaneously (the classic
        // virtually-indexed alias behaviour).
        c.access(va(0x0000), pa(0x9000), AccessKind::Load);
        c.access(va(0x4020), pa(0x9020), AccessKind::Load);
        assert!(c.probe(va(0x0000), pa(0x9000)));
        assert!(c.probe(va(0x4020), pa(0x9020)));
    }

    #[test]
    fn prefetch_fill_counts_useful_hits() {
        let mut c = tiny(1, true);
        assert_eq!(c.prefetch_fill(va(0), pa(0)), None);
        assert_eq!(c.stats().prefetch_fills, 1);
        assert_eq!(c.access(va(0), pa(0), AccessKind::Load), Outcome::Hit);
        assert_eq!(c.stats().prefetch_useful, 1);
        // Second hit is not counted again.
        c.access(va(0), pa(0), AccessKind::Load);
        assert_eq!(c.stats().prefetch_useful, 1);
    }

    #[test]
    fn prefetch_fill_is_idempotent_when_present() {
        let mut c = tiny(1, true);
        c.access(va(0), pa(0), AccessKind::Load);
        assert_eq!(c.prefetch_fill(va(0), pa(0)), None);
        assert_eq!(c.stats().prefetch_fills, 0);
    }

    #[test]
    fn prefetch_can_pollute() {
        let mut c = tiny(1, true);
        c.access(va(0), pa(0), AccessKind::Load);
        c.prefetch_fill(va(128), pa(128)); // same set, evicts 0
        assert!(!c.probe(va(0), pa(0)));
    }

    #[test]
    fn flush_line_reports_dirtiness() {
        let mut c = tiny(1, true);
        assert_eq!(c.flush_line(va(0), pa(0)), FlushOutcome::NotPresent);
        c.access(va(0), pa(0), AccessKind::Load);
        assert_eq!(c.flush_line(va(0), pa(0)), FlushOutcome::Clean);
        c.access(va(0), pa(0), AccessKind::Store);
        assert_eq!(c.flush_line(va(0), pa(0)), FlushOutcome::Dirty);
        assert!(!c.probe(va(0), pa(0)));
    }

    #[test]
    fn purge_discards_dirty_data_silently() {
        let mut c = tiny(1, true);
        c.access(va(0), pa(0), AccessKind::Store);
        let wb_before = c.stats().writebacks;
        assert!(c.purge_line(va(0), pa(0)));
        assert_eq!(c.stats().writebacks, wb_before);
        assert!(!c.purge_line(va(0), pa(0)));
    }

    #[test]
    fn invalidate_all_empties_cache() {
        let mut c = tiny(2, true);
        c.access(va(0), pa(0), AccessKind::Load);
        c.access(va(32), pa(32), AccessKind::Load);
        assert_eq!(c.valid_lines(), 2);
        c.invalidate_all();
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn nru_replacement_victimizes_unreferenced() {
        let mut c = Cache::new(CacheConfig {
            name: "N",
            size: 32 * 4, // 1 set, 4 ways
            line: 32,
            ways: 4,
            indexing: Indexing::Physical,
            write_allocate: true,
            replacement: Replacement::Nru,
        });
        for i in 0..4 {
            c.access(va(i * 32), pa(i * 32), AccessKind::Load);
        }
        // All referenced; the last fill normalizes others to unreferenced.
        // A new line must evict one of the normalized (unreferenced) ways,
        // not the most recently installed one.
        c.access(va(4 * 32), pa(4 * 32), AccessKind::Load);
        assert!(c.probe(va(3 * 32), pa(3 * 32)));
    }

    #[test]
    fn stats_ratio_handles_zero() {
        assert_eq!(CacheStats::default().load_hit_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = Cache::new(CacheConfig {
            name: "bad",
            size: 96,
            line: 24,
            ways: 1,
            indexing: Indexing::Physical,
            write_allocate: true,
            replacement: Replacement::Lru,
        });
    }
}
