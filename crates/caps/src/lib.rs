//! Typed capability engine for Impulse shadow descriptors and memory
//! regions.
//!
//! The paper's OS/MC contract (Section 2.1) has the kernel multiplex a
//! handful of shadow descriptors across untrusting processes. This crate
//! is the protection layer behind that multiplexing: every granted
//! resource — a shadow descriptor, a receiver's alias of one, a span of
//! shadow address space — is represented by a capability in a single
//! kernel-held table, and every handle the kernel gives out is
//! *generation-tagged* so a revoked handle can never be confused with a
//! recycled slot.
//!
//! The pieces:
//!
//! - [`DomainId`]: a protection domain. The kernel creates one per
//!   process; `impulse-serve` creates one per tenant.
//! - [`CapId`]: a handle — table slot plus the generation the slot had
//!   when granted. Slots are recycled, generations only grow, so a stale
//!   handle is detected structurally ([`CapError::Revoked`]).
//! - [`Resource`]: what a capability protects (descriptor, derived
//!   alias, or address-space region).
//! - [`CapEngine::derive`]: sharing builds a derivation tree; revoking
//!   any capability tears down its whole derived subtree (**transitive
//!   revocation**), returning every torn-down resource so the caller can
//!   unmap aliases, plus the cycle cost of the walk.
//! - Region grants from a bump allocator **coalesce**: a region adjacent
//!   to the domain's previous region grant extends it in place instead
//!   of consuming a new slot.
//! - Every entry is checksummed and mirrored. A corrupted working entry
//!   (via [`impulse_fault::CapsInjector`]) is detected at validation,
//!   reloaded from the mirror, and charged; an unrecoverable entry is
//!   quarantined and surfaces as [`CapError::Corrupt`] — never a panic
//!   or a silently-honoured stale capability.
//!
//! The engine is deterministic and snapshot-aware: [`CapEngine::snap_save`]
//! / [`CapEngine::snap_load`] round-trip the full table bit-exactly for
//! the `impulse-snap` kernel section.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::fmt;

use impulse_fault::CapsInjector;
use impulse_types::snap::{fnv64, SnapError, SnapReader, SnapWriter};
use impulse_types::{Cycle, FxHashMap};

/// Snapshot section tag for [`CapEngine`] (`"CAPS"`).
const TAG_CAPS: u32 = 0x4341_5053;

/// A protection domain (one per process or tenant).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub u32);

/// A generation-tagged capability handle.
///
/// `index` names a table slot; `generation` is the slot's generation at
/// grant time. Revocation bumps the slot generation, so every
/// outstanding handle to the revoked capability — including copies the
/// kernel no longer knows about — fails validation with
/// [`CapError::Revoked`] rather than aliasing whatever the slot holds
/// next.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CapId {
    /// Table slot.
    pub index: u32,
    /// Slot generation at grant time.
    pub generation: u32,
}

/// What a capability protects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resource {
    /// A shadow descriptor slot at the memory controller (root
    /// capability, held by the granting process).
    Descriptor {
        /// Controller descriptor slot index.
        desc: u32,
    },
    /// A derived alias of a descriptor capability, mapped into a
    /// receiver domain's address space.
    Alias {
        /// Controller descriptor slot the alias reads through.
        desc: u32,
        /// Receiver-virtual start address of the alias.
        start: u64,
        /// Alias length in pages.
        pages: u64,
    },
    /// A span of (shadow) address space.
    Region {
        /// Span start address.
        start: u64,
        /// Span length in bytes.
        len: u64,
    },
}

impl Resource {
    fn tag(&self) -> u8 {
        match self {
            Resource::Descriptor { .. } => 0,
            Resource::Alias { .. } => 1,
            Resource::Region { .. } => 2,
        }
    }
}

/// A capability operation rejected by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapError {
    /// The handle's generation is stale: the capability was revoked
    /// (directly or transitively).
    Revoked {
        /// Table slot the handle names.
        slot: u32,
        /// Generation carried by the stale handle.
        stale: u32,
        /// The slot's current generation.
        current: u32,
    },
    /// The capability exists but belongs to a different domain.
    NotOwner {
        /// The domain that actually owns it.
        owner: u32,
    },
    /// The domain id was never created.
    NoSuchDomain(u32),
    /// The handle names a slot the table never allocated.
    BadSlot(u32),
    /// The entry failed its integrity check and the mirror could not
    /// repair it; the slot has been quarantined.
    Corrupt {
        /// The quarantined slot.
        slot: u32,
    },
}

impl fmt::Display for CapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapError::Revoked {
                slot,
                stale,
                current,
            } => write!(
                f,
                "capability slot {slot} has been revoked: handle generation {stale} is stale (current {current})"
            ),
            CapError::NotOwner { owner } => {
                write!(f, "capability is owned by domain {owner}")
            }
            CapError::NoSuchDomain(d) => write!(f, "no such capability domain: {d}"),
            CapError::BadSlot(s) => write!(f, "capability slot {s} was never allocated"),
            CapError::Corrupt { slot } => write!(
                f,
                "capability table entry {slot} failed its integrity check and could not be recovered"
            ),
        }
    }
}

impl std::error::Error for CapError {}

/// Cycle cost model for capability maintenance. The kernel charges these
/// through the usual syscall accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CapCosts {
    /// Fixed cost of starting a revocation walk.
    pub t_revoke_base: Cycle,
    /// Cost per capability visited (torn down) by the walk.
    pub t_revoke_per_cap: Cycle,
    /// Cost of reloading one corrupted entry from the mirror.
    pub t_reload: Cycle,
}

impl Default for CapCosts {
    fn default() -> Self {
        Self {
            t_revoke_base: 40,
            t_revoke_per_cap: 12,
            t_reload: 30,
        }
    }
}

/// One capability torn down by a revocation walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RevokedCap {
    /// The handle that is now stale.
    pub cap: CapId,
    /// The domain that held it.
    pub domain: DomainId,
    /// The resource it protected.
    pub resource: Resource,
}

/// The outcome of a transitive revocation walk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Revocation {
    /// Every capability torn down, derived receivers first, the root
    /// last (post-order over the derivation tree).
    pub revoked: Vec<RevokedCap>,
    /// Cycle cost of the walk (`t_revoke_base + n · t_revoke_per_cap`).
    pub cycles: Cycle,
}

/// Engine counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CapStats {
    /// Root capabilities granted.
    pub grants: u64,
    /// Derived (shared) capabilities created.
    pub derives: u64,
    /// Region grants that extended an adjacent region in place.
    pub coalesced: u64,
    /// Revocation walks performed.
    pub revocations: u64,
    /// Capabilities torn down by those walks.
    pub revoked_caps: u64,
    /// Validations performed.
    pub validations: u64,
    /// Validations rejected for a stale generation.
    pub stale_denials: u64,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Entry {
    domain: u32,
    resource: Resource,
    parent: Option<u32>,
    children: Vec<u32>,
    /// fnv64 over the canonical encoding of the fields above (plus the
    /// slot index and generation) — the corruption detector.
    check: u64,
}

impl Entry {
    fn checksum(index: u32, generation: u32, e: &Entry) -> u64 {
        let mut bytes = Vec::with_capacity(64);
        bytes.extend_from_slice(&index.to_le_bytes());
        bytes.extend_from_slice(&generation.to_le_bytes());
        bytes.extend_from_slice(&e.domain.to_le_bytes());
        bytes.push(e.resource.tag());
        match e.resource {
            Resource::Descriptor { desc } => {
                bytes.extend_from_slice(&u64::from(desc).to_le_bytes())
            }
            Resource::Alias { desc, start, pages } => {
                bytes.extend_from_slice(&u64::from(desc).to_le_bytes());
                bytes.extend_from_slice(&start.to_le_bytes());
                bytes.extend_from_slice(&pages.to_le_bytes());
            }
            Resource::Region { start, len } => {
                bytes.extend_from_slice(&start.to_le_bytes());
                bytes.extend_from_slice(&len.to_le_bytes());
            }
        }
        bytes.extend_from_slice(&(e.parent.map_or(u64::MAX, u64::from)).to_le_bytes());
        for &c in &e.children {
            bytes.extend_from_slice(&c.to_le_bytes());
        }
        fnv64(&bytes)
    }
}

#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Slot {
    generation: u32,
    entry: Option<Entry>,
}

/// The capability table: working copy, checksum-verified against a
/// mirrored copy on every validation; grant/derive/revoke maintain both.
#[derive(Clone, Debug)]
pub struct CapEngine {
    slots: Vec<Slot>,
    mirror: Vec<Slot>,
    free: Vec<u32>,
    domains: u32,
    /// Descriptor slot → capability slot (root descriptor caps only).
    desc_slot: FxHashMap<u32, u32>,
    costs: CapCosts,
    stats: CapStats,
    injector: Option<CapsInjector>,
    /// Validation ordinal — the injector's clock.
    val_ops: u64,
}

impl Default for CapEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl CapEngine {
    /// Creates an empty engine with the default cost model.
    pub fn new() -> Self {
        Self::with_costs(CapCosts::default())
    }

    /// Creates an empty engine with an explicit cost model.
    pub fn with_costs(costs: CapCosts) -> Self {
        Self {
            slots: Vec::new(),
            mirror: Vec::new(),
            free: Vec::new(),
            domains: 0,
            desc_slot: FxHashMap::default(),
            costs,
            stats: CapStats::default(),
            injector: None,
            val_ops: 0,
        }
    }

    /// Attaches (or detaches) the corruption injector. Zero cost when
    /// `None` — the common case.
    pub fn attach_injector(&mut self, injector: Option<CapsInjector>) {
        self.injector = injector;
    }

    /// The injector's corruption/recovery counters (zeros when no
    /// injector is attached).
    pub fn fault_stats(&self) -> impulse_fault::CapsFaultStats {
        self.injector
            .as_ref()
            .map(CapsInjector::stats)
            .unwrap_or_default()
    }

    /// Engine counters.
    pub fn stats(&self) -> CapStats {
        self.stats
    }

    /// The configured cost model.
    pub fn costs(&self) -> CapCosts {
        self.costs
    }

    /// Creates a new protection domain.
    pub fn create_domain(&mut self) -> DomainId {
        let d = DomainId(self.domains);
        self.domains += 1;
        d
    }

    /// Number of domains created.
    pub fn domain_count(&self) -> u32 {
        self.domains
    }

    /// Live capabilities held by `domain`.
    pub fn live_in_domain(&self, domain: DomainId) -> usize {
        self.slots
            .iter()
            .filter(|s| s.entry.as_ref().is_some_and(|e| e.domain == domain.0))
            .count()
    }

    /// Total live capabilities.
    pub fn live(&self) -> usize {
        self.slots.iter().filter(|s| s.entry.is_some()).count()
    }

    /// The current generation of table slot `slot` (`None` if the table
    /// never allocated it).
    pub fn generation(&self, slot: u32) -> Option<u32> {
        self.slots.get(slot as usize).map(|s| s.generation)
    }

    /// The root capability currently protecting controller descriptor
    /// slot `desc`, if any.
    pub fn desc_cap(&self, desc: u32) -> Option<CapId> {
        let &slot = self.desc_slot.get(&desc)?;
        Some(CapId {
            index: slot,
            generation: self.slots[slot as usize].generation,
        })
    }

    fn alloc_slot(&mut self, entry: Entry) -> CapId {
        let index = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(Slot::default());
                self.mirror.push(Slot::default());
                self.slots.len() as u32 - 1
            }
        };
        let generation = self.slots[index as usize].generation;
        self.write_entry(index, Some(entry));
        CapId { index, generation }
    }

    /// Writes an entry (or clears the slot) in both copies, refreshing
    /// the checksum.
    fn write_entry(&mut self, index: u32, entry: Option<Entry>) {
        let generation = self.slots[index as usize].generation;
        let entry = entry.map(|mut e| {
            e.check = Entry::checksum(index, generation, &e);
            e
        });
        self.slots[index as usize].entry = entry.clone();
        self.mirror[index as usize].entry = entry;
        self.mirror[index as usize].generation = generation;
    }

    /// Mutates a live entry through `f` in both copies.
    fn update_entry(&mut self, index: u32, f: impl FnOnce(&mut Entry)) {
        if let Some(mut e) = self.slots[index as usize].entry.take() {
            f(&mut e);
            self.write_entry(index, Some(e));
        }
    }

    /// Grants a root capability for `resource` to `domain`.
    ///
    /// # Errors
    ///
    /// Fails if `domain` was never created.
    pub fn grant(&mut self, domain: DomainId, resource: Resource) -> Result<CapId, CapError> {
        if domain.0 >= self.domains {
            return Err(CapError::NoSuchDomain(domain.0));
        }
        let cap = self.alloc_slot(Entry {
            domain: domain.0,
            resource,
            parent: None,
            children: Vec::new(),
            check: 0,
        });
        if let Resource::Descriptor { desc } = resource {
            self.desc_slot.insert(desc, cap.index);
        }
        self.stats.grants += 1;
        Ok(cap)
    }

    /// Grants a region capability, coalescing with an existing region
    /// grant in the same domain when `start` continues it exactly (the
    /// shadow allocator is a bump allocator, so back-to-back grants are
    /// contiguous). Returns the capability and whether it coalesced.
    ///
    /// # Errors
    ///
    /// Fails if `domain` was never created.
    pub fn grant_region(
        &mut self,
        domain: DomainId,
        start: u64,
        len: u64,
    ) -> Result<(CapId, bool), CapError> {
        if domain.0 >= self.domains {
            return Err(CapError::NoSuchDomain(domain.0));
        }
        for (i, s) in self.slots.iter().enumerate() {
            if let Some(e) = &s.entry {
                if e.domain == domain.0 {
                    if let Resource::Region { start: rs, len: rl } = e.resource {
                        if rs + rl == start {
                            let index = i as u32;
                            self.update_entry(index, |e| {
                                e.resource = Resource::Region {
                                    start: rs,
                                    len: rl + len,
                                };
                            });
                            self.stats.coalesced += 1;
                            return Ok((
                                CapId {
                                    index,
                                    generation: self.slots[i].generation,
                                },
                                true,
                            ));
                        }
                    }
                }
            }
        }
        let cap = self.grant(domain, Resource::Region { start, len })?;
        Ok((cap, false))
    }

    /// Derives a child capability from `parent` into domain `to` —
    /// sharing. The child joins the derivation tree: revoking `parent`
    /// (or any ancestor) revokes it transitively.
    ///
    /// # Errors
    ///
    /// Fails if `parent` is stale or corrupt, `owner` (when given) is
    /// not the parent's domain, or `to` was never created.
    pub fn derive(
        &mut self,
        parent: CapId,
        owner: Option<DomainId>,
        to: DomainId,
        resource: Resource,
    ) -> Result<CapId, CapError> {
        self.validate(parent, owner)?;
        if to.0 >= self.domains {
            return Err(CapError::NoSuchDomain(to.0));
        }
        let cap = self.alloc_slot(Entry {
            domain: to.0,
            resource,
            parent: Some(parent.index),
            children: Vec::new(),
            check: 0,
        });
        self.update_entry(parent.index, |e| e.children.push(cap.index));
        self.stats.derives += 1;
        Ok(cap)
    }

    /// Integrity-checks the working entry at `index`, recovering from
    /// the mirror (charging the injector) or quarantining the slot.
    fn integrity_check(&mut self, index: u32) -> Result<(), CapError> {
        let i = index as usize;
        // Deterministic corruption: the injector may damage the working
        // copy of exactly the entry this validation consults.
        if let (Some(inj), Some(e)) = (&mut self.injector, &mut self.slots[i].entry) {
            if inj.corrupts(self.val_ops) {
                let bit = inj.pick(64) as u32;
                e.check ^= 1u64 << bit;
                inj.note_corruption();
            }
        }
        let gen = self.slots[i].generation;
        let ok = match &self.slots[i].entry {
            Some(e) => Entry::checksum(index, gen, e) == e.check,
            None => true,
        };
        if ok {
            return Ok(());
        }
        // Detected: try the mirror.
        let mirror_ok = match (&self.mirror[i].entry, self.mirror[i].generation == gen) {
            (Some(m), true) => Entry::checksum(index, gen, m) == m.check,
            _ => false,
        };
        if mirror_ok {
            self.slots[i].entry = self.mirror[i].entry.clone();
            let t_reload = self.costs.t_reload;
            if let Some(inj) = &mut self.injector {
                inj.note_reload(t_reload);
            }
            Ok(())
        } else {
            // Quarantine: the slot dies; outstanding handles go stale.
            self.slots[i].generation += 1;
            self.slots[i].entry = None;
            self.mirror[i].generation = self.slots[i].generation;
            self.mirror[i].entry = None;
            self.free.push(index);
            if let Some(inj) = &mut self.injector {
                inj.note_unrecoverable();
            }
            Err(CapError::Corrupt { slot: index })
        }
    }

    /// Validates a handle: integrity, generation, and (optionally)
    /// ownership. Returns the protected resource.
    ///
    /// # Errors
    ///
    /// [`CapError::Revoked`] on a stale generation, [`CapError::NotOwner`]
    /// when `owner` is given and does not match, [`CapError::BadSlot`] /
    /// [`CapError::Corrupt`] on structural failures.
    pub fn validate(&mut self, cap: CapId, owner: Option<DomainId>) -> Result<Resource, CapError> {
        self.stats.validations += 1;
        self.val_ops += 1;
        if cap.index as usize >= self.slots.len() {
            return Err(CapError::BadSlot(cap.index));
        }
        self.integrity_check(cap.index)?;
        let slot = &self.slots[cap.index as usize];
        let entry = match (&slot.entry, slot.generation == cap.generation) {
            (Some(e), true) => e,
            _ => {
                self.stats.stale_denials += 1;
                return Err(CapError::Revoked {
                    slot: cap.index,
                    stale: cap.generation,
                    current: slot.generation,
                });
            }
        };
        if let Some(d) = owner {
            if entry.domain != d.0 {
                return Err(CapError::NotOwner {
                    owner: entry.domain,
                });
            }
        }
        Ok(entry.resource)
    }

    /// Transitively revokes `cap`: the capability and every capability
    /// derived from it (the whole subtree) go stale, derived receivers
    /// first. Returns what was torn down and the walk's cycle cost.
    ///
    /// # Errors
    ///
    /// As [`CapEngine::validate`].
    pub fn revoke(&mut self, cap: CapId, owner: Option<DomainId>) -> Result<Revocation, CapError> {
        self.validate(cap, owner)?;
        // Unlink from the parent so the walk stays contained.
        if let Some(parent) = self.slots[cap.index as usize]
            .entry
            .as_ref()
            .and_then(|e| e.parent)
        {
            self.update_entry(parent, |e| e.children.retain(|&c| c != cap.index));
        }
        // Post-order walk: children torn down before their parent.
        let mut order = Vec::new();
        let mut stack = vec![(cap.index, false)];
        while let Some((idx, expanded)) = stack.pop() {
            if expanded {
                order.push(idx);
                continue;
            }
            stack.push((idx, true));
            if let Some(e) = &self.slots[idx as usize].entry {
                for &c in e.children.iter().rev() {
                    stack.push((c, false));
                }
            }
        }
        let mut revoked = Vec::with_capacity(order.len());
        for idx in order {
            let i = idx as usize;
            let Some(e) = self.slots[i].entry.take() else {
                continue;
            };
            if let Resource::Descriptor { desc } = e.resource {
                self.desc_slot.remove(&desc);
            }
            revoked.push(RevokedCap {
                cap: CapId {
                    index: idx,
                    generation: self.slots[i].generation,
                },
                domain: DomainId(e.domain),
                resource: e.resource,
            });
            self.slots[i].generation += 1;
            self.mirror[i].generation = self.slots[i].generation;
            self.mirror[i].entry = None;
            self.free.push(idx);
        }
        let cycles =
            self.costs.t_revoke_base + revoked.len() as Cycle * self.costs.t_revoke_per_cap;
        self.stats.revocations += 1;
        self.stats.revoked_caps += revoked.len() as u64;
        Ok(Revocation { revoked, cycles })
    }

    /// Points a descriptor capability (and the derived aliases under it)
    /// at a new controller descriptor slot — the retarget path, which
    /// replaces the descriptor without disturbing the grant.
    ///
    /// # Errors
    ///
    /// As [`CapEngine::validate`]; also fails if `cap` is not a
    /// descriptor capability.
    pub fn retarget_desc(&mut self, cap: CapId, new_desc: u32) -> Result<(), CapError> {
        match self.validate(cap, None)? {
            Resource::Descriptor { desc: old } => {
                self.desc_slot.remove(&old);
                self.desc_slot.insert(new_desc, cap.index);
                self.update_entry(cap.index, |e| {
                    e.resource = Resource::Descriptor { desc: new_desc };
                });
                // Derived aliases read through the same shadow region;
                // keep their descriptor field coherent.
                let children: Vec<u32> = self.slots[cap.index as usize]
                    .entry
                    .as_ref()
                    .map(|e| e.children.clone())
                    .unwrap_or_default();
                for c in children {
                    self.update_entry(c, |e| {
                        if let Resource::Alias { desc, .. } = &mut e.resource {
                            *desc = new_desc;
                        }
                    });
                }
                Ok(())
            }
            _ => Err(CapError::BadSlot(cap.index)),
        }
    }

    /// Deliberately corrupts the working entry at `slot` (and the mirror
    /// too when `deep`) — the fault-injection hook the chaos suite uses.
    /// Shallow corruption is recovered at the next validation; deep
    /// corruption is unrecoverable and surfaces as [`CapError::Corrupt`].
    pub fn inject_corruption(&mut self, slot: u32, deep: bool) {
        if let Some(e) = self
            .slots
            .get_mut(slot as usize)
            .and_then(|s| s.entry.as_mut())
        {
            e.check ^= 1;
        }
        if deep {
            if let Some(e) = self
                .mirror
                .get_mut(slot as usize)
                .and_then(|s| s.entry.as_mut())
            {
                e.check ^= 1;
            }
        }
    }

    /// Sweeps the whole table, repairing working entries from the mirror.
    /// Returns `(entries checked, entries repaired)`.
    pub fn scrub(&mut self) -> (u64, u64) {
        let mut checked = 0;
        let mut repaired = 0;
        for i in 0..self.slots.len() {
            if self.slots[i].entry.is_none() {
                continue;
            }
            checked += 1;
            let gen = self.slots[i].generation;
            let ok = self.slots[i]
                .entry
                .as_ref()
                .is_some_and(|e| Entry::checksum(i as u32, gen, e) == e.check);
            if !ok && self.integrity_check(i as u32).is_ok() {
                repaired += 1;
            }
        }
        (checked, repaired)
    }

    /// Serializes the full table: slots (generation + entry), free-list
    /// order, domain count, counters, the validation ordinal, and the
    /// injector's dynamic state. Deterministic byte-for-byte.
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_CAPS);
        w.usize(self.slots.len());
        for (i, s) in self.slots.iter().enumerate() {
            w.u32(s.generation);
            match &s.entry {
                None => w.bool(false),
                Some(e) => {
                    w.bool(true);
                    w.u32(e.domain);
                    w.u8(e.resource.tag());
                    match e.resource {
                        Resource::Descriptor { desc } => w.u32(desc),
                        Resource::Alias { desc, start, pages } => {
                            w.u32(desc);
                            w.u64(start);
                            w.u64(pages);
                        }
                        Resource::Region { start, len } => {
                            w.u64(start);
                            w.u64(len);
                        }
                    }
                    w.bool(e.parent.is_some());
                    w.u32(e.parent.unwrap_or(0));
                    let kids: Vec<u64> = e.children.iter().map(|&c| u64::from(c)).collect();
                    w.u64_slice(&kids);
                    debug_assert_eq!(e.check, Entry::checksum(i as u32, s.generation, e));
                }
            }
        }
        let frees: Vec<u64> = self.free.iter().map(|&f| u64::from(f)).collect();
        w.u64_slice(&frees);
        w.u32(self.domains);
        w.u64(self.stats.grants);
        w.u64(self.stats.derives);
        w.u64(self.stats.coalesced);
        w.u64(self.stats.revocations);
        w.u64(self.stats.revoked_caps);
        w.u64(self.stats.validations);
        w.u64(self.stats.stale_denials);
        w.u64(self.val_ops);
        w.bool(self.injector.is_some());
        if let Some(inj) = &self.injector {
            inj.snap_save(w);
        }
    }

    /// Restores the state saved by [`CapEngine::snap_save`] into an
    /// engine built with the same configuration (costs, injector
    /// presence). Checksums and the mirror are rebuilt, so the restored
    /// table verifies clean.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] if the image is malformed.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_CAPS)?;
        let n = r.usize()?;
        self.slots = Vec::with_capacity(n);
        self.desc_slot = FxHashMap::default();
        for i in 0..n {
            let generation = r.u32()?;
            let entry = if r.bool()? {
                let domain = r.u32()?;
                let resource = match r.u8()? {
                    0 => Resource::Descriptor { desc: r.u32()? },
                    1 => Resource::Alias {
                        desc: r.u32()?,
                        start: r.u64()?,
                        pages: r.u64()?,
                    },
                    2 => Resource::Region {
                        start: r.u64()?,
                        len: r.u64()?,
                    },
                    _ => return Err(SnapError::Geometry("capability resource tag")),
                };
                let has_parent = r.bool()?;
                let parent_raw = r.u32()?;
                let parent = has_parent.then_some(parent_raw);
                let kids = r.u64_vec()?;
                let mut children = Vec::with_capacity(kids.len());
                for k in kids {
                    children.push(
                        u32::try_from(k)
                            .map_err(|_| SnapError::Geometry("capability child slot"))?,
                    );
                }
                if let Resource::Descriptor { desc } = resource {
                    self.desc_slot.insert(desc, i as u32);
                }
                let mut e = Entry {
                    domain,
                    resource,
                    parent,
                    children,
                    check: 0,
                };
                e.check = Entry::checksum(i as u32, generation, &e);
                Some(e)
            } else {
                None
            };
            self.slots.push(Slot { generation, entry });
        }
        self.mirror = self.slots.clone();
        let frees = r.u64_vec()?;
        self.free = Vec::with_capacity(frees.len());
        for f in frees {
            self.free
                .push(u32::try_from(f).map_err(|_| SnapError::Geometry("free slot index"))?);
        }
        self.domains = r.u32()?;
        self.stats.grants = r.u64()?;
        self.stats.derives = r.u64()?;
        self.stats.coalesced = r.u64()?;
        self.stats.revocations = r.u64()?;
        self.stats.revoked_caps = r.u64()?;
        self.stats.validations = r.u64()?;
        self.stats.stale_denials = r.u64()?;
        self.val_ops = r.u64()?;
        let has_injector = r.bool()?;
        if has_injector {
            if let Some(inj) = &mut self.injector {
                inj.snap_load(r)?;
            } else {
                return Err(SnapError::Geometry(
                    "snapshot carries a caps injector but the engine has none",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impulse_fault::{FaultConfig, Trigger};

    fn engine() -> CapEngine {
        CapEngine::new()
    }

    #[test]
    fn grant_validate_revoke_lifecycle() {
        let mut e = engine();
        let d = e.create_domain();
        let cap = e.grant(d, Resource::Descriptor { desc: 3 }).expect("grant");
        assert_eq!(
            e.validate(cap, Some(d)),
            Ok(Resource::Descriptor { desc: 3 })
        );
        assert_eq!(e.desc_cap(3), Some(cap));
        let rev = e.revoke(cap, Some(d)).expect("revoke");
        assert_eq!(rev.revoked.len(), 1);
        assert_eq!(rev.cycles, 40 + 12);
        assert_eq!(
            e.validate(cap, Some(d)),
            Err(CapError::Revoked {
                slot: cap.index,
                stale: cap.generation,
                current: cap.generation + 1,
            })
        );
        assert_eq!(e.desc_cap(3), None);
    }

    #[test]
    fn slot_reuse_keeps_old_handles_stale() {
        let mut e = engine();
        let d = e.create_domain();
        let a = e.grant(d, Resource::Descriptor { desc: 0 }).expect("a");
        e.revoke(a, Some(d)).expect("revoke a");
        let b = e.grant(d, Resource::Descriptor { desc: 1 }).expect("b");
        // Recycled slot, bumped generation.
        assert_eq!(b.index, a.index);
        assert!(b.generation > a.generation);
        assert!(matches!(
            e.validate(a, Some(d)),
            Err(CapError::Revoked { .. })
        ));
        assert!(e.validate(b, Some(d)).is_ok());
    }

    #[test]
    fn ownership_is_enforced() {
        let mut e = engine();
        let d0 = e.create_domain();
        let d1 = e.create_domain();
        let cap = e
            .grant(d0, Resource::Descriptor { desc: 0 })
            .expect("grant");
        assert_eq!(
            e.validate(cap, Some(d1)),
            Err(CapError::NotOwner { owner: 0 })
        );
        assert_eq!(
            e.revoke(cap, Some(d1)),
            Err(CapError::NotOwner { owner: 0 })
        );
        assert!(e.revoke(cap, Some(d0)).is_ok());
    }

    #[test]
    fn transitive_revocation_tears_down_the_subtree() {
        let mut e = engine();
        let owner = e.create_domain();
        let recv1 = e.create_domain();
        let recv2 = e.create_domain();
        let root = e
            .grant(owner, Resource::Descriptor { desc: 2 })
            .expect("root");
        let c1 = e
            .derive(
                root,
                Some(owner),
                recv1,
                Resource::Alias {
                    desc: 2,
                    start: 0x10000,
                    pages: 4,
                },
            )
            .expect("c1");
        // A chained handoff: recv1 re-shares to recv2.
        let c2 = e
            .derive(
                c1,
                Some(recv1),
                recv2,
                Resource::Alias {
                    desc: 2,
                    start: 0x20000,
                    pages: 4,
                },
            )
            .expect("c2");
        let rev = e.revoke(root, Some(owner)).expect("revoke root");
        // Post-order: deepest derived alias first, root last.
        assert_eq!(rev.revoked.len(), 3);
        assert_eq!(rev.revoked[0].cap, c2);
        assert_eq!(rev.revoked[0].domain, recv2);
        assert_eq!(rev.revoked[1].cap, c1);
        assert_eq!(rev.revoked[2].cap, root);
        assert_eq!(rev.cycles, 40 + 3 * 12);
        for cap in [root, c1, c2] {
            assert!(matches!(
                e.validate(cap, None),
                Err(CapError::Revoked { .. })
            ));
        }
        assert_eq!(e.live(), 0);
    }

    #[test]
    fn revoking_a_derived_cap_leaves_the_root_alive() {
        let mut e = engine();
        let owner = e.create_domain();
        let recv = e.create_domain();
        let root = e
            .grant(owner, Resource::Descriptor { desc: 0 })
            .expect("root");
        let child = e
            .derive(
                root,
                Some(owner),
                recv,
                Resource::Alias {
                    desc: 0,
                    start: 0,
                    pages: 1,
                },
            )
            .expect("child");
        let rev = e.revoke(child, None).expect("revoke child");
        assert_eq!(rev.revoked.len(), 1);
        assert!(e.validate(root, Some(owner)).is_ok());
        // The root's child list no longer references the dead slot.
        let rev2 = e.revoke(root, Some(owner)).expect("revoke root");
        assert_eq!(rev2.revoked.len(), 1);
    }

    #[test]
    fn region_grants_coalesce_when_contiguous() {
        let mut e = engine();
        let d = e.create_domain();
        let (a, merged) = e.grant_region(d, 0x1000, 0x2000).expect("a");
        assert!(!merged);
        let (b, merged) = e.grant_region(d, 0x3000, 0x1000).expect("b");
        assert!(merged);
        assert_eq!(a, b);
        assert_eq!(
            e.validate(a, Some(d)),
            Ok(Resource::Region {
                start: 0x1000,
                len: 0x3000
            })
        );
        // A gap breaks the chain; a different domain never merges.
        let (_, merged) = e.grant_region(d, 0x8000, 0x1000).expect("gap");
        assert!(!merged);
        let d2 = e.create_domain();
        let (_, merged) = e.grant_region(d2, 0x9000, 0x1000).expect("other domain");
        assert!(!merged);
        assert_eq!(e.stats().coalesced, 1);
    }

    #[test]
    fn retarget_updates_root_and_derived_aliases() {
        let mut e = engine();
        let owner = e.create_domain();
        let recv = e.create_domain();
        let root = e
            .grant(owner, Resource::Descriptor { desc: 1 })
            .expect("root");
        let child = e
            .derive(
                root,
                Some(owner),
                recv,
                Resource::Alias {
                    desc: 1,
                    start: 0x40000,
                    pages: 2,
                },
            )
            .expect("child");
        e.retarget_desc(root, 5).expect("retarget");
        assert_eq!(e.validate(root, None), Ok(Resource::Descriptor { desc: 5 }));
        assert_eq!(
            e.validate(child, None),
            Ok(Resource::Alias {
                desc: 5,
                start: 0x40000,
                pages: 2
            })
        );
        assert_eq!(e.desc_cap(1), None);
        assert_eq!(e.desc_cap(5), Some(root));
    }

    #[test]
    fn shallow_corruption_is_detected_and_recovered() {
        let mut e = engine();
        let d = e.create_domain();
        let cap = e.grant(d, Resource::Descriptor { desc: 0 }).expect("grant");
        e.inject_corruption(cap.index, false);
        // Recovered from the mirror transparently.
        assert!(e.validate(cap, Some(d)).is_ok());
        let (checked, repaired) = e.scrub();
        assert_eq!((checked, repaired), (1, 0), "already repaired at validate");
    }

    #[test]
    fn deep_corruption_is_a_typed_error_then_stale() {
        let mut e = engine();
        let d = e.create_domain();
        let cap = e.grant(d, Resource::Descriptor { desc: 0 }).expect("grant");
        e.inject_corruption(cap.index, true);
        assert_eq!(
            e.validate(cap, Some(d)),
            Err(CapError::Corrupt { slot: cap.index })
        );
        // The slot is quarantined: the old handle is now simply stale,
        // and the slot is reusable.
        assert!(matches!(
            e.validate(cap, Some(d)),
            Err(CapError::Revoked { .. })
        ));
        let fresh = e.grant(d, Resource::Descriptor { desc: 3 }).expect("reuse");
        assert_eq!(fresh.index, cap.index);
        assert!(e.validate(fresh, Some(d)).is_ok());
    }

    #[test]
    fn injector_driven_corruption_recovers_deterministically() {
        let run = || {
            let cfg = FaultConfig {
                seed: 7,
                caps_corrupt: Trigger::EveryN { every: 3, phase: 0 },
                ..FaultConfig::none()
            };
            let mut e = engine();
            e.attach_injector(cfg.caps_injector());
            let d = e.create_domain();
            let cap = e.grant(d, Resource::Descriptor { desc: 0 }).expect("grant");
            for _ in 0..30 {
                e.validate(cap, Some(d)).expect("recovered");
            }
            e.fault_stats()
        };
        let s = run();
        assert!(s.corruptions > 0, "the schedule fired");
        assert_eq!(s.corruptions, s.reloads, "every corruption recovered");
        assert_eq!(s.unrecoverable, 0);
        assert_eq!(s.recovery_cycles, s.reloads * 30);
        assert_eq!(run(), s, "same seed, same schedule");
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let mut e = engine();
        let owner = e.create_domain();
        let recv = e.create_domain();
        let root = e
            .grant(owner, Resource::Descriptor { desc: 2 })
            .expect("root");
        let _child = e
            .derive(
                root,
                Some(owner),
                recv,
                Resource::Alias {
                    desc: 2,
                    start: 0x30000,
                    pages: 8,
                },
            )
            .expect("child");
        e.grant_region(owner, 0x1000, 0x1000).expect("region");
        e.grant_region(owner, 0x2000, 0x1000).expect("coalesced");
        let dead = e.grant(owner, Resource::Descriptor { desc: 7 }).expect("d");
        e.revoke(dead, Some(owner)).expect("revoke");

        let mut w = SnapWriter::new();
        e.snap_save(&mut w);
        let bytes = w.finish();

        let mut restored = engine();
        let mut r = SnapReader::new(&bytes);
        restored.snap_load(&mut r).expect("load");
        r.finish().expect("fully consumed");

        // Bit-exact: re-serializing the restored engine matches.
        let mut w2 = SnapWriter::new();
        restored.snap_save(&mut w2);
        assert_eq!(w2.finish(), bytes);

        // And it behaves identically: same stats, same validations,
        // same revocation walk.
        assert_eq!(restored.stats(), e.stats());
        assert_eq!(
            restored.validate(root, Some(owner)),
            e.validate(root, Some(owner))
        );
        assert_eq!(
            restored.revoke(root, Some(owner)),
            e.revoke(root, Some(owner))
        );
    }

    #[test]
    fn snapshot_carries_injector_state() {
        let cfg = FaultConfig {
            seed: 11,
            caps_corrupt: Trigger::EveryN { every: 2, phase: 0 },
            ..FaultConfig::none()
        };
        let mut e = engine();
        e.attach_injector(cfg.caps_injector());
        let d = e.create_domain();
        let cap = e.grant(d, Resource::Descriptor { desc: 0 }).expect("grant");
        for _ in 0..7 {
            e.validate(cap, Some(d)).expect("ok");
        }
        let mut w = SnapWriter::new();
        e.snap_save(&mut w);
        let bytes = w.finish();

        let mut restored = engine();
        restored.attach_injector(cfg.caps_injector());
        let mut r = SnapReader::new(&bytes);
        restored.snap_load(&mut r).expect("load");
        assert_eq!(restored.fault_stats(), e.fault_stats());
        // Future schedules agree.
        for _ in 0..9 {
            assert_eq!(
                restored.validate(cap, Some(d)).is_ok(),
                e.validate(cap, Some(d)).is_ok()
            );
        }
        assert_eq!(restored.fault_stats(), e.fault_stats());
    }
}
