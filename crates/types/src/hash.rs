//! A fast, non-cryptographic hasher for the simulator's hot paths.
//!
//! The standard library's `HashMap` defaults to SipHash-1-3, which is
//! DoS-resistant but costs tens of cycles per lookup — measurable on the
//! translate paths (`PgTbl`, the CPU TLB index, the OS page tables) that
//! run once per simulated memory access. The simulator hashes only small
//! integer keys it generates itself (page numbers, descriptor slots), so
//! collision-flooding resistance buys nothing here.
//!
//! `FxHasher` implements the multiply-rotate scheme used by the Rust
//! compiler (`rustc-hash`, itself derived from Firefox): each word is
//! folded in with a rotate, an xor, and a multiply by a constant derived
//! from the golden ratio. It is deterministic across processes and
//! platforms of the same word size, which also keeps simulator output
//! stable run to run.
//!
//! # Examples
//!
//! ```
//! use impulse_types::hash::FxHashMap;
//!
//! let mut pages: FxHashMap<u64, u64> = FxHashMap::default();
//! pages.insert(0x42, 0x8000);
//! assert_eq!(pages.get(&0x42), Some(&0x8000));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `2^64 / φ`, the multiplicative constant used by rustc's FxHash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Rotation applied before folding each word in.
const ROTATE: u32 = 5;

/// The FxHash state: one word, updated per 8 bytes of input.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `BuildHasher` producing [`FxHasher`]s (no per-map random state).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`]. Construct with
/// `FxHashMap::default()` (the `new()` constructor is only available for
/// the default `RandomState`).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_one(0xdead_beefu64), hash_one(0xdead_beefu64));
        assert_eq!(hash_one("page"), hash_one("page"));
    }

    #[test]
    fn distinct_keys_hash_apart() {
        // Not a statistical test — just a guard against a degenerate
        // implementation (e.g. returning the key or a constant).
        let hashes: HashSet<u64> = (0..1024u64).map(hash_one).collect();
        assert_eq!(hashes.len(), 1024);
        assert_ne!(hash_one(7u64), 7);
    }

    #[test]
    fn byte_stream_matches_word_writes() {
        // `write` folds full 8-byte words exactly like `write_u64`.
        let mut a = FxHasher::default();
        a.write(&0x0123_4567_89ab_cdefu64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(0x0123_4567_89ab_cdef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.remove(&2), Some("two"));
        let s: FxHashSet<u64> = (0..10).collect();
        assert!(s.contains(&9));
        assert_eq!(s.len(), 10);
    }
}
