//! Dependency-free binary snapshot codec (`impulse-snap-v1`).
//!
//! Every stateful simulator component exposes a pair of inherent methods —
//! `snap_save(&self, &mut SnapWriter)` and
//! `snap_load(&mut self, &mut SnapReader) -> Result<(), SnapError>` — built
//! on the primitives in this module. The codec is deliberately boring:
//! little-endian fixed-width integers, length-prefixed sequences, and a
//! `u32` section tag in front of every component so a mismatched load fails
//! fast with [`SnapError::BadTag`] instead of silently misinterpreting
//! bytes.
//!
//! A complete snapshot is framed by [`seal`] / [`open`]:
//!
//! ```text
//! "impulse-snap-v1"   15-byte magic
//! version: u32        currently 1
//! fingerprint: u64    FNV-64 of the system configuration's Debug string
//! payload_len: u64
//! payload bytes       component sections
//! checksum: u64       FNV-64 of the payload bytes
//! ```
//!
//! Configurations are *not* serialized; a snapshot is restored into a
//! machine freshly built from the same configuration, and the fingerprint
//! rejects restores into a different one.
//!
//! # Examples
//!
//! ```
//! use impulse_types::snap::{open, seal, SnapReader, SnapWriter};
//!
//! let mut w = SnapWriter::new();
//! w.tag(0x1234);
//! w.u64(42);
//! let img = seal(0xfeed, w.finish());
//!
//! let payload = open(&img, 0xfeed).unwrap();
//! let mut r = SnapReader::new(payload);
//! r.tag(0x1234).unwrap();
//! assert_eq!(r.u64().unwrap(), 42);
//! r.finish().unwrap();
//! ```

use std::error::Error;
use std::fmt;

/// Magic bytes at the head of every snapshot image.
pub const MAGIC: &[u8; 15] = b"impulse-snap-v1";

/// Current snapshot format version.
pub const VERSION: u32 = 1;

/// Everything that can go wrong while decoding a snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// The byte stream ended before the decoder was done.
    Truncated,
    /// The image does not start with [`MAGIC`].
    BadMagic,
    /// The image carries a format version this build cannot read.
    BadVersion(u32),
    /// The payload checksum does not match the stored checksum.
    BadChecksum,
    /// A section tag did not match the component being loaded.
    BadTag {
        /// The tag the loading component expected.
        expected: u32,
        /// The tag actually present in the stream.
        found: u32,
    },
    /// A decoded length or index is inconsistent with the geometry of the
    /// component being restored (e.g. a cache with a different line count).
    Geometry(&'static str),
    /// The snapshot was taken under a different system configuration.
    ConfigMismatch,
    /// Decoding finished with bytes left over.
    TrailingBytes,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "snapshot truncated"),
            Self::BadMagic => write!(f, "not an impulse snapshot (bad magic)"),
            Self::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            Self::BadChecksum => write!(f, "snapshot checksum mismatch"),
            Self::BadTag { expected, found } => write!(
                f,
                "snapshot section tag mismatch (expected {expected:#010x}, found {found:#010x})"
            ),
            Self::Geometry(what) => write!(f, "snapshot geometry mismatch: {what}"),
            Self::ConfigMismatch => {
                write!(
                    f,
                    "snapshot was taken under a different system configuration"
                )
            }
            Self::TrailingBytes => write!(f, "snapshot has trailing bytes"),
        }
    }
}

impl Error for SnapError {}

/// FNV-1a 64-bit hash — the snapshot checksum and fingerprint function.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only encoder for snapshot payloads.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section tag (encoded as a `u32`).
    pub fn tag(&mut self, t: u32) {
        self.u32(t);
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a length-prefixed slice of `u64` words.
    pub fn u64_slice(&mut self, words: &[u64]) {
        self.usize(words.len());
        for &w in words {
            self.u64(w);
        }
    }

    /// Consumes the writer, returning the encoded payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-based decoder over a snapshot payload.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a section tag and checks it against `expected`.
    pub fn tag(&mut self, expected: u32) -> Result<(), SnapError> {
        let found = self.u32()?;
        if found == expected {
            Ok(())
        } else {
            Err(SnapError::BadTag { expected, found })
        }
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize` stored as a `u64`.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.u64()?).map_err(|_| SnapError::Geometry("length exceeds usize"))
    }

    /// Reads a bool stored as one byte; any value other than 0/1 is an
    /// encoding error.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Geometry("bool byte out of range")),
        }
    }

    /// Reads a length-prefixed slice of `u64` words.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, SnapError> {
        let n = self.usize()?;
        // Guard against a corrupt length causing an absurd reservation.
        if n > self.buf.len() {
            return Err(SnapError::Truncated);
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u64()?);
        }
        Ok(v)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Checks that the whole payload was consumed.
    pub fn finish(self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes)
        }
    }
}

/// Frames `payload` into a complete `impulse-snap-v1` image: magic,
/// version, configuration `fingerprint`, length, payload, FNV-64 checksum.
pub fn seal(fingerprint: u64, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + 4 + 8 + 8 + payload.len() + 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let sum = fnv64(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validates a framed image (magic, version, `fingerprint`, checksum,
/// exact length) and returns the payload slice.
pub fn open(image: &[u8], fingerprint: u64) -> Result<&[u8], SnapError> {
    let mut r = SnapReader::new(image);
    let magic = r.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(SnapError::BadVersion(version));
    }
    let fp = r.u64()?;
    if fp != fingerprint {
        return Err(SnapError::ConfigMismatch);
    }
    let len = r.usize()?;
    let payload = r.take(len)?;
    let sum = r.u64()?;
    if sum != fnv64(payload) {
        return Err(SnapError::BadChecksum);
    }
    r.finish()?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.tag(0xCAFE);
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.usize(12345);
        w.bool(true);
        w.bool(false);
        w.u64_slice(&[1, 2, 3]);
        let buf = w.finish();

        let mut r = SnapReader::new(&buf);
        r.tag(0xCAFE).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.usize().unwrap(), 12345);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u64_vec().unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncated_stream_is_detected() {
        let mut w = SnapWriter::new();
        w.u64(9);
        let buf = w.finish();
        let mut r = SnapReader::new(&buf[..4]);
        assert_eq!(r.u64(), Err(SnapError::Truncated));
    }

    #[test]
    fn tag_mismatch_is_detected() {
        let mut w = SnapWriter::new();
        w.tag(1);
        let buf = w.finish();
        let mut r = SnapReader::new(&buf);
        assert_eq!(
            r.tag(2),
            Err(SnapError::BadTag {
                expected: 2,
                found: 1
            })
        );
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut w = SnapWriter::new();
        w.u8(1);
        w.u8(2);
        let buf = w.finish();
        let mut r = SnapReader::new(&buf);
        r.u8().unwrap();
        assert_eq!(r.finish(), Err(SnapError::TrailingBytes));
    }

    #[test]
    fn seal_open_round_trip() {
        let mut w = SnapWriter::new();
        w.u64(0x1234);
        let img = seal(99, w.finish());
        let payload = open(&img, 99).unwrap();
        let mut r = SnapReader::new(payload);
        assert_eq!(r.u64().unwrap(), 0x1234);
        r.finish().unwrap();
    }

    #[test]
    fn open_rejects_corruption() {
        let img = seal(7, vec![1, 2, 3, 4]);

        assert_eq!(open(&img[..10], 7), Err(SnapError::Truncated));
        assert_eq!(open(&img, 8), Err(SnapError::ConfigMismatch));

        let mut bad_magic = img.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(open(&bad_magic, 7), Err(SnapError::BadMagic));

        let mut bad_version = img.clone();
        bad_version[MAGIC.len()] = 0xFF;
        assert!(matches!(
            open(&bad_version, 7),
            Err(SnapError::BadVersion(_))
        ));

        let mut flipped = img.clone();
        let body = MAGIC.len() + 4 + 8 + 8;
        flipped[body] ^= 0x01;
        assert_eq!(open(&flipped, 7), Err(SnapError::BadChecksum));

        let mut long = img.clone();
        long.push(0);
        assert_eq!(open(&long, 7), Err(SnapError::TrailingBytes));
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
