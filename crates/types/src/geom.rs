//! Memory-system geometry constants and alignment helpers.
//!
//! The constants mirror the Paint simulator configuration used in the
//! paper's evaluation (Section 4): 4 KB pages, 32-byte L1 lines, 128-byte
//! L2 lines. Components take their geometry from their own config structs;
//! these constants are the workspace-wide defaults.

/// log2 of the page size.
pub const PAGE_SHIFT: u32 = 12;
/// Page size in bytes (4 KB).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// log2 of the L1 data cache line size.
pub const LINE_SHIFT_L1: u32 = 5;
/// L1 data cache line size in bytes (32 B, as in the HP PA-RISC L1).
pub const LINE_SIZE_L1: u64 = 1 << LINE_SHIFT_L1;

/// log2 of the L2 data cache line size.
pub const LINE_SHIFT_L2: u32 = 7;
/// L2 data cache line size in bytes (128 B).
pub const LINE_SIZE_L2: u64 = 1 << LINE_SHIFT_L2;

/// Returns `true` if `x` is a power of two (and non-zero).
#[inline]
pub const fn is_pow2(x: u64) -> bool {
    x != 0 && x & (x - 1) == 0
}

/// Rounds `x` up to the next multiple of `align` (a power of two).
///
/// # Panics
///
/// Panics in debug builds if the addition overflows.
#[inline]
pub const fn round_up(x: u64, align: u64) -> u64 {
    (x + align - 1) & !(align - 1)
}

/// Rounds `x` down to a multiple of `align` (a power of two).
#[inline]
pub const fn round_down(x: u64, align: u64) -> u64 {
    x & !(align - 1)
}

/// Number of `unit`-sized blocks needed to cover `bytes` bytes.
#[inline]
pub const fn blocks_for(bytes: u64, unit: u64) -> u64 {
    bytes.div_ceil(unit)
}

/// log2 of a power-of-two value.
///
/// # Panics
///
/// Panics if `x` is not a power of two.
#[inline]
pub fn log2(x: u64) -> u32 {
    assert!(is_pow2(x), "log2 of non-power-of-two: {x}");
    x.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(PAGE_SIZE, 4096);
        assert_eq!(LINE_SIZE_L1, 32);
        assert_eq!(LINE_SIZE_L2, 128);
        assert_eq!(1u64 << PAGE_SHIFT, PAGE_SIZE);
    }

    #[test]
    fn pow2_checks() {
        assert!(is_pow2(1));
        assert!(is_pow2(4096));
        assert!(!is_pow2(0));
        assert!(!is_pow2(48));
    }

    #[test]
    fn rounding() {
        assert_eq!(round_up(1, 32), 32);
        assert_eq!(round_up(32, 32), 32);
        assert_eq!(round_down(63, 32), 32);
        assert_eq!(round_down(64, 32), 64);
    }

    #[test]
    fn blocks() {
        assert_eq!(blocks_for(0, 32), 0);
        assert_eq!(blocks_for(1, 32), 1);
        assert_eq!(blocks_for(32, 32), 1);
        assert_eq!(blocks_for(33, 32), 2);
    }

    #[test]
    fn log2_of_pow2() {
        assert_eq!(log2(1), 0);
        assert_eq!(log2(4096), 12);
    }

    #[test]
    #[should_panic(expected = "non-power-of-two")]
    fn log2_rejects_non_pow2() {
        let _ = log2(3);
    }
}
