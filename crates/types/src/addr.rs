//! Address-space newtypes.
//!
//! Each address space gets its own newtype over `u64` so that the type
//! system enforces the translation discipline of the Impulse architecture:
//! the MMU turns a [`VAddr`] into a [`PAddr`]; the Impulse controller's
//! AddrCalc turns a shadow [`PAddr`] into one or more [`PvAddr`]s; and the
//! controller page table (PgTbl) turns a [`PvAddr`] into an [`MAddr`].

use core::fmt;

use crate::geom::{LINE_SHIFT_L1, PAGE_SHIFT, PAGE_SIZE};

macro_rules! addr_newtype {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u64);

        impl $name {
            /// The zero address.
            pub const ZERO: Self = Self(0);

            /// Creates an address from a raw `u64`.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw `u64` value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns this address advanced by `bytes`.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if the addition overflows.
            #[inline]
            #[must_use]
            pub const fn add(self, bytes: u64) -> Self {
                Self(self.0 + bytes)
            }

            /// Returns this address moved back by `bytes`.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if the subtraction underflows.
            #[inline]
            #[must_use]
            pub const fn sub(self, bytes: u64) -> Self {
                Self(self.0 - bytes)
            }

            /// Byte distance from `base` to `self`.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if `base > self`.
            #[inline]
            pub const fn offset_from(self, base: Self) -> u64 {
                self.0 - base.0
            }

            /// The page number of this address (address divided by the
            /// 4 KB page size).
            #[inline]
            pub const fn page_number(self) -> u64 {
                self.0 >> PAGE_SHIFT
            }

            /// The base address of the page containing this address.
            #[inline]
            pub const fn page_base(self) -> Self {
                Self(self.0 & !(PAGE_SIZE - 1))
            }

            /// Byte offset of this address within its page.
            #[inline]
            pub const fn page_offset(self) -> u64 {
                self.0 & (PAGE_SIZE - 1)
            }

            /// The base address of the aligned `line`-byte block containing
            /// this address. `line` must be a power of two.
            #[inline]
            pub const fn align_down(self, line: u64) -> Self {
                Self(self.0 & !(line - 1))
            }

            /// Whether this address is aligned to `align` bytes (a power of
            /// two).
            #[inline]
            pub const fn is_aligned(self, align: u64) -> bool {
                self.0 & (align - 1) == 0
            }

            /// The base address of the L1-line-sized block containing this
            /// address. Convenience for trace post-processing.
            #[inline]
            pub const fn l1_line_base(self) -> Self {
                Self(self.0 & !((1u64 << LINE_SHIFT_L1) - 1))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, ":{:#x}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl From<$name> for u64 {
            #[inline]
            fn from(a: $name) -> u64 {
                a.0
            }
        }
    };
}

addr_newtype!(
    /// A process virtual address, translated by the CPU MMU/TLB.
    VAddr,
    "v"
);

addr_newtype!(
    /// A bus ("physical") address as seen by caches and the system bus.
    ///
    /// On an Impulse system a `PAddr` may be a *shadow* address — an
    /// address not backed by DRAM that the Impulse controller remaps.
    PAddr,
    "p"
);

addr_newtype!(
    /// A pseudo-virtual address inside the Impulse memory controller.
    ///
    /// Pseudo-virtual space mirrors virtual space so that the controller can
    /// remap data structures larger than one page; it exists to save address
    /// bits relative to using full virtual addresses at the controller.
    PvAddr,
    "pv"
);

addr_newtype!(
    /// A media address: a real DRAM location. Every `MAddr` is backed by
    /// installed memory.
    MAddr,
    "m"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic() {
        let a = PAddr::new(0x1234);
        assert_eq!(a.page_number(), 1);
        assert_eq!(a.page_base(), PAddr::new(0x1000));
        assert_eq!(a.page_offset(), 0x234);
    }

    #[test]
    fn align_down_masks_low_bits() {
        let a = VAddr::new(0x107f);
        assert_eq!(a.align_down(32), VAddr::new(0x1060));
        assert_eq!(a.align_down(128), VAddr::new(0x1000));
        assert!(a.align_down(128).is_aligned(128));
        assert!(!a.is_aligned(2));
    }

    #[test]
    fn add_sub_offset_roundtrip() {
        let base = MAddr::new(4096);
        let a = base.add(300);
        assert_eq!(a.offset_from(base), 300);
        assert_eq!(a.sub(300), base);
    }

    #[test]
    fn debug_display_nonempty_and_tagged() {
        let a = PvAddr::new(0);
        assert_eq!(format!("{a:?}"), "pv:0x0");
        assert_eq!(format!("{a}"), "0x0");
        assert_eq!(format!("{:x}", PAddr::new(0xabc)), "abc");
        assert_eq!(format!("{:X}", PAddr::new(0xabc)), "ABC");
    }

    #[test]
    fn types_are_distinct() {
        fn takes_v(_: VAddr) {}
        takes_v(VAddr::new(1));
        // takes_v(PAddr::new(1)); // must not compile
    }

    #[test]
    fn l1_line_base_is_32_bytes() {
        assert_eq!(PAddr::new(95).l1_line_base(), PAddr::new(64));
    }

    #[test]
    fn ordering_and_hash_derive() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(VAddr::new(1));
        assert!(s.contains(&VAddr::new(1)));
        assert!(VAddr::new(1) < VAddr::new(2));
    }
}
