//! Memory-tier policy vocabulary shared by the controller, the system
//! configuration, the serve protocol, and the bench argument parser.

/// How a second (SCM) memory class behind the controller is organized.
///
/// `None` is the classic single-tier machine. `Flat` partitions the bus
/// address space: DRAM serves `[0, dram_capacity)` and SCM serves the
/// addresses above it. `Cache` runs the DRAM as a tag-checked,
/// dirty-writeback cache in front of an SCM backing store (the HMS
/// organization), so the visible capacity is the SCM's.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TierPolicy {
    /// Single-tier DRAM machine (the default; no SCM is attached).
    #[default]
    None,
    /// Address-partitioned tiers: DRAM low, SCM high.
    Flat,
    /// DRAM as a direct-mapped writeback cache over SCM.
    Cache,
}

impl TierPolicy {
    /// Every policy, in stable grid order.
    pub const ALL: [TierPolicy; 3] = [TierPolicy::None, TierPolicy::Flat, TierPolicy::Cache];

    /// Stable wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            TierPolicy::None => "none",
            TierPolicy::Flat => "flat",
            TierPolicy::Cache => "cache",
        }
    }

    /// Parses a wire/CLI name ([`TierPolicy::name`] round-trips).
    pub fn parse(s: &str) -> Option<TierPolicy> {
        match s {
            "none" => Some(TierPolicy::None),
            "flat" => Some(TierPolicy::Flat),
            "cache" => Some(TierPolicy::Cache),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in TierPolicy::ALL {
            assert_eq!(TierPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(TierPolicy::parse("warp"), None);
        assert_eq!(TierPolicy::default(), TierPolicy::None);
    }
}
