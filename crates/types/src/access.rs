//! The access vocabulary shared by the CPU, cache, bus, and controller
//! models.

use core::fmt;

/// What kind of memory operation an access is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A data load. Loads block the single-issue CPU until data returns.
    Load,
    /// A data store. Stores retire through the write path and do not count
    /// toward the paper's load-based hit ratios.
    Store,
}

impl AccessKind {
    /// Whether this is a load.
    #[inline]
    pub const fn is_load(self) -> bool {
        matches!(self, AccessKind::Load)
    }

    /// Whether this is a store.
    #[inline]
    pub const fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => f.write_str("load"),
            AccessKind::Store => f.write_str("store"),
        }
    }
}

/// A single memory access: kind plus size in bytes.
///
/// Addresses travel separately (each pipeline stage uses its own address
/// space newtype), so `Access` carries only the space-independent facts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Access {
    /// Load or store.
    pub kind: AccessKind,
    /// Access width in bytes (e.g. 8 for a `f64`, 4 for a `u32` index).
    pub size: u8,
}

impl Access {
    /// A `size`-byte load.
    #[inline]
    pub const fn load(size: u8) -> Self {
        Self {
            kind: AccessKind::Load,
            size,
        }
    }

    /// A `size`-byte store.
    #[inline]
    pub const fn store(size: u8) -> Self {
        Self {
            kind: AccessKind::Store,
            size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        let l = Access::load(8);
        let s = Access::store(4);
        assert!(l.kind.is_load());
        assert!(!l.kind.is_store());
        assert!(s.kind.is_store());
        assert_eq!(l.size, 8);
        assert_eq!(s.size, 4);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(AccessKind::Load.to_string(), "load");
        assert_eq!(AccessKind::Store.to_string(), "store");
    }
}
