//! Shared primitives for the Impulse memory-system simulator.
//!
//! The Impulse architecture (Carter et al., HPCA 1999) distinguishes four
//! address spaces, which this crate models as distinct newtypes so they can
//! never be confused:
//!
//! * [`VAddr`] — a process *virtual* address, translated by the CPU MMU.
//! * [`PAddr`] — a *bus* ("physical") address as seen by the caches and the
//!   system bus. On an Impulse system a `PAddr` is either backed by DRAM or
//!   is a *shadow* address: a legitimate bus address with no DRAM behind it,
//!   which the Impulse memory controller remaps.
//! * [`PvAddr`] — a *pseudo-virtual* address, used inside the memory
//!   controller so that remapped data structures may span multiple
//!   (non-contiguous) physical pages.
//! * [`MAddr`] — a *media* (real DRAM) address, always backed by a DRAM
//!   location.
//!
//! The crate also provides line/page geometry helpers ([`geom`]), address
//! ranges ([`range`]), and the access vocabulary shared by the cache, DRAM,
//! controller, and CPU models ([`access`]).
//!
//! # Examples
//!
//! ```
//! use impulse_types::{PAddr, geom::PAGE_SIZE};
//!
//! let a = PAddr::new(0x1234);
//! assert_eq!(a.page_base(), PAddr::new(0x1000));
//! assert_eq!(a.page_offset(), 0x234);
//! assert_eq!(PAGE_SIZE, 4096);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod addr;
pub mod geom;
pub mod hash;
pub mod ident;
pub mod range;
pub mod snap;
pub mod tier;
pub mod varint;

pub use access::{Access, AccessKind};
pub use addr::{MAddr, PAddr, PvAddr, VAddr};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ident::ExperimentKey;
pub use range::{PRange, VRange};
pub use tier::TierPolicy;

/// Simulation time, measured in CPU cycles.
///
/// The simulator is cycle-accounting rather than cycle-by-cycle: components
/// exchange `Cycle` timestamps ("ready at", "done at") and durations.
pub type Cycle = u64;
