//! Stable experiment identity: one digest discipline for every keyed
//! artifact.
//!
//! An experiment is identified by **what it runs** (its name and the
//! full system configuration it runs under) and **what it is fed** (the
//! master seed). Several subsystems need that identity as a compact
//! key — the crash-safe run journal, flight/replay capture file names,
//! and the experiment server's result cache — and before this module
//! each invented its own keying (id strings, raw FNV of a `Debug`
//! string, `(name, seed)` tuples). [`ExperimentKey`] replaces those
//! ad-hoc schemes with one stable, well-mixed 64-bit digest:
//!
//! * [`digest64`] — FNV-1a over the bytes, finished with the
//!   SplitMix64 avalanche so short or similar inputs still spread over
//!   the whole word.
//! * [`mix`] — order-sensitive combination of two digests.
//! * [`ExperimentKey`] — `(config digest, seed)` with a combined
//!   64-bit form and a fixed-width hex rendering for file names and
//!   wire messages.
//!
//! The digests are deliberately *not* cryptographic: they defend
//! against accidental collisions and torn bytes, not adversaries, the
//! same contract as the snapshot/journal checksums.
//!
//! # Examples
//!
//! ```
//! use impulse_types::ident::ExperimentKey;
//!
//! let a = ExperimentKey::from_id("table1/conventional", 7);
//! let b = ExperimentKey::from_id("table1/conventional", 8);
//! assert_ne!(a.combined(), b.combined());
//! assert_eq!(a.hex().len(), 16);
//! assert_eq!(a, ExperimentKey::from_id("table1/conventional", 7));
//! ```

use crate::snap::fnv64;

/// SplitMix64 finalizer: a fast, invertible avalanche that spreads
/// low-entropy inputs (small integers, similar strings) across all 64
/// bits. The standard constants from Steele et al.'s SplitMix64.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Digest of a byte string: FNV-1a folded through [`splitmix64`].
pub fn digest64(bytes: &[u8]) -> u64 {
    splitmix64(fnv64(bytes))
}

/// Order-sensitive combination of two digests: `mix(a, b) != mix(b, a)`
/// in general, so "name then config" cannot collide with "config then
/// name".
pub fn mix(a: u64, b: u64) -> u64 {
    splitmix64(a ^ splitmix64(b))
}

/// The canonical experiment identity: the digest of everything that
/// determines the run (name + configuration) and the master seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExperimentKey {
    /// Digest of the experiment definition (name and/or configuration).
    pub config: u64,
    /// The master seed the experiment runs under.
    pub seed: u64,
}

impl ExperimentKey {
    /// A key from an already-computed configuration digest.
    pub fn new(config: u64, seed: u64) -> Self {
        Self { config, seed }
    }

    /// A key for grids that identify experiments by id string alone
    /// (the run journal's discipline): the config digest is the digest
    /// of the id bytes.
    pub fn from_id(id: &str, seed: u64) -> Self {
        Self::new(digest64(id.as_bytes()), seed)
    }

    /// The combined 64-bit form — the map key and wire representation.
    pub fn combined(self) -> u64 {
        mix(self.config, self.seed)
    }

    /// Fixed-width (16 hex digit) rendering of [`ExperimentKey::combined`],
    /// used in capture file names and server responses.
    pub fn hex(self) -> String {
        format!("{:016x}", self.combined())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable_across_calls_and_spread() {
        assert_eq!(digest64(b"table1"), digest64(b"table1"));
        assert_ne!(digest64(b"table1"), digest64(b"table2"));
        // Small inputs land far apart (avalanche sanity, not statistics).
        let d: std::collections::HashSet<u64> = (0u64..512).map(splitmix64).collect();
        assert_eq!(d.len(), 512);
    }

    #[test]
    fn mix_is_order_sensitive() {
        assert_ne!(mix(1, 2), mix(2, 1));
        assert_eq!(mix(1, 2), mix(1, 2));
    }

    #[test]
    fn keys_distinguish_config_and_seed() {
        let base = ExperimentKey::from_id("fig1/remapped", 1);
        assert_ne!(base, ExperimentKey::from_id("fig1/remapped", 2));
        assert_ne!(base, ExperimentKey::from_id("fig1/conventional", 1));
        assert_ne!(
            base.combined(),
            ExperimentKey::from_id("fig1/remapped", 2).combined()
        );
    }

    #[test]
    fn hex_is_fixed_width_and_parses_back() {
        let k = ExperimentKey::new(0, 0);
        assert_eq!(k.hex().len(), 16);
        assert_eq!(
            u64::from_str_radix(&k.hex(), 16).expect("hex parses"),
            k.combined()
        );
    }
}
