//! LEB128 varints and zigzag mapping — the integer encoding every
//! Impulse binary codec shares.
//!
//! The flight-recorder trace codec (`impulse-trace-v1`), the replay
//! capture codec (`impulse-replay-v1`), and the experiment server's
//! result journal (`impulse-result-v1`) all frame their integers the
//! same way: unsigned values as little-endian base-128 varints, signed
//! deltas zigzag-mapped onto the unsigned space first. Keeping the
//! primitive here (rather than per-codec copies) means one set of
//! boundary-condition tests covers every format.
//!
//! # Examples
//!
//! ```
//! use impulse_types::varint::{get, put, unzigzag, zigzag};
//!
//! let mut buf = Vec::new();
//! put(&mut buf, 300);
//! put(&mut buf, zigzag(-7));
//! let mut pos = 0;
//! assert_eq!(get(&buf, &mut pos).unwrap(), 300);
//! assert_eq!(unzigzag(get(&buf, &mut pos).unwrap()), -7);
//! assert_eq!(pos, buf.len());
//! ```

use std::fmt;

/// Decoding failures for [`get`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarintError {
    /// The input ended in the middle of a varint.
    Truncated,
    /// The encoding carries more payload bits than a `u64` holds (more
    /// than ten bytes, or a tenth byte above 1).
    Overlong,
}

impl fmt::Display for VarintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarintError::Truncated => write!(f, "truncated LEB128 varint"),
            VarintError::Overlong => write!(f, "over-long LEB128 varint"),
        }
    }
}

impl std::error::Error for VarintError {}

/// Appends `v` as an LEB128 varint.
pub fn put(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint starting at `*pos`, advancing it past the
/// bytes consumed.
///
/// # Errors
///
/// [`VarintError::Truncated`] on mid-varint EOF; [`VarintError::Overlong`]
/// if the encoding carries more payload bits than a `u64` holds.
pub fn get(bytes: &[u8], pos: &mut usize) -> Result<u64, VarintError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos).ok_or(VarintError::Truncated)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && (b & 0x7f) > 1) {
            return Err(VarintError::Overlong);
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag-maps a signed delta onto the unsigned varint space.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: u64) -> usize {
        let mut buf = Vec::new();
        put(&mut buf, v);
        let mut pos = 0;
        assert_eq!(get(&buf, &mut pos).expect("decodes"), v, "value {v}");
        assert_eq!(pos, buf.len(), "value {v} consumed exactly");
        buf.len()
    }

    #[test]
    fn boundary_values_round_trip_at_the_right_width() {
        // Every base-128 digit boundary: 2^7k - 1 encodes in k bytes,
        // 2^7k in k+1.
        assert_eq!(round_trip(0), 1);
        assert_eq!(round_trip((1 << 7) - 1), 1);
        assert_eq!(round_trip(1 << 7), 2);
        assert_eq!(round_trip((1 << 7) + 1), 2);
        assert_eq!(round_trip((1 << 14) - 1), 2);
        assert_eq!(round_trip(1 << 14), 3);
        assert_eq!(round_trip((1 << 14) + 1), 3);
        assert_eq!(round_trip((1 << 21) - 1), 3);
        assert_eq!(round_trip(u64::from(u32::MAX)), 5);
        assert_eq!(round_trip((1 << 63) - 1), 9);
        assert_eq!(round_trip(1 << 63), 10);
        assert_eq!(round_trip(u64::MAX), 10);
    }

    #[test]
    fn exhaustive_small_values() {
        for v in 0..=4096u64 {
            round_trip(v);
        }
    }

    #[test]
    fn truncation_at_every_prefix_is_typed() {
        let mut buf = Vec::new();
        put(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(
                get(&buf[..cut], &mut pos),
                Err(VarintError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn overlong_encodings_are_rejected() {
        // Eleven continuation bytes: more than a u64 can hold.
        let mut pos = 0;
        assert_eq!(get(&[0x80; 11], &mut pos), Err(VarintError::Overlong));
        // Ten bytes with a tenth-byte payload above 1 overflows too.
        let mut pos = 0;
        let overflow = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        assert_eq!(get(&overflow, &mut pos), Err(VarintError::Overlong));
        // ...while exactly u64::MAX (tenth byte = 1) is fine.
        let mut pos = 0;
        let max = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01];
        assert_eq!(get(&max, &mut pos), Ok(u64::MAX));
    }

    #[test]
    fn zigzag_round_trips_signed_extremes() {
        for v in [0i64, 1, -1, 63, -64, 64, -65, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v, "value {v}");
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }
}
