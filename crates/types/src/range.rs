//! Half-open address ranges.

use core::fmt;

use crate::addr::{PAddr, VAddr};
use crate::geom::PAGE_SIZE;

macro_rules! range_newtype {
    ($(#[$meta:meta])* $name:ident, $addr:ident) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash)]
        pub struct $name {
            start: $addr,
            len: u64,
        }

        impl $name {
            /// Creates a range `[start, start + len)`.
            ///
            /// # Panics
            ///
            /// Panics if `start + len` overflows `u64`.
            pub fn new(start: $addr, len: u64) -> Self {
                assert!(
                    start.raw().checked_add(len).is_some(),
                    "address range overflows the address space"
                );
                Self { start, len }
            }

            /// The first address in the range.
            #[inline]
            pub const fn start(&self) -> $addr {
                self.start
            }

            /// One past the last address in the range.
            #[inline]
            pub const fn end(&self) -> $addr {
                $addr::new(self.start.raw() + self.len)
            }

            /// Length of the range in bytes.
            #[inline]
            pub const fn len(&self) -> u64 {
                self.len
            }

            /// Whether the range is empty.
            #[inline]
            pub const fn is_empty(&self) -> bool {
                self.len == 0
            }

            /// Whether `addr` lies inside the range.
            #[inline]
            pub const fn contains(&self, addr: $addr) -> bool {
                addr.raw() >= self.start.raw() && addr.raw() < self.start.raw() + self.len
            }

            /// Whether `other` overlaps this range anywhere.
            #[inline]
            pub const fn overlaps(&self, other: &Self) -> bool {
                self.start.raw() < other.start.raw() + other.len
                    && other.start.raw() < self.start.raw() + self.len
            }

            /// Byte offset of `addr` from the start of the range.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if `addr` is below the range start.
            #[inline]
            pub const fn offset_of(&self, addr: $addr) -> u64 {
                addr.raw() - self.start.raw()
            }

            /// Number of 4 KB pages the range touches.
            #[inline]
            pub const fn page_count(&self) -> u64 {
                if self.len == 0 {
                    0
                } else {
                    (self.end().raw() - 1) / PAGE_SIZE - self.start.raw() / PAGE_SIZE + 1
                }
            }

            /// Iterates over the base addresses of aligned `step`-byte blocks
            /// covering the range.
            pub fn blocks(&self, step: u64) -> impl Iterator<Item = $addr> + '_ {
                let first = self.start.align_down(step).raw();
                let end = self.end().raw();
                (first..end).step_by(step as usize).map($addr::new)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "[{:?}..{:?})", self.start, self.end())
            }
        }
    };
}

range_newtype!(
    /// A half-open range of virtual addresses.
    VRange,
    VAddr
);

range_newtype!(
    /// A half-open range of bus ("physical", possibly shadow) addresses.
    PRange,
    PAddr
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_offsets() {
        let r = VRange::new(VAddr::new(0x1000), 0x100);
        assert!(r.contains(VAddr::new(0x1000)));
        assert!(r.contains(VAddr::new(0x10ff)));
        assert!(!r.contains(VAddr::new(0x1100)));
        assert_eq!(r.offset_of(VAddr::new(0x1010)), 0x10);
        assert_eq!(r.len(), 0x100);
        assert!(!r.is_empty());
    }

    #[test]
    fn overlap_detection() {
        let a = PRange::new(PAddr::new(0), 100);
        let b = PRange::new(PAddr::new(99), 10);
        let c = PRange::new(PAddr::new(100), 10);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&a));
    }

    #[test]
    fn page_count_spans_partial_pages() {
        let r = VRange::new(VAddr::new(0xff0), 0x20);
        assert_eq!(r.page_count(), 2);
        let one = VRange::new(VAddr::new(0), 1);
        assert_eq!(one.page_count(), 1);
        let empty = VRange::new(VAddr::new(0), 0);
        assert_eq!(empty.page_count(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn block_iteration_is_aligned_and_covering() {
        let r = PRange::new(PAddr::new(40), 100);
        let blocks: Vec<_> = r.blocks(32).collect();
        assert_eq!(
            blocks,
            vec![
                PAddr::new(32),
                PAddr::new(64),
                PAddr::new(96),
                PAddr::new(128)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflow_rejected() {
        let _ = VRange::new(VAddr::new(u64::MAX), 2);
    }
}
