//! Metric registry and the [`Observe`] trait.
//!
//! Components do not push metrics continuously; instead each implements
//! [`Observe`] and, when asked, writes its current counters and histograms
//! into a [`MetricsRegistry`] under self-prefixed names (`"l1.loads"`,
//! `"mc.pgtbl.walks"`, ...). Registries are cheap value types: snapshot an
//! epoch boundary by cloning, and compute per-epoch activity with
//! [`MetricsRegistry::delta_since`].

use std::collections::BTreeMap;

use crate::histogram::Histogram;

/// A single registered metric value.
///
/// Histograms dominate the size, but registries hold at most a few dozen
/// entries and live off the simulated fast path, so indirection would
/// buy nothing.
#[derive(Clone, Debug, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum MetricValue {
    /// A monotonically increasing count (events, cycles, bytes).
    Counter(u64),
    /// A point-in-time floating measurement (ratios, rates).
    Gauge(f64),
    /// A latency distribution.
    Histogram(Histogram),
}

/// An ordered map of metric name to value.
///
/// Names use dotted prefixes to namespace the owning component. Ordering is
/// lexicographic (a `BTreeMap`) so exports are deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, MetricValue>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or overwrites) a counter.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.metrics
            .insert(name.to_string(), MetricValue::Counter(value));
    }

    /// Registers (or overwrites) a gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.metrics
            .insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Registers (or overwrites) a histogram by cloning it.
    pub fn histogram(&mut self, name: &str, h: &Histogram) {
        self.metrics
            .insert(name.to_string(), MetricValue::Histogram(h.clone()));
    }

    /// Looks up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// Convenience: the value of a counter, or `None` if absent or not a
    /// counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: a registered histogram, or `None` if absent or not a
    /// histogram.
    pub fn histogram_value(&self, name: &str) -> Option<&Histogram> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Iterates metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True if no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Asks a component to record itself into this registry.
    pub fn observe<O: Observe + ?Sized>(&mut self, component: &O) {
        component.observe(self);
    }

    /// Copies every metric of `other` into this registry under
    /// `"{prefix}.{name}"` — how composites distinguish two instances of
    /// the same component (e.g. `l1.cache.loads` vs `l2.cache.loads`).
    pub fn absorb(&mut self, prefix: &str, other: &MetricsRegistry) {
        for (name, v) in other.iter() {
            self.metrics.insert(format!("{prefix}.{name}"), v.clone());
        }
    }

    /// A copy of the registry, marking an epoch boundary.
    pub fn snapshot(&self) -> MetricsRegistry {
        self.clone()
    }

    /// Activity since `earlier`: counters and histograms subtract
    /// (saturating), gauges keep their current value, and metrics absent
    /// from `earlier` pass through unchanged.
    pub fn delta_since(&self, earlier: &MetricsRegistry) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        for (name, v) in &self.metrics {
            let dv = match (v, earlier.metrics.get(name)) {
                (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                    MetricValue::Counter(now.saturating_sub(*then))
                }
                (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                    MetricValue::Histogram(now.delta_since(then))
                }
                _ => v.clone(),
            };
            out.metrics.insert(name.clone(), dv);
        }
        out
    }
}

/// Implemented by every component that exports metrics.
///
/// Implementations write their state under a stable, self-prefixed
/// namespace and must not clear or reset anything: observation is read-only
/// with respect to the component.
pub trait Observe {
    /// Writes this component's current metrics into `m`.
    fn observe(&self, m: &mut MetricsRegistry);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        hits: u64,
    }

    impl Observe for Fake {
        fn observe(&self, m: &mut MetricsRegistry) {
            m.counter("fake.hits", self.hits);
            m.gauge("fake.ratio", 0.5);
        }
    }

    #[test]
    fn observe_writes_prefixed_metrics() {
        let mut reg = MetricsRegistry::new();
        reg.observe(&Fake { hits: 42 });
        assert_eq!(reg.counter_value("fake.hits"), Some(42));
        assert!(matches!(
            reg.get("fake.ratio"),
            Some(MetricValue::Gauge(g)) if *g == 0.5
        ));
    }

    #[test]
    fn delta_subtracts_counters_and_histograms() {
        let mut h1 = Histogram::new();
        h1.record(4);
        let mut reg1 = MetricsRegistry::new();
        reg1.counter("c", 10);
        reg1.histogram("h", &h1);
        let snap = reg1.snapshot();

        let mut h2 = h1.clone();
        h2.record(8);
        h2.record(8);
        let mut reg2 = MetricsRegistry::new();
        reg2.counter("c", 25);
        reg2.histogram("h", &h2);
        reg2.counter("new", 3);

        let d = reg2.delta_since(&snap);
        assert_eq!(d.counter_value("c"), Some(15));
        assert_eq!(d.histogram_value("h").unwrap().count(), 2);
        assert_eq!(d.counter_value("new"), Some(3));
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut reg = MetricsRegistry::new();
        reg.counter("z.last", 1);
        reg.counter("a.first", 1);
        reg.counter("m.mid", 1);
        let names: Vec<&str> = reg.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a.first", "m.mid", "z.last"]);
    }
}
