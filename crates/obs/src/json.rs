//! A minimal, dependency-free JSON value type with a writer and parser.
//!
//! The workspace deliberately carries no external crates, so the report and
//! trace exporters build JSON through this module instead of serde. The
//! writer emits compact JSON via [`std::fmt::Display`] (pretty-printed with
//! the alternate flag, `{:#}`); the parser is a small recursive-descent
//! implementation used by tests to prove exported documents are valid and
//! by tools that want to read reports back.
//!
//! Unsigned integers get their own variant so cycle counters round-trip
//! exactly instead of passing through an `f64`.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer, printed without a decimal point.
    UInt(u64),
    /// Any other number. Non-finite values are written as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object; panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Object field lookup; `None` for absent fields or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, or `None` if not an array.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The integer value, accepting both `UInt` and whole `Float`s.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The string value, or `None` if not a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, or `None` if not a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses a JSON document, requiring it to be fully consumed.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn write_indent(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    f.write_str("\n")?;
    for _ in 0..depth {
        f.write_str("  ")?;
    }
    Ok(())
}

fn write_value(f: &mut fmt::Formatter<'_>, v: &Json, pretty: bool, depth: usize) -> fmt::Result {
    match v {
        Json::Null => f.write_str("null"),
        Json::Bool(b) => write!(f, "{b}"),
        Json::UInt(n) => write!(f, "{n}"),
        Json::Float(x) if x.is_finite() => {
            if x.fract() == 0.0 && x.abs() < 1e15 {
                write!(f, "{:.1}", x)
            } else {
                write!(f, "{x}")
            }
        }
        Json::Float(_) => f.write_str("null"),
        Json::Str(s) => write_escaped(f, s),
        Json::Arr(items) => {
            f.write_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                if pretty {
                    write_indent(f, depth + 1)?;
                }
                write_value(f, item, pretty, depth + 1)?;
            }
            if pretty && !items.is_empty() {
                write_indent(f, depth)?;
            }
            f.write_str("]")
        }
        Json::Obj(fields) => {
            f.write_str("{")?;
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                if pretty {
                    write_indent(f, depth + 1)?;
                }
                write_escaped(f, k)?;
                f.write_str(if pretty { ": " } else { ":" })?;
                write_value(f, item, pretty, depth + 1)?;
            }
            if pretty && !fields.is_empty() {
                write_indent(f, depth)?;
            }
            f.write_str("}")
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, self, f.alternate(), 0)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // continuation bytes are well-formed).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0b1100_0000 == 0b1000_0000) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid utf-8".to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_round_trips_through_parser() {
        let mut doc = Json::obj();
        doc.set("name", Json::Str("demo \"quoted\"\n".to_string()));
        doc.set("cycles", Json::UInt(u64::MAX));
        doc.set("ratio", Json::Float(0.25));
        doc.set("ok", Json::Bool(true));
        doc.set("none", Json::Null);
        doc.set(
            "list",
            Json::Arr(vec![Json::UInt(1), Json::UInt(2), Json::UInt(3)]),
        );
        let compact = doc.to_string();
        let pretty = format!("{doc:#}");
        assert_eq!(Json::parse(&compact).unwrap(), doc);
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn u64_counters_round_trip_exactly() {
        let v = Json::UInt(9_007_199_254_740_993); // 2^53 + 1, not f64-exact
        let parsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(parsed.as_u64(), Some(9_007_199_254_740_993));
    }

    #[test]
    fn parser_accepts_standard_documents() {
        let doc = Json::parse(r#"{"a": [1, -2.5, 1e3, "xAy"], "b": {"nested": null}, "c": false}"#)
            .unwrap();
        assert_eq!(
            doc.get("a").unwrap().items().unwrap()[3].as_str(),
            Some("xAy")
        );
        assert_eq!(doc.get("b").unwrap().get("nested"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn non_finite_floats_degrade_to_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn duplicate_keys_are_preserved_and_get_returns_the_first() {
        let doc = Json::parse(r#"{"k": 1, "k": 2, "other": 3}"#).unwrap();
        let fields = match &doc {
            Json::Obj(fields) => fields,
            other => panic!("expected object, got {other:?}"),
        };
        assert_eq!(fields.len(), 3, "duplicates must not be collapsed");
        assert_eq!(fields[0], ("k".to_string(), Json::UInt(1)));
        assert_eq!(fields[1], ("k".to_string(), Json::UInt(2)));
        assert_eq!(doc.get("k"), Some(&Json::UInt(1)));
        // Writing back emits both occurrences unchanged.
        assert_eq!(doc.to_string(), r#"{"k":1,"k":2,"other":3}"#);
    }

    #[test]
    fn empty_containers_round_trip() {
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(Vec::new()));
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(Vec::new()));
        assert_eq!(Json::parse(" [ ] ").unwrap(), Json::Arr(Vec::new()));
        assert_eq!(Json::Obj(Vec::new()).to_string(), "{}");
        assert_eq!(Json::Arr(Vec::new()).to_string(), "[]");
        // Pretty-printing empty containers must still parse.
        let pretty = format!("{:#}", Json::parse(r#"{"a": [], "b": {}}"#).unwrap());
        assert_eq!(
            Json::parse(&pretty).unwrap(),
            Json::parse(r#"{"a":[],"b":{}}"#).unwrap()
        );
    }

    #[test]
    fn nested_escapes_survive_a_full_round_trip() {
        // A value that is itself a JSON document in a string, so every
        // quote and backslash is escaped one level deeper.
        let inner = r#"{"msg": "line1\nline2 \"q\" \\ /"}"#;
        let mut doc = Json::obj();
        doc.set("payload", Json::Str(inner.to_string()));
        let text = doc.to_string();
        let outer = Json::parse(&text).unwrap();
        let payload = outer.get("payload").and_then(Json::as_str).unwrap();
        assert_eq!(payload, inner);
        // The recovered string parses again as the original nested doc.
        let nested = Json::parse(payload).unwrap();
        assert_eq!(
            nested.get("msg").and_then(Json::as_str),
            Some("line1\nline2 \"q\" \\ /")
        );
    }

    #[test]
    fn unicode_escapes_decode_and_bad_ones_degrade() {
        let doc = Json::parse(r#"{"s": "aAé\t"}"#).unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("aA\u{e9}\t"));
        // An unpaired surrogate is not a valid scalar; the parser maps it
        // to U+FFFD rather than failing the whole document.
        let doc = Json::parse(r#"{"s": "\ud800"}"#).unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("\u{fffd}"));
        // Truncated escape sequences are a parse error, not a panic.
        assert!(Json::parse(r#"{"s": "\u00"}"#).is_err());
        assert!(Json::parse(r#"{"s": "\q"}"#).is_err());
    }

    #[test]
    fn control_characters_in_strings_are_escaped_on_write() {
        let s = Json::Str("\u{1}\u{1f} ok".to_string());
        let text = s.to_string();
        assert!(
            !text.bytes().any(|b| b < 0x20),
            "raw control bytes leaked into output: {text:?}"
        );
        assert_eq!(Json::parse(&text).unwrap(), s);
    }
}
