//! Host self-profiler: scoped wall-clock spans over simulator components.
//!
//! The simulated-cycle model tells us where *simulated* time goes; this
//! module answers the other question — where does *host* time go while
//! the simulator runs? Components wrap their hot entry points in
//! [`span`] guards; when profiling is enabled on the current thread the
//! guard measures its own lifetime and folds it into a per-label
//! aggregate (count, total, max). [`take`] drains the aggregates, sorted
//! by label, ready for a report.
//!
//! Two design constraints shape the implementation:
//!
//! * **Zero cost when disabled.** Span sites sit inside the memory
//!   controller's per-access path, so the disabled case must be one
//!   relaxed atomic load and no clock read. A global counter of
//!   profiling threads gates `Instant::now`; when it is zero every guard
//!   is inert.
//! * **No cross-thread interference.** Bench binaries fan experiments
//!   over worker threads. Aggregates are thread-local and
//!   [`enable`]/[`take`] act on the calling thread only, so a job can
//!   profile itself without locking against its siblings.
//!
//! Spans are *inclusive*: a `mc.gather` span covers the `dram.access`
//! spans nested inside it, so totals across labels can exceed wall time.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Number of threads currently profiling. Guards check this (relaxed)
/// before touching the clock or the thread-local table.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

#[derive(Clone, Copy, Default)]
struct Agg {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

thread_local! {
    /// `Some` while the current thread is profiling.
    static SPANS: RefCell<Option<HashMap<&'static str, Agg>>> = const { RefCell::new(None) };
}

/// Aggregated timings for one span label, as drained by [`take`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanTotals {
    /// The label passed to [`span`], e.g. `"mc.translate"`.
    pub label: &'static str,
    /// How many spans with this label completed.
    pub count: u64,
    /// Total nanoseconds across all of them (inclusive of nested spans).
    pub total_ns: u64,
    /// The single longest span, in nanoseconds.
    pub max_ns: u64,
}

/// Starts profiling on the calling thread. Idempotent: enabling an
/// already-profiling thread keeps its accumulated spans.
pub fn enable() {
    SPANS.with(|s| {
        let mut slot = s.borrow_mut();
        if slot.is_none() {
            *slot = Some(HashMap::new());
            ACTIVE.fetch_add(1, Ordering::SeqCst);
        }
    });
}

/// Whether the calling thread is currently profiling.
pub fn enabled() -> bool {
    SPANS.with(|s| s.borrow().is_some())
}

/// Stops profiling on the calling thread and returns the aggregates,
/// sorted by label. Returns an empty vector if profiling was never
/// enabled here.
pub fn take() -> Vec<SpanTotals> {
    let drained = SPANS.with(|s| s.borrow_mut().take());
    match drained {
        None => Vec::new(),
        Some(map) => {
            ACTIVE.fetch_sub(1, Ordering::SeqCst);
            let mut out: Vec<SpanTotals> = map
                .into_iter()
                .map(|(label, a)| SpanTotals {
                    label,
                    count: a.count,
                    total_ns: a.total_ns,
                    max_ns: a.max_ns,
                })
                .collect();
            out.sort_by_key(|t| t.label);
            out
        }
    }
}

/// A scoped timer guard returned by [`span`]. Measures from creation to
/// drop; inert (no clock reads) when no thread is profiling.
#[must_use = "a span measures its own lifetime; binding it to _ drops it immediately"]
pub struct Span {
    label: &'static str,
    start: Option<Instant>,
}

/// Opens a span named `label` on the current thread.
///
/// The label must be a string literal (or otherwise `'static`) so
/// aggregation is allocation-free. When no thread has profiling enabled
/// this is a single relaxed atomic load.
///
/// # Examples
///
/// ```
/// use impulse_obs::prof;
///
/// prof::enable();
/// {
///     let _work = prof::span("demo.work");
///     std::hint::black_box(1 + 1);
/// }
/// let totals = prof::take();
/// assert_eq!(totals.len(), 1);
/// assert_eq!(totals[0].label, "demo.work");
/// assert_eq!(totals[0].count, 1);
/// ```
#[inline]
pub fn span(label: &'static str) -> Span {
    let start = if ACTIVE.load(Ordering::Relaxed) == 0 {
        None
    } else {
        Some(Instant::now())
    };
    Span { label, start }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            SPANS.with(|s| {
                if let Some(map) = s.borrow_mut().as_mut() {
                    let a = map.entry(self.label).or_default();
                    a.count += 1;
                    a.total_ns = a.total_ns.saturating_add(ns);
                    a.max_ns = a.max_ns.max(ns);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        {
            let _s = span("test.prof.disabled");
        }
        assert!(!enabled());
        assert!(take().is_empty());
    }

    #[test]
    fn spans_aggregate_per_label_and_sort() {
        enable();
        assert!(enabled());
        for _ in 0..3 {
            let _s = span("test.prof.b");
        }
        {
            let _s = span("test.prof.a");
        }
        let totals = take();
        assert!(!enabled());
        let labels: Vec<&str> = totals.iter().map(|t| t.label).collect();
        assert_eq!(labels, vec!["test.prof.a", "test.prof.b"]);
        assert_eq!(totals[1].count, 3);
        assert!(totals[1].max_ns <= totals[1].total_ns);
        // A second take without enable is empty.
        assert!(take().is_empty());
    }

    #[test]
    fn nested_spans_both_count() {
        enable();
        {
            let _outer = span("test.prof.outer");
            let _inner = span("test.prof.inner");
        }
        let totals = take();
        assert_eq!(totals.len(), 2);
        assert!(totals.iter().all(|t| t.count == 1));
    }

    #[test]
    fn enable_is_idempotent() {
        enable();
        {
            let _s = span("test.prof.idem");
        }
        enable(); // must not wipe the span above or double-count ACTIVE
        let totals = take();
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].count, 1);
        assert!(take().is_empty());
    }

    #[test]
    fn other_threads_do_not_see_this_threads_spans() {
        enable();
        let handle = std::thread::spawn(|| {
            {
                // ACTIVE is non-zero (main thread), so the clock runs,
                // but this thread never enabled, so nothing lands.
                let _s = span("test.prof.cross");
            }
            take()
        });
        let theirs = handle.join().expect("thread");
        assert!(theirs.is_empty());
        {
            let _s = span("test.prof.mine");
        }
        let mine = take();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].label, "test.prof.mine");
    }
}
