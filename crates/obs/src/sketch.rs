//! Deterministic hotness telemetry over line addresses.
//!
//! The Impulse papers' follow-on work (DReAM-style row re-arrangement)
//! needs the memory controller to know *which lines are hot right now*
//! without keeping a counter per line. [`HotSketch`] provides that: a
//! count-min sketch (a counting-Bloom variant that returns the minimum
//! over `depth` hashed counter rows, so estimates only ever over-count)
//! combined with a small exact-candidate table that tracks the current
//! top-K lines, and an epoch decay that halves every counter after a
//! fixed number of observations so stale hotness ages out.
//!
//! Everything here is deterministic: the hash seeds are compile-time
//! constants, decay happens on exact observation counts, and
//! [`HotSketch::top`] breaks ties by line address. Two runs that feed the
//! sketch the same access stream report byte-identical hot sets, which is
//! what lets the `trace` bench binary promise identical output at any
//! `jobs=N`.

use std::collections::HashMap;

/// Configuration for a [`HotSketch`].
///
/// `Copy + Eq` so it can live inside the controller configuration (whose
/// fingerprint relies on `Eq`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SketchConfig {
    /// log₂ of the width (counters per row). Each row holds
    /// `1 << width_log2` counters; 12 (4096 counters/row) keeps the
    /// whole sketch under 256 KiB at the default depth.
    pub width_log2: u32,
    /// Number of independent hashed rows. The estimate for a line is the
    /// minimum over its counter in each row, so more rows mean fewer
    /// collisions inflating the estimate.
    pub depth: usize,
    /// Capacity of the exact top-K candidate table. Must be at least the
    /// `k` later asked of [`HotSketch::top`].
    pub candidates: usize,
    /// Observations per epoch; every counter is halved when an epoch
    /// ends. `0` disables decay entirely (useful for whole-run exact
    /// comparisons).
    pub epoch_ops: u64,
}

impl Default for SketchConfig {
    fn default() -> Self {
        Self {
            width_log2: 12,
            depth: 4,
            candidates: 256,
            epoch_ops: 1 << 20,
        }
    }
}

/// One entry of the hot set reported by [`HotSketch::top`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotLine {
    /// The line address (as observed, i.e. already line-aligned by the
    /// caller).
    pub line: u64,
    /// The sketch's estimate of how many times it was observed (an upper
    /// bound on the true count; halved by each epoch decay).
    pub estimate: u64,
}

/// splitmix64 finalizer: a cheap, well-distributed 64→64-bit mix.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-row seeds (arbitrary odd constants; one per supported row).
const ROW_SEEDS: [u64; 8] = [
    0x9e37_79b9_7f4a_7c15,
    0xc2b2_ae3d_27d4_eb4f,
    0x1656_67b1_9e37_79f9,
    0x27d4_eb2f_1656_67c5,
    0x85eb_ca6b_c2b2_ae35,
    0xff51_afd7_ed55_8ccd,
    0xc4ce_b9fe_1a85_ec53,
    0x2545_f491_4f6c_dd1d,
];

/// A deterministic count-min sketch with an exact candidate table and
/// epoch decay. See the module docs for the design rationale.
///
/// # Examples
///
/// ```
/// use impulse_obs::{HotSketch, SketchConfig};
///
/// let mut s = HotSketch::new(SketchConfig::default());
/// for _ in 0..100 {
///     s.observe(0x1000);
/// }
/// s.observe(0x2000);
/// let top = s.top(2);
/// assert_eq!(top[0].line, 0x1000);
/// assert!(top[0].estimate >= 100);
/// ```
#[derive(Clone, Debug)]
pub struct HotSketch {
    cfg: SketchConfig,
    /// `depth` rows of `1 << width_log2` counters, flattened.
    rows: Vec<u64>,
    /// Exact top-K candidates: line → estimate at last touch.
    cands: HashMap<u64, u64>,
    /// Lower bound on the smallest candidate estimate; lets `observe`
    /// skip the O(candidates) eviction scan for cold lines.
    floor: u64,
    observed: u64,
    decays: u64,
}

impl HotSketch {
    /// Creates an empty sketch.
    ///
    /// # Panics
    ///
    /// Panics if `width_log2` is outside `1..=24`, `depth` is outside
    /// `1..=8`, or `candidates` is zero.
    pub fn new(cfg: SketchConfig) -> Self {
        assert!(
            (1..=24).contains(&cfg.width_log2),
            "sketch width_log2 must be in 1..=24"
        );
        assert!(
            (1..=ROW_SEEDS.len()).contains(&cfg.depth),
            "sketch depth must be in 1..=8"
        );
        assert!(
            cfg.candidates > 0,
            "sketch candidate table must be non-empty"
        );
        Self {
            cfg,
            rows: vec![0; cfg.depth << cfg.width_log2],
            cands: HashMap::with_capacity(cfg.candidates + 1),
            floor: 0,
            observed: 0,
            decays: 0,
        }
    }

    /// The configuration the sketch was built with.
    pub fn config(&self) -> SketchConfig {
        self.cfg
    }

    #[inline]
    fn slot(&self, row: usize, line: u64) -> usize {
        let h = mix(line ^ ROW_SEEDS[row]);
        (row << self.cfg.width_log2) | (h >> (64 - self.cfg.width_log2)) as usize
    }

    /// Records one observation of `line` and returns the updated
    /// estimate. Triggers an epoch decay when `epoch_ops` is non-zero
    /// and the observation count reaches a multiple of it.
    pub fn observe(&mut self, line: u64) -> u64 {
        self.observed += 1;
        let mut est = u64::MAX;
        for row in 0..self.cfg.depth {
            let slot = self.slot(row, line);
            self.rows[slot] += 1;
            est = est.min(self.rows[slot]);
        }
        self.track(line, est);
        if self.cfg.epoch_ops > 0 && self.observed.is_multiple_of(self.cfg.epoch_ops) {
            self.decay();
        }
        est
    }

    /// Maintains the exact candidate table after `line` was observed.
    fn track(&mut self, line: u64, est: u64) {
        if let Some(e) = self.cands.get_mut(&line) {
            *e = est;
            return;
        }
        if self.cands.len() < self.cfg.candidates {
            self.cands.insert(line, est);
            self.floor = 0;
            return;
        }
        if est <= self.floor {
            return;
        }
        // Full table and a contender: find the true minimum. Ties break
        // on the line address so the scan is order-independent even
        // though HashMap iteration is not.
        let (victim, victim_est) = self
            .cands
            .iter()
            .map(|(&l, &e)| (l, e))
            .min_by_key(|&(l, e)| (e, l))
            .unwrap_or((line, est));
        if est > victim_est {
            self.cands.remove(&victim);
            self.cands.insert(line, est);
        }
        self.floor = victim_est;
    }

    /// Halves every counter and candidate estimate. Called automatically
    /// at epoch boundaries.
    fn decay(&mut self) {
        for c in &mut self.rows {
            *c >>= 1;
        }
        for e in self.cands.values_mut() {
            *e >>= 1;
        }
        self.floor >>= 1;
        self.decays += 1;
    }

    /// The sketch's estimate of how many times `line` was observed.
    /// Never under-counts (relative to the decayed truth); collisions
    /// can make it over-count.
    pub fn estimate(&self, line: u64) -> u64 {
        let mut est = u64::MAX;
        for row in 0..self.cfg.depth {
            est = est.min(self.rows[self.slot(row, line)]);
        }
        est
    }

    /// The current hottest lines, at most `k`, ordered by estimate
    /// descending and line address ascending on ties. Estimates are
    /// freshly recomputed from the counter rows so candidates that grew
    /// via collisions since their last touch still sort correctly.
    pub fn top(&self, k: usize) -> Vec<HotLine> {
        let mut out: Vec<HotLine> = self
            .cands
            .keys()
            .map(|&line| HotLine {
                line,
                estimate: self.estimate(line),
            })
            .collect();
        out.sort_by(|a, b| b.estimate.cmp(&a.estimate).then(a.line.cmp(&b.line)));
        out.truncate(k);
        out
    }

    /// Total observations fed to the sketch.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Number of epoch decays applied so far.
    pub fn decays(&self) -> u64 {
        self.decays
    }

    /// Number of lines currently in the candidate table.
    pub fn candidates_len(&self) -> usize {
        self.cands.len()
    }

    /// Resets all counters and candidates (configuration is kept).
    pub fn clear(&mut self) {
        self.rows.fill(0);
        self.cands.clear();
        self.floor = 0;
        self.observed = 0;
        self.decays = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_decay() -> SketchConfig {
        SketchConfig {
            epoch_ops: 0,
            ..SketchConfig::default()
        }
    }

    #[test]
    fn estimates_never_undercount() {
        let mut s = HotSketch::new(no_decay());
        let mut exact: HashMap<u64, u64> = HashMap::new();
        // A deterministic skewed stream: line i touched 97 - i times.
        for i in 0..96u64 {
            for _ in 0..(97 - i) {
                s.observe(i * 64);
                *exact.entry(i * 64).or_insert(0) += 1;
            }
        }
        for (&line, &count) in &exact {
            assert!(
                s.estimate(line) >= count,
                "estimate for {line:#x} under-counted"
            );
        }
        assert_eq!(s.observed(), exact.values().sum::<u64>());
    }

    #[test]
    fn top_ranks_the_heavy_hitter_first() {
        let mut s = HotSketch::new(no_decay());
        for i in 0..1000u64 {
            s.observe((i % 50) * 64); // uniform background
        }
        for _ in 0..500 {
            s.observe(0x8000); // one heavy line
        }
        let top = s.top(4);
        assert_eq!(top[0].line, 0x8000);
        assert!(top[0].estimate >= 500);
    }

    #[test]
    fn candidate_table_is_bounded_and_keeps_hot_lines() {
        let cfg = SketchConfig {
            candidates: 8,
            epoch_ops: 0,
            ..SketchConfig::default()
        };
        let mut s = HotSketch::new(cfg);
        // 64 distinct lines; line i observed i+1 times, so the hottest
        // eight are lines 56..=63.
        for i in 0..64u64 {
            for _ in 0..=i {
                s.observe(i * 128);
            }
        }
        assert!(s.candidates_len() <= 8);
        let top: Vec<u64> = s.top(8).iter().map(|h| h.line).collect();
        for hot in 56..64u64 {
            assert!(top.contains(&(hot * 128)), "line {hot} missing from top");
        }
    }

    #[test]
    fn epoch_decay_halves_counters() {
        let cfg = SketchConfig {
            epoch_ops: 100,
            ..SketchConfig::default()
        };
        let mut s = HotSketch::new(cfg);
        for _ in 0..99 {
            s.observe(0x40);
        }
        assert_eq!(s.estimate(0x40), 99);
        assert_eq!(s.decays(), 0);
        s.observe(0x40); // 100th observation ends the epoch
        assert_eq!(s.decays(), 1);
        assert_eq!(s.estimate(0x40), 50);
        assert_eq!(s.top(1)[0].estimate, 50);
    }

    #[test]
    fn epoch_zero_never_decays() {
        let mut s = HotSketch::new(no_decay());
        for _ in 0..10_000 {
            s.observe(0);
        }
        assert_eq!(s.decays(), 0);
        assert_eq!(s.estimate(0), 10_000);
    }

    #[test]
    fn identical_streams_produce_identical_tops() {
        let run = || {
            let mut s = HotSketch::new(SketchConfig {
                candidates: 16,
                epoch_ops: 512,
                ..SketchConfig::default()
            });
            for i in 0..5_000u64 {
                s.observe((mix(i) % 300) * 64);
            }
            s.top(16)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = HotSketch::new(no_decay());
        s.observe(64);
        s.clear();
        assert_eq!(s.observed(), 0);
        assert_eq!(s.estimate(64), 0);
        assert!(s.top(4).is_empty());
    }

    #[test]
    #[should_panic(expected = "width_log2")]
    fn zero_width_rejected() {
        let _ = HotSketch::new(SketchConfig {
            width_log2: 0,
            ..SketchConfig::default()
        });
    }
}
