//! Cycle attribution: decomposing demand-access latency into stage costs.
//!
//! Every cycle a demand load or store spends in the memory system is
//! charged to exactly one [`Stage`], so the per-stage totals in an
//! [`Attribution`] sum to the memory system's total demand-access cycles.
//! This is the invariant the `run_all` report checks: `attr.total() ==
//! mem.load_cycles + mem.store_cycles`.
//!
//! Background traffic — writebacks, L1 prefetches, stream-buffer fetch-
//! ahead, controller prefetches — is deliberately *not* attributed: those
//! cycles do not stall the CPU and would double-count bus and DRAM time.

/// A pipeline stage a demand access can spend cycles in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// CPU-side MMU: TLB-miss page-walk penalty.
    Mmu,
    /// L1 cache hit service time.
    L1,
    /// L2 cache lookup/hit service time.
    L2,
    /// Stream-buffer (L1 prefetch FIFO) hit service time.
    Stream,
    /// System bus: request transmission plus critical-word transfer.
    Bus,
    /// Memory-controller front end: fixed overhead plus prefetch-SRAM access.
    McFrontEnd,
    /// Controller page table: shadow-address translation (MC TLB + walks).
    PgTbl,
    /// DRAM array access: bank wait, row activation, data transfer.
    Dram,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 8] = [
        Stage::Mmu,
        Stage::L1,
        Stage::L2,
        Stage::Stream,
        Stage::Bus,
        Stage::McFrontEnd,
        Stage::PgTbl,
        Stage::Dram,
    ];

    /// Stable lowercase name, used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Mmu => "mmu",
            Stage::L1 => "l1",
            Stage::L2 => "l2",
            Stage::Stream => "stream",
            Stage::Bus => "bus",
            Stage::McFrontEnd => "mc_frontend",
            Stage::PgTbl => "pgtbl",
            Stage::Dram => "dram",
        }
    }
}

/// Per-stage cycle totals for demand accesses in one epoch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Attribution {
    cycles: [u64; 8],
}

impl Attribution {
    /// Creates an all-zero attribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `cycles` to `stage`.
    pub fn charge(&mut self, stage: Stage, cycles: u64) {
        self.cycles[stage as usize] += cycles;
    }

    /// Cycles charged to `stage`.
    pub fn get(&self, stage: Stage) -> u64 {
        self.cycles[stage as usize]
    }

    /// Sum over all stages.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// `(stage, cycles)` pairs in pipeline order, including zero entries.
    pub fn entries(&self) -> impl Iterator<Item = (Stage, u64)> + '_ {
        Stage::ALL.iter().map(move |&s| (s, self.get(s)))
    }

    /// Fraction of the total charged to `stage`, or 0.0 if the total is 0.
    pub fn share(&self, stage: Stage) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(stage) as f64 / total as f64
        }
    }

    /// Cycles accumulated since `earlier` (an older snapshot).
    pub fn delta_since(&self, earlier: &Attribution) -> Attribution {
        let mut d = Attribution::new();
        for i in 0..self.cycles.len() {
            d.cycles[i] = self.cycles[i].saturating_sub(earlier.cycles[i]);
        }
        d
    }

    /// Adds another attribution into this one.
    pub fn merge(&mut self, other: &Attribution) {
        for (c, o) in self.cycles.iter_mut().zip(other.cycles.iter()) {
            *c += o;
        }
    }

    /// Resets all stages to zero.
    pub fn reset(&mut self) {
        self.cycles = [0; 8];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_and_total() {
        let mut a = Attribution::new();
        a.charge(Stage::L1, 10);
        a.charge(Stage::Dram, 90);
        a.charge(Stage::L1, 5);
        assert_eq!(a.get(Stage::L1), 15);
        assert_eq!(a.get(Stage::Dram), 90);
        assert_eq!(a.get(Stage::Bus), 0);
        assert_eq!(a.total(), 105);
    }

    #[test]
    fn share_is_zero_guarded() {
        let a = Attribution::new();
        assert_eq!(a.share(Stage::Dram), 0.0);
        let mut b = Attribution::new();
        b.charge(Stage::Bus, 25);
        b.charge(Stage::Dram, 75);
        assert!((b.share(Stage::Dram) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn delta_isolates_epoch() {
        let mut a = Attribution::new();
        a.charge(Stage::L2, 7);
        let snap = a.clone();
        a.charge(Stage::L2, 3);
        a.charge(Stage::Mmu, 2);
        let d = a.delta_since(&snap);
        assert_eq!(d.get(Stage::L2), 3);
        assert_eq!(d.get(Stage::Mmu), 2);
        assert_eq!(d.total(), 5);
    }

    #[test]
    fn stage_names_are_unique() {
        let names: std::collections::BTreeSet<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), Stage::ALL.len());
    }
}
