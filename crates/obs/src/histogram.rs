//! Log₂-bucketed latency histograms.
//!
//! A [`Histogram`] records `u64` samples (cycles, in this workspace) into 65
//! power-of-two buckets: bucket 0 holds the value 0, bucket `i` (for
//! `i >= 1`) holds values in `[2^(i-1), 2^i - 1]`. This gives a fixed-size,
//! allocation-free structure whose quantile error is bounded by 2× — plenty
//! for latency distributions that span from a 1-cycle L1 hit to a
//! multi-hundred-cycle DRAM row miss.
//!
//! Quantiles are reported as the upper bound of the bucket containing the
//! requested rank, clamped to the observed maximum, so `p50 <= p90 <= p99
//! <= max` always holds and exact values are reported exactly whenever all
//! samples in the target bucket were equal.

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const BUCKETS: usize = 65;

/// A fixed-size log₂ histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a sample: 0 for 0, otherwise `64 - leading_zeros`.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (the largest sample it can hold).
fn bucket_top(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records `n` samples of the same value in one step — the batch
    /// entry point replay-style evaluators use to fold a run of constant
    /// latencies. State is exactly what `n` calls to [`record`] would
    /// leave (falls back to the loop if the bulk sum would saturate).
    ///
    /// [`record`]: Histogram::record
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        match v.checked_mul(n).and_then(|vn| self.sum.checked_add(vn)) {
            Some(sum) => {
                self.buckets[bucket_of(v)] += n;
                self.count += n;
                self.sum = sum;
                self.min = self.min.min(v);
                self.max = self.max.max(v);
            }
            None => {
                for _ in 0..n {
                    self.record(v);
                }
            }
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate for `q` in `[0, 1]`: the upper bound of the bucket
    /// containing the sample of that rank, clamped to the observed max.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; q = 0 maps to the first sample.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_top(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median estimate (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Samples recorded since `earlier` (an older snapshot of this same
    /// histogram). min/max of the delta are approximated by the current
    /// min/max, since buckets alone cannot recover exact extrema.
    pub fn delta_since(&self, earlier: &Histogram) -> Histogram {
        let mut d = Histogram::new();
        for i in 0..BUCKETS {
            d.buckets[i] = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        d.count = self.count.saturating_sub(earlier.count);
        d.sum = self.sum.saturating_sub(earlier.sum);
        if d.count > 0 {
            d.min = self.min;
            d.max = self.max;
        }
        d
    }

    /// Dumps the complete internal state as a flat word vector: the 65
    /// bucket counts followed by `count`, `sum`, raw `min`, and `max`.
    /// The inverse is [`Histogram::from_state_words`]; together they let a
    /// caller persist a histogram bit-exactly without this crate knowing
    /// anything about serialization formats.
    pub fn state_words(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(BUCKETS + 4);
        words.extend_from_slice(&self.buckets);
        words.extend_from_slice(&[self.count, self.sum, self.min, self.max]);
        words
    }

    /// Rebuilds a histogram from [`Histogram::state_words`] output.
    /// Returns `None` if `words` has the wrong length.
    pub fn from_state_words(words: &[u64]) -> Option<Self> {
        if words.len() != BUCKETS + 4 {
            return None;
        }
        let mut buckets = [0u64; BUCKETS];
        buckets.copy_from_slice(&words[..BUCKETS]);
        Some(Self {
            buckets,
            count: words[BUCKETS],
            sum: words[BUCKETS + 1],
            min: words[BUCKETS + 2],
            max: words[BUCKETS + 3],
        })
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs, in order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_top(i), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_top(0), 0);
        assert_eq!(bucket_top(1), 1);
        assert_eq!(bucket_top(2), 3);
        assert_eq!(bucket_top(64), u64::MAX);
    }

    #[test]
    fn identical_samples_report_exactly() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(4);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 400);
        assert_eq!(h.min(), 4);
        assert_eq!(h.max(), 4);
        assert_eq!(h.p50(), 4);
        assert_eq!(h.p90(), 4);
        assert_eq!(h.p99(), 4);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 10, 50, 200, 1000, 5000] {
            h.record(v);
        }
        assert!(h.p50() <= h.p90());
        assert!(h.p90() <= h.p99());
        assert!(h.p99() <= h.max());
        assert!(h.p50() >= h.min());
    }

    #[test]
    fn quantile_is_within_2x_of_exact() {
        let mut h = Histogram::new();
        let mut samples: Vec<u64> = (1..=1000u64).collect();
        for &v in &samples {
            h.record(v);
        }
        samples.sort_unstable();
        let exact_p50 = samples[499];
        let est = h.p50();
        assert!(est >= exact_p50, "estimate must not undershoot its rank");
        assert!(est < exact_p50 * 2, "log2 bucket error bound is 2x");
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [3u64, 17, 99] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 256] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn state_words_round_trip_bit_exactly() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 7, 40, 1000, u64::MAX] {
            h.record(v);
        }
        let words = h.state_words();
        assert_eq!(words.len(), BUCKETS + 4);
        let back = Histogram::from_state_words(&words).unwrap();
        assert_eq!(back, h);

        // An empty histogram round-trips too (raw min is the u64::MAX
        // sentinel).
        let empty = Histogram::new();
        assert_eq!(
            Histogram::from_state_words(&empty.state_words()).unwrap(),
            empty
        );

        // Wrong lengths are rejected.
        assert!(Histogram::from_state_words(&words[..BUCKETS]).is_none());
        assert!(Histogram::from_state_words(&[]).is_none());
    }

    #[test]
    fn delta_since_isolates_an_epoch() {
        let mut h = Histogram::new();
        h.record(8);
        h.record(16);
        let snap = h.clone();
        h.record(100);
        h.record(100);
        h.record(100);
        let d = h.delta_since(&snap);
        assert_eq!(d.count(), 3);
        assert_eq!(d.sum(), 300);
        assert_eq!(d.p50(), 100); // bucket top 127, clamped to observed max
    }
}
