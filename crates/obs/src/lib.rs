//! Observability toolkit for the Impulse memory-system simulator.
//!
//! The simulator's components (caches, TLB, bus, memory controller, DRAM)
//! already keep raw event counters; this crate adds the machinery to turn
//! them into an explainable picture of where demand-access time goes:
//!
//! * [`Histogram`] — fixed-size log₂-bucketed latency distributions with
//!   count/sum/min/max and p50/p90/p99 estimates, recorded per memory
//!   level (L1 hit, L2 hit, TLB walk, controller prefetch-SRAM hit,
//!   shadow gather, DRAM row hit/miss) and per access kind.
//! * [`Attribution`] — per-[`Stage`] cycle totals that decompose every
//!   demand access into MMU / cache / bus / controller / DRAM time, with
//!   the invariant that the stage totals sum exactly to the demand-access
//!   cycle count.
//! * [`MetricsRegistry`] and the [`Observe`] trait — a pull-model registry
//!   every component can dump itself into, with epoch snapshot/delta
//!   support.
//! * [`Json`] — a dependency-free JSON value with writer and parser,
//!   backing the report and Chrome-trace exporters.
//! * [`HotSketch`] — a deterministic count-min sketch with epoch decay
//!   for online "which lines are hot" telemetry at the controller.
//! * [`prof`] — a host self-profiler of scoped wall-clock spans over
//!   simulator components, zero-cost when disabled.
//!
//! The crate deliberately depends on nothing, not even other workspace
//! crates, so every layer of the simulator can use it.

#![warn(missing_docs)]

pub mod attribution;
pub mod histogram;
pub mod json;
pub mod prof;
pub mod registry;
pub mod sketch;

pub use attribution::{Attribution, Stage};
pub use histogram::Histogram;
pub use json::Json;
pub use registry::{MetricValue, MetricsRegistry, Observe};
pub use sketch::{HotLine, HotSketch, SketchConfig};
