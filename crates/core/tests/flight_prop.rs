//! Property-style round-trip coverage for the `impulse-trace-v1` codec:
//! randomized access streams (in-tree xorshift, fixed seeds) must survive
//! encode → decode → re-encode bit-exactly, with a stable fnv64 digest,
//! and the chunked cursor must agree with the one-shot decoder.

use impulse_core::flight::{
    decode, digest, seal, unseal, EventCursor, FlightGeom, FlightRecorder, HitClass, TraceError,
};
use impulse_fault::XorShift64;

/// Drives a recorder with a pseudo-random but deterministic stream:
/// mixed-sign cycle deltas, clustered and far-jump addresses, every hit
/// class, sporadic descriptors.
fn random_recorder(seed: u64, capacity: usize, n: u64, geom: FlightGeom) -> FlightRecorder {
    let mut rng = XorShift64::new(seed);
    let mut fr = FlightRecorder::new(capacity, geom);
    let mut cycle: u64 = rng.below(1_000);
    let mut addr: u64 = rng.below(1 << 24);
    for _ in 0..n {
        // Mostly forward in time, occasionally out of order (negative
        // delta after zigzag).
        if rng.permille(900) {
            cycle += rng.below(5_000);
        } else {
            cycle = cycle.saturating_sub(rng.below(200));
        }
        // Mostly near the previous line, sometimes a far jump.
        if rng.permille(800) {
            addr = addr.wrapping_add(rng.below(16) * geom.line_bytes);
        } else {
            addr = rng.below(1 << 32);
        }
        let class = HitClass::from_u8_any(rng.below(8) as u8);
        let desc = rng.permille(250).then(|| rng.below(15) as u8);
        fr.record(cycle, addr, class, desc);
    }
    fr
}

/// `HitClass` helper: the codec only defines 0..=7, so map any draw into
/// range through the public names (no `from_u8` is exported).
trait FromAny {
    fn from_u8_any(v: u8) -> HitClass;
}
impl FromAny for HitClass {
    fn from_u8_any(v: u8) -> HitClass {
        [
            HitClass::DirectDram,
            HitClass::DirectSramHit,
            HitClass::ShadowGather,
            HitClass::ShadowBufHit,
            HitClass::StoreDirect,
            HitClass::StoreShadow,
            HitClass::NackRead,
            HitClass::NackWrite,
        ][(v & 7) as usize]
    }
}

fn geoms() -> Vec<FlightGeom> {
    vec![
        FlightGeom {
            line_bytes: 128,
            banks: 4,
            row_bytes: 2048,
        },
        FlightGeom {
            line_bytes: 32,
            banks: 8,
            row_bytes: 4096,
        },
        FlightGeom {
            line_bytes: 64,
            banks: 1,
            row_bytes: 1024,
        },
    ]
}

#[test]
fn randomized_streams_round_trip_bit_exactly() {
    for (case, geom) in geoms().into_iter().enumerate() {
        for seed in [1u64, 0xDEAD_BEEF, 0x00c9_a15e] {
            for (capacity, n) in [(1024, 0u64), (1024, 1), (1024, 777), (64, 1000), (7, 100)] {
                let fr = random_recorder(seed ^ (case as u64) << 32, capacity, n, geom);
                let bytes = fr.encode();
                let cap = decode(&bytes).unwrap_or_else(|e| {
                    panic!("decode failed (seed={seed:#x} cap={capacity} n={n}): {e}")
                });
                assert_eq!(cap.geom, geom);
                assert_eq!(cap.recorded, n);
                assert_eq!(cap.events, fr.events());
                let reencoded = cap.encode();
                assert_eq!(reencoded, bytes, "re-encode diverged");
                assert_eq!(digest(&reencoded), digest(&bytes), "digest unstable");
                // Decoding the re-encoding is a fixed point.
                assert_eq!(decode(&reencoded).unwrap(), cap);
            }
        }
    }
}

#[test]
fn randomized_streams_survive_sealing_and_chunked_reads() {
    let geom = FlightGeom {
        line_bytes: 128,
        banks: 4,
        row_bytes: 2048,
    };
    let mut rng = XorShift64::new(99);
    for trial in 0..8u64 {
        let fr = random_recorder(trial * 7 + 1, 512, 200 + rng.below(400), geom);
        let bytes = fr.encode();
        let sealed = seal(bytes.clone());
        assert_eq!(unseal(&sealed).unwrap(), &bytes[..]);

        // Random chunk sizes drain the cursor to the same event vector.
        let full = decode(&bytes).unwrap();
        let mut cur = EventCursor::new(&bytes).unwrap();
        let mut events = Vec::new();
        loop {
            let max = 1 + rng.below(97) as usize;
            if cur.next_chunk(&mut events, max).unwrap() == 0 {
                break;
            }
        }
        assert_eq!(events, full.events);

        // A random single-byte corruption of the sealed file is always
        // caught by unseal (digest covers every payload byte).
        let mut corrupt = sealed.clone();
        let i = rng.below(corrupt.len() as u64) as usize;
        corrupt[i] ^= 1 + (rng.below(255) as u8);
        assert!(
            matches!(unseal(&corrupt), Err(TraceError::BadDigest { .. })),
            "corruption at byte {i} slipped through"
        );
    }
}
