//! The hybrid-memory tier engine: DRAM + SCM behind one controller.
//!
//! ROADMAP item 4: a second, slower memory class behind the Impulse
//! controller, run under one of two policies (selected by the
//! `SystemConfig` tier knob):
//!
//! * **Flat** — the visible address space is partitioned: DRAM serves
//!   `[0, dram_capacity)`, SCM serves `[dram_capacity, dram + scm)`.
//!   Placement is the OS's problem; the engine just routes.
//! * **Cache** — the visible space is the SCM's, and the whole DRAM
//!   array runs as a direct-mapped, line-granularity, dirty-writeback
//!   cache in front of it (the HMS organization). A small MC-side
//!   *fill buffer* serves gather-issued loads that miss — an
//!   indirection-vector gather over cold SCM pages would otherwise
//!   thrash the cache with lines that are touched once.
//!
//! Fault behavior is the point of the model, and every plane degrades
//! *gracefully, never silently*:
//!
//! * SCM raw bit errors are drained through the controller's SECDED
//!   model (own stream, own stats) exactly like DRAM flips.
//! * Write wear retires lines onto spares and, once the spares run
//!   out, surfaces typed [`McError::LineRetired`] errors.
//! * Tag-array corruption is detected at lookup (parity), the set is
//!   invalidated and refetched from SCM — the authoritative copy —
//!   and any lost dirty line is counted.
//! * The tier-fail trigger kills a DRAM channel (bank) mid-run: cache
//!   mode degrades the dead sets to SCM *bypass* (slower, still
//!   correct); flat mode rejects accesses to the dead partition with
//!   typed [`McError::TierDegraded`] errors, which the memory system
//!   above counts and NACKs — bounded latency, never a hang.
//!
//! Controller metadata (the PgTbl's memory-resident table) stays
//! pinned in a reserved DRAM region on a dedicated walk path and is
//! not routed through the tier.

use std::collections::VecDeque;

use impulse_dram::{Dram, DramConfig, Scm, ScmConfig, ScmError, ScmStats};
use impulse_fault::{EccConfig, EccStats, FaultConfig, TierFaultStats, TierInjector};
use impulse_obs::MetricsRegistry;
use impulse_types::snap::{SnapError, SnapReader, SnapWriter};
use impulse_types::{AccessKind, Cycle, MAddr, TierPolicy};

use crate::controller::McError;

/// Snapshot section tag for [`TierEngine`] (`"TENG"`).
const TAG_TIER_ENGINE: u32 = 0x5445_4E47;

/// Configuration of the hybrid-memory tier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TierConfig {
    /// How the two memory classes are organized. `None` means no SCM
    /// is attached and no tier engine is built.
    pub policy: TierPolicy,
    /// The SCM part behind (or beside) the DRAM.
    pub scm: ScmConfig,
    /// Capacity of the MC-side fill buffer, in lines (cache mode).
    pub fill_lines: usize,
    /// Tag-array lookup latency, cycles (cache mode).
    pub t_tag: Cycle,
    /// Latency of a fill-buffer hit, cycles (cache mode).
    pub t_fill_hit: Cycle,
}

impl Default for TierConfig {
    fn default() -> Self {
        Self {
            policy: TierPolicy::None,
            scm: ScmConfig::default(),
            fill_lines: 8,
            t_tag: 2,
            t_fill_hit: 4,
        }
    }
}

impl TierConfig {
    /// The bus-visible memory capacity under this tier policy, given
    /// the installed DRAM capacity. Shadow space begins here.
    pub fn visible_capacity(&self, dram_capacity: u64) -> u64 {
        match self.policy {
            TierPolicy::None => dram_capacity,
            TierPolicy::Flat => dram_capacity + self.scm.capacity,
            TierPolicy::Cache => self.scm.capacity,
        }
    }
}

/// Counters maintained by the tier engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Cache-mode accesses served by the DRAM cache.
    pub dram_hits: u64,
    /// Cache-mode demand misses (fetched from SCM and installed).
    pub dram_misses: u64,
    /// Dirty victim lines written back to SCM on eviction.
    pub writebacks: u64,
    /// Writebacks whose victim SCM line was dead — the dirty data is
    /// lost, counted here (and surfaced on the *next* demand access to
    /// that line as a typed error). Never silent.
    pub lost_writebacks: u64,
    /// Gather-issued loads served from the MC-side fill buffer.
    pub fill_hits: u64,
    /// Gather-issued loads that missed and loaded the fill buffer
    /// straight from SCM without installing into the cache.
    pub fill_loads: u64,
    /// Flat-mode accesses routed to the DRAM partition.
    pub flat_dram: u64,
    /// Flat-mode accesses routed to the SCM partition.
    pub flat_scm: u64,
    /// Accesses rejected with a typed error (dead channel in flat
    /// mode, dead SCM line in either mode).
    pub degraded_rejects: u64,
}

/// The tier engine: owns the SCM part, the cache-mode tag array and
/// fill buffer, the dead-channel mask, and the per-tier fault state.
/// The DRAM array stays owned by the controller and is passed into
/// each call, because the controller's gather path destructures itself.
#[derive(Clone, Debug)]
pub struct TierEngine {
    cfg: TierConfig,
    line_bytes: u64,
    dram_capacity: u64,
    /// Packed tag array, one entry per DRAM cache set (cache mode;
    /// empty in flat mode): `(scm_line << 2) | dirty << 1 | valid`.
    tags: Vec<u64>,
    /// SCM lines currently held by the fill buffer, oldest first.
    fill: VecDeque<u64>,
    /// Bitmask of DRAM banks ("channels") killed by tier-fail.
    dead_banks: u64,
    scm: Scm,
    inj: Option<TierInjector>,
    ecc: EccConfig,
    scm_ecc_stats: EccStats,
    stats: TierStats,
}

impl From<ScmError> for McError {
    fn from(e: ScmError) -> Self {
        match e {
            ScmError::LineRetired { line } => McError::LineRetired { line },
        }
    }
}

impl TierEngine {
    /// Builds a tier engine for `cfg` in front of a DRAM with geometry
    /// `dram_cfg`, serving `line_bytes` controller lines.
    ///
    /// # Panics
    ///
    /// Panics when the policy is [`TierPolicy::None`] (build no engine
    /// instead), or in cache mode when the DRAM is not strictly smaller
    /// than the SCM it caches.
    pub fn new(cfg: TierConfig, dram_cfg: &DramConfig, line_bytes: u64) -> Self {
        assert!(
            cfg.policy != TierPolicy::None,
            "tier engine requires a tier policy"
        );
        let tags = if cfg.policy == TierPolicy::Cache {
            assert!(
                dram_cfg.capacity <= cfg.scm.capacity,
                "cache mode needs DRAM no larger than the SCM it caches"
            );
            vec![0u64; (dram_cfg.capacity / line_bytes) as usize]
        } else {
            Vec::new()
        };
        Self {
            scm: Scm::new(cfg.scm.clone()),
            tags,
            fill: VecDeque::with_capacity(cfg.fill_lines),
            dead_banks: 0,
            inj: None,
            ecc: EccConfig::default(),
            scm_ecc_stats: EccStats::default(),
            stats: TierStats::default(),
            line_bytes,
            dram_capacity: dram_cfg.capacity,
            cfg,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> TierPolicy {
        self.cfg.policy
    }

    /// The bus-visible memory capacity (shadow space begins here).
    pub fn visible_capacity(&self) -> u64 {
        self.cfg.visible_capacity(self.dram_capacity)
    }

    /// Attaches the tier's fault planes from a fault configuration:
    /// the SCM bit-flip injector, the tag/tier-fail injector, and the
    /// ECC model used to scrub SCM flips.
    pub fn set_faults(&mut self, faults: &FaultConfig) {
        self.ecc = faults.ecc;
        if let Some(inj) = faults.scm_flip_injector() {
            self.scm.set_fault_injector(inj);
        }
        self.inj = faults.tier_injector();
    }

    /// Tier engine counters.
    pub fn stats(&self) -> TierStats {
        self.stats
    }

    /// SCM media counters (wear, retirement, channel occupancy).
    pub fn scm_stats(&self) -> ScmStats {
        self.scm.stats()
    }

    /// The SCM part (wear probes for tests and reports).
    pub fn scm(&self) -> &Scm {
        &self.scm
    }

    /// ECC bookkeeping for the SCM's raw bit-error stream.
    pub fn scm_ecc_stats(&self) -> EccStats {
        self.scm_ecc_stats
    }

    /// Tag-corruption / channel-kill counters (zeros when no tier
    /// fault class is configured).
    pub fn fault_stats(&self) -> TierFaultStats {
        self.inj
            .as_ref()
            .map(TierInjector::stats)
            .unwrap_or_default()
    }

    /// Bitmask of DRAM banks killed so far.
    pub fn dead_banks(&self) -> u64 {
        self.dead_banks
    }

    /// Resets counters. Physical degradation state (wear, dead lines,
    /// dead channels, cache contents) persists — damage is not a
    /// counter artifact.
    pub fn reset_stats(&mut self) {
        self.stats = TierStats::default();
        self.scm_ecc_stats = EccStats::default();
        self.scm.reset_stats();
    }

    /// Drains SCM bit flips through the controller's ECC model; returns
    /// the latency penalty to fold into the current access.
    fn scrub_scm(&mut self) -> Cycle {
        let mut penalty = 0;
        for (addr, flip) in self.scm.take_flips() {
            let (outcome, t) = self.ecc.check(flip);
            penalty += self.scm_ecc_stats.absorb(outcome, t, addr);
        }
        penalty
    }

    /// Consults the tier-fail plan; on a firing, kills one still-alive
    /// DRAM bank and (cache mode) invalidates every set it backed,
    /// counting lost dirty lines.
    fn maybe_kill_channel(&mut self, dram: &Dram, now: Cycle) {
        let Some(inj) = &mut self.inj else { return };
        if !inj.channel_fails(now) {
            return;
        }
        let banks = dram.config().banks.min(64);
        let alive: Vec<u64> = (0..banks).filter(|b| self.dead_banks & (1 << b) == 0).collect();
        if alive.is_empty() {
            return;
        }
        let ch = alive[inj.pick_channel(alive.len() as u64) as usize];
        self.dead_banks |= 1 << ch;
        let mut lost = 0;
        if self.cfg.policy == TierPolicy::Cache {
            for set in 0..self.tags.len() {
                let entry = self.tags[set];
                if entry & 1 == 0 {
                    continue;
                }
                let dram_addr = MAddr::new(set as u64 * self.line_bytes);
                if dram.config().bank_of(dram_addr) == ch {
                    if entry & 2 != 0 {
                        lost += 1;
                    }
                    self.tags[set] = 0;
                }
            }
        }
        inj.note_channel_kill(lost);
    }

    /// Routes one access of `bytes` at visible address `addr` starting
    /// at `now`; returns the completion cycle. `gather` marks accesses
    /// issued by the controller's gather path, which are eligible for
    /// the fill buffer in cache mode.
    ///
    /// # Errors
    ///
    /// [`McError::TierDegraded`] for a flat-mode access to a killed
    /// DRAM channel; [`McError::LineRetired`] for an access touching a
    /// worn-out SCM line with no spare left. Both complete in bounded
    /// time at the caller (NACK) — the engine never hangs.
    pub fn access(
        &mut self,
        dram: &mut Dram,
        addr: MAddr,
        kind: AccessKind,
        bytes: u64,
        now: Cycle,
        gather: bool,
    ) -> Result<Cycle, McError> {
        self.maybe_kill_channel(dram, now);
        match self.cfg.policy {
            TierPolicy::Flat => self.access_flat(dram, addr, kind, bytes, now),
            TierPolicy::Cache => self.access_cache(dram, addr, kind, bytes, now, gather),
            TierPolicy::None => unreachable!("tier engine is never built without a policy"),
        }
    }

    /// Issues a gather/scatter batch through the tier in order (one
    /// command slot per cycle, like the in-order DRAM scheduler);
    /// returns when the last request completes. The first typed error
    /// aborts the batch — the controller NACKs the whole line.
    pub fn run_batch(
        &mut self,
        dram: &mut Dram,
        reqs: &[(MAddr, u64)],
        kind: AccessKind,
        now: Cycle,
    ) -> Result<Cycle, McError> {
        let mut done = now;
        for (slot, &(addr, bytes)) in reqs.iter().enumerate() {
            let t = now + slot as Cycle;
            done = done.max(self.access(dram, addr, kind, bytes, t, true)?);
        }
        Ok(done)
    }

    fn access_flat(
        &mut self,
        dram: &mut Dram,
        addr: MAddr,
        kind: AccessKind,
        bytes: u64,
        now: Cycle,
    ) -> Result<Cycle, McError> {
        let raw = addr.raw();
        if raw < self.dram_capacity {
            let channel = dram.config().bank_of(addr);
            if self.dead_banks & (1 << channel) != 0 {
                self.stats.degraded_rejects += 1;
                return Err(McError::TierDegraded { channel });
            }
            self.stats.flat_dram += 1;
            return Ok(dram.access(addr, kind, bytes, now));
        }
        self.stats.flat_scm += 1;
        let done = self
            .scm
            .access(raw - self.dram_capacity, kind, bytes, now)
            .map_err(|e| {
                self.stats.degraded_rejects += 1;
                McError::from(e)
            })?;
        Ok(done + self.scrub_scm())
    }

    fn access_cache(
        &mut self,
        dram: &mut Dram,
        addr: MAddr,
        kind: AccessKind,
        bytes: u64,
        now: Cycle,
        gather: bool,
    ) -> Result<Cycle, McError> {
        let raw = addr.raw();
        let line = raw / self.line_bytes;
        let num_sets = self.tags.len() as u64;
        let set = (line % num_sets) as usize;
        let dram_addr = MAddr::new(set as u64 * self.line_bytes);

        // A dead channel takes its sets out of the cache: demand
        // traffic bypasses straight to SCM — slower, still correct.
        if self.dead_banks & (1 << dram.config().bank_of(dram_addr)) != 0 {
            if let Some(inj) = &mut self.inj {
                inj.note_bypass(kind == AccessKind::Store);
            }
            let done = self
                .scm
                .access(line * self.line_bytes, kind, bytes.max(1), now)
                .map_err(|e| {
                    self.stats.degraded_rejects += 1;
                    McError::from(e)
                })?;
            return Ok(done + self.scrub_scm());
        }

        let mut t = now + self.cfg.t_tag;
        let mut entry = self.tags[set];
        // Tag corruption: parity detects it at lookup; the set is
        // invalidated (a dirty victim is lost, counted) and the access
        // proceeds as a miss against the authoritative SCM copy.
        if entry & 1 == 1 {
            if let Some(inj) = &mut self.inj {
                if inj.tag_corrupts(now) {
                    inj.note_tag_corruption(self.cfg.t_tag, entry & 2 != 0);
                    self.tags[set] = 0;
                    entry = 0;
                    t += self.cfg.t_tag;
                }
            }
        }

        let valid = entry & 1 == 1;
        let dirty = entry & 2 != 0;
        let tag_line = entry >> 2;
        if valid && tag_line == line {
            self.stats.dram_hits += 1;
            let done = dram.access(dram_addr, kind, bytes, t);
            if kind == AccessKind::Store {
                self.tags[set] = entry | 2;
            }
            return Ok(done);
        }

        // Miss. Gather-issued loads go through the fill buffer and do
        // not install — a cold-SCM gather must not thrash the cache.
        if gather && kind == AccessKind::Load {
            if self.fill.contains(&line) {
                self.stats.fill_hits += 1;
                return Ok(t + self.cfg.t_fill_hit);
            }
            let done = self
                .scm
                .access(line * self.line_bytes, AccessKind::Load, self.line_bytes, t)
                .map_err(|e| {
                    self.stats.degraded_rejects += 1;
                    McError::from(e)
                })?;
            if self.fill.len() >= self.cfg.fill_lines.max(1) {
                self.fill.pop_front();
            }
            self.fill.push_back(line);
            self.stats.fill_loads += 1;
            return Ok(done + self.scrub_scm());
        }

        // Demand miss: evict (writing back a dirty victim), fetch the
        // line from SCM, install it in the DRAM cache.
        self.stats.dram_misses += 1;
        if valid && dirty {
            self.stats.writebacks += 1;
            if self
                .scm
                .access(tag_line * self.line_bytes, AccessKind::Store, self.line_bytes, t)
                .is_err()
            {
                // The victim's SCM line is dead: the dirty data is
                // lost. Counted here; the next demand access to that
                // line surfaces the typed error.
                self.stats.lost_writebacks += 1;
            }
        }
        let fetched = self
            .scm
            .access(line * self.line_bytes, AccessKind::Load, self.line_bytes, t)
            .map_err(|e| {
                self.stats.degraded_rejects += 1;
                McError::from(e)
            })?;
        let done = dram.access(dram_addr, AccessKind::Store, self.line_bytes, fetched);
        let new_dirty = if kind == AccessKind::Store { 2 } else { 0 };
        self.tags[set] = (line << 2) | new_dirty | 1;
        Ok(done + self.scrub_scm())
    }

    /// Emits the tier's counters under `mc.tier.*` / `mc.scm.*`.
    pub fn observe_into(&self, m: &mut MetricsRegistry) {
        let s = self.stats;
        m.counter("mc.tier.dram_hits", s.dram_hits);
        m.counter("mc.tier.dram_misses", s.dram_misses);
        m.counter("mc.tier.writebacks", s.writebacks);
        m.counter("mc.tier.lost_writebacks", s.lost_writebacks);
        m.counter("mc.tier.fill_hits", s.fill_hits);
        m.counter("mc.tier.fill_loads", s.fill_loads);
        m.counter("mc.tier.flat_dram", s.flat_dram);
        m.counter("mc.tier.flat_scm", s.flat_scm);
        m.counter("mc.tier.degraded_rejects", s.degraded_rejects);
        m.counter("mc.tier.dead_banks", self.dead_banks.count_ones().into());
        let f = self.fault_stats();
        m.counter("mc.tier.fault.tag_corruptions", f.tag_corruptions);
        m.counter("mc.tier.fault.channel_kills", f.channel_kills);
        m.counter("mc.tier.fault.bypass_reads", f.bypass_reads);
        m.counter("mc.tier.fault.bypass_writes", f.bypass_writes);
        m.counter("mc.tier.fault.lost_dirty_lines", f.lost_dirty_lines);
        let sc = self.scm.stats();
        m.counter("mc.scm.reads", sc.reads);
        m.counter("mc.scm.writes", sc.writes);
        m.counter("mc.scm.bytes", sc.bytes);
        m.counter("mc.scm.channel_wait", sc.channel_wait);
        m.counter("mc.scm.wear_retirements", sc.wear_retirements);
        m.counter("mc.scm.dead_rejects", sc.dead_rejects);
        let e = self.scm_ecc_stats;
        m.counter("mc.scm.ecc.corrected", e.corrected);
        m.counter("mc.scm.ecc.detected_double", e.detected_double);
        m.counter("mc.scm.ecc.silent", e.silent);
        m.counter("mc.scm.ecc.corrupt_sig", e.corrupt_sig);
        m.counter("mc.scm.ecc.recovery_cycles", e.recovery_cycles);
    }

    /// Serializes the engine's dynamic state: the SCM part, the tag
    /// array, the fill buffer, the dead-channel mask, counters, SCM ECC
    /// bookkeeping, and (when configured) the tier injector.
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_TIER_ENGINE);
        self.scm.snap_save(w);
        w.u64_slice(&self.tags);
        w.usize(self.fill.len());
        for &line in &self.fill {
            w.u64(line);
        }
        w.u64(self.dead_banks);
        let s = &self.stats;
        for v in [
            s.dram_hits,
            s.dram_misses,
            s.writebacks,
            s.lost_writebacks,
            s.fill_hits,
            s.fill_loads,
            s.flat_dram,
            s.flat_scm,
            s.degraded_rejects,
        ] {
            w.u64(v);
        }
        w.u64(self.scm_ecc_stats.corrected);
        w.u64(self.scm_ecc_stats.detected_double);
        w.u64(self.scm_ecc_stats.silent);
        w.u64(self.scm_ecc_stats.corrupt_sig);
        w.u64(self.scm_ecc_stats.recovery_cycles);
        w.bool(self.inj.is_some());
        if let Some(inj) = &self.inj {
            inj.snap_save(w);
        }
    }

    /// Restores the state saved by [`TierEngine::snap_save`] into an
    /// engine freshly built from the same configuration.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_TIER_ENGINE)?;
        self.scm.snap_load(r)?;
        let tags = r.u64_vec()?;
        if tags.len() != self.tags.len() {
            return Err(SnapError::Geometry("tier tag-array size"));
        }
        self.tags = tags;
        let n = r.usize()?;
        self.fill.clear();
        for _ in 0..n {
            self.fill.push_back(r.u64()?);
        }
        self.dead_banks = r.u64()?;
        let s = &mut self.stats;
        for v in [
            &mut s.dram_hits,
            &mut s.dram_misses,
            &mut s.writebacks,
            &mut s.lost_writebacks,
            &mut s.fill_hits,
            &mut s.fill_loads,
            &mut s.flat_dram,
            &mut s.flat_scm,
            &mut s.degraded_rejects,
        ] {
            *v = r.u64()?;
        }
        self.scm_ecc_stats.corrected = r.u64()?;
        self.scm_ecc_stats.detected_double = r.u64()?;
        self.scm_ecc_stats.silent = r.u64()?;
        self.scm_ecc_stats.corrupt_sig = r.u64()?;
        self.scm_ecc_stats.recovery_cycles = r.u64()?;
        let had_inj = r.bool()?;
        match (&mut self.inj, had_inj) {
            (Some(inj), true) => inj.snap_load(r)?,
            (None, false) => {}
            _ => return Err(SnapError::Geometry("tier injector presence")),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impulse_fault::Trigger;

    const LINE: u64 = 128;

    fn small_dram_cfg() -> DramConfig {
        DramConfig {
            capacity: 1 << 16, // 64 KB cache → 512 sets
            ..DramConfig::default()
        }
    }

    fn cache_engine() -> (TierEngine, Dram) {
        let dcfg = small_dram_cfg();
        let cfg = TierConfig {
            policy: TierPolicy::Cache,
            scm: ScmConfig {
                capacity: 1 << 20,
                ..ScmConfig::default()
            },
            ..TierConfig::default()
        };
        (TierEngine::new(cfg, &dcfg, LINE), Dram::new(dcfg))
    }

    #[test]
    fn cache_miss_then_hit() {
        let (mut eng, mut dram) = cache_engine();
        let a = MAddr::new(0x4000);
        let t1 = eng.access(&mut dram, a, AccessKind::Load, LINE, 0, false).unwrap();
        let t2 = eng
            .access(&mut dram, a, AccessKind::Load, LINE, t1 + 1000, false)
            .unwrap();
        let s = eng.stats();
        assert_eq!((s.dram_misses, s.dram_hits), (1, 1));
        assert!(t1 > t2 - (t1 + 1000), "miss pays SCM latency, hit does not");
        assert_eq!(eng.scm_stats().reads, 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let (mut eng, mut dram) = cache_engine();
        let sets = 1 << 9; // 64 KB / 128 B
        let a = MAddr::new(0);
        let conflict = MAddr::new(sets * LINE); // same set, different line
        eng.access(&mut dram, a, AccessKind::Store, LINE, 0, false).unwrap();
        eng.access(&mut dram, conflict, AccessKind::Load, LINE, 10_000, false)
            .unwrap();
        let s = eng.stats();
        assert_eq!(s.writebacks, 1, "dirty victim must go back to SCM");
        assert_eq!(eng.scm_stats().writes, 1);
    }

    #[test]
    fn gather_misses_use_fill_buffer_without_installing() {
        let (mut eng, mut dram) = cache_engine();
        let a = MAddr::new(0x8000);
        let t1 = eng.access(&mut dram, a, AccessKind::Load, 32, 0, true).unwrap();
        // Same line, still a gather: fill-buffer hit, near-free.
        let t2 = eng
            .access(&mut dram, a, AccessKind::Load, 32, t1, true)
            .unwrap();
        let s = eng.stats();
        assert_eq!((s.fill_loads, s.fill_hits), (1, 1));
        assert_eq!(s.dram_misses, 0, "gather misses do not install");
        assert!(t2 - t1 < t1, "fill hit is much cheaper than SCM");
    }

    #[test]
    fn flat_mode_partitions_the_space() {
        let dcfg = small_dram_cfg();
        let cfg = TierConfig {
            policy: TierPolicy::Flat,
            scm: ScmConfig {
                capacity: 1 << 20,
                ..ScmConfig::default()
            },
            ..TierConfig::default()
        };
        assert_eq!(cfg.visible_capacity(dcfg.capacity), (1 << 16) + (1 << 20));
        let mut eng = TierEngine::new(cfg, &dcfg, LINE);
        let mut dram = Dram::new(dcfg);
        eng.access(&mut dram, MAddr::new(0x100), AccessKind::Load, LINE, 0, false)
            .unwrap();
        eng.access(&mut dram, MAddr::new(1 << 16), AccessKind::Load, LINE, 0, false)
            .unwrap();
        let s = eng.stats();
        assert_eq!((s.flat_dram, s.flat_scm), (1, 1));
        assert_eq!(dram.stats().reads, 1);
        assert_eq!(eng.scm_stats().reads, 1);
    }

    #[test]
    fn channel_kill_degrades_flat_to_typed_error_and_cache_to_bypass() {
        // Flat: the killed channel rejects with TierDegraded.
        let dcfg = small_dram_cfg();
        let mut faults = FaultConfig::none();
        faults.tier_fail = Trigger::EveryN { every: 1, phase: 0 };
        let cfg = TierConfig {
            policy: TierPolicy::Flat,
            scm: ScmConfig {
                capacity: 1 << 20,
                ..ScmConfig::default()
            },
            ..TierConfig::default()
        };
        let mut eng = TierEngine::new(cfg, &dcfg, LINE);
        eng.set_faults(&faults);
        let mut dram = Dram::new(dcfg.clone());
        // First access kills one channel; hammer every bank until the
        // dead one rejects.
        let mut saw_reject = false;
        for b in 0..dcfg.banks {
            let addr = MAddr::new(b * dcfg.row_bytes);
            match eng.access(&mut dram, addr, AccessKind::Load, LINE, b, false) {
                Ok(_) => {}
                Err(McError::TierDegraded { channel }) => {
                    assert_eq!(channel, dcfg.bank_of(addr));
                    saw_reject = true;
                }
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        assert!(saw_reject, "some bank must be dead after kills");
        assert!(eng.fault_stats().channel_kills >= 1);
        assert!(eng.stats().degraded_rejects >= 1);

        // Cache: the same schedule degrades to bypass, not errors.
        let cfg = TierConfig {
            policy: TierPolicy::Cache,
            scm: ScmConfig {
                capacity: 1 << 20,
                ..ScmConfig::default()
            },
            ..TierConfig::default()
        };
        let mut eng = TierEngine::new(cfg, &dcfg, LINE);
        eng.set_faults(&faults);
        let mut dram = Dram::new(dcfg.clone());
        for i in 0..64u64 {
            eng.access(&mut dram, MAddr::new(i * LINE), AccessKind::Load, LINE, i, false)
                .expect("cache mode never errors on channel kill");
        }
        let f = eng.fault_stats();
        assert!(f.channel_kills >= 1);
        assert!(f.bypass_reads > 0, "dead sets must be served by bypass");
    }

    #[test]
    fn tag_corruption_is_detected_and_refetched() {
        let (mut eng, mut dram) = cache_engine();
        let mut faults = FaultConfig::none();
        faults.tag_corrupt = Trigger::EveryN { every: 2, phase: 0 };
        eng.set_faults(&faults);
        let a = MAddr::new(0x2000);
        let t = eng.access(&mut dram, a, AccessKind::Load, LINE, 0, false).unwrap();
        // Re-access: the tag lookup is corrupted (every=2 fires on the
        // plan's next consultation), detected, and refetched from SCM.
        eng.access(&mut dram, a, AccessKind::Load, LINE, t, false).unwrap();
        let f = eng.fault_stats();
        assert!(f.tag_corruptions >= 1);
        assert_eq!(f.tag_corruptions, f.tag_invalidations);
        assert!(eng.scm_stats().reads >= 2, "corrupted set refetches from SCM");
    }

    #[test]
    fn snapshot_round_trips_mid_degradation() {
        let dcfg = small_dram_cfg();
        let mut faults = FaultConfig::none();
        faults.tier_fail = Trigger::EveryN { every: 5, phase: 0 };
        faults.scm_flip = Trigger::EveryN { every: 3, phase: 0 };
        let mk = || {
            let cfg = TierConfig {
                policy: TierPolicy::Cache,
                scm: ScmConfig {
                    capacity: 1 << 20,
                    wear_limit: 4,
                    spare_lines: 2,
                    ..ScmConfig::default()
                },
                ..TierConfig::default()
            };
            let mut e = TierEngine::new(cfg, &small_dram_cfg(), LINE);
            e.set_faults(&faults);
            e
        };
        let mut eng = mk();
        let mut dram = Dram::new(dcfg.clone());
        let mut t = 0;
        for i in 0..40u64 {
            let addr = MAddr::new((i % 16) * LINE);
            let kind = if i % 2 == 0 {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            if let Ok(done) = eng.access(&mut dram, addr, kind, LINE, t, false) {
                t = done;
            } else {
                t += 10;
            }
        }
        let mut w = SnapWriter::new();
        eng.snap_save(&mut w);
        let mut dw = SnapWriter::new();
        dram.snap_save(&mut dw);
        let (ebytes, dbytes) = (w.finish(), dw.finish());

        let mut eng2 = mk();
        let mut dram2 = Dram::new(dcfg);
        let mut r = SnapReader::new(&ebytes);
        eng2.snap_load(&mut r).expect("engine load");
        r.finish().expect("consumed");
        let mut r = SnapReader::new(&dbytes);
        dram2.snap_load(&mut r).expect("dram load");

        assert_eq!(eng2.stats(), eng.stats());
        assert_eq!(eng2.dead_banks(), eng.dead_banks());
        assert_eq!(eng2.fault_stats(), eng.fault_stats());
        // Identical futures under the active fault schedule.
        for i in 40..80u64 {
            let addr = MAddr::new((i % 16) * LINE);
            let a = eng.access(&mut dram, addr, AccessKind::Load, LINE, t + i, false);
            let b = eng2.access(&mut dram2, addr, AccessKind::Load, LINE, t + i, false);
            assert_eq!(a, b, "diverged at step {i}");
        }
    }
}
