//! The controller's prefetch SRAM for non-remapped data.
//!
//! Impulse adds "a 2K buffer for prefetching non-remapped data using a
//! simple one-block lookahead prefetcher" (Section 2.2). The SRAM holds
//! whole memory lines; entries carry a `ready_at` timestamp so a demand
//! access arriving before the background fetch completes pays only the
//! remaining time.

use impulse_obs::{MetricsRegistry, Observe};
use impulse_types::snap::{SnapError, SnapReader, SnapWriter};
use impulse_types::{Cycle, PAddr};

/// Snapshot section tag for [`PrefetchCache`] (`"PFCH"`).
const TAG_PF: u32 = 0x5046_4348;

/// Statistics for the prefetch SRAM.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Demand lookups that found their line in the SRAM.
    pub hits: u64,
    /// Demand lookups that missed.
    pub misses: u64,
    /// Prefetches issued into the SRAM.
    pub issued: u64,
    /// Hits that still had to wait for the in-flight fill.
    pub late: u64,
}

impl PrefetchStats {
    /// Fraction of demand lookups that hit.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    line: PAddr,
    ready_at: Cycle,
    stamp: u64,
    valid: bool,
}

/// A small fully-associative line buffer with LRU replacement and
/// in-flight ("ready at") tracking.
#[derive(Clone, Debug)]
pub struct PrefetchCache {
    slots: Vec<Slot>,
    line_bytes: u64,
    tick: u64,
    stats: PrefetchStats,
}

impl PrefetchCache {
    /// Builds a prefetch SRAM of `capacity_bytes` holding `line_bytes`
    /// lines.
    ///
    /// # Panics
    ///
    /// Panics if the capacity does not hold at least one line.
    pub fn new(capacity_bytes: u64, line_bytes: u64) -> Self {
        let n = capacity_bytes / line_bytes;
        assert!(n >= 1, "prefetch SRAM must hold at least one line");
        Self {
            slots: vec![
                Slot {
                    line: PAddr::ZERO,
                    ready_at: 0,
                    stamp: 0,
                    valid: false,
                };
                n as usize
            ],
            line_bytes,
            tick: 0,
            stats: PrefetchStats::default(),
        }
    }

    /// Number of line slots.
    pub fn capacity_lines(&self) -> usize {
        self.slots.len()
    }

    /// Line size this SRAM holds, in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    /// Resets statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = PrefetchStats::default();
    }

    #[inline]
    fn line_base(&self, p: PAddr) -> PAddr {
        p.align_down(self.line_bytes)
    }

    /// Demand lookup: on a hit, returns the cycle at which the line's data
    /// is available in the SRAM (which may be in the future if the fill is
    /// still in flight) and consumes the entry's freshness for LRU.
    pub fn demand_lookup(&mut self, p: PAddr, now: Cycle) -> Option<Cycle> {
        let base = self.line_base(p);
        self.tick += 1;
        let tick = self.tick;
        if let Some(s) = self.slots.iter_mut().find(|s| s.valid && s.line == base) {
            s.stamp = tick;
            self.stats.hits += 1;
            if s.ready_at > now {
                self.stats.late += 1;
            }
            Some(s.ready_at)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Whether the line containing `p` is present (no stats/LRU effect).
    pub fn contains(&self, p: PAddr) -> bool {
        let base = self.line_base(p);
        self.slots.iter().any(|s| s.valid && s.line == base)
    }

    /// Records a prefetched line that will be ready at `ready_at`,
    /// evicting the LRU slot if necessary.
    pub fn insert(&mut self, p: PAddr, ready_at: Cycle) {
        let base = self.line_base(p);
        self.tick += 1;
        self.stats.issued += 1;
        if let Some(s) = self.slots.iter_mut().find(|s| s.valid && s.line == base) {
            // Refreshing an existing entry (e.g. re-prefetch after eviction
            // race): keep the earlier ready time.
            s.ready_at = s.ready_at.min(ready_at);
            s.stamp = self.tick;
            return;
        }
        let victim = self.slots.iter().position(|s| !s.valid).unwrap_or_else(|| {
            self.slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.stamp)
                .map(|(i, _)| i)
                .expect("prefetch SRAM has at least one slot")
        });
        self.slots[victim] = Slot {
            line: base,
            ready_at,
            stamp: self.tick,
            valid: true,
        };
    }

    /// Drops the line containing `p`, if present — used when the line is
    /// written so the SRAM never serves stale data.
    pub fn invalidate(&mut self, p: PAddr) -> bool {
        let base = self.line_base(p);
        if let Some(s) = self.slots.iter_mut().find(|s| s.valid && s.line == base) {
            s.valid = false;
            true
        } else {
            false
        }
    }

    /// Drops everything.
    pub fn invalidate_all(&mut self) {
        for s in &mut self.slots {
            s.valid = false;
        }
    }

    /// Serializes every slot verbatim plus the LRU tick and statistics.
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_PF);
        w.usize(self.slots.len());
        for s in &self.slots {
            w.u64(s.line.raw());
            w.u64(s.ready_at);
            w.u64(s.stamp);
            w.bool(s.valid);
        }
        w.u64(self.tick);
        w.u64(self.stats.hits);
        w.u64(self.stats.misses);
        w.u64(self.stats.issued);
        w.u64(self.stats.late);
    }

    /// Restores the state saved by [`PrefetchCache::snap_save`] into a
    /// cache freshly built with the same geometry.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_PF)?;
        let n = r.usize()?;
        if n != self.slots.len() {
            return Err(SnapError::Geometry("prefetch SRAM slot count"));
        }
        for s in &mut self.slots {
            s.line = PAddr::new(r.u64()?);
            s.ready_at = r.u64()?;
            s.stamp = r.u64()?;
            s.valid = r.bool()?;
        }
        self.tick = r.u64()?;
        self.stats.hits = r.u64()?;
        self.stats.misses = r.u64()?;
        self.stats.issued = r.u64()?;
        self.stats.late = r.u64()?;
        Ok(())
    }
}

impl Observe for PrefetchCache {
    fn observe(&self, m: &mut MetricsRegistry) {
        m.counter("pf.hits", self.stats.hits);
        m.counter("pf.misses", self.stats.misses);
        m.counter("pf.issued", self.stats.issued);
        m.counter("pf.late", self.stats.late);
        m.gauge("pf.hit_ratio", self.stats.hit_ratio());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pa(x: u64) -> PAddr {
        PAddr::new(x)
    }

    #[test]
    fn paper_sram_holds_sixteen_lines() {
        let pf = PrefetchCache::new(2048, 128);
        assert_eq!(pf.capacity_lines(), 16);
    }

    #[test]
    fn insert_then_hit_with_ready_time() {
        let mut pf = PrefetchCache::new(256, 128);
        pf.insert(pa(0x100), 50);
        assert_eq!(pf.demand_lookup(pa(0x17f), 10), Some(50));
        assert_eq!(pf.stats().hits, 1);
        assert_eq!(pf.stats().late, 1);
        assert_eq!(pf.demand_lookup(pa(0x180), 10), None);
        assert_eq!(pf.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut pf = PrefetchCache::new(256, 128); // 2 slots
        pf.insert(pa(0), 0);
        pf.insert(pa(128), 0);
        pf.demand_lookup(pa(0), 0); // touch line 0
        pf.insert(pa(256), 0); // evicts line 128
        assert!(pf.contains(pa(0)));
        assert!(!pf.contains(pa(128)));
        assert!(pf.contains(pa(256)));
    }

    #[test]
    fn reinsert_keeps_earliest_ready() {
        let mut pf = PrefetchCache::new(256, 128);
        pf.insert(pa(0), 100);
        pf.insert(pa(0), 200);
        assert_eq!(pf.demand_lookup(pa(0), 0), Some(100));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut pf = PrefetchCache::new(256, 128);
        pf.insert(pa(0), 0);
        assert!(pf.invalidate(pa(64)));
        assert!(!pf.contains(pa(0)));
        assert!(!pf.invalidate(pa(0)));
        pf.insert(pa(0), 0);
        pf.invalidate_all();
        assert!(!pf.contains(pa(0)));
    }

    #[test]
    fn hit_ratio_handles_empty() {
        assert_eq!(PrefetchStats::default().hit_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_capacity_rejected() {
        let _ = PrefetchCache::new(64, 128);
    }
}
