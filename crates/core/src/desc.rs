//! Shadow space descriptors (SDescs).
//!
//! Each descriptor owns one remapped shadow region: its bus-address range,
//! the remapping function the AddrCalc applies, and a 256-byte prefetch
//! buffer "that can be used to prefetch shadow memory" (Section 2.2). The
//! paper models eight descriptors despite needing no more than three for
//! its applications; the controller does the same.

use impulse_types::{Cycle, PAddr, PRange, PvAddr};

use crate::prefetch::PrefetchCache;
use crate::remap::RemapFn;

/// Per-descriptor statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DescStats {
    /// Shadow line reads served by this descriptor.
    pub reads: u64,
    /// Shadow line writes (scatters) served.
    pub writes: u64,
    /// Reads satisfied from the 256-byte prefetch buffer.
    pub buffer_hits: u64,
    /// Gather/scatter operations performed against DRAM.
    pub gathers: u64,
    /// Individual DRAM requests those operations issued.
    pub dram_requests: u64,
}

/// One configured shadow region at the memory controller.
#[derive(Clone, Debug)]
pub struct ShadowDescriptor {
    region: PRange,
    remap: RemapFn,
    buffer: PrefetchCache,
    /// Last indirection-vector block fetched, to avoid recharging for
    /// sequential gathers that share a vector cache block.
    last_vector_block: Option<PvAddr>,
    stats: DescStats,
}

impl ShadowDescriptor {
    /// Configures a descriptor over `region` with remapping `remap`.
    ///
    /// # Panics
    ///
    /// Panics if the region start is not aligned to `line_bytes`, or if a
    /// gather remapping cannot cover the region.
    pub fn new(region: PRange, remap: RemapFn, line_bytes: u64, buffer_bytes: u64) -> Self {
        assert!(
            region.start().is_aligned(line_bytes),
            "shadow regions must start line-aligned: {region:?}"
        );
        if let Some(max) = remap.addressable_bytes() {
            // The OS maps shadow space in whole pages; more than a page of
            // slack beyond the gather image is a configuration bug.
            let limit = max
                .next_multiple_of(line_bytes)
                .next_multiple_of(impulse_types::geom::PAGE_SIZE);
            assert!(
                region.len() <= limit,
                "shadow region ({} bytes) larger than gather image ({max} bytes)",
                region.len()
            );
        }
        Self {
            region,
            remap,
            buffer: PrefetchCache::new(buffer_bytes, line_bytes),
            last_vector_block: None,
            stats: DescStats::default(),
        }
    }

    /// The shadow bus-address range this descriptor serves.
    pub fn region(&self) -> PRange {
        self.region
    }

    /// The remapping function.
    pub fn remap(&self) -> &RemapFn {
        &self.remap
    }

    /// Per-descriptor statistics.
    pub fn stats(&self) -> DescStats {
        self.stats
    }

    /// Resets statistics (configuration and buffer contents preserved).
    pub fn reset_stats(&mut self) {
        self.stats = DescStats::default();
    }

    /// Whether this descriptor serves `addr`.
    #[inline]
    pub fn matches(&self, addr: PAddr) -> bool {
        self.region.contains(addr)
    }

    /// Shadow offset (bytes from region start) of an address.
    #[inline]
    pub fn offset_of(&self, addr: PAddr) -> u64 {
        self.region.offset_of(addr)
    }

    pub(crate) fn note_read(&mut self) {
        self.stats.reads += 1;
    }

    pub(crate) fn note_write(&mut self) {
        self.stats.writes += 1;
    }

    pub(crate) fn note_gather(&mut self, dram_requests: u64) {
        self.stats.gathers += 1;
        self.stats.dram_requests += dram_requests;
    }

    /// Buffer lookup for a shadow line (by bus address); counts a hit.
    pub(crate) fn buffer_lookup(&mut self, line: PAddr, now: Cycle) -> Option<Cycle> {
        let r = self.buffer.demand_lookup(line, now);
        if r.is_some() {
            self.stats.buffer_hits += 1;
        }
        r
    }

    /// Whether the buffer already holds (or is filling) a shadow line.
    pub(crate) fn buffer_contains(&self, line: PAddr) -> bool {
        self.buffer.contains(line)
    }

    /// Records a background gather completing at `ready_at`.
    pub(crate) fn buffer_insert(&mut self, line: PAddr, ready_at: Cycle) {
        self.buffer.insert(line, ready_at);
    }

    /// Invalidates a buffered shadow line (consistency on scatter writes).
    pub(crate) fn buffer_invalidate(&mut self, line: PAddr) {
        self.buffer.invalidate(line);
    }

    /// Tracks indirection-vector block reuse; returns `true` if `block`
    /// was already the most recent block (no DRAM read needed).
    pub(crate) fn vector_block_cached(&mut self, block: PvAddr) -> bool {
        if self.last_vector_block == Some(block) {
            true
        } else {
            self.last_vector_block = Some(block);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn region(start: u64, len: u64) -> PRange {
        PRange::new(PAddr::new(start), len)
    }

    fn direct_desc() -> ShadowDescriptor {
        ShadowDescriptor::new(
            region(0x4000_0000, 4096),
            RemapFn::direct(PvAddr::new(0)),
            128,
            256,
        )
    }

    #[test]
    fn matches_and_offsets() {
        let d = direct_desc();
        assert!(d.matches(PAddr::new(0x4000_0000)));
        assert!(d.matches(PAddr::new(0x4000_0fff)));
        assert!(!d.matches(PAddr::new(0x4000_1000)));
        assert_eq!(d.offset_of(PAddr::new(0x4000_0080)), 0x80);
    }

    #[test]
    fn buffer_round_trip() {
        let mut d = direct_desc();
        let line = PAddr::new(0x4000_0000);
        assert!(d.buffer_lookup(line, 0).is_none());
        d.buffer_insert(line, 99);
        assert_eq!(d.buffer_lookup(line, 0), Some(99));
        assert_eq!(d.stats().buffer_hits, 1);
        d.buffer_invalidate(line);
        assert!(!d.buffer_contains(line));
    }

    #[test]
    fn vector_block_dedupe() {
        let mut d = direct_desc();
        let b = PvAddr::new(0x100);
        assert!(!d.vector_block_cached(b));
        assert!(d.vector_block_cached(b));
        assert!(!d.vector_block_cached(PvAddr::new(0x120)));
    }

    #[test]
    fn gather_region_size_checked() {
        let idx = Arc::new(vec![0u64; 16]); // 16 * 8 = 128 bytes image
        let remap = RemapFn::gather(PvAddr::new(0), 8, idx, PvAddr::new(0x9000), 4);
        // Page-rounded slack is fine (the OS maps whole pages)...
        let _ = ShadowDescriptor::new(region(0x4000_0000, 4096), remap.clone(), 128, 256);
        // ...more than a page over the image is not.
        let result = std::panic::catch_unwind(|| {
            ShadowDescriptor::new(region(0x4000_0000, 8192), remap, 128, 256)
        });
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "line-aligned")]
    fn misaligned_region_rejected() {
        let _ = ShadowDescriptor::new(
            region(0x4000_0020, 4096),
            RemapFn::direct(PvAddr::new(0)),
            128,
            256,
        );
    }
}
