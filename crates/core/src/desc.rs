//! Shadow space descriptors (SDescs).
//!
//! Each descriptor owns one remapped shadow region: its bus-address range,
//! the remapping function the AddrCalc applies, and a 256-byte prefetch
//! buffer "that can be used to prefetch shadow memory" (Section 2.2). The
//! paper models eight descriptors despite needing no more than three for
//! its applications; the controller does the same.

use std::fmt;

use impulse_types::geom::is_pow2;
use impulse_types::snap::{SnapError, SnapReader, SnapWriter};
use impulse_types::{Cycle, PAddr, PRange, PvAddr};

use crate::prefetch::PrefetchCache;
use crate::remap::RemapFn;

/// Snapshot section tag for [`ShadowDescriptor`] (`"SDSC"`).
const TAG_DESC: u32 = 0x5344_5343;

/// A shadow-descriptor configuration rejected at creation time.
///
/// Every malformed parameter combination — the classic source of
/// silently-poisoned gathers — is caught when the descriptor is
/// configured, *before* the region can serve an access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DescError {
    /// The region start is not aligned to the controller line size.
    MisalignedRegion(PRange),
    /// A strided mapping with stride 0 (every object would overlap).
    ZeroStride,
    /// A strided object size that is not a power of two (the paper's
    /// no-divider restriction), or zero.
    ObjectSizeNotPow2(u64),
    /// A stride smaller than the object size (objects would overlap).
    StrideTooSmall {
        /// Configured stride in bytes.
        stride: u64,
        /// Configured object size in bytes.
        object_size: u64,
    },
    /// A gather element size that is not a power of two, or zero.
    ElemSizeNotPow2(u64),
    /// A gather element larger than the controller line (the AddrCalc
    /// gathers into line-sized buffers, so an element must fit in one).
    ElemLargerThanLine {
        /// Configured element size in bytes.
        elem_size: u64,
        /// Controller line size in bytes.
        line_bytes: u64,
    },
    /// A gather with an empty indirection vector.
    EmptyIndirectionVector,
    /// A gather whose indirection entries are zero bytes wide.
    ZeroIndexBytes,
    /// A gather whose image size (`len * elem_size`) overflows.
    VectorOverflow {
        /// Indirection-vector length in elements.
        len: u64,
        /// Configured element size in bytes.
        elem_size: u64,
    },
    /// A shadow region more than a page larger than the gather image.
    RegionExceedsImage {
        /// Shadow region size in bytes.
        region_bytes: u64,
        /// Gather image size in bytes.
        image_bytes: u64,
    },
}

impl fmt::Display for DescError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DescError::MisalignedRegion(r) => {
                write!(f, "shadow region must start line-aligned: {r:?}")
            }
            DescError::ZeroStride => write!(f, "strided remapping has zero stride"),
            DescError::ObjectSizeNotPow2(s) => {
                write!(f, "strided object size must be a power of two, got {s}")
            }
            DescError::StrideTooSmall {
                stride,
                object_size,
            } => write!(
                f,
                "stride ({stride}) must be at least the object size ({object_size})"
            ),
            DescError::ElemSizeNotPow2(s) => {
                write!(f, "gather element size must be a power of two, got {s}")
            }
            DescError::ElemLargerThanLine {
                elem_size,
                line_bytes,
            } => write!(
                f,
                "gather element ({elem_size} B) exceeds the controller line ({line_bytes} B)"
            ),
            DescError::EmptyIndirectionVector => write!(f, "gather indirection vector is empty"),
            DescError::ZeroIndexBytes => write!(f, "indirection entries must be non-empty"),
            DescError::VectorOverflow { len, elem_size } => write!(
                f,
                "gather image overflows: {len} elements of {elem_size} bytes"
            ),
            DescError::RegionExceedsImage {
                region_bytes,
                image_bytes,
            } => write!(
                f,
                "shadow region ({region_bytes} bytes) larger than gather image ({image_bytes} bytes)"
            ),
        }
    }
}

impl std::error::Error for DescError {}

/// Per-descriptor statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DescStats {
    /// Shadow line reads served by this descriptor.
    pub reads: u64,
    /// Shadow line writes (scatters) served.
    pub writes: u64,
    /// Reads satisfied from the 256-byte prefetch buffer.
    pub buffer_hits: u64,
    /// Gather/scatter operations performed against DRAM.
    pub gathers: u64,
    /// Individual DRAM requests those operations issued.
    pub dram_requests: u64,
}

/// One configured shadow region at the memory controller.
#[derive(Clone, Debug)]
pub struct ShadowDescriptor {
    region: PRange,
    remap: RemapFn,
    buffer: PrefetchCache,
    /// Last indirection-vector block fetched, to avoid recharging for
    /// sequential gathers that share a vector cache block.
    last_vector_block: Option<PvAddr>,
    stats: DescStats,
}

impl ShadowDescriptor {
    /// Configures a descriptor over `region` with remapping `remap`,
    /// validating every descriptor parameter at creation time. A
    /// rejected configuration never becomes visible to the access path,
    /// so a malformed descriptor cannot poison a gather.
    pub fn new(
        region: PRange,
        remap: RemapFn,
        line_bytes: u64,
        buffer_bytes: u64,
    ) -> Result<Self, DescError> {
        if !region.start().is_aligned(line_bytes) {
            return Err(DescError::MisalignedRegion(region));
        }
        match &remap {
            RemapFn::Direct { .. } => {}
            RemapFn::Strided {
                object_size,
                stride,
                ..
            } => {
                if *stride == 0 {
                    return Err(DescError::ZeroStride);
                }
                if !is_pow2(*object_size) {
                    return Err(DescError::ObjectSizeNotPow2(*object_size));
                }
                if stride < object_size {
                    return Err(DescError::StrideTooSmall {
                        stride: *stride,
                        object_size: *object_size,
                    });
                }
            }
            RemapFn::Gather {
                elem_size,
                indices,
                index_bytes,
                ..
            } => {
                if !is_pow2(*elem_size) {
                    return Err(DescError::ElemSizeNotPow2(*elem_size));
                }
                if *elem_size > line_bytes {
                    return Err(DescError::ElemLargerThanLine {
                        elem_size: *elem_size,
                        line_bytes,
                    });
                }
                if indices.is_empty() {
                    return Err(DescError::EmptyIndirectionVector);
                }
                if *index_bytes == 0 {
                    return Err(DescError::ZeroIndexBytes);
                }
                let len = indices.len() as u64;
                if len.checked_mul(*elem_size).is_none() {
                    return Err(DescError::VectorOverflow {
                        len,
                        elem_size: *elem_size,
                    });
                }
            }
        }
        if let Some(max) = remap.addressable_bytes() {
            // The OS maps shadow space in whole pages; more than a page of
            // slack beyond the gather image is a configuration bug.
            let limit = max
                .next_multiple_of(line_bytes)
                .next_multiple_of(impulse_types::geom::PAGE_SIZE);
            if region.len() > limit {
                return Err(DescError::RegionExceedsImage {
                    region_bytes: region.len(),
                    image_bytes: max,
                });
            }
        }
        Ok(Self {
            region,
            remap,
            buffer: PrefetchCache::new(buffer_bytes, line_bytes),
            last_vector_block: None,
            stats: DescStats::default(),
        })
    }

    /// The shadow bus-address range this descriptor serves.
    pub fn region(&self) -> PRange {
        self.region
    }

    /// The remapping function.
    pub fn remap(&self) -> &RemapFn {
        &self.remap
    }

    /// Per-descriptor statistics.
    pub fn stats(&self) -> DescStats {
        self.stats
    }

    /// Resets statistics (configuration and buffer contents preserved).
    pub fn reset_stats(&mut self) {
        self.stats = DescStats::default();
    }

    /// Whether this descriptor serves `addr`.
    #[inline]
    pub fn matches(&self, addr: PAddr) -> bool {
        self.region.contains(addr)
    }

    /// Shadow offset (bytes from region start) of an address.
    #[inline]
    pub fn offset_of(&self, addr: PAddr) -> u64 {
        self.region.offset_of(addr)
    }

    pub(crate) fn note_read(&mut self) {
        self.stats.reads += 1;
    }

    pub(crate) fn note_write(&mut self) {
        self.stats.writes += 1;
    }

    pub(crate) fn note_gather(&mut self, dram_requests: u64) {
        self.stats.gathers += 1;
        self.stats.dram_requests += dram_requests;
    }

    /// Buffer lookup for a shadow line (by bus address); counts a hit.
    pub(crate) fn buffer_lookup(&mut self, line: PAddr, now: Cycle) -> Option<Cycle> {
        let r = self.buffer.demand_lookup(line, now);
        if r.is_some() {
            self.stats.buffer_hits += 1;
        }
        r
    }

    /// Whether the buffer already holds (or is filling) a shadow line.
    pub(crate) fn buffer_contains(&self, line: PAddr) -> bool {
        self.buffer.contains(line)
    }

    /// Records a background gather completing at `ready_at`.
    pub(crate) fn buffer_insert(&mut self, line: PAddr, ready_at: Cycle) {
        self.buffer.insert(line, ready_at);
    }

    /// Invalidates a buffered shadow line (consistency on scatter writes).
    pub(crate) fn buffer_invalidate(&mut self, line: PAddr) {
        self.buffer.invalidate(line);
    }

    /// Tracks indirection-vector block reuse; returns `true` if `block`
    /// was already the most recent block (no DRAM read needed).
    pub(crate) fn vector_block_cached(&mut self, block: PvAddr) -> bool {
        if self.last_vector_block == Some(block) {
            true
        } else {
            self.last_vector_block = Some(block);
            false
        }
    }

    /// Serializes the complete descriptor: configuration (region, remap
    /// function, buffer geometry — descriptors are created by syscalls at
    /// run time, so they cannot be rebuilt from the system configuration)
    /// plus dynamic state (buffer contents, vector-block memo, stats).
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_DESC);
        w.u64(self.region.start().raw());
        w.u64(self.region.len());
        self.remap.snap_save(w);
        w.u64(self.buffer.line_bytes());
        w.usize(self.buffer.capacity_lines());
        self.buffer.snap_save(w);
        w.bool(self.last_vector_block.is_some());
        w.u64(self.last_vector_block.map_or(0, |b| b.raw()));
        w.u64(self.stats.reads);
        w.u64(self.stats.writes);
        w.u64(self.stats.buffer_hits);
        w.u64(self.stats.gathers);
        w.u64(self.stats.dram_requests);
    }

    /// Reconstructs a descriptor saved by
    /// [`ShadowDescriptor::snap_save`], re-running creation-time
    /// validation on the decoded parameters.
    pub fn snap_load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.tag(TAG_DESC)?;
        let start = r.u64()?;
        let len = r.u64()?;
        let remap = RemapFn::snap_load(r)?;
        let line_bytes = r.u64()?;
        let lines = r.usize()? as u64;
        let buffer_bytes = lines
            .checked_mul(line_bytes)
            .ok_or(SnapError::Geometry("descriptor buffer size"))?;
        let region = PRange::new(PAddr::new(start), len);
        let mut d = Self::new(region, remap, line_bytes, buffer_bytes)
            .map_err(|_| SnapError::Geometry("shadow descriptor parameters"))?;
        d.buffer.snap_load(r)?;
        let had_block = r.bool()?;
        let block = r.u64()?;
        d.last_vector_block = had_block.then(|| PvAddr::new(block));
        d.stats.reads = r.u64()?;
        d.stats.writes = r.u64()?;
        d.stats.buffer_hits = r.u64()?;
        d.stats.gathers = r.u64()?;
        d.stats.dram_requests = r.u64()?;
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn region(start: u64, len: u64) -> PRange {
        PRange::new(PAddr::new(start), len)
    }

    fn direct_desc() -> ShadowDescriptor {
        ShadowDescriptor::new(
            region(0x4000_0000, 4096),
            RemapFn::direct(PvAddr::new(0)),
            128,
            256,
        )
        .unwrap()
    }

    #[test]
    fn matches_and_offsets() {
        let d = direct_desc();
        assert!(d.matches(PAddr::new(0x4000_0000)));
        assert!(d.matches(PAddr::new(0x4000_0fff)));
        assert!(!d.matches(PAddr::new(0x4000_1000)));
        assert_eq!(d.offset_of(PAddr::new(0x4000_0080)), 0x80);
    }

    #[test]
    fn buffer_round_trip() {
        let mut d = direct_desc();
        let line = PAddr::new(0x4000_0000);
        assert!(d.buffer_lookup(line, 0).is_none());
        d.buffer_insert(line, 99);
        assert_eq!(d.buffer_lookup(line, 0), Some(99));
        assert_eq!(d.stats().buffer_hits, 1);
        d.buffer_invalidate(line);
        assert!(!d.buffer_contains(line));
    }

    #[test]
    fn vector_block_dedupe() {
        let mut d = direct_desc();
        let b = PvAddr::new(0x100);
        assert!(!d.vector_block_cached(b));
        assert!(d.vector_block_cached(b));
        assert!(!d.vector_block_cached(PvAddr::new(0x120)));
    }

    #[test]
    fn gather_region_size_checked() {
        let idx = Arc::new(vec![0u64; 16]); // 16 * 8 = 128 bytes image
        let remap = RemapFn::gather(PvAddr::new(0), 8, idx, PvAddr::new(0x9000), 4);
        // Page-rounded slack is fine (the OS maps whole pages)...
        assert!(ShadowDescriptor::new(region(0x4000_0000, 4096), remap.clone(), 128, 256).is_ok());
        // ...more than a page over the image is not.
        assert_eq!(
            ShadowDescriptor::new(region(0x4000_0000, 8192), remap, 128, 256).unwrap_err(),
            DescError::RegionExceedsImage {
                region_bytes: 8192,
                image_bytes: 128,
            }
        );
    }

    #[test]
    fn misaligned_region_rejected() {
        let r = region(0x4000_0020, 4096);
        assert_eq!(
            ShadowDescriptor::new(r, RemapFn::direct(PvAddr::new(0)), 128, 256).unwrap_err(),
            DescError::MisalignedRegion(r)
        );
    }

    #[test]
    fn strided_params_validated_at_creation() {
        let r = region(0x4000_0000, 4096);
        // Bypass the constructor's debug_assert to exercise the typed
        // rejection path the controller relies on in release builds.
        let zero_stride = RemapFn::Strided {
            pv_base: PvAddr::new(0),
            object_size: 8,
            stride: 0,
        };
        assert_eq!(
            ShadowDescriptor::new(r, zero_stride, 128, 256).unwrap_err(),
            DescError::ZeroStride
        );
        let bad_object = RemapFn::Strided {
            pv_base: PvAddr::new(0),
            object_size: 24,
            stride: 100,
        };
        assert_eq!(
            ShadowDescriptor::new(r, bad_object, 128, 256).unwrap_err(),
            DescError::ObjectSizeNotPow2(24)
        );
        let overlapping = RemapFn::Strided {
            pv_base: PvAddr::new(0),
            object_size: 64,
            stride: 8,
        };
        assert_eq!(
            ShadowDescriptor::new(r, overlapping, 128, 256).unwrap_err(),
            DescError::StrideTooSmall {
                stride: 8,
                object_size: 64,
            }
        );
    }

    #[test]
    fn gather_params_validated_at_creation() {
        let r = region(0x4000_0000, 128);
        let mk = |elem_size, indices: Vec<u64>, index_bytes| RemapFn::Gather {
            pv_base: PvAddr::new(0),
            elem_size,
            indices: Arc::new(indices),
            vec_pv_base: PvAddr::new(0x9000),
            index_bytes,
        };
        assert_eq!(
            ShadowDescriptor::new(r, mk(24, vec![0; 16], 4), 128, 256).unwrap_err(),
            DescError::ElemSizeNotPow2(24)
        );
        assert_eq!(
            ShadowDescriptor::new(r, mk(256, vec![0; 16], 4), 128, 256).unwrap_err(),
            DescError::ElemLargerThanLine {
                elem_size: 256,
                line_bytes: 128,
            }
        );
        assert_eq!(
            ShadowDescriptor::new(r, mk(8, vec![], 4), 128, 256).unwrap_err(),
            DescError::EmptyIndirectionVector
        );
        assert_eq!(
            ShadowDescriptor::new(r, mk(8, vec![0; 16], 0), 128, 256).unwrap_err(),
            DescError::ZeroIndexBytes
        );
        // The happy path still configures.
        assert!(ShadowDescriptor::new(r, mk(8, vec![0; 16], 4), 128, 256).is_ok());
    }
}
