//! MC transaction flight recorder and the `impulse-trace-v1` codec.
//!
//! The controller-resident analogue of an aircraft flight recorder: a
//! bounded ring buffer that logs every transaction the memory controller
//! classifies — cycle, line address, derived DRAM bank/row, hit class,
//! and (for shadow accesses) the descriptor that served it. Recording is
//! opt-in via [`McConfig::flight_capacity`](crate::McConfig) and costs
//! nothing when disabled; when the ring fills, the oldest events are
//! overwritten and counted, so a recorder can fly on a run of any length.
//!
//! # Wire format (`impulse-trace-v1`)
//!
//! Full-run captures are only feasible if events are small, so the codec
//! delta-encodes. The layout is:
//!
//! ```text
//! magic   16 bytes   b"impulse-trace-v1"
//! header  varints    line_bytes, banks, row_bytes, recorded, overwritten, n_events
//! events  n_events × ( class_desc u8, zigzag(Δcycle), zigzag(Δline_index) )
//! ```
//!
//! where varints are LEB128, `class_desc` packs the [`HitClass`] in the
//! high nibble and the descriptor slot in the low nibble (`0xF` = none),
//! `Δcycle` is the difference from the previous event's cycle, and
//! `Δline_index` the difference of `line / line_bytes`. Sequential access
//! streams therefore cost ~3 bytes per event. Bank and row are *derived*
//! from the line index and the recorded geometry (`bank = index-of-row %
//! banks`), so they travel for free; the same derivation is applied to
//! shadow addresses even though those never reach a physical bank — the
//! heat they would induce is exactly what the gather path fans out.
//!
//! Encoding then decoding then re-encoding is bit-exact — asserted by the
//! bench suite over the full experiment catalog — so a capture's
//! [`digest`] identifies its event stream across processes and `jobs=N`.

use impulse_types::snap::fnv64;
use impulse_types::varint;
use impulse_types::Cycle;

/// The 16-byte magic that opens every `impulse-trace-v1` capture.
pub const TRACE_MAGIC: &[u8; 16] = b"impulse-trace-v1";

/// Classification of one MC transaction, as seen by the flight recorder.
///
/// Must fit in 4 bits (the codec packs it into a nibble).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum HitClass {
    /// Demand read of a physical line served by DRAM.
    DirectDram = 0,
    /// Demand read of a physical line served by the prefetch SRAM.
    DirectSramHit = 1,
    /// Shadow read that ran the remap → translate → gather pipeline.
    ShadowGather = 2,
    /// Shadow read served from a descriptor's staging buffer.
    ShadowBufHit = 3,
    /// Store to a physical line.
    StoreDirect = 4,
    /// Store through a shadow descriptor (scatter path).
    StoreShadow = 5,
    /// Read the controller refused (unmapped shadow address, fault, …).
    NackRead = 6,
    /// Store the controller refused.
    NackWrite = 7,
}

impl HitClass {
    /// Short stable name used in dumps and summaries.
    pub fn name(self) -> &'static str {
        match self {
            HitClass::DirectDram => "direct_dram",
            HitClass::DirectSramHit => "direct_sram_hit",
            HitClass::ShadowGather => "shadow_gather",
            HitClass::ShadowBufHit => "shadow_buf_hit",
            HitClass::StoreDirect => "store_direct",
            HitClass::StoreShadow => "store_shadow",
            HitClass::NackRead => "nack_read",
            HitClass::NackWrite => "nack_write",
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => HitClass::DirectDram,
            1 => HitClass::DirectSramHit,
            2 => HitClass::ShadowGather,
            3 => HitClass::ShadowBufHit,
            4 => HitClass::StoreDirect,
            5 => HitClass::StoreShadow,
            6 => HitClass::NackRead,
            7 => HitClass::NackWrite,
            _ => return None,
        })
    }
}

/// The address geometry a capture was recorded under; needed to derive
/// bank/row from line addresses and to re-encode bit-exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightGeom {
    /// Controller line size in bytes (event addresses are aligned to it).
    pub line_bytes: u64,
    /// Number of DRAM banks (bank = row-index % banks).
    pub banks: u64,
    /// DRAM row size in bytes.
    pub row_bytes: u64,
}

impl FlightGeom {
    /// The bank a line address maps to (same interleave as the DRAM
    /// model: consecutive rows rotate across banks).
    pub fn bank_of(&self, addr: u64) -> u64 {
        (addr / self.row_bytes) % self.banks
    }

    /// The in-bank row a line address maps to.
    pub fn row_of(&self, addr: u64) -> u64 {
        (addr / self.row_bytes) / self.banks
    }
}

/// One decoded flight-recorder event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Cycle at which the controller classified the transaction.
    pub cycle: Cycle,
    /// Line-aligned bus address (shadow addresses included).
    pub line: u64,
    /// DRAM bank derived from `line` and the capture geometry.
    pub bank: u64,
    /// In-bank row derived the same way.
    pub row: u64,
    /// What kind of transaction this was.
    pub class: HitClass,
    /// Descriptor slot that served a shadow access, if any.
    pub desc: Option<u8>,
}

/// Compact in-ring representation (24 bytes/event).
#[derive(Clone, Copy, Debug)]
struct RawEvent {
    cycle: u64,
    line: u64,
    class: u8,
    /// Descriptor slot, `NO_DESC` when none.
    desc: u8,
}

const NO_DESC: u8 = 0xF;

/// Errors from [`decode`] and the other capture readers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The input does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The input ended inside a varint or event (mid-varint EOF).
    Truncated,
    /// A varint carried more payload bits than a `u64` can hold.
    OverlongVarint,
    /// A geometry field was zero (captures always record real geometry).
    BadGeometry,
    /// An event carried an undefined hit-class nibble.
    BadClass(u8),
    /// A delta walked the cycle or line index below zero.
    Underflow,
    /// Bytes remained after the declared event count.
    TrailingData,
    /// A sealed capture's fnv64 trailer did not match its payload.
    BadDigest {
        /// Digest recorded in the trailer.
        expected: u64,
        /// Digest of the payload as read.
        found: u64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not an impulse-trace-v1 capture"),
            TraceError::Truncated => write!(f, "capture is truncated"),
            TraceError::OverlongVarint => write!(f, "over-long LEB128 varint"),
            TraceError::BadGeometry => write!(f, "capture header has zero geometry"),
            TraceError::BadClass(v) => write!(f, "undefined hit class {v}"),
            TraceError::Underflow => write!(f, "delta stream underflowed"),
            TraceError::TrailingData => write!(f, "trailing bytes after final event"),
            TraceError::BadDigest { expected, found } => write!(
                f,
                "capture digest mismatch: trailer says {expected:016x}, payload hashes to {found:016x}"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// Appends `v` as an LEB128 varint — the shared primitive from
/// [`impulse_types::varint`], kept here under its historical name for
/// the trace/replay codecs.
pub fn put_varint(out: &mut Vec<u8>, v: u64) {
    varint::put(out, v);
}

/// Reads an LEB128 varint starting at `*pos`, advancing it past the
/// bytes consumed.
///
/// # Errors
///
/// [`TraceError::Truncated`] on mid-varint EOF;
/// [`TraceError::OverlongVarint`] if the encoding carries more payload
/// bits than a `u64` holds (more than ten bytes, or a tenth byte above 1).
pub fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    varint::get(bytes, pos).map_err(|e| match e {
        varint::VarintError::Truncated => TraceError::Truncated,
        varint::VarintError::Overlong => TraceError::OverlongVarint,
    })
}

pub use impulse_types::varint::{unzigzag, zigzag};

/// Seals a byte payload by appending its [`fnv64`] digest as an 8-byte
/// little-endian trailer; [`unseal`] verifies and strips it. Capture
/// files written by the trace/replay tooling travel sealed so corruption
/// is caught before the delta stream is interpreted.
pub fn seal(mut bytes: Vec<u8>) -> Vec<u8> {
    let d = fnv64(&bytes);
    bytes.extend_from_slice(&d.to_le_bytes());
    bytes
}

/// Verifies and strips the digest trailer added by [`seal`], returning
/// the payload.
///
/// # Errors
///
/// [`TraceError::Truncated`] if there is no room for a trailer;
/// [`TraceError::BadDigest`] if the payload hash disagrees with it.
pub fn unseal(bytes: &[u8]) -> Result<&[u8], TraceError> {
    let Some(split) = bytes.len().checked_sub(8) else {
        return Err(TraceError::Truncated);
    };
    let (payload, trailer) = bytes.split_at(split);
    let expected = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    let found = fnv64(payload);
    if expected != found {
        return Err(TraceError::BadDigest { expected, found });
    }
    Ok(payload)
}

/// Shared encoder: the recorder and [`Capture::encode`] must produce
/// identical bytes for identical event streams.
fn encode_parts(
    geom: FlightGeom,
    recorded: u64,
    overwritten: u64,
    n_events: usize,
    events: impl Iterator<Item = (u64, u64, u8, u8)>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + 8 + n_events * 4);
    out.extend_from_slice(TRACE_MAGIC);
    put_varint(&mut out, geom.line_bytes);
    put_varint(&mut out, geom.banks);
    put_varint(&mut out, geom.row_bytes);
    put_varint(&mut out, recorded);
    put_varint(&mut out, overwritten);
    put_varint(&mut out, n_events as u64);
    let mut prev_cycle: i64 = 0;
    let mut prev_idx: i64 = 0;
    for (cycle, line, class, desc) in events {
        out.push((class << 4) | (desc & 0xF));
        let cycle = cycle as i64;
        let idx = (line / geom.line_bytes) as i64;
        put_varint(&mut out, zigzag(cycle - prev_cycle));
        put_varint(&mut out, zigzag(idx - prev_idx));
        prev_cycle = cycle;
        prev_idx = idx;
    }
    out
}

/// A decoded capture: geometry, ring counters, and the surviving events
/// in chronological order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Capture {
    /// Geometry the capture was recorded under.
    pub geom: FlightGeom,
    /// Total events ever recorded (including overwritten ones).
    pub recorded: u64,
    /// Events lost to ring wrap-around.
    pub overwritten: u64,
    /// The events still in the ring when the capture was encoded.
    pub events: Vec<FlightEvent>,
}

impl Capture {
    /// Re-encodes the capture; bit-exact with the bytes it was decoded
    /// from.
    pub fn encode(&self) -> Vec<u8> {
        encode_parts(
            self.geom,
            self.recorded,
            self.overwritten,
            self.events.len(),
            self.events
                .iter()
                .map(|e| (e.cycle, e.line, e.class as u8, e.desc.unwrap_or(NO_DESC))),
        )
    }
}

/// Streaming reader over an `impulse-trace-v1` capture: parses the
/// header eagerly, then decodes events in caller-sized chunks so a
/// multi-million-event capture can be evaluated batch by batch without
/// materializing the whole event vector. [`decode`] is a thin wrapper
/// that drains one cursor.
#[derive(Clone, Debug)]
pub struct EventCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    geom: FlightGeom,
    recorded: u64,
    overwritten: u64,
    remaining: u64,
    cycle: i64,
    idx: i64,
}

impl<'a> EventCursor<'a> {
    /// Parses the capture header and positions the cursor at the first
    /// event.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] the header can exhibit (bad magic, truncation,
    /// over-long varint, zero geometry); never panics.
    pub fn new(bytes: &'a [u8]) -> Result<Self, TraceError> {
        if bytes.len() < TRACE_MAGIC.len() || &bytes[..TRACE_MAGIC.len()] != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut pos = TRACE_MAGIC.len();
        let line_bytes = get_varint(bytes, &mut pos)?;
        let banks = get_varint(bytes, &mut pos)?;
        let row_bytes = get_varint(bytes, &mut pos)?;
        if line_bytes == 0 || banks == 0 || row_bytes == 0 {
            return Err(TraceError::BadGeometry);
        }
        let recorded = get_varint(bytes, &mut pos)?;
        let overwritten = get_varint(bytes, &mut pos)?;
        let remaining = get_varint(bytes, &mut pos)?;
        Ok(Self {
            bytes,
            pos,
            geom: FlightGeom {
                line_bytes,
                banks,
                row_bytes,
            },
            recorded,
            overwritten,
            remaining,
            cycle: 0,
            idx: 0,
        })
    }

    /// Geometry recorded in the header.
    pub fn geom(&self) -> FlightGeom {
        self.geom
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to ring wrap-around.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Events the cursor has not yet decoded.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Decodes up to `max` events, appending them to `out`; returns how
    /// many were produced (0 exactly when the stream is exhausted). When
    /// the final event has been decoded, verifies no bytes trail it.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] the event stream can exhibit; the cursor is
    /// not usable after an error.
    pub fn next_chunk(
        &mut self,
        out: &mut Vec<FlightEvent>,
        max: usize,
    ) -> Result<usize, TraceError> {
        let take = (self.remaining.min(max as u64)) as usize;
        out.reserve(take);
        for _ in 0..take {
            let &cd = self.bytes.get(self.pos).ok_or(TraceError::Truncated)?;
            self.pos += 1;
            let class = HitClass::from_u8(cd >> 4).ok_or(TraceError::BadClass(cd >> 4))?;
            let desc = match cd & 0xF {
                NO_DESC => None,
                d => Some(d),
            };
            self.cycle = self
                .cycle
                .checked_add(unzigzag(get_varint(self.bytes, &mut self.pos)?))
                .ok_or(TraceError::Underflow)?;
            self.idx = self
                .idx
                .checked_add(unzigzag(get_varint(self.bytes, &mut self.pos)?))
                .ok_or(TraceError::Underflow)?;
            if self.cycle < 0 || self.idx < 0 {
                return Err(TraceError::Underflow);
            }
            let line = (self.idx as u64) * self.geom.line_bytes;
            out.push(FlightEvent {
                cycle: self.cycle as u64,
                line,
                bank: self.geom.bank_of(line),
                row: self.geom.row_of(line),
                class,
                desc,
            });
        }
        self.remaining -= take as u64;
        if self.remaining == 0 && self.pos != self.bytes.len() {
            return Err(TraceError::TrailingData);
        }
        Ok(take)
    }
}

/// Decodes an `impulse-trace-v1` capture.
///
/// # Errors
///
/// Returns a [`TraceError`] if the bytes are not a well-formed capture;
/// never panics on arbitrary input.
pub fn decode(bytes: &[u8]) -> Result<Capture, TraceError> {
    let mut cursor = EventCursor::new(bytes)?;
    let mut events = Vec::with_capacity(
        usize::try_from(cursor.remaining())
            .unwrap_or(0)
            .min(1 << 20),
    );
    while cursor.next_chunk(&mut events, 4096)? > 0 {}
    Ok(Capture {
        geom: cursor.geom(),
        recorded: cursor.recorded(),
        overwritten: cursor.overwritten(),
        events,
    })
}

/// FNV-1a digest of an encoded capture; because re-encoding is
/// bit-exact, equal digests mean equal event streams.
pub fn digest(bytes: &[u8]) -> u64 {
    fnv64(bytes)
}

/// The bounded MC transaction ring buffer.
///
/// Storage is allocated lazily (short runs with a huge `capacity` only
/// pay for what they record) and wraps by overwriting the oldest event,
/// keeping a count of how many were lost.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    geom: FlightGeom,
    buf: Vec<RawEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    capacity: usize,
    recorded: u64,
    overwritten: u64,
}

impl FlightRecorder {
    /// Creates a recorder holding up to `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, geom: FlightGeom) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be non-zero");
        Self {
            geom,
            buf: Vec::with_capacity(capacity.min(4096)),
            head: 0,
            capacity,
            recorded: 0,
            overwritten: 0,
        }
    }

    /// Records one transaction. `addr` is aligned down to the line size;
    /// `desc` must be below 15 (the codec's none sentinel).
    #[inline]
    pub fn record(&mut self, cycle: Cycle, addr: u64, class: HitClass, desc: Option<u8>) {
        debug_assert!(desc.is_none_or(|d| d < NO_DESC));
        let ev = RawEvent {
            cycle,
            line: addr - addr % self.geom.line_bytes,
            class: class as u8,
            desc: desc.map_or(NO_DESC, |d| d & 0xF),
        };
        self.recorded += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.overwritten += 1;
        }
    }

    /// The geometry bank/row derivation uses.
    pub fn geom(&self) -> FlightGeom {
        self.geom
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded (or everything was cleared).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum events the ring will hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to wrap-around.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Clears the ring and counters (capacity and geometry are kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.recorded = 0;
        self.overwritten = 0;
    }

    /// Iterates the surviving raw events in chronological order.
    fn raw_chronological(&self) -> impl Iterator<Item = &RawEvent> + '_ {
        let (newer, older) = self.buf.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    /// The surviving events in chronological order, with bank/row
    /// derived from the geometry.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.raw_chronological()
            .map(|r| FlightEvent {
                cycle: r.cycle,
                line: r.line,
                bank: self.geom.bank_of(r.line),
                row: self.geom.row_of(r.line),
                class: HitClass::from_u8(r.class).expect("ring holds only valid classes"),
                desc: (r.desc != NO_DESC).then_some(r.desc),
            })
            .collect()
    }

    /// Serializes the ring as an `impulse-trace-v1` capture.
    pub fn encode(&self) -> Vec<u8> {
        encode_parts(
            self.geom,
            self.recorded,
            self.overwritten,
            self.buf.len(),
            self.raw_chronological()
                .map(|r| (r.cycle, r.line, r.class, r.desc)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> FlightGeom {
        FlightGeom {
            line_bytes: 128,
            banks: 4,
            row_bytes: 2048,
        }
    }

    fn filled(capacity: usize, n: u64) -> FlightRecorder {
        let mut fr = FlightRecorder::new(capacity, geom());
        for i in 0..n {
            let class = HitClass::from_u8((i % 8) as u8).unwrap();
            let desc = (i % 3 == 0).then_some((i % 8) as u8);
            fr.record(i * 7, i * 128, class, desc);
        }
        fr
    }

    #[test]
    fn ring_overwrites_oldest_and_stays_chronological() {
        let fr = filled(4, 10);
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.recorded(), 10);
        assert_eq!(fr.overwritten(), 6);
        let cycles: Vec<u64> = fr.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![42, 49, 56, 63]);
    }

    #[test]
    fn bank_and_row_derive_from_geometry() {
        let mut fr = FlightRecorder::new(8, geom());
        fr.record(1, 2048 * 5 + 130, HitClass::DirectDram, None);
        let e = fr.events()[0];
        assert_eq!(e.line, 2048 * 5 + 128); // aligned down
        assert_eq!(e.bank, 1); // row index 5 % 4 banks
        assert_eq!(e.row, 1); // row index 5 / 4 banks
    }

    #[test]
    fn encode_decode_reencode_is_bit_exact() {
        for n in [0u64, 1, 3, 100, 1000] {
            let fr = filled(64, n);
            let bytes = fr.encode();
            let cap = decode(&bytes).expect("decode");
            assert_eq!(cap.recorded, n);
            assert_eq!(cap.events, fr.events());
            assert_eq!(cap.encode(), bytes, "re-encode diverged at n={n}");
            assert_eq!(digest(&bytes), digest(&cap.encode()));
        }
    }

    #[test]
    fn wrapped_ring_round_trips() {
        let fr = filled(16, 100);
        let bytes = fr.encode();
        let cap = decode(&bytes).unwrap();
        assert_eq!(cap.overwritten, 84);
        assert_eq!(cap.events.len(), 16);
        assert_eq!(cap.encode(), bytes);
    }

    #[test]
    fn out_of_order_cycles_and_addresses_round_trip() {
        // Deltas go negative: zigzag must carry them.
        let mut fr = FlightRecorder::new(8, geom());
        fr.record(1000, 1 << 20, HitClass::DirectDram, None);
        fr.record(10, 128, HitClass::StoreDirect, None);
        fr.record(2000, 1 << 30, HitClass::ShadowGather, Some(7));
        let bytes = fr.encode();
        let cap = decode(&bytes).unwrap();
        assert_eq!(cap.events, fr.events());
        assert_eq!(cap.events[2].desc, Some(7));
        assert_eq!(cap.encode(), bytes);
    }

    #[test]
    fn decode_rejects_malformed_captures() {
        assert_eq!(decode(b"not a trace"), Err(TraceError::BadMagic));
        let good = filled(8, 5).encode();
        assert_eq!(decode(&good[..20]), Err(TraceError::Truncated));
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(decode(&trailing), Err(TraceError::TrailingData));
        // Corrupt geometry: magic + zeroed varints.
        let mut zeroed = TRACE_MAGIC.to_vec();
        zeroed.extend_from_slice(&[0; 6]);
        assert_eq!(decode(&zeroed), Err(TraceError::BadGeometry));
        // Bad class nibble: craft one event with class 9.
        let mut fr = FlightRecorder::new(2, geom());
        fr.record(1, 0, HitClass::DirectDram, None);
        let mut bytes = fr.encode();
        let n = bytes.len();
        bytes[n - 3] = (9 << 4) | NO_DESC;
        assert_eq!(decode(&bytes), Err(TraceError::BadClass(9)));
    }

    #[test]
    fn overlong_varints_are_rejected_distinctly() {
        // Eleven continuation bytes: more than a u64 can carry.
        let overlong = [0xFFu8; 11];
        let mut pos = 0;
        assert_eq!(
            get_varint(&overlong, &mut pos),
            Err(TraceError::OverlongVarint)
        );
        // Ten bytes whose last carries more than the one spare bit.
        let mut wide = [0x80u8; 10];
        wide[9] = 0x02;
        let mut pos = 0;
        assert_eq!(get_varint(&wide, &mut pos), Err(TraceError::OverlongVarint));
        // A capture whose header varint is overlong reports it, not
        // truncation.
        let mut bytes = TRACE_MAGIC.to_vec();
        bytes.extend_from_slice(&[0xFF; 11]);
        assert_eq!(decode(&bytes), Err(TraceError::OverlongVarint));
        // Mid-varint EOF is still Truncated.
        let mut pos = 0;
        assert_eq!(get_varint(&[0x80], &mut pos), Err(TraceError::Truncated));
    }

    #[test]
    fn seal_unseal_round_trips_and_flags_corruption() {
        let payload = filled(8, 5).encode();
        let sealed = seal(payload.clone());
        assert_eq!(sealed.len(), payload.len() + 8);
        assert_eq!(unseal(&sealed).unwrap(), &payload[..]);
        // Flip one payload byte: digest mismatch with both hashes shown.
        let mut corrupt = sealed.clone();
        corrupt[20] ^= 1;
        match unseal(&corrupt) {
            Err(TraceError::BadDigest { expected, found }) => assert_ne!(expected, found),
            other => panic!("expected BadDigest, got {other:?}"),
        }
        // Flip a trailer byte: also a digest mismatch.
        let mut bad_trailer = sealed.clone();
        let n = bad_trailer.len();
        bad_trailer[n - 1] ^= 1;
        assert!(matches!(
            unseal(&bad_trailer),
            Err(TraceError::BadDigest { .. })
        ));
        // Too short to even hold a trailer.
        assert_eq!(unseal(&sealed[..7]), Err(TraceError::Truncated));
    }

    #[test]
    fn event_cursor_chunks_match_full_decode() {
        let fr = filled(64, 50);
        let bytes = fr.encode();
        let full = decode(&bytes).unwrap();
        for chunk in [1usize, 7, 50, 1000] {
            let mut cur = EventCursor::new(&bytes).unwrap();
            assert_eq!(cur.geom(), full.geom);
            assert_eq!(cur.recorded(), full.recorded);
            assert_eq!(cur.overwritten(), full.overwritten);
            assert_eq!(cur.remaining(), full.events.len() as u64);
            let mut events = Vec::new();
            let mut produced = Vec::new();
            loop {
                let n = cur.next_chunk(&mut events, chunk).unwrap();
                if n == 0 {
                    break;
                }
                produced.push(n);
            }
            assert_eq!(events, full.events, "chunk size {chunk} diverged");
            assert_eq!(cur.remaining(), 0);
            assert!(produced.iter().all(|&n| n <= chunk));
        }
    }

    #[test]
    fn event_cursor_surfaces_stream_errors() {
        let bytes = filled(8, 5).encode();
        let mut cur = EventCursor::new(&bytes[..bytes.len() - 1]).unwrap();
        let mut out = Vec::new();
        assert!(cur.next_chunk(&mut out, 1000).is_err());
        // An empty capture with trailing garbage reports it on first read.
        let mut empty = FlightRecorder::new(4, geom()).encode();
        empty.push(0x7);
        let mut cur = EventCursor::new(&empty).unwrap();
        assert_eq!(
            cur.next_chunk(&mut Vec::new(), 16),
            Err(TraceError::TrailingData)
        );
    }

    #[test]
    fn decode_never_panics_on_fuzzed_prefixes() {
        let good = filled(32, 64).encode();
        for cut in 0..good.len() {
            let _ = decode(&good[..cut]);
        }
        for flip in (0..good.len()).step_by(3) {
            let mut b = good.clone();
            b[flip] ^= 0xA5;
            let _ = decode(&b);
        }
    }

    #[test]
    fn clear_resets_counters() {
        let mut fr = filled(4, 10);
        fr.clear();
        assert!(fr.is_empty());
        assert_eq!(fr.recorded(), 0);
        assert_eq!(fr.overwritten(), 0);
        let cap = decode(&fr.encode()).unwrap();
        assert!(cap.events.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = FlightRecorder::new(0, geom());
    }
}
