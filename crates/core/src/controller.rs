//! The Impulse memory controller (MC).
//!
//! Implements the datapath of Figure 3 in the paper. An address arriving
//! from the bus is either a real physical address — passed to the DRAM
//! scheduler, optionally through the 2 KB prefetch SRAM — or a *shadow*
//! address, in which case the matching shadow descriptor is selected, the
//! AddrCalc expands it into pseudo-virtual segments, the controller page
//! table (PgTbl) translates those to DRAM addresses, the DRAM scheduler
//! issues the reads, and the descriptor assembles the returned words into
//! a cache line for the bus.
//!
//! A design goal carried over from the paper: accesses to non-shadow
//! memory take the direct path and are never slowed by the remapping
//! machinery.

use core::fmt;

use impulse_dram::{Dram, SchedulePolicy, Scheduler};
use impulse_fault::{EccConfig, EccStats, FaultConfig};
use impulse_obs::{prof, Histogram, HotSketch, Json, MetricsRegistry, Observe, SketchConfig};
use impulse_types::geom::PAGE_SIZE;
use impulse_types::snap::{SnapError, SnapReader, SnapWriter};
use impulse_types::{AccessKind, Cycle, MAddr, PAddr, PRange};

use crate::desc::{DescError, DescStats, ShadowDescriptor};
use crate::flight::{FlightGeom, FlightRecorder, HitClass};
use crate::pgtbl::{PgTbl, PgTblConfig, PgTblStats};
use crate::prefetch::{PrefetchCache, PrefetchStats};
use crate::remap::{RemapFn, Segment};
use crate::tier::{TierEngine, TierStats};

/// Identifier of a configured shadow descriptor slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DescId(usize);

impl DescId {
    /// The slot index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Errors from descriptor management and the remapped datapath.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum McError {
    /// All descriptor slots are configured.
    NoFreeDescriptor,
    /// The descriptor id does not name a configured slot.
    InvalidDescriptor(usize),
    /// The region is not entirely within shadow address space.
    RegionNotShadow(PRange),
    /// The region overlaps an already-configured descriptor.
    RegionOverlap(PRange),
    /// The remapping parameters are malformed (see the inner error).
    BadDescriptor(DescError),
    /// A shadow access matched no configured descriptor — a bus error on
    /// real hardware; the infallible entry points NACK it instead.
    NoDescriptor(PAddr),
    /// A gather touched a pseudo-virtual page with no mapping downloaded
    /// to the controller page table.
    PvUnmapped(u64),
    /// A flat-mode tier access targeted a DRAM channel killed by the
    /// tier-fail fault; the partition it served is offline.
    TierDegraded {
        /// The dead DRAM channel (bank) index.
        channel: u64,
    },
    /// The access touched an SCM line permanently retired by write
    /// wear after the spare pool was exhausted.
    LineRetired {
        /// The dead SCM line index.
        line: u64,
    },
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::NoFreeDescriptor => write!(f, "all shadow descriptors are in use"),
            McError::InvalidDescriptor(i) => write!(f, "descriptor slot {i} is not configured"),
            McError::RegionNotShadow(r) => {
                write!(f, "region {r:?} is not entirely in shadow space")
            }
            McError::RegionOverlap(r) => {
                write!(f, "region {r:?} overlaps a configured shadow region")
            }
            McError::BadDescriptor(e) => write!(f, "malformed shadow descriptor: {e}"),
            McError::NoDescriptor(p) => {
                write!(f, "shadow access to {p:?} matches no descriptor")
            }
            McError::PvUnmapped(page) => {
                write!(
                    f,
                    "pseudo-virtual page {page:#x} is not mapped in the controller"
                )
            }
            McError::TierDegraded { channel } => {
                write!(f, "tier degraded: DRAM channel {channel} is offline")
            }
            McError::LineRetired { line } => {
                write!(f, "SCM line {line:#x} is permanently retired")
            }
        }
    }
}

impl std::error::Error for McError {}

/// Configuration of the Impulse memory controller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct McConfig {
    /// Fixed controller pipeline overhead per request, cycles.
    pub t_overhead: Cycle,
    /// SRAM (prefetch buffer) read latency, cycles.
    pub t_sram: Cycle,
    /// Bus/L2 line size served by the controller, bytes.
    pub line_bytes: u64,
    /// Capacity of the non-shadow prefetch SRAM (the paper's 2 KB buffer).
    pub prefetch_sram_bytes: u64,
    /// Per-descriptor prefetch buffer size (the paper's 256 bytes).
    pub desc_buffer_bytes: u64,
    /// Number of shadow descriptor slots (the paper models eight).
    pub num_descriptors: usize,
    /// Controller page table configuration.
    pub pgtbl: PgTblConfig,
    /// DRAM scheduling policy. The paper's published results use
    /// [`SchedulePolicy::InOrder`].
    pub sched: SchedulePolicy,
    /// Enable one-block-lookahead prefetch of non-remapped data.
    pub prefetch_nonshadow: bool,
    /// Enable per-descriptor prefetch of remapped (shadow) data.
    pub prefetch_shadow: bool,
    /// Granularity of controller reads of indirection vectors, bytes.
    pub vector_block_bytes: u64,
    /// DRAM burst granularity for gather coalescing, bytes: consecutive
    /// gather segments falling in the same aligned burst are served by
    /// one DRAM access (the controller reads whole bursts regardless, so
    /// sub-burst objects — e.g. byte-granularity channel extraction —
    /// cost one access per burst, not one per object).
    pub coalesce_bytes: u64,
    /// Capacity of the MC transaction flight recorder, in events; `0`
    /// (the default) disables recording entirely — no ring is allocated
    /// and the per-access cost is one `Option` check.
    pub flight_capacity: usize,
    /// Hotness-sketch configuration; `None` (the default) disables line
    /// hotness telemetry.
    pub hotness: Option<SketchConfig>,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            t_overhead: 2,
            t_sram: 1,
            line_bytes: 128,
            prefetch_sram_bytes: 2048,
            desc_buffer_bytes: 256,
            num_descriptors: 8,
            pgtbl: PgTblConfig::default(),
            sched: SchedulePolicy::InOrder,
            prefetch_nonshadow: false,
            prefetch_shadow: false,
            vector_block_bytes: 32,
            coalesce_bytes: 32,
            flight_capacity: 0,
            hotness: None,
        }
    }
}

/// Top-level controller statistics (component stats are exposed through
/// their own accessors).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct McStats {
    /// Non-shadow line reads served.
    pub line_reads: u64,
    /// Non-shadow line writes served.
    pub line_writes: u64,
    /// Shadow line reads served.
    pub shadow_line_reads: u64,
    /// Shadow line writes (scatters) served.
    pub shadow_line_writes: u64,
    /// Reads NACKed by the infallible entry points (no descriptor, or a
    /// pseudo-virtual page with no mapping): the caller falls back to
    /// non-remapped access.
    pub rejected_reads: u64,
    /// Writes NACKed by the infallible entry points.
    pub rejected_writes: u64,
}

/// Where the cycles of one controller line read went, stage by stage.
///
/// Produced by [`MemController::read_line_attributed`]; the four fields
/// always sum exactly to the read's total latency (`done - now`), so a
/// caller can fold them into a system-wide cycle-attribution table without
/// double counting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct McBreakdown {
    /// Fixed controller pipeline overhead.
    pub frontend: Cycle,
    /// Prefetch-SRAM / descriptor-buffer access (including waiting out an
    /// in-flight background fill).
    pub sram: Cycle,
    /// Controller page-table translation (TLB-miss walks).
    pub pgtbl: Cycle,
    /// DRAM array time (bank wait, row activation, data transfer).
    pub dram: Cycle,
}

impl McBreakdown {
    /// Sum over all stages — equals the read's total latency.
    pub fn total(&self) -> Cycle {
        self.frontend + self.sram + self.pgtbl + self.dram
    }
}

/// Snapshot section tag for [`MemController`] (`"MCTL"`).
const TAG_MC: u32 = 0x4D43_544C;

/// The Impulse memory controller.
#[derive(Clone, Debug)]
pub struct MemController {
    cfg: McConfig,
    dram: Dram,
    sched: Scheduler,
    pgtbl: PgTbl,
    pf: PrefetchCache,
    descs: Vec<Option<ShadowDescriptor>>,
    shadow_base: u64,
    stats: McStats,
    seg_scratch: Vec<Segment>,
    req_scratch: Vec<(MAddr, u64)>,
    merge_scratch: Vec<(MAddr, u64)>,
    lat_direct: Histogram,
    lat_pf_hit: Histogram,
    lat_shadow: Histogram,
    lat_shadow_hit: Histogram,
    ecc: EccConfig,
    ecc_stats: EccStats,
    /// Boxed so the (large, rarely enabled) observability state costs the
    /// common path one pointer each.
    flight: Option<Box<FlightRecorder>>,
    hot: Option<Box<HotSketch>>,
    /// The hybrid-memory tier engine (SCM + policy state); `None` on a
    /// classic single-tier machine, which keeps the direct DRAM path.
    tier: Option<Box<TierEngine>>,
}

/// Drains pending injected bit flips from the DRAM array and runs them
/// through the controller's ECC logic. Returns the total latency penalty
/// to charge on the current return path.
/// A descriptor slot index as a flight-recorder nibble. Slots at or
/// above 15 are unrepresentable in the codec and collapse to 14; the
/// paper's controller has eight slots, so this never fires in practice.
fn desc_nibble(idx: usize) -> Option<u8> {
    Some(u8::try_from(idx).map_or(14, |v| v.min(14)))
}

fn scrub_flips(dram: &mut Dram, ecc: &EccConfig, stats: &mut EccStats) -> Cycle {
    let mut penalty = 0;
    for (addr, flip) in dram.take_flips() {
        let (outcome, t) = ecc.check(flip);
        penalty += stats.absorb(outcome, t, addr);
    }
    penalty
}

/// Routes one data access either straight to DRAM (single-tier machine)
/// or through the tier engine. A free function over the two fields so
/// the gather path, which destructures the controller, can use it too.
fn tier_route(
    tier: &mut Option<Box<TierEngine>>,
    dram: &mut Dram,
    addr: MAddr,
    kind: AccessKind,
    bytes: u64,
    now: Cycle,
    gather: bool,
) -> Result<Cycle, McError> {
    match tier.as_deref_mut() {
        Some(t) => t.access(dram, addr, kind, bytes, now, gather),
        None => Ok(dram.access(addr, kind, bytes, now)),
    }
}

impl MemController {
    /// Builds a controller in front of `dram`. Shadow space is every bus
    /// address at or above the installed DRAM capacity.
    pub fn new(dram: Dram, cfg: McConfig) -> Self {
        let shadow_base = dram.config().capacity;
        // Keep the memory-resident page table inside installed DRAM even
        // when simulating small memories.
        let mut pg_cfg = cfg.pgtbl;
        if pg_cfg.table_base.raw() >= shadow_base {
            let reserve = (1u64 << 20).min(shadow_base / 2);
            pg_cfg.table_base = MAddr::new(shadow_base - reserve);
        }
        Self {
            sched: Scheduler::new(cfg.sched),
            pgtbl: PgTbl::new(pg_cfg),
            pf: PrefetchCache::new(cfg.prefetch_sram_bytes, cfg.line_bytes),
            descs: (0..cfg.num_descriptors).map(|_| None).collect(),
            shadow_base,
            stats: McStats::default(),
            seg_scratch: Vec::with_capacity(32),
            req_scratch: Vec::with_capacity(32),
            merge_scratch: Vec::with_capacity(32),
            lat_direct: Histogram::new(),
            lat_pf_hit: Histogram::new(),
            lat_shadow: Histogram::new(),
            lat_shadow_hit: Histogram::new(),
            ecc: EccConfig::default(),
            ecc_stats: EccStats::default(),
            flight: (cfg.flight_capacity > 0).then(|| {
                Box::new(FlightRecorder::new(
                    cfg.flight_capacity,
                    FlightGeom {
                        line_bytes: cfg.line_bytes,
                        banks: dram.config().banks,
                        row_bytes: dram.config().row_bytes,
                    },
                ))
            }),
            hot: cfg.hotness.map(|s| Box::new(HotSketch::new(s))),
            tier: None,
            dram,
            cfg,
        }
    }

    /// Attaches a hybrid-memory tier engine. The bus-visible capacity
    /// changes to the tier's (shadow space moves up accordingly), and
    /// every data access routes through the tier from here on; the
    /// controller page table's walk path stays pinned in DRAM. Call
    /// before [`set_faults`](Self::set_faults) so the tier's fault
    /// planes get wired.
    pub fn attach_tier(&mut self, engine: TierEngine) {
        self.shadow_base = engine.visible_capacity();
        self.tier = Some(Box::new(engine));
    }

    /// The tier engine, when one is attached.
    pub fn tier(&self) -> Option<&TierEngine> {
        self.tier.as_deref()
    }

    /// Tier engine counters (zeros on a single-tier machine).
    pub fn tier_stats(&self) -> TierStats {
        self.tier.as_deref().map(TierEngine::stats).unwrap_or_default()
    }

    /// Tier fault counters (zeros when no tier or no tier faults).
    pub fn tier_fault_stats(&self) -> impulse_fault::TierFaultStats {
        self.tier
            .as_deref()
            .map(TierEngine::fault_stats)
            .unwrap_or_default()
    }

    /// ECC bookkeeping for the SCM's raw bit-error stream (zeros on a
    /// single-tier machine).
    pub fn scm_ecc_stats(&self) -> EccStats {
        self.tier
            .as_deref()
            .map(TierEngine::scm_ecc_stats)
            .unwrap_or_default()
    }

    /// Feeds one classified transaction to the flight recorder and the
    /// hotness sketch (both optional; both see the line-aligned address).
    #[inline]
    fn note_access(&mut self, at: Cycle, addr: u64, class: HitClass, desc: Option<u8>) {
        if let Some(f) = self.flight.as_deref_mut() {
            f.record(at, addr, class, desc);
        }
        if let Some(h) = self.hot.as_deref_mut() {
            h.observe(addr - addr % self.cfg.line_bytes);
        }
    }

    /// Attaches deterministic fault injection: DRAM bit flips (checked by
    /// the controller's ECC on the return path) and MC-TLB/page-table
    /// entry corruption. Bus-level faults live in the bus model, not
    /// here. With [`FaultConfig::none`] this is a no-op.
    pub fn set_faults(&mut self, faults: &FaultConfig) {
        self.ecc = faults.ecc;
        if let Some(inj) = faults.flip_injector() {
            self.dram.set_fault_injector(inj);
        }
        if let Some(inj) = faults.pgtbl_injector() {
            self.pgtbl.set_fault_injector(inj);
        }
        if let Some(t) = self.tier.as_deref_mut() {
            t.set_faults(faults);
        }
    }

    /// ECC bookkeeping: corrections, detected doubles, silent corruption
    /// signature, and recovery-cycle attribution.
    pub fn ecc_stats(&self) -> EccStats {
        self.ecc_stats
    }

    /// Page-table corruption/reload counters.
    pub fn pgtbl_fault_stats(&self) -> impulse_fault::PgTblFaultStats {
        self.pgtbl.fault_stats()
    }

    /// The controller configuration.
    pub fn config(&self) -> &McConfig {
        &self.cfg
    }

    /// First shadow address (= installed DRAM capacity).
    pub fn shadow_base(&self) -> PAddr {
        PAddr::new(self.shadow_base)
    }

    /// Whether a bus address falls in shadow space.
    #[inline]
    pub fn is_shadow(&self, p: PAddr) -> bool {
        p.raw() >= self.shadow_base
    }

    /// Top-level statistics.
    pub fn stats(&self) -> McStats {
        self.stats
    }

    /// Resets all controller statistics, including the DRAM's, the
    /// prefetch SRAM's, the page table's, and every descriptor's.
    pub fn reset_stats(&mut self) {
        self.stats = McStats::default();
        self.pf.reset_stats();
        self.pgtbl.reset_stats();
        self.dram.reset_stats();
        for d in self.descs.iter_mut().flatten() {
            d.reset_stats();
        }
        self.lat_direct = Histogram::new();
        self.lat_pf_hit = Histogram::new();
        self.lat_shadow = Histogram::new();
        self.lat_shadow_hit = Histogram::new();
        self.ecc_stats = EccStats::default();
        if let Some(t) = self.tier.as_deref_mut() {
            t.reset_stats();
        }
        if let Some(f) = self.flight.as_deref_mut() {
            f.clear();
        }
        if let Some(h) = self.hot.as_deref_mut() {
            h.clear();
        }
    }

    /// The MC transaction flight recorder, when
    /// [`McConfig::flight_capacity`] is non-zero.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_deref()
    }

    /// The line-hotness sketch, when [`McConfig::hotness`] is configured.
    pub fn hot(&self) -> Option<&HotSketch> {
        self.hot.as_deref()
    }

    /// Exports the controller's heat picture as an `impulse-heatmap-v1`
    /// document: per-bank row-buffer hit/miss/conflict counters plus (when
    /// hotness telemetry is enabled; `"hot"` is `null` otherwise) the
    /// sketch's current top-`k` hottest lines.
    pub fn heatmap_json(&self, k: usize) -> Json {
        let mut doc = Json::obj();
        doc.set("schema", Json::Str("impulse-heatmap-v1".into()));
        doc.set("line_bytes", Json::UInt(self.cfg.line_bytes));
        doc.set("row_bytes", Json::UInt(self.dram.config().row_bytes));
        let banks = self
            .dram
            .bank_heat()
            .iter()
            .enumerate()
            .map(|(i, h)| {
                let mut b = Json::obj();
                b.set("bank", Json::UInt(i as u64));
                b.set("row_hits", Json::UInt(h.row_hits));
                b.set("row_misses", Json::UInt(h.row_misses));
                b.set("row_conflicts", Json::UInt(h.row_conflicts));
                b
            })
            .collect();
        doc.set("banks", Json::Arr(banks));
        let hot = match &self.hot {
            None => Json::Null,
            Some(h) => {
                let mut o = Json::obj();
                o.set("observed", Json::UInt(h.observed()));
                o.set("decays", Json::UInt(h.decays()));
                let entries = h
                    .top(k)
                    .iter()
                    .map(|e| {
                        let mut ent = Json::obj();
                        ent.set("line", Json::UInt(e.line));
                        ent.set("estimate", Json::UInt(e.estimate));
                        ent
                    })
                    .collect();
                o.set("entries", Json::Arr(entries));
                o
            }
        };
        doc.set("hot", hot);
        doc
    }

    /// Latency distribution of non-shadow line reads served from DRAM.
    pub fn direct_latency(&self) -> &Histogram {
        &self.lat_direct
    }

    /// Latency distribution of line reads served from the prefetch SRAM.
    pub fn pf_hit_latency(&self) -> &Histogram {
        &self.lat_pf_hit
    }

    /// Latency distribution of shadow line reads that ran a full gather.
    pub fn shadow_latency(&self) -> &Histogram {
        &self.lat_shadow
    }

    /// Latency distribution of shadow line reads served from a
    /// descriptor's prefetch buffer.
    pub fn shadow_hit_latency(&self) -> &Histogram {
        &self.lat_shadow_hit
    }

    /// Controller page-table statistics.
    pub fn pgtbl_stats(&self) -> PgTblStats {
        self.pgtbl.stats()
    }

    /// Non-shadow prefetch SRAM statistics.
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.pf.stats()
    }

    /// Aggregated statistics across all configured descriptors.
    pub fn desc_stats(&self) -> DescStats {
        let mut total = DescStats::default();
        for d in self.descs.iter().flatten() {
            let s = d.stats();
            total.reads += s.reads;
            total.writes += s.writes;
            total.buffer_hits += s.buffer_hits;
            total.gathers += s.gathers;
            total.dram_requests += s.dram_requests;
        }
        total
    }

    /// The DRAM array behind the controller.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Mutable access to the DRAM array (tests, OS-level bookkeeping).
    pub fn dram_mut(&mut self) -> &mut Dram {
        &mut self.dram
    }

    /// Installs a pseudo-virtual page mapping (the OS "downloads a set of
    /// page mappings" during remap setup).
    pub fn map_page(&mut self, pv_page: u64, frame: MAddr) {
        self.pgtbl.map_page(pv_page, frame);
    }

    /// Claims a free descriptor slot for `region` with remapping `remap`.
    ///
    /// # Errors
    ///
    /// Returns an error if no slot is free, the region is not entirely in
    /// shadow space, it overlaps an already-configured region, or the
    /// remapping parameters are malformed ([`McError::BadDescriptor`]).
    pub fn claim_descriptor(&mut self, region: PRange, remap: RemapFn) -> Result<DescId, McError> {
        if region.start().raw() < self.shadow_base {
            return Err(McError::RegionNotShadow(region));
        }
        if self
            .descs
            .iter()
            .flatten()
            .any(|d| d.region().overlaps(&region))
        {
            return Err(McError::RegionOverlap(region));
        }
        let slot = self
            .descs
            .iter()
            .position(Option::is_none)
            .ok_or(McError::NoFreeDescriptor)?;
        let desc = ShadowDescriptor::new(
            region,
            remap,
            self.cfg.line_bytes,
            self.cfg.desc_buffer_bytes,
        )
        .map_err(McError::BadDescriptor)?;
        self.descs[slot] = Some(desc);
        Ok(DescId(slot))
    }

    /// Releases a descriptor slot.
    ///
    /// # Errors
    ///
    /// Returns an error if the slot is not configured.
    pub fn release_descriptor(&mut self, id: DescId) -> Result<(), McError> {
        match self.descs.get_mut(id.0) {
            Some(slot @ Some(_)) => {
                *slot = None;
                Ok(())
            }
            _ => Err(McError::InvalidDescriptor(id.0)),
        }
    }

    /// Read-only view of a configured descriptor.
    pub fn descriptor(&self, id: DescId) -> Option<&ShadowDescriptor> {
        self.descs.get(id.0).and_then(Option::as_ref)
    }

    /// Resolves a shadow bus address to the DRAM address it currently
    /// remaps to — the full AddrCalc + PgTbl path, with no timing or
    /// statistics effects. Returns `None` if no descriptor matches or the
    /// pseudo-virtual page is unmapped.
    pub fn resolve_shadow(&self, p: PAddr) -> Option<MAddr> {
        let desc = self.descs.iter().flatten().find(|d| d.matches(p))?;
        let soff = desc.offset_of(p);
        let pv = desc.remap().pv_of(soff);
        self.pgtbl.resolve(pv)
    }

    /// Reads the memory line containing `p`; returns the cycle at which
    /// the line's data is at the controller, ready for the bus.
    ///
    /// A shadow access with no configured descriptor or an unmapped
    /// pseudo-virtual page — a bus error on real hardware — is NACKed:
    /// the controller charges its frontend overhead, counts the rejection
    /// in [`McStats::rejected_reads`], and returns. Callers that need the
    /// cause use [`try_read_line_attributed`](Self::try_read_line_attributed).
    pub fn read_line(&mut self, p: PAddr, now: Cycle) -> Cycle {
        self.read_line_attributed(p, now).0
    }

    /// Like [`read_line`](Self::read_line), but also reports where the
    /// cycles went. The returned breakdown's [`McBreakdown::total`] equals
    /// the read latency (`returned cycle - now`) exactly — including on
    /// the NACK path.
    pub fn read_line_attributed(&mut self, p: PAddr, now: Cycle) -> (Cycle, McBreakdown) {
        match self.try_read_line_attributed(p, now) {
            Ok(r) => r,
            Err(_) => {
                self.stats.rejected_reads += 1;
                self.nack(now)
            }
        }
    }

    /// Fallible line read: the typed cause of a remapped-access failure
    /// instead of a NACK, so the memory system above can degrade the
    /// access (fall back to the non-remapped path) and account for it.
    ///
    /// # Errors
    ///
    /// [`McError::NoDescriptor`] when a shadow address matches no
    /// configured descriptor; [`McError::PvUnmapped`] when a gather
    /// touches a pseudo-virtual page with no downloaded mapping;
    /// [`McError::TierDegraded`] / [`McError::LineRetired`] when an
    /// attached hybrid tier rejects the access (dead DRAM channel in
    /// flat mode, worn-out SCM line).
    pub fn try_read_line_attributed(
        &mut self,
        p: PAddr,
        now: Cycle,
    ) -> Result<(Cycle, McBreakdown), McError> {
        let r = if self.is_shadow(p) {
            self.read_shadow(p, now)
        } else {
            self.read_physical(p, now)
        };
        if r.is_err() {
            self.note_access(now, p.raw(), HitClass::NackRead, None);
        }
        r
    }

    /// Writes the memory line containing `p` (an L2 writeback); returns
    /// the completion cycle. Writes are posted — callers need not stall on
    /// the result — but they do occupy the DRAM. Malformed shadow writes
    /// are NACKed and counted like [`read_line`](Self::read_line)
    /// rejections.
    pub fn write_line(&mut self, p: PAddr, now: Cycle) -> Cycle {
        match self.try_write_line(p, now) {
            Ok(done) => done,
            Err(_) => {
                self.stats.rejected_writes += 1;
                now + self.cfg.t_overhead
            }
        }
    }

    /// Fallible line write; see
    /// [`try_read_line_attributed`](Self::try_read_line_attributed).
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`try_read_line_attributed`](Self::try_read_line_attributed).
    pub fn try_write_line(&mut self, p: PAddr, now: Cycle) -> Result<Cycle, McError> {
        let r = if self.is_shadow(p) {
            self.write_shadow(p, now)
        } else {
            self.write_physical(p, now)
        };
        if r.is_err() {
            self.note_access(now, p.raw(), HitClass::NackWrite, None);
        }
        r
    }

    /// The timing of a rejected request: the frontend decodes, finds no
    /// descriptor (or no mapping), and NACKs.
    fn nack(&self, now: Cycle) -> (Cycle, McBreakdown) {
        let bd = McBreakdown {
            frontend: self.cfg.t_overhead,
            ..McBreakdown::default()
        };
        (now + self.cfg.t_overhead, bd)
    }

    // ---- non-shadow path -------------------------------------------------

    fn read_physical(&mut self, p: PAddr, now: Cycle) -> Result<(Cycle, McBreakdown), McError> {
        let mut bd = McBreakdown {
            frontend: self.cfg.t_overhead,
            ..McBreakdown::default()
        };
        let t = now + self.cfg.t_overhead;
        let line = p.align_down(self.cfg.line_bytes);
        if self.cfg.prefetch_nonshadow {
            if let Some(ready) = self.pf.demand_lookup(line, t) {
                self.stats.line_reads += 1;
                let data = ready.max(t) + self.cfg.t_sram;
                bd.sram = data - t;
                self.lat_pf_hit.record(data - now);
                self.note_access(now, line.raw(), HitClass::DirectSramHit, None);
                self.obl_prefetch(line.add(self.cfg.line_bytes), data);
                return Ok((data, bd));
            }
        }
        // Tier errors (dead channel, retired line) propagate before the
        // read is counted: the caller NACKs and accounts the rejection.
        let raw_done = tier_route(
            &mut self.tier,
            &mut self.dram,
            MAddr::new(line.raw()),
            AccessKind::Load,
            self.cfg.line_bytes,
            t,
            false,
        )?;
        self.stats.line_reads += 1;
        bd.dram = raw_done - t;
        // ECC sits on the controller's return path: flips that occurred
        // in the array are corrected (or flagged) here, delaying the data.
        let penalty = scrub_flips(&mut self.dram, &self.ecc, &mut self.ecc_stats);
        bd.frontend += penalty;
        let done = raw_done + penalty;
        self.lat_direct.record(done - now);
        self.note_access(now, line.raw(), HitClass::DirectDram, None);
        if self.cfg.prefetch_nonshadow {
            self.obl_prefetch(line.add(self.cfg.line_bytes), done);
        }
        Ok((done, bd))
    }

    fn write_physical(&mut self, p: PAddr, now: Cycle) -> Result<Cycle, McError> {
        let line = p.align_down(self.cfg.line_bytes);
        // Invalidate before the access: conservative and safe even when
        // the write is then rejected by a degraded tier.
        self.pf.invalidate(line);
        let done = tier_route(
            &mut self.tier,
            &mut self.dram,
            MAddr::new(line.raw()),
            AccessKind::Store,
            self.cfg.line_bytes,
            now + self.cfg.t_overhead,
            false,
        )?;
        self.stats.line_writes += 1;
        self.note_access(now, line.raw(), HitClass::StoreDirect, None);
        Ok(done + scrub_flips(&mut self.dram, &self.ecc, &mut self.ecc_stats))
    }

    /// One-block-lookahead prefetch into the 2 KB SRAM. Speculative:
    /// silently abandoned when the tier rejects the access.
    fn obl_prefetch(&mut self, line: PAddr, start: Cycle) {
        let _span = prof::span("mc.prefetch");
        if line.raw() + self.cfg.line_bytes > self.shadow_base {
            return; // next line is not backed by visible memory
        }
        if self.pf.contains(line) {
            return;
        }
        let Ok(done) = tier_route(
            &mut self.tier,
            &mut self.dram,
            MAddr::new(line.raw()),
            AccessKind::Load,
            self.cfg.line_bytes,
            start,
            false,
        ) else {
            return; // speculative: silently abandoned
        };
        let done = done + scrub_flips(&mut self.dram, &self.ecc, &mut self.ecc_stats);
        self.pf.insert(line, done);
    }

    // ---- shadow path -----------------------------------------------------

    fn desc_index(&self, p: PAddr) -> Option<usize> {
        self.descs
            .iter()
            .position(|d| d.as_ref().is_some_and(|d| d.matches(p)))
    }

    fn read_shadow(&mut self, p: PAddr, now: Cycle) -> Result<(Cycle, McBreakdown), McError> {
        let idx = self.desc_index(p).ok_or(McError::NoDescriptor(p))?;
        self.stats.shadow_line_reads += 1;
        let mut bd = McBreakdown {
            frontend: self.cfg.t_overhead,
            ..McBreakdown::default()
        };
        let t = now + self.cfg.t_overhead;
        let line = p.align_down(self.cfg.line_bytes);
        let line_bytes = self.cfg.line_bytes;
        let t_sram = self.cfg.t_sram;

        let Some(desc) = self.descs[idx].as_mut() else {
            return Err(McError::InvalidDescriptor(idx));
        };
        desc.note_read();
        if self.cfg.prefetch_shadow {
            if let Some(ready) = desc.buffer_lookup(line, t) {
                let data = ready.max(t) + t_sram;
                bd.sram = data - t;
                self.lat_shadow_hit.record(data - now);
                self.note_access(now, line.raw(), HitClass::ShadowBufHit, desc_nibble(idx));
                self.shadow_prefetch(idx, line.add(line_bytes), data);
                return Ok((data, bd));
            }
        }
        let (done, gd) = self.gather(idx, line, AccessKind::Load, t)?;
        bd.frontend += gd.frontend;
        bd.pgtbl = gd.pgtbl;
        bd.dram = gd.dram;
        self.lat_shadow.record(done - now);
        self.note_access(now, line.raw(), HitClass::ShadowGather, desc_nibble(idx));
        if self.cfg.prefetch_shadow {
            self.shadow_prefetch(idx, line.add(line_bytes), done);
        }
        Ok((done, bd))
    }

    fn write_shadow(&mut self, p: PAddr, now: Cycle) -> Result<Cycle, McError> {
        let idx = self.desc_index(p).ok_or(McError::NoDescriptor(p))?;
        self.stats.shadow_line_writes += 1;
        let line = p.align_down(self.cfg.line_bytes);
        let Some(desc) = self.descs[idx].as_mut() else {
            return Err(McError::InvalidDescriptor(idx));
        };
        desc.note_write();
        desc.buffer_invalidate(line);
        let done = self
            .gather(idx, line, AccessKind::Store, now + self.cfg.t_overhead)?
            .0;
        self.note_access(now, line.raw(), HitClass::StoreShadow, desc_nibble(idx));
        Ok(done)
    }

    /// Background gather of the next shadow line into the descriptor's
    /// 256-byte buffer. Speculative: silently abandoned if the line's
    /// pseudo-virtual pages are not all mapped (e.g. the color-excluded
    /// holes of a recolored region).
    fn shadow_prefetch(&mut self, idx: usize, line: PAddr, start: Cycle) {
        let _span = prof::span("mc.prefetch");
        let Some(desc) = self.descs.get(idx).and_then(Option::as_ref) else {
            return;
        };
        if !desc.matches(line) || desc.buffer_contains(line) {
            return;
        }
        if !self.gather_mapped(idx, line) {
            return;
        }
        let Ok((done, _)) = self.gather(idx, line, AccessKind::Load, start) else {
            return; // speculative: silently abandoned
        };
        let Some(desc) = self.descs.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        desc.buffer_insert(line, done);
    }

    /// Whether every pseudo-virtual page a gather of `line` would touch is
    /// mapped in the controller page table.
    fn gather_mapped(&mut self, idx: usize, line: PAddr) -> bool {
        let Self {
            descs,
            pgtbl,
            seg_scratch,
            cfg,
            ..
        } = self;
        let Some(desc) = descs.get(idx).and_then(Option::as_ref) else {
            return false;
        };
        let region = desc.region();
        let soff = desc.offset_of(line);
        let len = cfg.line_bytes.min(region.len() - soff);
        if let Some(vseg) = desc.remap().vector_segment(soff, len) {
            if !pgtbl.is_mapped(vseg.pv) || !pgtbl.is_mapped(vseg.pv.add(vseg.bytes - 1)) {
                return false;
            }
        }
        desc.remap().segments(soff, len, seg_scratch);
        seg_scratch
            .iter()
            .all(|seg| pgtbl.is_mapped(seg.pv) && pgtbl.is_mapped(seg.pv.add(seg.bytes - 1)))
    }

    /// Performs the gather (or scatter) for one shadow line: indirection
    /// vector reads, AddrCalc expansion, PgTbl translation, and a
    /// scheduled batch of DRAM accesses. Returns the completion cycle and
    /// the split of `done - t0` into stage times (ECC penalties land in
    /// `frontend`); the breakdown's total equals `done - t0` exactly.
    fn gather(
        &mut self,
        idx: usize,
        line: PAddr,
        kind: AccessKind,
        t0: Cycle,
    ) -> Result<(Cycle, McBreakdown), McError> {
        let _span = prof::span("mc.gather");
        let Self {
            descs,
            pgtbl,
            dram,
            sched,
            seg_scratch,
            req_scratch,
            merge_scratch,
            cfg,
            ecc,
            ecc_stats,
            tier,
            ..
        } = self;
        let Some(desc) = descs.get_mut(idx).and_then(Option::as_mut) else {
            return Err(McError::InvalidDescriptor(idx));
        };
        let region = desc.region();
        let soff = desc.offset_of(line);
        let len = cfg.line_bytes.min(region.len() - soff);

        let mut t = t0;
        let mut bd = McBreakdown::default();

        // 1. Indirection-vector reads (scatter/gather mappings only). The
        // vector is read at the controller in `vector_block_bytes` blocks;
        // sequential gathers reuse the most recent block for free.
        if let Some(vseg) = desc.remap().vector_segment(soff, len) {
            let vb = cfg.vector_block_bytes;
            let first = vseg.pv.align_down(vb);
            let end = vseg.pv.raw() + vseg.bytes;
            let mut block = first;
            while block.raw() < end {
                if !desc.vector_block_cached(block) {
                    let (m, ready) = pgtbl.translate(block, dram, t)?;
                    bd.pgtbl += ready - t;
                    t = tier_route(tier, dram, m, AccessKind::Load, vb, ready, true)?;
                    bd.dram += t - ready;
                }
                block = block.add(vb);
            }
        }

        // 2. AddrCalc: expand the shadow line into pseudo-virtual segments.
        desc.remap().segments(soff, len, seg_scratch);

        // 3. PgTbl: translate, splitting segments at page boundaries.
        req_scratch.clear();
        for seg in seg_scratch.iter() {
            let mut pv = seg.pv;
            let mut remaining = seg.bytes;
            while remaining > 0 {
                let take = (PAGE_SIZE - pv.page_offset()).min(remaining);
                let (m, ready) = pgtbl.translate(pv, dram, t)?;
                bd.pgtbl += ready.max(t) - t;
                t = t.max(ready);
                req_scratch.push((m, take));
                pv = pv.add(take);
                remaining -= take;
            }
        }

        // 3.5 Burst coalescing: consecutive requests landing in the same
        // aligned DRAM burst are one access (the DRAM returns whole
        // bursts anyway; the descriptor extracts the useful bytes). The
        // merge buffer is a reused scratch field: gathers run once per
        // shadow line, and a fresh allocation here dominated the profile.
        let granule = cfg.coalesce_bytes;
        merge_scratch.clear();
        for &(addr, bytes) in req_scratch.iter() {
            if let Some(last) = merge_scratch.last_mut() {
                let block = last.0.align_down(granule);
                if addr.raw() >= block.raw() && addr.raw() < block.raw() + granule {
                    let end = (addr.raw() + bytes).max(last.0.raw() + last.1);
                    last.1 = end - last.0.raw();
                    continue;
                }
            }
            merge_scratch.push((addr, bytes));
        }

        // 4. Issue the batch: through the DRAM scheduler on a
        // single-tier machine, through the tier engine otherwise (which
        // issues in order, like the paper's published scheduler).
        let done = match tier.as_deref_mut() {
            Some(te) => te.run_batch(dram, merge_scratch, kind, t)?,
            None => sched.run_batch_sized(dram, merge_scratch, kind, t).done,
        };
        desc.note_gather(merge_scratch.len() as u64);
        bd.dram += done.saturating_sub(t);
        // One ECC drain covers every DRAM access this gather made (vector
        // reads, page-table walks, and the batch itself).
        let penalty = scrub_flips(dram, ecc, ecc_stats);
        bd.frontend += penalty;
        Ok((done + penalty, bd))
    }

    /// Serializes the controller's mutable state: the DRAM array, the
    /// controller page table, the prefetch SRAM, every configured shadow
    /// descriptor, top-level statistics, latency histograms, and ECC
    /// bookkeeping. Configuration (`McConfig`, scheduler policy, ECC mode,
    /// shadow base) is not written — restore rebuilds it from the same
    /// config the snapshot was taken under.
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_MC);
        self.dram.snap_save(w);
        self.pgtbl.snap_save(w);
        self.pf.snap_save(w);
        w.usize(self.descs.len());
        for slot in &self.descs {
            match slot {
                Some(d) => {
                    w.bool(true);
                    d.snap_save(w);
                }
                None => w.bool(false),
            }
        }
        w.u64(self.stats.line_reads);
        w.u64(self.stats.line_writes);
        w.u64(self.stats.shadow_line_reads);
        w.u64(self.stats.shadow_line_writes);
        w.u64(self.stats.rejected_reads);
        w.u64(self.stats.rejected_writes);
        w.u64_slice(&self.lat_direct.state_words());
        w.u64_slice(&self.lat_pf_hit.state_words());
        w.u64_slice(&self.lat_shadow.state_words());
        w.u64_slice(&self.lat_shadow_hit.state_words());
        w.u64(self.ecc_stats.corrected);
        w.u64(self.ecc_stats.detected_double);
        w.u64(self.ecc_stats.silent);
        w.u64(self.ecc_stats.corrupt_sig);
        w.u64(self.ecc_stats.recovery_cycles);
        w.bool(self.tier.is_some());
        if let Some(t) = &self.tier {
            t.snap_save(w);
        }
    }

    /// Restores the state saved by [`MemController::snap_save`] into a
    /// controller freshly built with the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] if the image is malformed or was taken
    /// under a different controller geometry.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_MC)?;
        self.dram.snap_load(r)?;
        self.pgtbl.snap_load(r)?;
        self.pf.snap_load(r)?;
        let n = r.usize()?;
        if n != self.descs.len() {
            return Err(SnapError::Geometry("shadow descriptor slot count"));
        }
        for slot in &mut self.descs {
            *slot = if r.bool()? {
                Some(ShadowDescriptor::snap_load(r)?)
            } else {
                None
            };
        }
        self.stats.line_reads = r.u64()?;
        self.stats.line_writes = r.u64()?;
        self.stats.shadow_line_reads = r.u64()?;
        self.stats.shadow_line_writes = r.u64()?;
        self.stats.rejected_reads = r.u64()?;
        self.stats.rejected_writes = r.u64()?;
        for h in [
            &mut self.lat_direct,
            &mut self.lat_pf_hit,
            &mut self.lat_shadow,
            &mut self.lat_shadow_hit,
        ] {
            *h = Histogram::from_state_words(&r.u64_vec()?)
                .ok_or(SnapError::Geometry("controller latency histogram"))?;
        }
        self.ecc_stats.corrected = r.u64()?;
        self.ecc_stats.detected_double = r.u64()?;
        self.ecc_stats.silent = r.u64()?;
        self.ecc_stats.corrupt_sig = r.u64()?;
        self.ecc_stats.recovery_cycles = r.u64()?;
        let had_tier = r.bool()?;
        match (&mut self.tier, had_tier) {
            (Some(t), true) => t.snap_load(r)?,
            (None, false) => {}
            _ => return Err(SnapError::Geometry("tier engine presence")),
        }
        // Observability state (flight ring, hotness sketch) is
        // deliberately not part of the image: captures describe one
        // process's execution, not the checkpointed machine. Clear both
        // so a restored run records only what happens after the restore.
        if let Some(f) = self.flight.as_deref_mut() {
            f.clear();
        }
        if let Some(h) = self.hot.as_deref_mut() {
            h.clear();
        }
        Ok(())
    }
}

impl Observe for MemController {
    fn observe(&self, m: &mut MetricsRegistry) {
        m.counter("mc.line_reads", self.stats.line_reads);
        m.counter("mc.line_writes", self.stats.line_writes);
        m.counter("mc.shadow_line_reads", self.stats.shadow_line_reads);
        m.counter("mc.shadow_line_writes", self.stats.shadow_line_writes);
        m.counter("mc.rejected_reads", self.stats.rejected_reads);
        m.counter("mc.rejected_writes", self.stats.rejected_writes);
        let e = self.ecc_stats;
        m.counter("mc.ecc.corrected", e.corrected);
        m.counter("mc.ecc.detected_double", e.detected_double);
        m.counter("mc.ecc.silent", e.silent);
        m.counter("mc.ecc.corrupt_sig", e.corrupt_sig);
        m.counter("mc.ecc.recovery_cycles", e.recovery_cycles);
        m.histogram("mc.lat_direct", &self.lat_direct);
        m.histogram("mc.lat_pf_hit", &self.lat_pf_hit);
        m.histogram("mc.lat_shadow", &self.lat_shadow);
        m.histogram("mc.lat_shadow_hit", &self.lat_shadow_hit);
        let d = self.desc_stats();
        m.counter("mc.desc.reads", d.reads);
        m.counter("mc.desc.writes", d.writes);
        m.counter("mc.desc.buffer_hits", d.buffer_hits);
        m.counter("mc.desc.gathers", d.gathers);
        m.counter("mc.desc.dram_requests", d.dram_requests);
        if let Some(f) = &self.flight {
            m.counter("mc.flight.recorded", f.recorded());
            m.counter("mc.flight.overwritten", f.overwritten());
            m.counter("mc.flight.held", f.len() as u64);
        }
        if let Some(h) = &self.hot {
            m.counter("mc.hot.observed", h.observed());
            m.counter("mc.hot.decays", h.decays());
            m.counter("mc.hot.candidates", h.candidates_len() as u64);
        }
        if let Some(t) = &self.tier {
            t.observe_into(m);
        }
        let mut tmp = MetricsRegistry::new();
        tmp.observe(&self.pgtbl);
        tmp.observe(&self.pf);
        m.absorb("mc", &tmp);
        self.dram.observe(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impulse_dram::DramConfig;
    use impulse_types::PvAddr;
    use std::sync::Arc;

    const SHADOW: u64 = 1 << 30;

    fn small_dram() -> Dram {
        Dram::new(DramConfig::default())
    }

    fn mc(prefetch_nonshadow: bool, prefetch_shadow: bool) -> MemController {
        MemController::new(
            small_dram(),
            McConfig {
                prefetch_nonshadow,
                prefetch_shadow,
                ..McConfig::default()
            },
        )
    }

    fn map_identity(mcc: &mut MemController, pv_base: u64, frame_base: u64, pages: u64) {
        for i in 0..pages {
            mcc.map_page((pv_base >> 12) + i, MAddr::new(frame_base + i * PAGE_SIZE));
        }
    }

    #[test]
    fn shadow_boundary_is_dram_capacity() {
        let m = mc(false, false);
        assert_eq!(m.shadow_base(), PAddr::new(SHADOW));
        assert!(!m.is_shadow(PAddr::new(SHADOW - 1)));
        assert!(m.is_shadow(PAddr::new(SHADOW)));
    }

    #[test]
    fn physical_read_goes_straight_to_dram() {
        let mut m = mc(false, false);
        let done = m.read_line(PAddr::new(0x1000), 0);
        assert!(done > 0);
        assert_eq!(m.stats().line_reads, 1);
        assert_eq!(m.dram().stats().reads, 1);
        assert_eq!(m.prefetch_stats().issued, 0);
    }

    #[test]
    fn obl_prefetch_speeds_streaming() {
        let mut m_off = mc(false, false);
        let mut m_on = mc(true, false);
        // Stream four lines; with OBL the later lines should be cheaper.
        let mut t_off = 0;
        let mut t_on = 0;
        for i in 0..4u64 {
            let p = PAddr::new(0x10000 + i * 128);
            let now_off = t_off + 100;
            let now_on = t_on + 100;
            t_off = m_off.read_line(p, now_off);
            t_on = m_on.read_line(p, now_on);
        }
        assert!(m_on.prefetch_stats().hits >= 2);
        assert!(t_on < t_off, "prefetching stream should finish earlier");
    }

    #[test]
    fn obl_does_not_prefetch_into_shadow() {
        let mut m = mc(true, false);
        // Demand the last DRAM line: lookahead would cross into shadow.
        let p = PAddr::new(SHADOW - 128);
        m.read_line(p, 0);
        assert_eq!(m.prefetch_stats().issued, 0);
    }

    #[test]
    fn write_invalidates_prefetched_line() {
        let mut m = mc(true, false);
        let p = PAddr::new(0x2000);
        m.read_line(p, 0); // prefetches 0x2080
        let t = m.read_line(PAddr::new(0x2080), 1000);
        assert_eq!(m.prefetch_stats().hits, 1);
        m.write_line(PAddr::new(0x2080), t);
        // After the write, a read must go to DRAM again (no stale SRAM hit).
        m.read_line(PAddr::new(0x2080), t + 1000);
        assert_eq!(m.prefetch_stats().hits, 1);
    }

    #[test]
    fn claim_validates_regions() {
        let mut m = mc(false, false);
        let not_shadow = PRange::new(PAddr::new(0x1000), 4096);
        assert_eq!(
            m.claim_descriptor(not_shadow, RemapFn::direct(PvAddr::new(0))),
            Err(McError::RegionNotShadow(not_shadow))
        );
        let r1 = PRange::new(PAddr::new(SHADOW), 4096);
        let id = m
            .claim_descriptor(r1, RemapFn::direct(PvAddr::new(0)))
            .unwrap();
        let r2 = PRange::new(PAddr::new(SHADOW + 2048), 4096);
        assert_eq!(
            m.claim_descriptor(r2, RemapFn::direct(PvAddr::new(0))),
            Err(McError::RegionOverlap(r2))
        );
        m.release_descriptor(id).unwrap();
        assert!(m
            .claim_descriptor(r2, RemapFn::direct(PvAddr::new(0)))
            .is_ok());
        assert_eq!(
            m.release_descriptor(DescId(7)),
            Err(McError::InvalidDescriptor(7))
        );
    }

    #[test]
    fn descriptor_slots_exhaust() {
        let mut m = mc(false, false);
        for i in 0..8 {
            let r = PRange::new(PAddr::new(SHADOW + i * 4096), 4096);
            m.claim_descriptor(r, RemapFn::direct(PvAddr::new(0)))
                .unwrap();
        }
        let r = PRange::new(PAddr::new(SHADOW + 8 * 4096), 4096);
        assert_eq!(
            m.claim_descriptor(r, RemapFn::direct(PvAddr::new(0))),
            Err(McError::NoFreeDescriptor)
        );
    }

    #[test]
    fn direct_shadow_read_translates_through_pgtbl() {
        let mut m = mc(false, false);
        let region = PRange::new(PAddr::new(SHADOW), 4096);
        m.claim_descriptor(region, RemapFn::direct(PvAddr::new(0x10_0000)))
            .unwrap();
        map_identity(&mut m, 0x10_0000, 0x40_0000, 1);
        let done = m.read_line(PAddr::new(SHADOW + 128), 0);
        assert!(done > 0);
        assert_eq!(m.stats().shadow_line_reads, 1);
        assert_eq!(m.desc_stats().gathers, 1);
        // Direct mapping of a line = a single DRAM request.
        assert_eq!(m.desc_stats().dram_requests, 1);
        assert_eq!(m.pgtbl_stats().walks, 1);
    }

    #[test]
    fn adjacent_gather_segments_coalesce_into_bursts() {
        let mut m = mc(false, false);
        // Byte-granularity channel extraction: 1-byte objects, 4-byte
        // stride. A 128-byte shadow line covers 128 objects spanning 512
        // bytes of DRAM = 16 bursts of 32 bytes, not 128 word reads.
        let region = PRange::new(PAddr::new(SHADOW), 4096);
        m.claim_descriptor(region, RemapFn::strided(PvAddr::new(0), 1, 4))
            .unwrap();
        map_identity(&mut m, 0, 0, 8);
        m.read_line(PAddr::new(SHADOW), 0);
        assert_eq!(m.desc_stats().dram_requests, 16);
    }

    #[test]
    fn strided_gather_issues_one_request_per_object() {
        let mut m = mc(false, false);
        // 8-byte objects, 1 KB apart: a 128-byte line needs 16 reads.
        let region = PRange::new(PAddr::new(SHADOW), 4096);
        m.claim_descriptor(region, RemapFn::strided(PvAddr::new(0), 8, 1024))
            .unwrap();
        map_identity(&mut m, 0, 0, 8); // 16 objects * 1 KB = 4 pages + slack
        m.read_line(PAddr::new(SHADOW), 0);
        assert_eq!(m.desc_stats().dram_requests, 16);
    }

    #[test]
    fn gather_reads_indirection_vector_blocks() {
        let mut m = mc(false, false);
        // Elements 40 bytes apart: never two in one 32-byte burst, so no
        // coalescing — one DRAM read per element.
        let indices = Arc::new((0..64u64).map(|i| (i * 5) % 64).collect::<Vec<_>>());
        let remap = RemapFn::gather(PvAddr::new(0), 8, indices, PvAddr::new(0x8000), 4);
        let region = PRange::new(PAddr::new(SHADOW), 512);
        m.claim_descriptor(region, remap).unwrap();
        map_identity(&mut m, 0, 0, 1); // data page
        map_identity(&mut m, 0x8000, PAGE_SIZE, 1); // vector page
        m.read_line(PAddr::new(SHADOW), 0);
        // 16 element reads + 2 vector block reads (16 elems * 4 B = 64 B).
        assert_eq!(m.dram().stats().reads, 16 + 2 + m.pgtbl_stats().walks);
    }

    #[test]
    fn shadow_prefetch_hides_gather_latency() {
        let mut none = mc(false, false);
        let mut pf = mc(false, true);
        for m in [&mut none, &mut pf] {
            let region = PRange::new(PAddr::new(SHADOW), 4096);
            m.claim_descriptor(region, RemapFn::strided(PvAddr::new(0), 8, 1024))
                .unwrap();
            map_identity(m, 0, 0, 256);
        }
        // Sequential shadow lines far apart in time: the prefetched case
        // should serve the second line almost instantly.
        let mut lat_none = Vec::new();
        let mut lat_pf = Vec::new();
        for i in 0..4u64 {
            let p = PAddr::new(SHADOW + i * 128);
            let now = 10_000 * (i + 1);
            lat_none.push(none.read_line(p, now) - now);
            lat_pf.push(pf.read_line(p, now) - now);
        }
        assert!(lat_pf[1] < lat_none[1] / 2, "{lat_pf:?} vs {lat_none:?}");
        assert!(pf.desc_stats().buffer_hits >= 3);
    }

    #[test]
    fn scatter_write_invalidates_buffer() {
        let mut m = mc(false, true);
        let region = PRange::new(PAddr::new(SHADOW), 4096);
        m.claim_descriptor(region, RemapFn::direct(PvAddr::new(0)))
            .unwrap();
        map_identity(&mut m, 0, 0, 1);
        let t = m.read_line(PAddr::new(SHADOW), 0); // prefetches line 1
        let before = m.desc_stats().buffer_hits;
        m.write_line(PAddr::new(SHADOW + 128), t); // dirties prefetched line
        m.read_line(PAddr::new(SHADOW + 128), t + 10_000);
        // The read after the write may NOT be served from the stale buffer.
        assert_eq!(m.desc_stats().buffer_hits, before);
        assert_eq!(m.stats().shadow_line_writes, 1);
    }

    #[test]
    fn unmapped_shadow_access_degrades_to_nack() {
        let mut m = mc(false, false);
        let p = PAddr::new(SHADOW + 0x100000);
        assert_eq!(
            m.try_read_line_attributed(p, 100),
            Err(McError::NoDescriptor(p))
        );
        // The infallible entry point NACKs: frontend overhead only, no
        // DRAM traffic, rejection counted.
        let (done, bd) = m.read_line_attributed(p, 100);
        assert_eq!(done, 100 + m.config().t_overhead);
        assert_eq!(bd.total(), done - 100);
        assert_eq!(m.stats().rejected_reads, 1);
        assert_eq!(m.stats().shadow_line_reads, 0);
        assert_eq!(m.dram().stats().reads, 0);
    }

    #[test]
    fn unmapped_shadow_write_degrades_to_nack() {
        let mut m = mc(false, false);
        let p = PAddr::new(SHADOW + 0x100000);
        assert_eq!(m.try_write_line(p, 7), Err(McError::NoDescriptor(p)));
        let done = m.write_line(p, 7);
        assert_eq!(done, 7 + m.config().t_overhead);
        assert_eq!(m.stats().rejected_writes, 1);
        assert_eq!(m.dram().stats().writes, 0);
    }

    #[test]
    fn unmapped_pv_page_is_reported_not_fatal() {
        // Descriptor configured, but the OS never downloaded the page
        // mappings: the gather fails with a typed error and the
        // infallible path NACKs instead of aborting the simulation.
        let mut m = mc(false, false);
        let region = PRange::new(PAddr::new(SHADOW), 4096);
        m.claim_descriptor(region, RemapFn::direct(PvAddr::new(0x10_0000)))
            .unwrap();
        let p = PAddr::new(SHADOW + 128);
        assert_eq!(
            m.try_read_line_attributed(p, 0),
            Err(McError::PvUnmapped(0x100))
        );
        let done = m.read_line(p, 0);
        assert_eq!(done, m.config().t_overhead);
        assert_eq!(m.stats().rejected_reads, 1);
    }

    #[test]
    fn claim_rejects_malformed_descriptor_params() {
        let mut m = mc(false, false);
        let misaligned = PRange::new(PAddr::new(SHADOW + 3), 4096);
        assert!(matches!(
            m.claim_descriptor(misaligned, RemapFn::direct(PvAddr::new(0))),
            Err(McError::BadDescriptor(DescError::MisalignedRegion(_)))
        ));
        // The failed claim must not leak its slot: all eight remain free.
        for i in 0..8u64 {
            let r = PRange::new(PAddr::new(SHADOW + i * 4096), 4096);
            m.claim_descriptor(r, RemapFn::direct(PvAddr::new(0)))
                .unwrap();
        }
    }

    #[test]
    fn injected_singles_are_corrected_with_zero_data_diff() {
        use impulse_fault::{FaultConfig, Trigger};
        let mut clean = mc(false, false);
        let mut faulty = mc(false, false);
        faulty.set_faults(&FaultConfig {
            seed: 42,
            dram_flip: Trigger::EveryN { every: 1, phase: 0 },
            ..FaultConfig::none()
        });
        let mut t_clean = 0;
        let mut t_faulty = 0;
        for i in 0..8u64 {
            let p = PAddr::new(0x4000 + i * 128);
            t_clean = clean.read_line(p, t_clean + 10);
            t_faulty = faulty.read_line(p, t_faulty + 10);
        }
        let e = faulty.ecc_stats();
        assert_eq!(e.corrected, 8, "every injected single is corrected");
        assert_eq!(e.detected_double, 0);
        assert_eq!(e.corrupt_sig, 0, "SECDED correction leaves no data diff");
        assert!(e.recovery_cycles > 0);
        assert_eq!(clean.ecc_stats().corrected, 0);
        assert!(t_faulty > t_clean, "correction shows up as latency");
    }

    #[test]
    fn double_bit_flips_are_detected_but_corrupt() {
        use impulse_fault::{FaultConfig, Trigger};
        let mut m = mc(false, false);
        m.set_faults(&FaultConfig {
            seed: 7,
            dram_flip: Trigger::EveryN { every: 1, phase: 0 },
            dram_double_permille: 1000,
            ..FaultConfig::none()
        });
        m.read_line(PAddr::new(0x8000), 0);
        let e = m.ecc_stats();
        assert_eq!(e.detected_double, 1);
        assert_eq!(e.corrected, 0);
        assert_ne!(e.corrupt_sig, 0, "uncorrectable flips dirty the data");
    }

    #[test]
    fn no_ecc_passes_flips_silently() {
        use impulse_fault::{EccMode, FaultConfig, Trigger};
        let mut m = mc(false, false);
        m.set_faults(&FaultConfig {
            seed: 7,
            dram_flip: Trigger::EveryN { every: 1, phase: 0 },
            ecc: EccConfig {
                mode: EccMode::None,
                ..EccConfig::default()
            },
            ..FaultConfig::none()
        });
        let done = m.read_line(PAddr::new(0x8000), 0);
        let e = m.ecc_stats();
        assert_eq!(e.silent, 1);
        assert_ne!(e.corrupt_sig, 0);
        assert_eq!(e.recovery_cycles, 0, "no ECC datapath, no penalty");
        // Same timing as a fault-free read: the corruption is invisible.
        let mut clean = mc(false, false);
        assert_eq!(clean.read_line(PAddr::new(0x8000), 0), done);
    }

    #[test]
    fn breakdown_sums_to_latency_under_ecc_faults() {
        use impulse_fault::{FaultConfig, Trigger};
        let mut m = mc(false, false);
        m.set_faults(&FaultConfig {
            seed: 3,
            dram_flip: Trigger::EveryN { every: 1, phase: 0 },
            ..FaultConfig::none()
        });
        let (done, bd) = m.read_line_attributed(PAddr::new(0x3000), 0);
        assert_eq!(bd.total(), done);
        assert!(
            bd.frontend > m.config().t_overhead,
            "ECC penalty attributed"
        );

        let region = PRange::new(PAddr::new(SHADOW), 4096);
        m.claim_descriptor(region, RemapFn::direct(PvAddr::new(0)))
            .unwrap();
        map_identity(&mut m, 0, 0, 1);
        let (sdone, sbd) = m.read_line_attributed(PAddr::new(SHADOW), done + 10);
        assert_eq!(sbd.total(), sdone - (done + 10));
    }

    #[test]
    fn breakdown_sums_to_latency_on_every_read_path() {
        // Non-shadow: DRAM miss then prefetch-SRAM hit.
        let mut m = mc(true, false);
        let (done, bd) = m.read_line_attributed(PAddr::new(0x3000), 0);
        assert_eq!(bd.total(), done);
        assert!(bd.dram > 0);
        let now = done + 500;
        let (done2, bd2) = m.read_line_attributed(PAddr::new(0x3080), now);
        assert_eq!(bd2.total(), done2 - now);
        assert!(bd2.sram > 0, "second streamed line should hit the SRAM");
        assert_eq!(bd2.dram, 0);

        // Shadow: full gather then descriptor-buffer hit.
        let mut s = mc(false, true);
        let region = PRange::new(PAddr::new(SHADOW), 4096);
        s.claim_descriptor(region, RemapFn::direct(PvAddr::new(0)))
            .unwrap();
        map_identity(&mut s, 0, 0, 1);
        let (gdone, gbd) = s.read_line_attributed(PAddr::new(SHADOW), 0);
        assert_eq!(gbd.total(), gdone);
        assert!(gbd.pgtbl > 0, "first gather pays a page-table walk");
        assert!(gbd.dram > 0);
        let now = gdone + 10_000;
        let (hdone, hbd) = s.read_line_attributed(PAddr::new(SHADOW + 128), now);
        assert_eq!(hbd.total(), hdone - now);
        assert!(hbd.sram > 0, "prefetched shadow line should hit the buffer");
        assert_eq!(hbd.dram, 0);
    }

    #[test]
    fn latency_histograms_track_read_paths() {
        let mut m = mc(true, false);
        m.read_line(PAddr::new(0x3000), 0); // direct
        m.read_line(PAddr::new(0x3080), 5_000); // SRAM hit
        assert_eq!(m.direct_latency().count(), 1);
        assert_eq!(m.pf_hit_latency().count(), 1);
        assert!(m.direct_latency().min() > m.pf_hit_latency().max());
        m.reset_stats();
        assert_eq!(m.direct_latency().count(), 0);
        assert_eq!(m.pf_hit_latency().count(), 0);
    }

    #[test]
    fn observe_exports_component_namespaces() {
        let mut m = mc(false, true);
        let region = PRange::new(PAddr::new(SHADOW), 4096);
        m.claim_descriptor(region, RemapFn::direct(PvAddr::new(0)))
            .unwrap();
        map_identity(&mut m, 0, 0, 1);
        m.read_line(PAddr::new(SHADOW), 0);
        m.read_line(PAddr::new(0x1000), 10_000);

        let mut reg = MetricsRegistry::new();
        reg.observe(&m);
        assert_eq!(reg.counter_value("mc.line_reads"), Some(1));
        assert_eq!(reg.counter_value("mc.shadow_line_reads"), Some(1));
        assert_eq!(
            reg.counter_value("mc.pgtbl.walks"),
            Some(m.pgtbl_stats().walks)
        );
        assert_eq!(reg.counter_value("mc.pf.hits"), Some(0));
        assert_eq!(
            reg.counter_value("mc.desc.gathers"),
            Some(m.desc_stats().gathers)
        );
        assert_eq!(
            reg.counter_value("dram.reads"),
            Some(m.dram().stats().reads)
        );
        assert_eq!(reg.histogram_value("mc.lat_shadow").unwrap().count(), 1);
        assert_eq!(reg.histogram_value("mc.lat_direct").unwrap().count(), 1);
    }

    #[test]
    fn eight_descriptors_serve_interleaved_traffic() {
        let mut m = mc(false, true);
        let mut regions = Vec::new();
        for i in 0..8u64 {
            let r = PRange::new(PAddr::new(SHADOW + i * (1 << 16)), 1 << 14);
            m.claim_descriptor(r, RemapFn::direct(PvAddr::new(i << 24)))
                .unwrap();
            for page in 0..4u64 {
                m.map_page((i << 12) + page, MAddr::new((i << 20) + (page << 12)));
            }
            regions.push(r);
        }
        // Round-robin reads across every descriptor, twice.
        let mut now = 0;
        for round in 0..2u64 {
            for r in &regions {
                now = m.read_line(r.start().add(round * 128), now + 10);
            }
        }
        let s = m.desc_stats();
        assert_eq!(s.reads, 16);
        assert!(s.gathers >= 8);
        assert_eq!(m.stats().shadow_line_reads, 16);
    }

    /// A controller with observability enabled, shadow prefetch on.
    fn observed_mc() -> MemController {
        MemController::new(
            small_dram(),
            McConfig {
                prefetch_nonshadow: true,
                prefetch_shadow: true,
                flight_capacity: 1 << 12,
                hotness: Some(SketchConfig::default()),
                ..McConfig::default()
            },
        )
    }

    #[test]
    fn flight_recorder_classifies_every_transaction_kind() {
        use crate::flight::HitClass as H;
        let mut m = observed_mc();
        let region = PRange::new(PAddr::new(SHADOW), 4096);
        let id = m
            .claim_descriptor(region, RemapFn::direct(PvAddr::new(0)))
            .unwrap();
        map_identity(&mut m, 0, 0, 2);
        // Direct path: miss then stream (SRAM hits), plus a store.
        let mut t = 0;
        for i in 0..4u64 {
            t = m.read_line(PAddr::new(0x4000 + i * 128), t + 1000);
        }
        m.write_line(PAddr::new(0x4000), t);
        // Shadow path: gather, buffered re-reads, scatter store.
        for i in 0..3u64 {
            t = m.read_line(PAddr::new(SHADOW + i * 128), t + 10_000);
        }
        m.write_line(PAddr::new(SHADOW), t);
        // NACKs: shadow with no descriptor.
        m.read_line(PAddr::new(SHADOW + 0x10_0000), t);
        m.write_line(PAddr::new(SHADOW + 0x10_0000), t);

        let f = m.flight().expect("flight recorder is enabled");
        assert_eq!(f.overwritten(), 0);
        let events = f.events();
        let have: std::collections::HashSet<H> = events.iter().map(|e| e.class).collect();
        for class in [
            H::DirectDram,
            H::DirectSramHit,
            H::ShadowGather,
            H::ShadowBufHit,
            H::StoreDirect,
            H::StoreShadow,
            H::NackRead,
            H::NackWrite,
        ] {
            assert!(have.contains(&class), "missing {class:?} in {have:?}");
        }
        // Shadow events carry the descriptor slot; direct ones do not.
        for e in &events {
            match e.class {
                H::ShadowGather | H::ShadowBufHit | H::StoreShadow => {
                    assert_eq!(e.desc, Some(id.index() as u8));
                }
                _ => assert_eq!(e.desc, None),
            }
        }
        // The capture round-trips bit-exactly.
        let bytes = f.encode();
        let cap = crate::flight::decode(&bytes).unwrap();
        assert_eq!(cap.events, events);
        assert_eq!(cap.encode(), bytes);
        // The sketch observed exactly the recorded transactions.
        let h = m.hot().expect("sketch is enabled");
        assert_eq!(h.observed(), f.recorded());

        // Heatmap export carries the schema, per-bank heat, and hot set.
        let doc = m.heatmap_json(8);
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("impulse-heatmap-v1")
        );
        let banks = doc.get("banks").and_then(Json::items).unwrap();
        assert_eq!(banks.len() as u64, m.dram().config().banks);
        let hits: u64 = banks
            .iter()
            .map(|b| b.get("row_hits").and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(hits, m.dram().stats().row_hits);
        let entries = doc
            .get("hot")
            .and_then(|h| h.get("entries"))
            .and_then(Json::items)
            .unwrap();
        assert!(!entries.is_empty());

        // Registry export and reset.
        let mut reg = MetricsRegistry::new();
        m.observe(&mut reg);
        assert_eq!(reg.counter_value("mc.flight.recorded"), Some(f.recorded()));
        assert_eq!(reg.counter_value("mc.hot.observed"), Some(h.observed()));
        m.reset_stats();
        assert!(m.flight().unwrap().is_empty());
        assert_eq!(m.hot().unwrap().observed(), 0);
    }

    #[test]
    fn disabled_observability_records_nothing() {
        let mut m = mc(false, false);
        m.read_line(PAddr::new(0), 0);
        assert!(m.flight().is_none());
        assert!(m.hot().is_none());
        let doc = m.heatmap_json(8);
        assert_eq!(doc.get("hot"), Some(&Json::Null));
        assert!(doc.get("banks").and_then(Json::items).is_some());
    }
}
