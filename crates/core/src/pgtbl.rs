//! The controller page table (PgTbl): pseudo-virtual → physical, with an
//! on-chip TLB backed by main memory.
//!
//! The OS downloads page-grained mappings for every remapped data
//! structure (step 4 of the remapping protocol in Section 2.1). At access
//! time the controller's AddrCalc produces pseudo-virtual addresses; this
//! unit translates them to real DRAM addresses. Translations that miss the
//! on-chip TLB cost a DRAM read of the memory-resident table.

use std::collections::HashMap;

use impulse_dram::Dram;
use impulse_obs::{MetricsRegistry, Observe};
use impulse_types::geom::{PAGE_SHIFT, PAGE_SIZE};
use impulse_types::{AccessKind, Cycle, MAddr, PvAddr};

/// Configuration of the controller page table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PgTblConfig {
    /// On-chip TLB entries.
    pub tlb_entries: usize,
    /// DRAM location of the memory-resident table (for walk reads).
    pub table_base: MAddr,
    /// Bytes read per walk.
    pub walk_bytes: u64,
}

impl Default for PgTblConfig {
    fn default() -> Self {
        Self {
            tlb_entries: 64,
            // Park the table in the top megabyte of a 1 GB DRAM; the OS
            // model reserves this region.
            table_base: MAddr::new((1 << 30) - (1 << 20)),
            walk_bytes: 8,
        }
    }
}

/// Statistics for the controller page table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PgTblStats {
    /// Translations requested.
    pub lookups: u64,
    /// Translations served by the on-chip TLB.
    pub tlb_hits: u64,
    /// Walk reads issued to DRAM.
    pub walks: u64,
}

/// Controller page table with an on-chip TLB.
#[derive(Clone, Debug)]
pub struct PgTbl {
    cfg: PgTblConfig,
    map: HashMap<u64, MAddr>,
    /// Fully-associative LRU TLB over pv pages (small; linear scan).
    tlb: Vec<(u64, u64)>, // (pv page, stamp)
    tick: u64,
    stats: PgTblStats,
}

impl PgTbl {
    /// Builds an empty controller page table.
    ///
    /// # Panics
    ///
    /// Panics if the TLB would have zero entries.
    pub fn new(cfg: PgTblConfig) -> Self {
        assert!(
            cfg.tlb_entries > 0,
            "controller TLB needs at least one entry"
        );
        Self {
            cfg,
            map: HashMap::new(),
            tlb: Vec::new(),
            tick: 0,
            stats: PgTblStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PgTblStats {
        self.stats
    }

    /// Resets statistics (mappings and cached translations are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = PgTblStats::default();
    }

    /// Installs (or replaces) the mapping for one pseudo-virtual page.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not page-aligned.
    pub fn map_page(&mut self, pv_page: u64, frame: MAddr) {
        assert!(
            frame.raw().is_multiple_of(PAGE_SIZE),
            "page frames must be page-aligned: {frame:?}"
        );
        self.map.insert(pv_page, frame);
    }

    /// Removes the mapping for a pseudo-virtual page and drops any cached
    /// translation.
    pub fn unmap_page(&mut self, pv_page: u64) {
        self.map.remove(&pv_page);
        self.tlb.retain(|&(p, _)| p != pv_page);
    }

    /// Number of installed page mappings.
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }

    /// Whether a pseudo-virtual address has a mapping installed.
    pub fn is_mapped(&self, pv: PvAddr) -> bool {
        self.map.contains_key(&(pv.raw() >> PAGE_SHIFT))
    }

    /// Resolves a pseudo-virtual address to its DRAM address without
    /// timing or statistics effects (for inspection and testing).
    pub fn resolve(&self, pv: PvAddr) -> Option<MAddr> {
        self.map
            .get(&(pv.raw() >> PAGE_SHIFT))
            .map(|frame| frame.add(pv.page_offset()))
    }

    /// Translates a pseudo-virtual address; returns the DRAM address and
    /// the cycle at which the translation is available (TLB misses pay a
    /// DRAM walk).
    ///
    /// # Panics
    ///
    /// Panics if the page was never mapped — the OS must download mappings
    /// before the CPU touches the corresponding shadow addresses.
    pub fn translate(&mut self, pv: PvAddr, dram: &mut Dram, now: Cycle) -> (MAddr, Cycle) {
        self.stats.lookups += 1;
        let pv_page = pv.raw() >> PAGE_SHIFT;
        let frame = *self.map.get(&pv_page).unwrap_or_else(|| {
            panic!("controller page table has no mapping for pv page {pv_page:#x}")
        });
        let maddr = frame.add(pv.page_offset());

        self.tick += 1;
        if let Some(entry) = self.tlb.iter_mut().find(|(p, _)| *p == pv_page) {
            entry.1 = self.tick;
            self.stats.tlb_hits += 1;
            return (maddr, now);
        }

        // TLB miss: read the memory-resident table entry.
        self.stats.walks += 1;
        let entry_addr = self
            .cfg
            .table_base
            .add((pv_page % (1 << 17)) * self.cfg.walk_bytes);
        let ready = dram.access(entry_addr, AccessKind::Load, self.cfg.walk_bytes, now);

        if self.tlb.len() < self.cfg.tlb_entries {
            self.tlb.push((pv_page, self.tick));
        } else {
            let victim = self
                .tlb
                .iter()
                .enumerate()
                .min_by_key(|(_, &(_, stamp))| stamp)
                .map(|(i, _)| i)
                .expect("TLB is non-empty when full");
            self.tlb[victim] = (pv_page, self.tick);
        }
        (maddr, ready)
    }

    /// Drops all cached translations (mappings stay installed).
    pub fn flush_tlb(&mut self) {
        self.tlb.clear();
    }
}

impl Observe for PgTbl {
    fn observe(&self, m: &mut MetricsRegistry) {
        m.counter("pgtbl.lookups", self.stats.lookups);
        m.counter("pgtbl.tlb_hits", self.stats.tlb_hits);
        m.counter("pgtbl.walks", self.stats.walks);
        let hit_ratio = if self.stats.lookups == 0 {
            0.0
        } else {
            self.stats.tlb_hits as f64 / self.stats.lookups as f64
        };
        m.gauge("pgtbl.tlb_hit_ratio", hit_ratio);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impulse_dram::DramConfig;

    fn setup() -> (PgTbl, Dram) {
        let cfg = PgTblConfig {
            tlb_entries: 2,
            table_base: MAddr::new(0x1000_0000),
            walk_bytes: 8,
        };
        (PgTbl::new(cfg), Dram::new(DramConfig::default()))
    }

    #[test]
    fn translate_applies_page_offset() {
        let (mut pt, mut dram) = setup();
        pt.map_page(5, MAddr::new(0x8000));
        let (m, _) = pt.translate(PvAddr::new(5 * PAGE_SIZE + 0x123), &mut dram, 0);
        assert_eq!(m, MAddr::new(0x8123));
    }

    #[test]
    fn first_translation_walks_then_hits() {
        let (mut pt, mut dram) = setup();
        pt.map_page(1, MAddr::new(0));
        let (_, t1) = pt.translate(PvAddr::new(PAGE_SIZE), &mut dram, 0);
        assert!(t1 > 0, "miss should pay a walk");
        let (_, t2) = pt.translate(PvAddr::new(PAGE_SIZE + 8), &mut dram, t1);
        assert_eq!(t2, t1, "hit should be free");
        assert_eq!(pt.stats().walks, 1);
        assert_eq!(pt.stats().tlb_hits, 1);
    }

    #[test]
    fn lru_eviction_in_tiny_tlb() {
        let (mut pt, mut dram) = setup();
        for p in 0..3 {
            pt.map_page(p, MAddr::new(p * PAGE_SIZE));
        }
        pt.translate(PvAddr::new(0), &mut dram, 0); // walk 0
        pt.translate(PvAddr::new(PAGE_SIZE), &mut dram, 0); // walk 1
        pt.translate(PvAddr::new(2 * PAGE_SIZE), &mut dram, 0); // walk 2, evict 0
        pt.translate(PvAddr::new(0), &mut dram, 0); // walk again
        assert_eq!(pt.stats().walks, 4);
    }

    #[test]
    fn unmap_page_forgets_translation() {
        let (mut pt, mut dram) = setup();
        pt.map_page(1, MAddr::new(0));
        pt.translate(PvAddr::new(PAGE_SIZE), &mut dram, 0);
        pt.unmap_page(1);
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn flush_tlb_forces_rewalk() {
        let (mut pt, mut dram) = setup();
        pt.map_page(1, MAddr::new(0));
        pt.translate(PvAddr::new(PAGE_SIZE), &mut dram, 0);
        pt.flush_tlb();
        pt.translate(PvAddr::new(PAGE_SIZE), &mut dram, 0);
        assert_eq!(pt.stats().walks, 2);
    }

    #[test]
    #[should_panic(expected = "no mapping")]
    fn unmapped_page_panics() {
        let (mut pt, mut dram) = setup();
        let _ = pt.translate(PvAddr::new(0), &mut dram, 0);
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn misaligned_frame_rejected() {
        let (mut pt, _) = setup();
        pt.map_page(0, MAddr::new(12));
    }
}
