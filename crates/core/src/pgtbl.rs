//! The controller page table (PgTbl): pseudo-virtual → physical, with an
//! on-chip TLB backed by main memory.
//!
//! The OS downloads page-grained mappings for every remapped data
//! structure (step 4 of the remapping protocol in Section 2.1). At access
//! time the controller's AddrCalc produces pseudo-virtual addresses; this
//! unit translates them to real DRAM addresses. Translations that miss the
//! on-chip TLB cost a DRAM read of the memory-resident table.

use impulse_dram::Dram;
use impulse_fault::{PgTblFaultStats, PgTblInjector};
use impulse_obs::{MetricsRegistry, Observe};
use impulse_types::geom::{PAGE_SHIFT, PAGE_SIZE};
use impulse_types::snap::{SnapError, SnapReader, SnapWriter};
use impulse_types::{AccessKind, Cycle, FxHashMap, MAddr, PvAddr};

use crate::controller::McError;

/// Snapshot section tag for [`PgTbl`] (`"PGTB"`).
const TAG_PGTBL: u32 = 0x5047_5442;

/// Configuration of the controller page table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PgTblConfig {
    /// On-chip TLB entries.
    pub tlb_entries: usize,
    /// DRAM location of the memory-resident table (for walk reads).
    pub table_base: MAddr,
    /// Bytes read per walk.
    pub walk_bytes: u64,
}

impl Default for PgTblConfig {
    fn default() -> Self {
        Self {
            tlb_entries: 64,
            // Park the table in the top megabyte of a 1 GB DRAM; the OS
            // model reserves this region.
            table_base: MAddr::new((1 << 30) - (1 << 20)),
            walk_bytes: 8,
        }
    }
}

/// Statistics for the controller page table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PgTblStats {
    /// Translations requested.
    pub lookups: u64,
    /// Translations served by the on-chip TLB.
    pub tlb_hits: u64,
    /// Walk reads issued to DRAM.
    pub walks: u64,
}

/// Slots in the direct-mapped front cache over the on-chip TLB (a host
/// optimization mirroring `Machine::xlat`, not an architectural
/// structure: front hits behave exactly like TLB hits).
const FRONT_SLOTS: usize = 32;
/// Tag marking an empty front-cache slot.
const FRONT_EMPTY: u64 = u64::MAX;

/// Controller page table with an on-chip TLB.
#[derive(Clone, Debug)]
pub struct PgTbl {
    cfg: PgTblConfig,
    map: FxHashMap<u64, MAddr>,
    /// Fully-associative LRU TLB over pv pages (small; linear scan).
    tlb: Vec<(u64, u64)>, // (pv page, stamp)
    tick: u64,
    stats: PgTblStats,
    /// Direct-mapped memo of recent TLB hits: (pv page, frame base, TLB
    /// slot). A hit must still bump the slot's LRU stamp, so the slot
    /// index is cached and re-validated against the TLB on use; any
    /// mismatch (eviction, unmap, flush) falls through to the full path.
    front: [(u64, u64, usize); FRONT_SLOTS],
    /// Optional deterministic corruption of cached entries.
    faults: Option<PgTblInjector>,
}

impl PgTbl {
    /// Builds an empty controller page table. A zero-entry TLB request
    /// is clamped to one entry (the hardware minimum) rather than
    /// rejected.
    pub fn new(cfg: PgTblConfig) -> Self {
        let cfg = PgTblConfig {
            tlb_entries: cfg.tlb_entries.max(1),
            ..cfg
        };
        Self {
            cfg,
            map: FxHashMap::default(),
            tlb: Vec::new(),
            tick: 0,
            stats: PgTblStats::default(),
            front: [(FRONT_EMPTY, 0, 0); FRONT_SLOTS],
            faults: None,
        }
    }

    /// Attaches a deterministic MC-TLB/page-table corruption injector.
    /// Corrupted cached entries are detected at use (parity) and
    /// recovered by re-walking the backing memory-resident table.
    pub fn set_fault_injector(&mut self, injector: PgTblInjector) {
        self.faults = Some(injector);
    }

    /// Corruption/reload counters (zeros when no injector is attached).
    pub fn fault_stats(&self) -> PgTblFaultStats {
        self.faults
            .as_ref()
            .map(PgTblInjector::stats)
            .unwrap_or_default()
    }

    /// Drops any front-cache memo for one pv page (mapping or TLB slot
    /// contents changed).
    #[inline]
    fn front_invalidate(&mut self, pv_page: u64) {
        let slot = &mut self.front[(pv_page as usize) & (FRONT_SLOTS - 1)];
        if slot.0 == pv_page {
            slot.0 = FRONT_EMPTY;
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PgTblStats {
        self.stats
    }

    /// Resets statistics (mappings and cached translations are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = PgTblStats::default();
    }

    /// Installs (or replaces) the mapping for one pseudo-virtual page.
    ///
    /// `frame` must be page-aligned; the OS allocator only produces
    /// aligned frames, so this is an internal invariant (debug-checked).
    pub fn map_page(&mut self, pv_page: u64, frame: MAddr) {
        debug_assert!(
            frame.raw().is_multiple_of(PAGE_SIZE),
            "page frames must be page-aligned: {frame:?}"
        );
        self.map.insert(pv_page, frame);
        // A replaced mapping may still have a (now stale) frame memoized.
        self.front_invalidate(pv_page);
    }

    /// Removes the mapping for a pseudo-virtual page and drops any cached
    /// translation.
    pub fn unmap_page(&mut self, pv_page: u64) {
        self.map.remove(&pv_page);
        self.tlb.retain(|&(p, _)| p != pv_page);
        // `retain` shifts TLB slots, so every memoized slot index is now
        // suspect; the per-use revalidation catches survivors that moved,
        // but the unmapped page itself must go now.
        self.front_invalidate(pv_page);
    }

    /// Number of installed page mappings.
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }

    /// Whether a pseudo-virtual address has a mapping installed.
    pub fn is_mapped(&self, pv: PvAddr) -> bool {
        self.map.contains_key(&(pv.raw() >> PAGE_SHIFT))
    }

    /// Resolves a pseudo-virtual address to its DRAM address without
    /// timing or statistics effects (for inspection and testing).
    pub fn resolve(&self, pv: PvAddr) -> Option<MAddr> {
        self.map
            .get(&(pv.raw() >> PAGE_SHIFT))
            .map(|frame| frame.add(pv.page_offset()))
    }

    /// Translates a pseudo-virtual address; returns the DRAM address and
    /// the cycle at which the translation is available (TLB misses pay a
    /// DRAM walk).
    ///
    /// Returns [`McError::PvUnmapped`] if the page was never mapped —
    /// the OS must download mappings before the CPU touches the
    /// corresponding shadow addresses.
    pub fn translate(
        &mut self,
        pv: PvAddr,
        dram: &mut Dram,
        now: Cycle,
    ) -> Result<(MAddr, Cycle), McError> {
        let _span = impulse_obs::prof::span("mc.translate");
        self.stats.lookups += 1;
        let pv_page = pv.raw() >> PAGE_SHIFT;

        // Fault injection: flip bits in the cached copy of this page's
        // entry. The parity check detects it at use; the entry is
        // discarded and reloaded below from the memory-resident table
        // (the authoritative copy), charging the walk as recovery.
        let mut reloading_corrupt_entry = false;
        if let Some(f) = &mut self.faults {
            if f.corrupts(now) && self.tlb.iter().any(|&(p, _)| p == pv_page) {
                f.note_corruption();
                self.tlb.retain(|&(p, _)| p != pv_page);
                self.front_invalidate(pv_page);
                reloading_corrupt_entry = true;
            }
        }

        // Front cache: a validated hit is a TLB hit without the map
        // lookup or the linear scan. Stats and the LRU stamp advance
        // exactly as on the full path, so cycle-level behavior (and thus
        // every simulated result) is unchanged.
        let fslot = (pv_page as usize) & (FRONT_SLOTS - 1);
        let (tag, frame_base, tslot) = self.front[fslot];
        if tag == pv_page {
            if let Some(entry) = self.tlb.get_mut(tslot) {
                if entry.0 == pv_page {
                    self.tick += 1;
                    entry.1 = self.tick;
                    self.stats.tlb_hits += 1;
                    return Ok((MAddr::new(frame_base).add(pv.page_offset()), now));
                }
            }
            self.front[fslot].0 = FRONT_EMPTY;
        }

        let Some(&frame) = self.map.get(&pv_page) else {
            return Err(McError::PvUnmapped(pv_page));
        };
        let maddr = frame.add(pv.page_offset());

        self.tick += 1;
        if let Some((slot, entry)) = self
            .tlb
            .iter_mut()
            .enumerate()
            .find(|(_, (p, _))| *p == pv_page)
        {
            entry.1 = self.tick;
            self.stats.tlb_hits += 1;
            self.front[fslot] = (pv_page, frame.raw(), slot);
            return Ok((maddr, now));
        }

        // TLB miss: read the memory-resident table entry.
        self.stats.walks += 1;
        let entry_addr = self
            .cfg
            .table_base
            .add((pv_page % (1 << 17)) * self.cfg.walk_bytes);
        let ready = dram.access(entry_addr, AccessKind::Load, self.cfg.walk_bytes, now);
        if reloading_corrupt_entry {
            if let Some(f) = &mut self.faults {
                f.note_reload(ready - now);
            }
        }

        let slot = if self.tlb.len() < self.cfg.tlb_entries {
            self.tlb.push((pv_page, self.tick));
            self.tlb.len() - 1
        } else {
            // The TLB is full (≥ 1 entry), so a minimum always exists.
            let victim = self
                .tlb
                .iter()
                .enumerate()
                .min_by_key(|(_, &(_, stamp))| stamp)
                .map(|(i, _)| i)
                .unwrap_or(0);
            self.tlb[victim] = (pv_page, self.tick);
            victim
        };
        self.front[fslot] = (pv_page, frame.raw(), slot);
        Ok((maddr, ready))
    }

    /// Drops all cached translations (mappings stay installed).
    pub fn flush_tlb(&mut self) {
        self.tlb.clear();
        self.front = [(FRONT_EMPTY, 0, 0); FRONT_SLOTS];
    }

    /// Serializes installed mappings (sorted by page for determinism),
    /// the on-chip TLB verbatim (slot order carries front-cache memoized
    /// indices), the LRU tick, the front cache, statistics, and any
    /// fault-injector dynamic state.
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_PGTBL);
        let mut pages: Vec<(u64, u64)> = self.map.iter().map(|(&p, m)| (p, m.raw())).collect();
        pages.sort_unstable();
        w.usize(pages.len());
        for (p, m) in pages {
            w.u64(p);
            w.u64(m);
        }
        w.usize(self.tlb.len());
        for &(p, stamp) in &self.tlb {
            w.u64(p);
            w.u64(stamp);
        }
        w.u64(self.tick);
        w.u64(self.stats.lookups);
        w.u64(self.stats.tlb_hits);
        w.u64(self.stats.walks);
        for &(tag, frame, slot) in &self.front {
            w.u64(tag);
            w.u64(frame);
            w.usize(slot);
        }
        w.bool(self.faults.is_some());
        if let Some(f) = &self.faults {
            f.snap_save(w);
        }
    }

    /// Restores the state saved by [`PgTbl::snap_save`] into a page table
    /// freshly built from the same configuration.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_PGTBL)?;
        let n = r.usize()?;
        self.map.clear();
        for _ in 0..n {
            let p = r.u64()?;
            let m = r.u64()?;
            self.map.insert(p, MAddr::new(m));
        }
        let tlb_len = r.usize()?;
        if tlb_len > self.cfg.tlb_entries {
            return Err(SnapError::Geometry("MC-TLB entry count"));
        }
        self.tlb.clear();
        for _ in 0..tlb_len {
            let p = r.u64()?;
            let stamp = r.u64()?;
            self.tlb.push((p, stamp));
        }
        self.tick = r.u64()?;
        self.stats.lookups = r.u64()?;
        self.stats.tlb_hits = r.u64()?;
        self.stats.walks = r.u64()?;
        for slot in &mut self.front {
            slot.0 = r.u64()?;
            slot.1 = r.u64()?;
            slot.2 = r.usize()?;
        }
        let had_faults = r.bool()?;
        match (&mut self.faults, had_faults) {
            (Some(f), true) => f.snap_load(r)?,
            (None, false) => {}
            _ => return Err(SnapError::Geometry("pgtbl fault injector presence")),
        }
        Ok(())
    }
}

impl Observe for PgTbl {
    fn observe(&self, m: &mut MetricsRegistry) {
        m.counter("pgtbl.lookups", self.stats.lookups);
        m.counter("pgtbl.tlb_hits", self.stats.tlb_hits);
        m.counter("pgtbl.walks", self.stats.walks);
        let hit_ratio = if self.stats.lookups == 0 {
            0.0
        } else {
            self.stats.tlb_hits as f64 / self.stats.lookups as f64
        };
        m.gauge("pgtbl.tlb_hit_ratio", hit_ratio);
        if self.faults.is_some() {
            let f = self.fault_stats();
            m.counter("pgtbl.fault.corruptions", f.corruptions);
            m.counter("pgtbl.fault.reloads", f.reloads);
            m.counter("pgtbl.fault.recovery_cycles", f.recovery_cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impulse_dram::DramConfig;

    fn setup() -> (PgTbl, Dram) {
        let cfg = PgTblConfig {
            tlb_entries: 2,
            table_base: MAddr::new(0x1000_0000),
            walk_bytes: 8,
        };
        (PgTbl::new(cfg), Dram::new(DramConfig::default()))
    }

    #[test]
    fn translate_applies_page_offset() {
        let (mut pt, mut dram) = setup();
        pt.map_page(5, MAddr::new(0x8000));
        let (m, _) = pt
            .translate(PvAddr::new(5 * PAGE_SIZE + 0x123), &mut dram, 0)
            .unwrap();
        assert_eq!(m, MAddr::new(0x8123));
    }

    #[test]
    fn first_translation_walks_then_hits() {
        let (mut pt, mut dram) = setup();
        pt.map_page(1, MAddr::new(0));
        let (_, t1) = pt.translate(PvAddr::new(PAGE_SIZE), &mut dram, 0).unwrap();
        assert!(t1 > 0, "miss should pay a walk");
        let (_, t2) = pt
            .translate(PvAddr::new(PAGE_SIZE + 8), &mut dram, t1)
            .unwrap();
        assert_eq!(t2, t1, "hit should be free");
        assert_eq!(pt.stats().walks, 1);
        assert_eq!(pt.stats().tlb_hits, 1);
    }

    #[test]
    fn lru_eviction_in_tiny_tlb() {
        let (mut pt, mut dram) = setup();
        for p in 0..3 {
            pt.map_page(p, MAddr::new(p * PAGE_SIZE));
        }
        pt.translate(PvAddr::new(0), &mut dram, 0).unwrap(); // walk 0
        pt.translate(PvAddr::new(PAGE_SIZE), &mut dram, 0).unwrap(); // walk 1
        pt.translate(PvAddr::new(2 * PAGE_SIZE), &mut dram, 0)
            .unwrap(); // walk 2, evict 0
        pt.translate(PvAddr::new(0), &mut dram, 0).unwrap(); // walk again
        assert_eq!(pt.stats().walks, 4);
    }

    #[test]
    fn unmap_page_forgets_translation() {
        let (mut pt, mut dram) = setup();
        pt.map_page(1, MAddr::new(0));
        pt.translate(PvAddr::new(PAGE_SIZE), &mut dram, 0).unwrap();
        pt.unmap_page(1);
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn flush_tlb_forces_rewalk() {
        let (mut pt, mut dram) = setup();
        pt.map_page(1, MAddr::new(0));
        pt.translate(PvAddr::new(PAGE_SIZE), &mut dram, 0).unwrap();
        pt.flush_tlb();
        pt.translate(PvAddr::new(PAGE_SIZE), &mut dram, 0).unwrap();
        assert_eq!(pt.stats().walks, 2);
    }

    #[test]
    fn remap_while_tlb_resident_serves_new_frame() {
        // The front cache memoizes (page, frame); replacing the mapping
        // must not let a memoized translation serve the old frame.
        let (mut pt, mut dram) = setup();
        pt.map_page(3, MAddr::new(0x8000));
        pt.translate(PvAddr::new(3 * PAGE_SIZE), &mut dram, 0)
            .unwrap(); // walk, memoize
        pt.translate(PvAddr::new(3 * PAGE_SIZE), &mut dram, 0)
            .unwrap(); // front hit
        pt.map_page(3, MAddr::new(0xa000));
        let (m, _) = pt
            .translate(PvAddr::new(3 * PAGE_SIZE + 4), &mut dram, 0)
            .unwrap();
        assert_eq!(m, MAddr::new(0xa004));
    }

    #[test]
    fn unmap_then_remap_other_page_keeps_front_consistent() {
        // unmap_page shifts TLB slots via retain; stale memoized slot
        // indices must revalidate instead of serving wrong entries.
        let (mut pt, mut dram) = setup();
        pt.map_page(1, MAddr::new(0x1000));
        pt.map_page(2, MAddr::new(0x2000));
        pt.translate(PvAddr::new(PAGE_SIZE), &mut dram, 0).unwrap();
        pt.translate(PvAddr::new(2 * PAGE_SIZE), &mut dram, 0)
            .unwrap();
        pt.unmap_page(1); // page 2 shifts from slot 1 to slot 0
        let (m, _) = pt
            .translate(PvAddr::new(2 * PAGE_SIZE + 8), &mut dram, 0)
            .unwrap();
        assert_eq!(m, MAddr::new(0x2008));
        assert_eq!(pt.stats().walks, 2, "page 2 is still TLB-resident");
    }

    #[test]
    fn front_hits_match_full_path_stats() {
        let (mut pt, mut dram) = setup();
        pt.map_page(9, MAddr::new(0x9000));
        pt.translate(PvAddr::new(9 * PAGE_SIZE), &mut dram, 0)
            .unwrap(); // walk
        for i in 0..10u64 {
            let (m, ready) = pt
                .translate(PvAddr::new(9 * PAGE_SIZE + i), &mut dram, 5)
                .unwrap();
            assert_eq!(m, MAddr::new(0x9000 + i));
            assert_eq!(ready, 5, "front hits are free, like TLB hits");
        }
        assert_eq!(pt.stats().lookups, 11);
        assert_eq!(pt.stats().tlb_hits, 10);
        assert_eq!(pt.stats().walks, 1);
    }

    #[test]
    fn unmapped_page_is_a_typed_error() {
        let (mut pt, mut dram) = setup();
        assert_eq!(
            pt.translate(PvAddr::new(3 * PAGE_SIZE), &mut dram, 0),
            Err(McError::PvUnmapped(3))
        );
        // The failed lookup is counted but caches nothing.
        assert_eq!(pt.stats().lookups, 1);
        assert_eq!(pt.stats().walks, 0);
    }

    #[test]
    fn corrupted_tlb_entry_is_detected_and_reloaded() {
        use impulse_fault::{FaultPlan, PgTblInjector, Trigger};
        let (mut pt, mut dram) = setup();
        pt.map_page(1, MAddr::new(0x1000));
        // Fire on every translation; only cached entries can corrupt.
        pt.set_fault_injector(PgTblInjector::new(FaultPlan::new(
            Trigger::EveryN { every: 1, phase: 0 },
            7,
        )));
        // First translation: nothing cached yet, ordinary walk.
        let (_, t1) = pt.translate(PvAddr::new(PAGE_SIZE), &mut dram, 0).unwrap();
        assert_eq!(pt.fault_stats().corruptions, 0);
        // Second: the cached entry is corrupted, detected, and reloaded
        // from the backing table — correct frame, walk charged.
        let (m, t2) = pt
            .translate(PvAddr::new(PAGE_SIZE + 8), &mut dram, t1)
            .unwrap();
        assert_eq!(m, MAddr::new(0x1008), "reload restores the true frame");
        assert!(t2 > t1, "recovery pays a walk");
        let f = pt.fault_stats();
        assert_eq!(f.corruptions, 1);
        assert_eq!(f.reloads, 1);
        assert_eq!(f.recovery_cycles, t2 - t1);
        assert_eq!(pt.stats().walks, 2);
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    #[cfg(debug_assertions)]
    fn misaligned_frame_rejected() {
        let (mut pt, _) = setup();
        pt.map_page(0, MAddr::new(12));
    }
}
