//! Shadow-address remapping functions (the AddrCalc ALU).
//!
//! A shadow descriptor holds one [`RemapFn`] that maps *offsets within a
//! shadow region* to pseudo-virtual addresses. The three flavours are the
//! ones the paper's initial design supports (Section 2.3):
//!
//! * [`RemapFn::Direct`] — shadow page → physical page, used for no-copy
//!   page recoloring and superpage construction.
//! * [`RemapFn::Strided`] — packs strided objects (matrix diagonals, tile
//!   rows) into dense shadow lines. To keep the hardware divider-free, the
//!   paper requires the strided *object size* to be a power of two; we
//!   enforce the same restriction.
//! * [`RemapFn::Gather`] — scatter/gather through an indirection vector:
//!   shadow element *k* maps to `pv_base + elem_size * vector[k]`. The
//!   vector itself lives in memory and is read *by the controller*, not by
//!   the CPU.

use std::sync::Arc;

use impulse_types::geom::is_pow2;
use impulse_types::snap::{SnapError, SnapReader, SnapWriter};
use impulse_types::PvAddr;

/// A contiguous pseudo-virtual read/write segment produced by remapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Starting pseudo-virtual address.
    pub pv: PvAddr,
    /// Length in bytes.
    pub bytes: u64,
}

/// A shadow-offset → pseudo-virtual remapping function.
///
/// Constructed through the validating constructors ([`RemapFn::direct`],
/// [`RemapFn::strided`], [`RemapFn::gather`]); the enum itself carries the
/// parameters the AddrCalc hardware would hold in a shadow descriptor.
///
/// # Examples
///
/// Packing a matrix diagonal: 8-byte objects strided a full row apart map
/// onto consecutive shadow offsets.
///
/// ```
/// use impulse_core::RemapFn;
/// use impulse_types::PvAddr;
///
/// let diag = RemapFn::strided(PvAddr::new(0), 8, (1024 + 1) * 8);
/// assert_eq!(diag.pv_of(0), PvAddr::new(0));
/// assert_eq!(diag.pv_of(8), PvAddr::new((1024 + 1) * 8));
///
/// let mut segments = Vec::new();
/// diag.segments(0, 128, &mut segments); // one L2 line = 16 elements
/// assert_eq!(segments.len(), 16);
/// ```
#[derive(Clone, Debug)]
pub enum RemapFn {
    /// Identity map into pseudo-virtual space; the controller page table
    /// supplies arbitrary page-grained placement.
    Direct {
        /// Pseudo-virtual base of the remapped image.
        pv_base: PvAddr,
    },
    /// Dense packing of strided objects.
    Strided {
        /// Pseudo-virtual base of the underlying data structure.
        pv_base: PvAddr,
        /// Size of each packed object in bytes (power of two).
        object_size: u64,
        /// Distance between consecutive objects in the underlying
        /// structure, in bytes.
        stride: u64,
    },
    /// Scatter/gather through an indirection vector.
    Gather {
        /// Pseudo-virtual base of the underlying (scattered) structure.
        pv_base: PvAddr,
        /// Element size in bytes (power of two).
        elem_size: u64,
        /// The indirection vector: shadow element `k` maps to element
        /// `indices[k]` of the underlying structure.
        indices: Arc<Vec<u64>>,
        /// Pseudo-virtual base of the indirection vector itself (the
        /// controller reads it from memory).
        vec_pv_base: PvAddr,
        /// Bytes per indirection-vector entry (4 in the paper's CG code).
        index_bytes: u64,
    },
}

impl RemapFn {
    /// Creates a direct (page-grained) remapping.
    pub fn direct(pv_base: PvAddr) -> Self {
        RemapFn::Direct { pv_base }
    }

    /// Creates a strided remapping.
    ///
    /// Parameter validity (`object_size` a power of two — the paper's
    /// no-divider restriction — and `stride >= object_size`) is enforced
    /// with a typed error when the function is installed into a
    /// descriptor ([`ShadowDescriptor::new`](crate::ShadowDescriptor::new));
    /// debug builds additionally assert here so direct misuse is caught
    /// at the construction site.
    pub fn strided(pv_base: PvAddr, object_size: u64, stride: u64) -> Self {
        debug_assert!(
            is_pow2(object_size),
            "strided object size must be a power of two (got {object_size})"
        );
        debug_assert!(
            stride >= object_size,
            "stride ({stride}) must be at least the object size ({object_size})"
        );
        RemapFn::Strided {
            pv_base,
            object_size,
            stride,
        }
    }

    /// Creates a scatter/gather remapping through `indices`.
    ///
    /// As with [`RemapFn::strided`], parameter validity (`elem_size` a
    /// power of two, non-empty `indices`, non-zero `index_bytes`) is
    /// enforced with a typed error at descriptor-creation time; debug
    /// builds additionally assert here.
    pub fn gather(
        pv_base: PvAddr,
        elem_size: u64,
        indices: Arc<Vec<u64>>,
        vec_pv_base: PvAddr,
        index_bytes: u64,
    ) -> Self {
        debug_assert!(
            is_pow2(elem_size),
            "gather element size must be a power of two (got {elem_size})"
        );
        debug_assert!(!indices.is_empty(), "gather indirection vector is empty");
        debug_assert!(index_bytes > 0, "indirection entries must be non-empty");
        RemapFn::Gather {
            pv_base,
            elem_size,
            indices,
            vec_pv_base,
            index_bytes,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            RemapFn::Direct { .. } => "direct",
            RemapFn::Strided { .. } => "strided",
            RemapFn::Gather { .. } => "gather",
        }
    }

    /// Number of bytes of shadow space this function can serve, or `None`
    /// if unbounded (direct and strided mappings are bounded only by their
    /// region size).
    pub fn addressable_bytes(&self) -> Option<u64> {
        match self {
            RemapFn::Gather {
                elem_size, indices, ..
            } => Some(elem_size * indices.len() as u64),
            _ => None,
        }
    }

    /// Maps a single shadow offset to its pseudo-virtual address.
    ///
    /// Gather offsets past the indirection vector clamp to the last
    /// element — the same line-padding rule [`RemapFn::segments`]
    /// applies — with a `debug_assert!` flagging the overshoot in debug
    /// builds (descriptor creation bounds the region, so reaching this
    /// in release indicates an internal inconsistency, not user input).
    pub fn pv_of(&self, soffset: u64) -> PvAddr {
        match self {
            RemapFn::Direct { pv_base } => pv_base.add(soffset),
            RemapFn::Strided {
                pv_base,
                object_size,
                stride,
            } => {
                let object = soffset / object_size;
                let within = soffset % object_size;
                pv_base.add(object * stride + within)
            }
            RemapFn::Gather {
                pv_base,
                elem_size,
                indices,
                ..
            } => {
                let elem = (soffset / elem_size) as usize;
                let within = soffset % elem_size;
                debug_assert!(
                    elem < indices.len(),
                    "gather offset {soffset} beyond indirection vector"
                );
                let Some(last) = indices.len().checked_sub(1) else {
                    return *pv_base;
                };
                pv_base.add(indices[elem.min(last)] * elem_size + within)
            }
        }
    }

    /// Expands the shadow byte range `[soffset, soffset + len)` into the
    /// contiguous pseudo-virtual segments the controller must read (or
    /// scatter to). Gather offsets past the end of the indirection vector
    /// are clamped to the last element, mirroring the line-padding the OS
    /// applies when sizing the region.
    pub fn segments(&self, soffset: u64, len: u64, out: &mut Vec<Segment>) {
        out.clear();
        if len == 0 {
            return;
        }
        match self {
            RemapFn::Direct { pv_base } => out.push(Segment {
                pv: pv_base.add(soffset),
                bytes: len,
            }),
            RemapFn::Strided {
                pv_base,
                object_size,
                stride,
            } => {
                let mut off = soffset;
                let end = soffset + len;
                while off < end {
                    let object = off / object_size;
                    let within = off % object_size;
                    let take = (object_size - within).min(end - off);
                    out.push(Segment {
                        pv: pv_base.add(object * stride + within),
                        bytes: take,
                    });
                    off += take;
                }
            }
            RemapFn::Gather {
                pv_base,
                elem_size,
                indices,
                ..
            } => {
                let Some(last) = (indices.len() as u64).checked_sub(1) else {
                    return; // empty vector: nothing addressable
                };
                let mut off = soffset;
                let end = soffset + len;
                while off < end {
                    let elem = (off / elem_size).min(last);
                    let within = off % elem_size;
                    let take = (elem_size - within).min(end - off);
                    out.push(Segment {
                        pv: pv_base.add(indices[elem as usize] * elem_size + within),
                        bytes: take,
                    });
                    off += take;
                }
            }
        }
    }

    /// Serializes the full remapping function, including a gather's
    /// indirection vector (descriptors are created by syscalls at run
    /// time, so unlike fixed hardware geometry they cannot be rebuilt
    /// from the system configuration).
    pub fn snap_save(&self, w: &mut SnapWriter) {
        match self {
            RemapFn::Direct { pv_base } => {
                w.u8(0);
                w.u64(pv_base.raw());
            }
            RemapFn::Strided {
                pv_base,
                object_size,
                stride,
            } => {
                w.u8(1);
                w.u64(pv_base.raw());
                w.u64(*object_size);
                w.u64(*stride);
            }
            RemapFn::Gather {
                pv_base,
                elem_size,
                indices,
                vec_pv_base,
                index_bytes,
            } => {
                w.u8(2);
                w.u64(pv_base.raw());
                w.u64(*elem_size);
                w.u64_slice(indices);
                w.u64(vec_pv_base.raw());
                w.u64(*index_bytes);
            }
        }
    }

    /// Reconstructs a remapping function saved by [`RemapFn::snap_save`].
    pub fn snap_load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(RemapFn::Direct {
                pv_base: PvAddr::new(r.u64()?),
            }),
            1 => Ok(RemapFn::Strided {
                pv_base: PvAddr::new(r.u64()?),
                object_size: r.u64()?,
                stride: r.u64()?,
            }),
            2 => Ok(RemapFn::Gather {
                pv_base: PvAddr::new(r.u64()?),
                elem_size: r.u64()?,
                indices: Arc::new(r.u64_vec()?),
                vec_pv_base: PvAddr::new(r.u64()?),
                index_bytes: r.u64()?,
            }),
            _ => Err(SnapError::Geometry("remap function kind")),
        }
    }

    /// For gather mappings: the indirection-vector segment the controller
    /// must read to serve the shadow byte range `[soffset, soffset+len)`.
    /// Returns `None` for direct and strided mappings.
    pub fn vector_segment(&self, soffset: u64, len: u64) -> Option<Segment> {
        match self {
            RemapFn::Gather {
                elem_size,
                indices,
                vec_pv_base,
                index_bytes,
                ..
            } => {
                let last = (indices.len() as u64).checked_sub(1)?;
                let first_elem = (soffset / elem_size).min(last);
                let last_elem = ((soffset + len - 1) / elem_size).min(last);
                Some(Segment {
                    pv: vec_pv_base.add(first_elem * index_bytes),
                    bytes: (last_elem - first_elem + 1) * index_bytes,
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pv(x: u64) -> PvAddr {
        PvAddr::new(x)
    }

    #[test]
    fn direct_is_identity_plus_base() {
        let f = RemapFn::direct(pv(0x1000));
        assert_eq!(f.pv_of(0), pv(0x1000));
        assert_eq!(f.pv_of(0x234), pv(0x1234));
        let mut segs = Vec::new();
        f.segments(64, 128, &mut segs);
        assert_eq!(
            segs,
            vec![Segment {
                pv: pv(0x1040),
                bytes: 128
            }]
        );
    }

    #[test]
    fn strided_packs_diagonal() {
        // Diagonal of a 1024-wide f64 matrix: 8-byte objects, stride
        // (1024+1)*8.
        let stride = (1024 + 1) * 8;
        let f = RemapFn::strided(pv(0), 8, stride);
        assert_eq!(f.pv_of(0), pv(0));
        assert_eq!(f.pv_of(8), pv(stride));
        assert_eq!(f.pv_of(20), pv(2 * stride + 4));

        let mut segs = Vec::new();
        f.segments(0, 32, &mut segs);
        assert_eq!(segs.len(), 4);
        for (i, s) in segs.iter().enumerate() {
            assert_eq!(s.bytes, 8);
            assert_eq!(s.pv, pv(i as u64 * stride));
        }
    }

    #[test]
    fn strided_objects_larger_than_request_are_clipped() {
        // 256-byte tile rows, 4 KB row pitch: one 128-byte line is half a
        // row.
        let f = RemapFn::strided(pv(0), 256, 4096);
        let mut segs = Vec::new();
        f.segments(128, 128, &mut segs);
        assert_eq!(
            segs,
            vec![Segment {
                pv: pv(128),
                bytes: 128
            }]
        );
        f.segments(192, 128, &mut segs);
        assert_eq!(
            segs,
            vec![
                Segment {
                    pv: pv(192),
                    bytes: 64
                },
                Segment {
                    pv: pv(4096),
                    bytes: 64
                },
            ]
        );
    }

    #[test]
    fn gather_follows_indirection_vector() {
        let idx = Arc::new(vec![5u64, 0, 9, 2]);
        let f = RemapFn::gather(pv(0x1000), 8, idx, pv(0x8000), 4);
        assert_eq!(f.pv_of(0), pv(0x1000 + 40));
        assert_eq!(f.pv_of(8), pv(0x1000));
        assert_eq!(f.pv_of(17), pv(0x1000 + 72 + 1));

        let mut segs = Vec::new();
        f.segments(0, 32, &mut segs);
        let pvs: Vec<u64> = segs.iter().map(|s| s.pv.raw() - 0x1000).collect();
        assert_eq!(pvs, vec![40, 0, 72, 16]);
        assert!(segs.iter().all(|s| s.bytes == 8));
    }

    #[test]
    fn gather_clamps_past_end_of_vector() {
        let idx = Arc::new(vec![3u64, 7]);
        let f = RemapFn::gather(pv(0), 8, idx, pv(0x8000), 4);
        let mut segs = Vec::new();
        // A 32-byte line over a 16-byte structure: tail reads repeat the
        // last element instead of faulting.
        f.segments(0, 32, &mut segs);
        let pvs: Vec<u64> = segs.iter().map(|s| s.pv.raw()).collect();
        assert_eq!(pvs, vec![24, 56, 56, 56]);
        assert_eq!(f.addressable_bytes(), Some(16));
    }

    #[test]
    fn vector_segment_covers_needed_indices() {
        let idx = Arc::new(vec![0u64; 100]);
        let f = RemapFn::gather(pv(0), 8, idx, pv(0x8000), 4);
        let seg = f.vector_segment(16, 32).unwrap();
        // Elements 2..6 → vector bytes [8, 24).
        assert_eq!(seg.pv, pv(0x8008));
        assert_eq!(seg.bytes, 16);
        assert!(RemapFn::direct(pv(0)).vector_segment(0, 8).is_none());
    }

    #[test]
    fn segments_empty_len_yields_nothing() {
        let f = RemapFn::direct(pv(0));
        let mut segs = vec![Segment {
            pv: pv(1),
            bytes: 1,
        }];
        f.segments(0, 0, &mut segs);
        assert!(segs.is_empty());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(RemapFn::direct(pv(0)).name(), "direct");
        assert_eq!(RemapFn::strided(pv(0), 8, 8).name(), "strided");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn strided_rejects_non_pow2_object() {
        let _ = RemapFn::strided(pv(0), 24, 100);
    }

    #[test]
    #[should_panic(expected = "beyond indirection vector")]
    fn gather_pv_of_checks_bounds() {
        let f = RemapFn::gather(pv(0), 8, Arc::new(vec![1]), pv(0), 4);
        let _ = f.pv_of(8);
    }
}
