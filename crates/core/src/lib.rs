//! # impulse-core — the Impulse memory controller
//!
//! The paper's primary contribution: a memory controller that (1) remaps
//! otherwise-unused *shadow* physical addresses to real DRAM locations
//! under application/OS control, and (2) prefetches at the controller,
//! both for non-remapped streams (a 2 KB one-block-lookahead SRAM) and for
//! remapped data (a 256-byte buffer per shadow descriptor).
//!
//! Module map (mirroring Figure 3 of the paper):
//!
//! * [`remap`] — the AddrCalc: shadow offset → pseudo-virtual segments
//!   (direct, strided, scatter/gather).
//! * [`pgtbl`] — the PgTbl: pseudo-virtual page → DRAM frame, with an
//!   on-chip TLB whose misses cost DRAM walks.
//! * [`desc`] — shadow descriptors (SDescs) with per-descriptor prefetch
//!   buffers.
//! * [`prefetch`] — the 2 KB prefetch SRAM for non-remapped data.
//! * [`controller`] — the front end tying it all together over the DRAM
//!   scheduler from `impulse-dram`.
//! * [`flight`] — a bounded flight recorder of MC transactions with the
//!   compact `impulse-trace-v1` capture codec.
//!
//! # Examples
//!
//! Remap a strided "diagonal" into a dense shadow region and read it:
//!
//! ```
//! use impulse_core::{McConfig, MemController, RemapFn};
//! use impulse_dram::{Dram, DramConfig};
//! use impulse_types::{MAddr, PAddr, PRange, PvAddr};
//!
//! let dram = Dram::new(DramConfig::default());
//! let mut mc = MemController::new(dram, McConfig::default());
//!
//! // A 4 KB shadow region packing 8-byte elements strided 1 KB apart.
//! let region = PRange::new(mc.shadow_base(), 4096);
//! mc.claim_descriptor(region, RemapFn::strided(PvAddr::new(0), 8, 1024))?;
//! for page in 0..256 {
//!     mc.map_page(page, MAddr::new(page << 12)); // identity placement
//! }
//! let done = mc.read_line(mc.shadow_base(), 0);
//! assert!(done > 0);
//! # Ok::<(), impulse_core::McError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Syscall paths must return typed errors, not panic: unwrap/expect are
// confined to #[cfg(test)] code (enforced by CI clippy with -D warnings).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod controller;
pub mod desc;
pub mod flight;
pub mod pgtbl;
pub mod prefetch;
pub mod remap;
pub mod tier;

pub use controller::{DescId, McBreakdown, McConfig, McError, McStats, MemController};
pub use tier::{TierConfig, TierEngine, TierStats};
pub use desc::{DescError, DescStats, ShadowDescriptor};
pub use flight::{Capture, FlightEvent, FlightGeom, FlightRecorder, HitClass, TraceError};
pub use pgtbl::{PgTbl, PgTblConfig, PgTblStats};
pub use prefetch::{PrefetchCache, PrefetchStats};
pub use remap::{RemapFn, Segment};
