//! Storage-class-memory (SCM) timing and wear model.
//!
//! A second, slower memory class behind the Impulse controller: think
//! battery-backed phase-change or early persistent DIMMs. Compared to
//! [`crate::Dram`] the model is deliberately different in shape, not
//! just in numbers:
//!
//! * **Asymmetric read/write latency** — writes cost several times a
//!   read (media programming), with no row-buffer locality at all.
//! * **Per-channel queues** — the part is split into independent
//!   channels, each with its own link; there is no shared data bus, so
//!   two channels transfer concurrently but accesses to one channel
//!   serialize.
//! * **Per-line write wear** — every line write increments a wear
//!   counter. A line that crosses the configured limit is *retired and
//!   remapped* onto a spare (charged as a media copy); once the spares
//!   are exhausted further worn-out lines go *dead* and accesses to
//!   them fail with a typed [`ScmError::LineRetired`] — never silently
//!   wrong data.
//!
//! Raw bit errors (SCM media is noisier than DRAM) reuse the
//! [`FlipInjector`] machinery on an independent stream; the tier engine
//! drains them through the controller's ECC model exactly like DRAM
//! flips.

use std::collections::{BTreeMap, BTreeSet};

use impulse_fault::{BitFlip, FlipInjector, FlipStats};
use impulse_types::snap::{SnapError, SnapReader, SnapWriter};
use impulse_types::{AccessKind, Cycle};

/// Snapshot section tag for [`Scm`] (`"SCM0"`).
const TAG_SCM: u32 = 0x5343_4D30;

/// Configuration of the SCM part and its timing, in CPU cycles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScmConfig {
    /// Independent channels; lines interleave across them.
    pub channels: u64,
    /// Line size in bytes — the wear-levelling and interleave granule.
    pub line_bytes: u64,
    /// Media read latency (no locality: every read pays it).
    pub t_read: Cycle,
    /// Media write (program) latency; typically several times `t_read`.
    pub t_write: Cycle,
    /// Bytes each channel link moves per cycle.
    pub bus_bytes_per_cycle: u64,
    /// Minimum link occupancy per access, cycles.
    pub t_bus_min: Cycle,
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Writes a line endures before it is retired. `0` disables wear.
    pub wear_limit: u32,
    /// Spare lines available for retire-and-remap before lines go dead.
    pub spare_lines: u64,
    /// Extra cycles charged when a worn line is copied onto a spare.
    pub t_retire: Cycle,
}

impl Default for ScmConfig {
    fn default() -> Self {
        Self {
            channels: 4,
            line_bytes: 128,
            t_read: 60,
            t_write: 240,
            bus_bytes_per_cycle: 8,
            t_bus_min: 4,
            capacity: 1 << 30,
            wear_limit: 0,
            spare_lines: 64,
            t_retire: 400,
        }
    }
}

impl ScmConfig {
    /// Channel index serving an SCM-relative byte offset.
    #[inline]
    pub fn channel_of(&self, offset: u64) -> u64 {
        (offset / self.line_bytes) % self.channels
    }

    /// Line index of an SCM-relative byte offset.
    #[inline]
    pub fn line_of(&self, offset: u64) -> u64 {
        offset / self.line_bytes
    }

    /// Link occupancy for a transfer of `bytes`.
    #[inline]
    pub fn transfer_cycles(&self, bytes: u64) -> Cycle {
        self.t_bus_min.max(bytes.div_ceil(self.bus_bytes_per_cycle))
    }
}

/// Counters maintained by the SCM model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScmStats {
    /// Read accesses served.
    pub reads: u64,
    /// Write accesses served.
    pub writes: u64,
    /// Total bytes moved over the channel links.
    pub bytes: u64,
    /// Cycles spent waiting for a busy channel.
    pub channel_wait: u64,
    /// Lines retired and remapped onto spares after crossing the wear
    /// limit (recovered — the line keeps working).
    pub wear_retirements: u64,
    /// Accesses rejected because they touched a dead line (worn out
    /// with no spare left) — surfaced as typed errors.
    pub dead_rejects: u64,
}

/// A failed SCM access. The media never returns wrong data silently:
/// an access that cannot be served is rejected with the line that
/// caused it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScmError {
    /// The access touched a line that wore out after the spare pool was
    /// exhausted; it is permanently retired.
    LineRetired {
        /// The dead SCM line index.
        line: u64,
    },
}

/// The SCM part: per-channel link state, per-line wear, and the
/// retire-and-remap machinery.
#[derive(Clone, Debug)]
pub struct Scm {
    cfg: ScmConfig,
    /// Per-channel link-free times.
    channels: Vec<Cycle>,
    /// Write counts per line, kept sparse (ordered for deterministic
    /// snapshots). Lines never written don't appear.
    wear: BTreeMap<u64, u32>,
    /// Lines remapped onto spares; they keep working (wear restarts on
    /// the fresh spare).
    retired: BTreeSet<u64>,
    /// Lines that wore out with no spare available. Accesses fail.
    dead: BTreeSet<u64>,
    spares_used: u64,
    stats: ScmStats,
    faults: Option<FlipInjector>,
}

impl Scm {
    /// Creates an SCM part from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero channels or zero-byte lines.
    pub fn new(cfg: ScmConfig) -> Self {
        assert!(cfg.channels > 0, "SCM must have at least one channel");
        assert!(cfg.line_bytes > 0, "SCM lines must be non-empty");
        Self {
            channels: vec![0; cfg.channels as usize],
            wear: BTreeMap::new(),
            retired: BTreeSet::new(),
            dead: BTreeSet::new(),
            spares_used: 0,
            stats: ScmStats::default(),
            faults: None,
            cfg,
        }
    }

    /// Attaches a deterministic bit-flip injector for the SCM's raw
    /// bit-error rate. The tier engine drains flips with
    /// [`Scm::take_flips`] and runs them through the controller ECC.
    pub fn set_fault_injector(&mut self, injector: FlipInjector) {
        self.faults = Some(injector);
    }

    /// Drains bit flips injected since the last call.
    pub fn take_flips(&mut self) -> Vec<(u64, BitFlip)> {
        match &mut self.faults {
            Some(f) => f.take(),
            None => Vec::new(),
        }
    }

    /// Bit-flip injection counters (zeros when no injector is attached).
    pub fn flip_stats(&self) -> FlipStats {
        self.faults
            .as_ref()
            .map(FlipInjector::stats)
            .unwrap_or_default()
    }

    /// The configuration this part was built with.
    pub fn config(&self) -> &ScmConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ScmStats {
        self.stats
    }

    /// Resets statistics (timing, wear, and retirement state persist —
    /// wear is physical damage, not a counter artifact).
    pub fn reset_stats(&mut self) {
        self.stats = ScmStats::default();
    }

    /// Current wear count of a line (0 if never written).
    pub fn wear_of(&self, line: u64) -> u32 {
        self.wear.get(&line).copied().unwrap_or(0)
    }

    /// True when `line` is permanently dead (accesses to it fail).
    pub fn is_dead(&self, line: u64) -> bool {
        self.dead.contains(&line)
    }

    /// Lines retired onto spares so far.
    pub fn retired_lines(&self) -> u64 {
        self.retired.len() as u64
    }

    /// Performs one access of `bytes` bytes at SCM-relative byte offset
    /// `offset`, starting at `now`; returns the completion cycle.
    ///
    /// Reads pay `t_read`, writes pay `t_write` plus wear accounting:
    /// a line crossing the wear limit is retired onto a spare (charged
    /// `t_retire`) while spares last, then goes dead. Any access
    /// touching a dead line fails with [`ScmError::LineRetired`].
    pub fn access(
        &mut self,
        offset: u64,
        kind: AccessKind,
        bytes: u64,
        now: Cycle,
    ) -> Result<Cycle, ScmError> {
        debug_assert!(
            offset + bytes.max(1) <= self.cfg.capacity,
            "SCM access beyond capacity: {offset:#x}+{bytes}"
        );
        let first = self.cfg.line_of(offset);
        let last = self.cfg.line_of(offset + bytes.saturating_sub(1).max(0));
        // Dead-line check up front: rejected accesses consume no timing
        // or fault-stream state, so the schedule stays deterministic.
        for line in first..=last {
            if self.dead.contains(&line) {
                self.stats.dead_rejects += 1;
                return Err(ScmError::LineRetired { line });
            }
        }
        if let Some(f) = &mut self.faults {
            f.on_access(offset, now);
        }
        let ch = self.cfg.channel_of(offset) as usize;
        let start = now.max(self.channels[ch]);
        self.stats.channel_wait += start - now;
        let latency = match kind {
            AccessKind::Load => {
                self.stats.reads += 1;
                self.cfg.t_read
            }
            AccessKind::Store => {
                self.stats.writes += 1;
                self.cfg.t_write
            }
        };
        let mut done = start + latency + self.cfg.transfer_cycles(bytes);
        self.stats.bytes += bytes;

        let mut newly_dead = None;
        if kind == AccessKind::Store && self.cfg.wear_limit > 0 {
            for line in first..=last {
                let w = self.wear.entry(line).or_insert(0);
                *w += 1;
                if *w >= self.cfg.wear_limit {
                    if self.spares_used < self.cfg.spare_lines {
                        // Retire-and-remap: copy onto a fresh spare and
                        // keep serving the line. Wear restarts.
                        self.spares_used += 1;
                        self.retired.insert(line);
                        self.stats.wear_retirements += 1;
                        *w = 0;
                        done += self.cfg.t_retire;
                    } else {
                        // No spare left: this write's data is lost and
                        // the line is dead from here on.
                        self.dead.insert(line);
                        newly_dead = Some(line);
                    }
                }
            }
        }
        self.channels[ch] = done;
        if let Some(line) = newly_dead {
            self.stats.dead_rejects += 1;
            return Err(ScmError::LineRetired { line });
        }
        Ok(done)
    }

    /// Serializes channel timing, wear/retirement state, statistics,
    /// and (when configured) the fault injector's dynamic state.
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_SCM);
        w.usize(self.channels.len());
        for &c in &self.channels {
            w.u64(c);
        }
        w.usize(self.wear.len());
        for (&line, &count) in &self.wear {
            w.u64(line);
            w.u64(u64::from(count));
        }
        w.usize(self.retired.len());
        for &line in &self.retired {
            w.u64(line);
        }
        w.usize(self.dead.len());
        for &line in &self.dead {
            w.u64(line);
        }
        w.u64(self.spares_used);
        let s = &self.stats;
        for v in [
            s.reads,
            s.writes,
            s.bytes,
            s.channel_wait,
            s.wear_retirements,
            s.dead_rejects,
        ] {
            w.u64(v);
        }
        w.bool(self.faults.is_some());
        if let Some(f) = &self.faults {
            f.snap_save(w);
        }
    }

    /// Restores the state saved by [`Scm::snap_save`] into a part
    /// freshly built from the same configuration.
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_SCM)?;
        let n = r.usize()?;
        if n != self.channels.len() {
            return Err(SnapError::Geometry("SCM channel count"));
        }
        for c in &mut self.channels {
            *c = r.u64()?;
        }
        let n = r.usize()?;
        self.wear.clear();
        for _ in 0..n {
            let line = r.u64()?;
            let count = u32::try_from(r.u64()?)
                .map_err(|_| SnapError::Geometry("SCM wear count out of range"))?;
            self.wear.insert(line, count);
        }
        let n = r.usize()?;
        self.retired.clear();
        for _ in 0..n {
            self.retired.insert(r.u64()?);
        }
        let n = r.usize()?;
        self.dead.clear();
        for _ in 0..n {
            self.dead.insert(r.u64()?);
        }
        self.spares_used = r.u64()?;
        let s = &mut self.stats;
        for v in [
            &mut s.reads,
            &mut s.writes,
            &mut s.bytes,
            &mut s.channel_wait,
            &mut s.wear_retirements,
            &mut s.dead_rejects,
        ] {
            *v = r.u64()?;
        }
        let had_faults = r.bool()?;
        match (&mut self.faults, had_faults) {
            (Some(f), true) => f.snap_load(r)?,
            (None, false) => {}
            _ => return Err(SnapError::Geometry("SCM fault injector presence")),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scm(wear_limit: u32, spares: u64) -> Scm {
        Scm::new(ScmConfig {
            wear_limit,
            spare_lines: spares,
            ..ScmConfig::default()
        })
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let mut s = scm(0, 0);
        let r = s.access(0, AccessKind::Load, 128, 0).unwrap();
        let mut s2 = scm(0, 0);
        let w = s2.access(0, AccessKind::Store, 128, 0).unwrap();
        assert!(w > r, "media programming is slower than reading");
        let cfg = ScmConfig::default();
        assert_eq!(r, cfg.t_read + cfg.transfer_cycles(128));
    }

    #[test]
    fn channels_operate_independently_same_channel_serializes() {
        let cfg = ScmConfig::default();
        let line = cfg.line_bytes;
        let ch_stride = line * cfg.channels;
        let mut s = Scm::new(cfg.clone());
        // Different channels, same start: both finish at the isolated
        // latency — no shared bus.
        let a = s.access(0, AccessKind::Load, 128, 0).unwrap();
        let b = s.access(line, AccessKind::Load, 128, 0).unwrap();
        assert_eq!(a, b);
        // Same channel: the second waits.
        let c = s.access(ch_stride, AccessKind::Load, 128, 0).unwrap();
        assert!(c > a);
        assert!(s.stats().channel_wait > 0);
    }

    #[test]
    fn wear_retires_onto_spares_then_kills() {
        let mut s = scm(3, 1);
        // Two writes: below the limit.
        s.access(0, AccessKind::Store, 128, 0).unwrap();
        s.access(0, AccessKind::Store, 128, 1000).unwrap();
        assert_eq!(s.wear_of(0), 2);
        // Third write crosses the limit: retired onto the one spare.
        let before = s.access(0, AccessKind::Store, 128, 2000).unwrap();
        assert_eq!(s.stats().wear_retirements, 1);
        assert_eq!(s.retired_lines(), 1);
        assert_eq!(s.wear_of(0), 0, "wear restarts on the fresh spare");
        assert!(before >= 2000 + ScmConfig::default().t_retire);
        // Wear the spare out too: no spare left, the line dies.
        for t in 0..2 {
            s.access(0, AccessKind::Store, 128, 10_000 + t * 1000).unwrap();
        }
        let err = s.access(0, AccessKind::Store, 128, 20_000).unwrap_err();
        assert_eq!(err, ScmError::LineRetired { line: 0 });
        assert!(s.is_dead(0));
        // Every later access is rejected, deterministically.
        let err = s.access(64, AccessKind::Load, 8, 30_000).unwrap_err();
        assert_eq!(err, ScmError::LineRetired { line: 0 });
        assert_eq!(s.stats().dead_rejects, 2);
        // Other lines still work.
        s.access(128, AccessKind::Load, 128, 30_000).unwrap();
    }

    #[test]
    fn snapshot_round_trips_mid_wear() {
        let mut s = scm(2, 1);
        s.access(0, AccessKind::Store, 128, 0).unwrap();
        s.access(0, AccessKind::Store, 128, 1000).unwrap(); // retires
        s.access(256, AccessKind::Store, 128, 2000).unwrap();
        let mut w = SnapWriter::new();
        s.snap_save(&mut w);
        let bytes = w.finish();
        let mut fresh = scm(2, 1);
        let mut r = SnapReader::new(&bytes);
        fresh.snap_load(&mut r).expect("load");
        r.finish().expect("fully consumed");
        assert_eq!(fresh.stats(), s.stats());
        assert_eq!(fresh.wear_of(0), s.wear_of(0));
        assert_eq!(fresh.wear_of(2), s.wear_of(2));
        assert_eq!(fresh.retired_lines(), 1);
        // Identical futures: the next write kills line 2's budget the
        // same way on both (spares already exhausted).
        let a = s.access(256, AccessKind::Store, 128, 5000);
        let b = fresh.access(256, AccessKind::Store, 128, 5000);
        assert_eq!(a, b);
    }

    #[test]
    fn geometry_mismatch_is_rejected() {
        let s = scm(0, 0);
        let mut w = SnapWriter::new();
        s.snap_save(&mut w);
        let bytes = w.finish();
        let mut other = Scm::new(ScmConfig {
            channels: 2,
            ..ScmConfig::default()
        });
        let mut r = SnapReader::new(&bytes);
        assert!(other.snap_load(&mut r).is_err());
    }
}
