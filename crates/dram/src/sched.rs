//! DRAM access schedulers.
//!
//! Section 2.2 of the paper describes a low-level DRAM scheduler with three
//! goals: (1) reorder word-grained requests to exploit DRAM page (open-row)
//! locality, (2) schedule requests to exploit bank-level parallelism, and
//! (3) give priority to processor requests over controller-generated ones.
//! The paper's *published results* use a simple scheduler that issues
//! accesses in order; the smarter policies here are the "designed but not
//! yet complete" scheduler, exercised by the `ablation_dram` bench.
//! Processor-priority (goal 3) is realized one level up, in the memory
//! controller, which issues demand gathers ahead of background prefetch
//! batches.

use impulse_types::{AccessKind, Cycle, MAddr};

use crate::Dram;

/// How a batch of word-grained DRAM requests is ordered before issue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulePolicy {
    /// Issue requests in arrival order (the paper's published
    /// configuration). Banks still overlap; no reordering is performed.
    #[default]
    InOrder,
    /// Reorder so requests to the same (bank, row) issue consecutively,
    /// maximizing open-row hits.
    OpenRowFirst,
    /// Reorder for row locality, then interleave across banks round-robin
    /// so independent banks work in parallel.
    BankParallel,
}

impl SchedulePolicy {
    /// All policies, for sweeps and ablations.
    pub const ALL: [SchedulePolicy; 3] = [
        SchedulePolicy::InOrder,
        SchedulePolicy::OpenRowFirst,
        SchedulePolicy::BankParallel,
    ];

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulePolicy::InOrder => "in-order",
            SchedulePolicy::OpenRowFirst => "open-row-first",
            SchedulePolicy::BankParallel => "bank-parallel",
        }
    }
}

/// Result of scheduling one batch of requests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Completion cycle of each request, indexed like the input slice.
    pub completions: Vec<Cycle>,
    /// Cycle when the whole batch is done (max of `completions`).
    pub done: Cycle,
}

impl BatchOutcome {
    /// Completion cycle of the earliest-finishing request.
    ///
    /// # Panics
    ///
    /// Panics if the batch was empty.
    pub fn first_done(&self) -> Cycle {
        *self
            .completions
            .iter()
            .min()
            .expect("first_done on an empty batch")
    }
}

/// A batch scheduler over a [`Dram`] array.
///
/// # Examples
///
/// ```
/// use impulse_dram::{Dram, DramConfig, SchedulePolicy, Scheduler};
/// use impulse_types::{AccessKind, MAddr};
///
/// let mut dram = Dram::new(DramConfig::default());
/// let sched = Scheduler::new(SchedulePolicy::OpenRowFirst);
/// let gather: Vec<MAddr> = (0..16).map(|i| MAddr::new(i * 808)).collect();
/// let out = sched.run_batch(&mut dram, &gather, AccessKind::Load, 8, 0);
/// assert_eq!(out.completions.len(), 16);
/// assert!(out.done >= out.first_done());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Scheduler {
    policy: SchedulePolicy,
}

impl Scheduler {
    /// Creates a scheduler with the given reordering policy.
    pub fn new(policy: SchedulePolicy) -> Self {
        Self { policy }
    }

    /// The reordering policy in use.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// Issues a batch of `bytes`-sized requests starting at `now` and
    /// returns per-request completion times.
    ///
    /// Request *i* (in issue order) cannot start before `now + i`: the
    /// command bus accepts one command per cycle. Bank conflicts and the
    /// shared data bus serialize further, per the [`Dram`] model.
    pub fn run_batch(
        &self,
        dram: &mut Dram,
        reqs: &[MAddr],
        kind: AccessKind,
        bytes: u64,
        now: Cycle,
    ) -> BatchOutcome {
        let sized: Vec<(MAddr, u64)> = reqs.iter().map(|&a| (a, bytes)).collect();
        self.run_batch_sized(dram, &sized, kind, now)
    }

    /// Like [`Scheduler::run_batch`], but each request carries its own
    /// transfer size — the shape produced by strided and direct remappings,
    /// whose contiguous segments vary in length.
    pub fn run_batch_sized(
        &self,
        dram: &mut Dram,
        reqs: &[(MAddr, u64)],
        kind: AccessKind,
        now: Cycle,
    ) -> BatchOutcome {
        let addrs: Vec<MAddr> = reqs.iter().map(|&(a, _)| a).collect();
        let order = self.issue_order(dram, &addrs);
        let mut completions = vec![0; reqs.len()];
        for (slot, &idx) in order.iter().enumerate() {
            let issue = now + slot as Cycle;
            let (addr, bytes) = reqs[idx];
            completions[idx] = dram.access(addr, kind, bytes, issue);
        }
        let done = completions.iter().copied().max().unwrap_or(now);
        BatchOutcome { completions, done }
    }

    /// Computes the issue order (indices into `reqs`) for this policy.
    fn issue_order(&self, dram: &Dram, reqs: &[MAddr]) -> Vec<usize> {
        let cfg = dram.config();
        let mut order: Vec<usize> = (0..reqs.len()).collect();
        match self.policy {
            SchedulePolicy::InOrder => {}
            SchedulePolicy::OpenRowFirst => {
                order.sort_by_key(|&i| (cfg.bank_of(reqs[i]), cfg.row_of(reqs[i]), i));
            }
            SchedulePolicy::BankParallel => {
                // Group by (bank, row) for locality, then round-robin the
                // groups across banks so every bank starts working at once.
                order.sort_by_key(|&i| (cfg.bank_of(reqs[i]), cfg.row_of(reqs[i]), i));
                let mut per_bank: Vec<Vec<usize>> = vec![Vec::new(); cfg.banks as usize];
                for i in order {
                    per_bank[cfg.bank_of(reqs[i]) as usize].push(i);
                }
                let mut interleaved = Vec::with_capacity(reqs.len());
                let mut cursor = 0;
                while interleaved.len() < reqs.len() {
                    for bank in per_bank.iter() {
                        if let Some(&i) = bank.get(cursor) {
                            interleaved.push(i);
                        }
                    }
                    cursor += 1;
                }
                return interleaved;
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DramConfig;

    fn gather_addrs(cfg: &DramConfig) -> Vec<MAddr> {
        // A pathological arrival order: alternates rows within one bank,
        // then scatters across banks.
        let bank_stride = cfg.row_bytes * cfg.banks;
        vec![
            MAddr::new(0),
            MAddr::new(bank_stride),     // same bank, different row
            MAddr::new(8),               // back to row 0
            MAddr::new(bank_stride + 8), // back to row 1
            MAddr::new(cfg.row_bytes),   // bank 1
            MAddr::new(cfg.row_bytes * 2),
            MAddr::new(cfg.row_bytes + 16),
            MAddr::new(16),
        ]
    }

    fn total_time(policy: SchedulePolicy) -> Cycle {
        let cfg = DramConfig::default();
        let mut dram = Dram::new(cfg.clone());
        let sched = Scheduler::new(policy);
        let reqs = gather_addrs(&cfg);
        sched
            .run_batch(&mut dram, &reqs, AccessKind::Load, 8, 0)
            .done
    }

    #[test]
    fn reordering_beats_in_order_on_row_thrash() {
        let in_order = total_time(SchedulePolicy::InOrder);
        let row_first = total_time(SchedulePolicy::OpenRowFirst);
        assert!(
            row_first < in_order,
            "open-row-first ({row_first}) should beat in-order ({in_order})"
        );
    }

    #[test]
    fn bank_parallel_not_worse_than_row_first() {
        let row_first = total_time(SchedulePolicy::OpenRowFirst);
        let parallel = total_time(SchedulePolicy::BankParallel);
        assert!(parallel <= row_first);
    }

    #[test]
    fn completions_cover_every_request() {
        let cfg = DramConfig::default();
        let mut dram = Dram::new(cfg.clone());
        let reqs = gather_addrs(&cfg);
        let out = Scheduler::new(SchedulePolicy::BankParallel).run_batch(
            &mut dram,
            &reqs,
            AccessKind::Load,
            8,
            0,
        );
        assert_eq!(out.completions.len(), reqs.len());
        assert!(out.completions.iter().all(|&c| c > 0));
        assert_eq!(out.done, *out.completions.iter().max().unwrap());
        assert!(out.first_done() <= out.done);
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let mut dram = Dram::new(DramConfig::default());
        let out = Scheduler::default().run_batch(&mut dram, &[], AccessKind::Load, 8, 42);
        assert_eq!(out.done, 42);
        assert!(out.completions.is_empty());
    }

    #[test]
    fn row_grouping_increases_row_hits() {
        let cfg = DramConfig::default();
        let reqs = gather_addrs(&cfg);

        let mut d1 = Dram::new(cfg.clone());
        Scheduler::new(SchedulePolicy::InOrder).run_batch(&mut d1, &reqs, AccessKind::Load, 8, 0);
        let mut d2 = Dram::new(cfg);
        Scheduler::new(SchedulePolicy::OpenRowFirst).run_batch(
            &mut d2,
            &reqs,
            AccessKind::Load,
            8,
            0,
        );

        assert!(d2.stats().row_hits > d1.stats().row_hits);
    }

    #[test]
    fn mixed_size_batches_account_all_bytes() {
        let cfg = DramConfig::default();
        let mut dram = Dram::new(cfg);
        // A strided remap produces uneven contiguous segments.
        let reqs = [
            (MAddr::new(0), 64u64),
            (MAddr::new(4096), 64),
            (MAddr::new(8192), 128),
            (MAddr::new(8320), 8),
        ];
        let out = Scheduler::new(SchedulePolicy::BankParallel).run_batch_sized(
            &mut dram,
            &reqs,
            AccessKind::Load,
            0,
        );
        assert_eq!(out.completions.len(), 4);
        assert_eq!(dram.stats().bytes, 64 + 64 + 128 + 8);
    }

    #[test]
    fn policy_names_are_distinct() {
        let names: Vec<_> = SchedulePolicy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 3);
        assert!(names.iter().all(|n| !n.is_empty()));
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn first_done_panics_on_empty() {
        let out = BatchOutcome {
            completions: vec![],
            done: 0,
        };
        let _ = out.first_done();
    }
}
