//! DRAM timing model for the Impulse simulator.
//!
//! Models a multi-bank page-mode DRAM of the kind behind a late-1990s
//! memory controller: each bank has one open row (the "DRAM page"); an
//! access to the open row costs the row-hit latency, any other access pays
//! precharge + activate. Data returns over a shared DRAM data bus whose
//! occupancy serializes transfers.
//!
//! The paper's published results use a **simple in-order scheduler**
//! (Section 2.2: "the simulation results reported in this paper assume a
//! simple scheduler that issues accesses in order"); the smarter scheduler
//! they were designing — row-locality reordering, bank-level parallelism,
//! CPU-priority — is implemented in [`sched`] and evaluated by the
//! `ablation_dram` bench.
//!
//! # Examples
//!
//! ```
//! use impulse_dram::{Dram, DramConfig};
//! use impulse_types::{AccessKind, MAddr};
//!
//! let mut dram = Dram::new(DramConfig::default());
//! let t1 = dram.access(MAddr::new(0), AccessKind::Load, 8, 0);
//! // Second access to the same row hits the open row buffer: cheaper.
//! let t2 = dram.access(MAddr::new(64), AccessKind::Load, 8, t1);
//! assert!(t2 - t1 < t1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sched;
pub mod scm;

pub use sched::{BatchOutcome, SchedulePolicy, Scheduler};
pub use scm::{Scm, ScmConfig, ScmError, ScmStats};

use impulse_fault::{BitFlip, FlipInjector, FlipStats};
use impulse_obs::{prof, Histogram, MetricsRegistry, Observe};
use impulse_types::snap::{SnapError, SnapReader, SnapWriter};
use impulse_types::{AccessKind, Cycle, MAddr};

/// Snapshot section tag for [`Dram`] (`"DRAM"`).
const TAG_DRAM: u32 = 0x4452_414D;

/// Configuration of the DRAM array and its timing, in CPU cycles.
///
/// Defaults are calibrated so that an isolated row-miss word read completes
/// in ~30 cycles at the controller, which combined with the bus and
/// controller overheads reproduces the Paint simulator's 40-cycle
/// memory-access latency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of independent banks.
    pub banks: u64,
    /// Bytes per row (the unit of page-mode locality).
    pub row_bytes: u64,
    /// Latency of a column access to an already-open row.
    pub t_row_hit: Cycle,
    /// Latency when the wrong row is open (precharge + activate + access).
    pub t_row_miss: Cycle,
    /// Bytes the DRAM data bus moves per cycle.
    pub bus_bytes_per_cycle: u64,
    /// Minimum data-bus occupancy per access, cycles.
    pub t_bus_min: Cycle,
    /// Total capacity in bytes; accesses are debug-checked against it.
    pub capacity: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            banks: 4,
            row_bytes: 2048,
            t_row_hit: 8,
            t_row_miss: 28,
            bus_bytes_per_cycle: 16,
            t_bus_min: 2,
            capacity: 1 << 30, // 1 GB installed DRAM, as in the paper's example
        }
    }
}

impl DramConfig {
    /// Bank index for an address (row-interleaved: consecutive rows land in
    /// consecutive banks).
    #[inline]
    pub fn bank_of(&self, addr: MAddr) -> u64 {
        (addr.raw() / self.row_bytes) % self.banks
    }

    /// Row identifier within the bank for an address.
    #[inline]
    pub fn row_of(&self, addr: MAddr) -> u64 {
        (addr.raw() / self.row_bytes) / self.banks
    }

    /// Data-bus occupancy for a transfer of `bytes`.
    #[inline]
    pub fn transfer_cycles(&self, bytes: u64) -> Cycle {
        self.t_bus_min.max(bytes.div_ceil(self.bus_bytes_per_cycle))
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: Cycle,
}

/// Counters maintained by the DRAM model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read accesses served.
    pub reads: u64,
    /// Write accesses served.
    pub writes: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses that had to open a row.
    pub row_misses: u64,
    /// Total bytes moved over the DRAM data bus.
    pub bytes: u64,
    /// Cycles spent waiting for a busy bank.
    pub bank_wait: u64,
}

impl DramStats {
    /// Fraction of accesses that hit an open row, or 0 if none occurred.
    pub fn row_hit_ratio(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// Per-bank row-buffer heat counters, the DRAM half of the
/// `impulse-heatmap-v1` export: which banks are being hammered and how
/// much of their traffic is open-row reuse versus row churn.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BankHeat {
    /// Accesses that hit this bank's open row.
    pub row_hits: u64,
    /// Accesses that had to open a row in this bank.
    pub row_misses: u64,
    /// The subset of `row_misses` that evicted a *different* open row —
    /// genuine row-buffer conflicts, as opposed to cold first-touches
    /// (a precharged bank has nothing to lose).
    pub row_conflicts: u64,
}

/// The DRAM array: banks, open-row state, and the shared data bus.
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    /// Heat counters live apart from [`Bank`] so the per-access open-row
    /// state stays as small as possible.
    heat: Vec<BankHeat>,
    data_bus_free: Cycle,
    stats: DramStats,
    lat_row_hit: Histogram,
    lat_row_miss: Histogram,
    faults: Option<FlipInjector>,
}

impl Dram {
    /// Creates a DRAM array from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero banks or a zero-byte row.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.banks > 0, "DRAM must have at least one bank");
        assert!(cfg.row_bytes > 0, "DRAM rows must be non-empty");
        let banks = vec![Bank::default(); cfg.banks as usize];
        Self {
            heat: vec![BankHeat::default(); banks.len()],
            cfg,
            banks,
            data_bus_free: 0,
            stats: DramStats::default(),
            lat_row_hit: Histogram::new(),
            lat_row_miss: Histogram::new(),
            faults: None,
        }
    }

    /// Attaches a deterministic bit-flip injector. Flips are recorded
    /// as accesses touch the array; the memory controller drains them
    /// with [`Dram::take_flips`] and runs them through its ECC model.
    pub fn set_fault_injector(&mut self, injector: FlipInjector) {
        self.faults = Some(injector);
    }

    /// Drains bit flips injected since the last call (empty, with no
    /// allocation, in the fault-free common case).
    pub fn take_flips(&mut self) -> Vec<(u64, BitFlip)> {
        match &mut self.faults {
            Some(f) => f.take(),
            None => Vec::new(),
        }
    }

    /// Bit-flip injection counters (zeros when no injector is attached).
    pub fn flip_stats(&self) -> FlipStats {
        self.faults
            .as_ref()
            .map(FlipInjector::stats)
            .unwrap_or_default()
    }

    /// The configuration this array was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Resets statistics (open-row and timing state are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
        self.heat.fill(BankHeat::default());
        self.lat_row_hit = Histogram::new();
        self.lat_row_miss = Histogram::new();
    }

    /// Per-bank row-buffer heat counters, indexed by bank.
    pub fn bank_heat(&self) -> &[BankHeat] {
        &self.heat
    }

    /// End-to-end latency distribution (bank wait + access + transfer) of
    /// accesses that hit an open row.
    pub fn row_hit_latency(&self) -> &Histogram {
        &self.lat_row_hit
    }

    /// End-to-end latency distribution of accesses that opened a row.
    pub fn row_miss_latency(&self) -> &Histogram {
        &self.lat_row_miss
    }

    /// Performs one access of `bytes` bytes starting at `now`; returns the
    /// cycle at which the data transfer completes.
    ///
    /// The access waits for its bank, pays row-hit or row-miss latency,
    /// then occupies the shared data bus for the transfer.
    pub fn access(&mut self, addr: MAddr, kind: AccessKind, bytes: u64, now: Cycle) -> Cycle {
        let _span = prof::span("dram.access");
        debug_assert!(
            addr.raw() < self.cfg.capacity,
            "DRAM access beyond installed capacity: {addr:?}"
        );
        if let Some(f) = &mut self.faults {
            f.on_access(addr.raw(), now);
        }
        let bank_idx = self.cfg.bank_of(addr) as usize;
        let row = self.cfg.row_of(addr);
        let bank = &mut self.banks[bank_idx];

        let start = now.max(bank.busy_until);
        self.stats.bank_wait += start - now;

        let row_hit = bank.open_row == Some(row);
        let heat = &mut self.heat[bank_idx];
        let latency = if row_hit {
            self.stats.row_hits += 1;
            heat.row_hits += 1;
            self.cfg.t_row_hit
        } else {
            self.stats.row_misses += 1;
            heat.row_misses += 1;
            // Classify before the open row is replaced below.
            if bank.open_row.is_some() {
                heat.row_conflicts += 1;
            }
            bank.open_row = Some(row);
            self.cfg.t_row_miss
        };
        let data_ready = start + latency;
        // The bank is free to start another column access once data reaches
        // the row buffer; the shared data bus serializes the transfer out.
        bank.busy_until = data_ready;

        let xfer_start = data_ready.max(self.data_bus_free);
        let done = xfer_start + self.cfg.transfer_cycles(bytes);
        self.data_bus_free = done;

        match kind {
            AccessKind::Load => self.stats.reads += 1,
            AccessKind::Store => self.stats.writes += 1,
        }
        self.stats.bytes += bytes;
        if row_hit {
            self.lat_row_hit.record(done - now);
        } else {
            self.lat_row_miss.record(done - now);
        }
        done
    }

    /// Batched row-buffer check: how many of `addrs` would hit the row
    /// currently open in their bank? Read-only — no state, stats, or
    /// timing change — so replay-style evaluators and micro-benchmarks
    /// can probe a whole batch without perturbing the model. Note the
    /// answer is against the *current* open rows; interleaved accesses in
    /// the batch would themselves move the row buffers.
    pub fn probe_row_hits(&self, addrs: &[MAddr]) -> u64 {
        let mut hits = 0u64;
        for &addr in addrs {
            let bank = self.cfg.bank_of(addr) as usize;
            let row = self.cfg.row_of(addr);
            hits += u64::from(self.banks[bank].open_row == Some(row));
        }
        hits
    }

    /// Closes all open rows (e.g. across a simulated refresh or barrier).
    pub fn precharge_all(&mut self) {
        for bank in &mut self.banks {
            bank.open_row = None;
        }
    }

    /// Serializes bank open-row/timing state, data-bus occupancy,
    /// statistics, latency histograms, and (when fault injection is
    /// configured) the injector's dynamic state.
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(TAG_DRAM);
        w.usize(self.banks.len());
        for b in &self.banks {
            w.bool(b.open_row.is_some());
            w.u64(b.open_row.unwrap_or(0));
            w.u64(b.busy_until);
        }
        w.u64(self.data_bus_free);
        let s = &self.stats;
        for v in [
            s.reads,
            s.writes,
            s.row_hits,
            s.row_misses,
            s.bytes,
            s.bank_wait,
        ] {
            w.u64(v);
        }
        w.u64_slice(&self.lat_row_hit.state_words());
        w.u64_slice(&self.lat_row_miss.state_words());
        for h in &self.heat {
            w.u64(h.row_hits);
            w.u64(h.row_misses);
            w.u64(h.row_conflicts);
        }
        w.bool(self.faults.is_some());
        if let Some(f) = &self.faults {
            f.snap_save(w);
        }
    }

    /// Restores the state saved by [`Dram::snap_save`] into an array
    /// freshly built from the same configuration (including any attached
    /// injector).
    pub fn snap_load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(TAG_DRAM)?;
        let n = r.usize()?;
        if n != self.banks.len() {
            return Err(SnapError::Geometry("DRAM bank count"));
        }
        for b in &mut self.banks {
            let open = r.bool()?;
            let row = r.u64()?;
            b.open_row = open.then_some(row);
            b.busy_until = r.u64()?;
        }
        self.data_bus_free = r.u64()?;
        let s = &mut self.stats;
        for v in [
            &mut s.reads,
            &mut s.writes,
            &mut s.row_hits,
            &mut s.row_misses,
            &mut s.bytes,
            &mut s.bank_wait,
        ] {
            *v = r.u64()?;
        }
        self.lat_row_hit = Histogram::from_state_words(&r.u64_vec()?)
            .ok_or(SnapError::Geometry("DRAM row-hit histogram"))?;
        self.lat_row_miss = Histogram::from_state_words(&r.u64_vec()?)
            .ok_or(SnapError::Geometry("DRAM row-miss histogram"))?;
        for h in &mut self.heat {
            h.row_hits = r.u64()?;
            h.row_misses = r.u64()?;
            h.row_conflicts = r.u64()?;
        }
        let had_faults = r.bool()?;
        match (&mut self.faults, had_faults) {
            (Some(f), true) => f.snap_load(r)?,
            (None, false) => {}
            _ => return Err(SnapError::Geometry("DRAM fault injector presence")),
        }
        Ok(())
    }
}

impl Observe for Dram {
    fn observe(&self, m: &mut MetricsRegistry) {
        m.counter("dram.reads", self.stats.reads);
        m.counter("dram.writes", self.stats.writes);
        m.counter("dram.row_hits", self.stats.row_hits);
        m.counter("dram.row_misses", self.stats.row_misses);
        m.counter("dram.bytes", self.stats.bytes);
        m.counter("dram.bank_wait", self.stats.bank_wait);
        m.gauge("dram.row_hit_ratio", self.stats.row_hit_ratio());
        m.histogram("dram.lat_row_hit", &self.lat_row_hit);
        m.histogram("dram.lat_row_miss", &self.lat_row_miss);
        for (i, h) in self.heat.iter().enumerate() {
            m.counter(&format!("dram.bank{i:02}.row_hits"), h.row_hits);
            m.counter(&format!("dram.bank{i:02}.row_misses"), h.row_misses);
            m.counter(&format!("dram.bank{i:02}.row_conflicts"), h.row_conflicts);
        }
        if self.faults.is_some() {
            let f = self.flip_stats();
            m.counter("dram.fault.injected_single", f.injected_single);
            m.counter("dram.fault.injected_double", f.injected_double);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default())
    }

    #[test]
    fn first_access_is_row_miss() {
        let mut d = dram();
        let done = d.access(MAddr::new(0), AccessKind::Load, 8, 0);
        assert_eq!(d.stats().row_misses, 1);
        assert_eq!(d.stats().row_hits, 0);
        let cfg = DramConfig::default();
        assert_eq!(done, cfg.t_row_miss + cfg.t_bus_min);
    }

    #[test]
    fn same_row_hits_open_page() {
        let mut d = dram();
        let t1 = d.access(MAddr::new(0), AccessKind::Load, 8, 0);
        let t2 = d.access(MAddr::new(512), AccessKind::Load, 8, t1);
        assert_eq!(d.stats().row_hits, 1);
        assert!(t2 - t1 < t1, "row hit should be cheaper than row miss");
    }

    #[test]
    fn different_rows_same_bank_miss() {
        let cfg = DramConfig::default();
        let stride = cfg.row_bytes * cfg.banks; // same bank, next row
        let mut d = Dram::new(cfg);
        d.access(MAddr::new(0), AccessKind::Load, 8, 0);
        d.access(MAddr::new(stride), AccessKind::Load, 8, 1000);
        assert_eq!(d.stats().row_misses, 2);
    }

    #[test]
    fn adjacent_rows_use_different_banks() {
        let cfg = DramConfig::default();
        assert_ne!(
            cfg.bank_of(MAddr::new(0)),
            cfg.bank_of(MAddr::new(cfg.row_bytes))
        );
    }

    #[test]
    fn probe_row_hits_is_read_only_and_matches_open_rows() {
        let cfg = DramConfig::default();
        let stride = cfg.row_bytes * cfg.banks; // same bank, next row
        let mut d = Dram::new(cfg);
        assert_eq!(d.probe_row_hits(&[MAddr::new(0)]), 0); // nothing open
        d.access(MAddr::new(0), AccessKind::Load, 8, 0);
        let stats = d.stats();
        // Open row 0 of bank 0: same-row addrs hit, other rows/banks miss.
        let probe = [
            MAddr::new(0),
            MAddr::new(512),
            MAddr::new(stride),
            MAddr::new(d.config().row_bytes),
        ];
        assert_eq!(d.probe_row_hits(&probe), 2);
        assert_eq!(d.stats(), stats, "probe must not perturb stats");
        assert_eq!(d.probe_row_hits(&[]), 0);
    }

    #[test]
    fn bank_conflicts_wait() {
        let mut d = dram();
        // Two immediate accesses to the same bank, different rows.
        let cfg = DramConfig::default();
        let stride = cfg.row_bytes * cfg.banks;
        d.access(MAddr::new(0), AccessKind::Load, 8, 0);
        d.access(MAddr::new(stride), AccessKind::Load, 8, 0);
        assert!(d.stats().bank_wait > 0);
    }

    #[test]
    fn data_bus_serializes_parallel_banks() {
        let cfg = DramConfig::default();
        let row = cfg.row_bytes;
        let mut d = Dram::new(cfg.clone());
        // Same start time, different banks: banks overlap, bus serializes.
        let t1 = d.access(MAddr::new(0), AccessKind::Load, 128, 0);
        let t2 = d.access(MAddr::new(row), AccessKind::Load, 128, 0);
        assert_eq!(t2 - t1, cfg.transfer_cycles(128));
    }

    #[test]
    fn transfer_cycles_scale_with_bytes() {
        let cfg = DramConfig::default();
        assert_eq!(cfg.transfer_cycles(8), cfg.t_bus_min);
        assert_eq!(cfg.transfer_cycles(128), 128 / cfg.bus_bytes_per_cycle);
    }

    #[test]
    fn stats_track_reads_writes_bytes() {
        let mut d = dram();
        d.access(MAddr::new(0), AccessKind::Load, 32, 0);
        d.access(MAddr::new(32), AccessKind::Store, 32, 100);
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes, 64);
    }

    #[test]
    fn precharge_forces_row_miss() {
        let mut d = dram();
        d.access(MAddr::new(0), AccessKind::Load, 8, 0);
        d.precharge_all();
        d.access(MAddr::new(8), AccessKind::Load, 8, 1000);
        assert_eq!(d.stats().row_misses, 2);
    }

    #[test]
    fn row_hit_ratio_handles_empty() {
        assert_eq!(DramStats::default().row_hit_ratio(), 0.0);
    }

    #[test]
    fn latency_histograms_partition_accesses() {
        let mut d = dram();
        let mut t = 0;
        for i in 0..16u64 {
            t = d.access(MAddr::new(i * 64), AccessKind::Load, 8, t);
        }
        let s = d.stats();
        assert_eq!(d.row_hit_latency().count(), s.row_hits);
        assert_eq!(d.row_miss_latency().count(), s.row_misses);
        assert!(d.row_miss_latency().min() > d.row_hit_latency().min());
        let mut m = MetricsRegistry::new();
        d.observe(&mut m);
        assert_eq!(m.counter_value("dram.reads"), Some(16));
        assert_eq!(
            m.histogram_value("dram.lat_row_hit").unwrap().count(),
            s.row_hits
        );
        d.reset_stats();
        assert_eq!(d.row_hit_latency().count(), 0);
    }

    #[test]
    fn fault_injector_flips_are_drained_by_the_controller_side() {
        use impulse_fault::{FaultPlan, Trigger};
        let mut d = dram();
        d.set_fault_injector(FlipInjector::new(
            FaultPlan::new(Trigger::EveryN { every: 2, phase: 0 }, 1),
            0,
        ));
        let mut t = 0;
        for i in 0..4u64 {
            t = d.access(MAddr::new(i * 64), AccessKind::Load, 8, t);
        }
        assert_eq!(d.flip_stats().injected_single, 2);
        let flips = d.take_flips();
        assert_eq!(flips.len(), 2);
        assert!(d.take_flips().is_empty(), "drain is destructive");
        // Timing is unaffected by injection itself (ECC charges happen
        // at the controller).
        let mut clean = dram();
        let mut tc = 0;
        for i in 0..4u64 {
            tc = clean.access(MAddr::new(i * 64), AccessKind::Load, 8, tc);
        }
        assert_eq!(t, tc);
    }

    #[test]
    fn bank_heat_separates_conflicts_from_cold_misses() {
        let cfg = DramConfig::default();
        let stride = cfg.row_bytes * cfg.banks; // same bank, next row
        let mut d = Dram::new(cfg);
        d.access(MAddr::new(0), AccessKind::Load, 8, 0); // cold miss, bank 0
        d.access(MAddr::new(64), AccessKind::Load, 8, 100); // row hit
        d.access(MAddr::new(stride), AccessKind::Load, 8, 200); // conflict
        d.precharge_all();
        d.access(MAddr::new(0), AccessKind::Load, 8, 300); // cold again
        let h = d.bank_heat()[0];
        assert_eq!(h.row_hits, 1);
        assert_eq!(h.row_misses, 3);
        assert_eq!(h.row_conflicts, 1, "precharged banks have nothing to lose");
        assert_eq!(d.bank_heat()[1], BankHeat::default());
        // Heat is exported per bank and sums to the aggregate stats.
        let mut m = MetricsRegistry::new();
        d.observe(&mut m);
        assert_eq!(m.counter_value("dram.bank00.row_conflicts"), Some(1));
        let s = d.stats();
        let sum: u64 = d
            .bank_heat()
            .iter()
            .map(|h| h.row_hits + h.row_misses)
            .sum();
        assert_eq!(sum, s.row_hits + s.row_misses);
        d.reset_stats();
        assert_eq!(d.bank_heat()[0], BankHeat::default());
    }

    #[test]
    fn bank_heat_survives_a_snapshot_round_trip() {
        let mut d = dram();
        let mut t = 0;
        for i in 0..32u64 {
            t = d.access(MAddr::new((i % 7) * 4096), AccessKind::Load, 8, t);
        }
        let mut w = impulse_types::snap::SnapWriter::new();
        d.snap_save(&mut w);
        let bytes = w.finish();
        let mut fresh = dram();
        let mut r = impulse_types::snap::SnapReader::new(&bytes);
        fresh.snap_load(&mut r).expect("snapshot must load");
        assert_eq!(fresh.bank_heat(), d.bank_heat());
        assert_ne!(d.bank_heat()[0], BankHeat::default());
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let cfg = DramConfig {
            banks: 0,
            ..DramConfig::default()
        };
        let _ = Dram::new(cfg);
    }
}
