//! Benchmarks for the remaining experiments: the Figure 1 diagonal walk,
//! the superpage TLB sweep, and the IPC gather — each in its
//! conventional and Impulse form.

use std::hint::black_box;

use impulse_bench::harness::Group;
use impulse_sim::{Machine, SystemConfig};
use impulse_workloads::{Diagonal, DiagonalVariant, IpcGather, IpcVariant, TlbStress, TlbVariant};

fn bench_fig1() {
    let mut g = Group::new("fig1_diagonal");
    for variant in [DiagonalVariant::Conventional, DiagonalVariant::Remapped] {
        g.bench(variant.name(), || {
            let mut m = Machine::new(&SystemConfig::paint_small());
            let d = Diagonal::setup(&mut m, 512, variant).expect("setup");
            d.run(&mut m, 2);
            black_box(m.now())
        });
    }
}

fn bench_superpage() {
    let mut g = Group::new("superpage_tlb");
    for variant in [TlbVariant::BasePages, TlbVariant::Superpages] {
        g.bench(variant.name(), || {
            let mut m = Machine::new(&SystemConfig::paint_small());
            let w = TlbStress::setup(&mut m, 4, 64, variant).expect("setup");
            w.sweep(&mut m, 2);
            black_box(m.now())
        });
    }
}

fn bench_ipc() {
    let mut g = Group::new("ipc_gather");
    for variant in [IpcVariant::SoftwareGather, IpcVariant::ImpulseGather] {
        g.bench(variant.name(), || {
            let mut m = Machine::new(&SystemConfig::paint_small());
            let w = IpcGather::setup(&mut m, 4, 2048, 64, variant).expect("setup");
            for _ in 0..4 {
                w.send(&mut m);
            }
            black_box(m.now())
        });
    }
}

fn main() {
    bench_fig1();
    bench_superpage();
    bench_ipc();
}
