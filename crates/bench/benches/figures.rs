//! Criterion benchmarks for the remaining experiments: the Figure 1
//! diagonal walk, the superpage TLB sweep, and the IPC gather — each in
//! its conventional and Impulse form.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use impulse_sim::{Machine, SystemConfig};
use impulse_workloads::{
    Diagonal, DiagonalVariant, IpcGather, IpcVariant, TlbStress, TlbVariant,
};

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_diagonal");
    for variant in [DiagonalVariant::Conventional, DiagonalVariant::Remapped] {
        g.bench_function(variant.name(), |b| {
            b.iter(|| {
                let mut m = Machine::new(&SystemConfig::paint_small());
                let d = Diagonal::setup(&mut m, 512, variant).expect("setup");
                d.run(&mut m, 2);
                black_box(m.now())
            })
        });
    }
    g.finish();
}

fn bench_superpage(c: &mut Criterion) {
    let mut g = c.benchmark_group("superpage_tlb");
    g.sample_size(20);
    for variant in [TlbVariant::BasePages, TlbVariant::Superpages] {
        g.bench_function(variant.name(), |b| {
            b.iter(|| {
                let mut m = Machine::new(&SystemConfig::paint_small());
                let w = TlbStress::setup(&mut m, 4, 64, variant).expect("setup");
                w.sweep(&mut m, 2);
                black_box(m.now())
            })
        });
    }
    g.finish();
}

fn bench_ipc(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipc_gather");
    for variant in [IpcVariant::SoftwareGather, IpcVariant::ImpulseGather] {
        g.bench_function(variant.name(), |b| {
            b.iter(|| {
                let mut m = Machine::new(&SystemConfig::paint_small());
                let w = IpcGather::setup(&mut m, 4, 2048, 64, variant).expect("setup");
                for _ in 0..4 {
                    w.send(&mut m);
                }
                black_box(m.now())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig1, bench_superpage, bench_ipc);
criterion_main!(benches);
