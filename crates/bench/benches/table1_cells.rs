//! Benchmark for Table 1 (NAS CG sparse matrix-vector product):
//! measures wall-clock simulation cost of each memory-system
//! configuration at a reduced scale. The paper-shape *results* come from
//! the `table1` binary; this bench tracks the simulator's own
//! performance on the same cells.

use std::hint::black_box;
use std::sync::Arc;

use impulse_bench::harness::Group;
use impulse_sim::{Machine, SystemConfig};
use impulse_workloads::{Smvp, SmvpVariant, SparsePattern};

fn main() {
    let pattern = Arc::new(SparsePattern::generate(4096, 8, 11));
    let mut g = Group::new("table1");

    let cells = [
        (SmvpVariant::Conventional, false, false, "conventional"),
        (SmvpVariant::Conventional, true, true, "conventional+pf"),
        (SmvpVariant::ScatterGather, false, false, "scatter_gather"),
        (
            SmvpVariant::ScatterGather,
            true,
            false,
            "scatter_gather+mcpf",
        ),
        (SmvpVariant::Recolored, false, false, "recolored"),
    ];
    for (variant, mc_pf, l1_pf, label) in cells {
        g.bench(label, || {
            let cfg = SystemConfig::paint_small().with_prefetch(mc_pf, l1_pf);
            let mut m = Machine::new(&cfg);
            let w = Smvp::setup(&mut m, pattern.clone(), variant).expect("setup");
            w.run(&mut m, 1);
            black_box(m.report(label).cycles)
        });
    }
}
