//! Simulator-throughput benchmarks: how many simulated memory operations
//! per second the full machine model sustains on characteristic access
//! patterns. These guard against regressions in the simulator hot path
//! (translation, TLB, cache lookup, controller dispatch).

use std::hint::black_box;

use impulse_bench::harness::Group;
use impulse_sim::{Machine, SystemConfig};
use impulse_types::VRange;

const OPS: u64 = 10_000;

fn machine_with_region(bytes: u64) -> (Machine, VRange) {
    let mut m = Machine::new(&SystemConfig::paint_small().with_prefetch(true, false));
    let r = m.alloc_region(bytes, 128).expect("alloc");
    (m, r)
}

fn bench_machine() {
    let mut g = Group::new("machine_throughput");

    {
        let (mut m, r) = machine_with_region(1 << 22);
        let mut off = 0u64;
        g.bench("sequential_loads_10k", || {
            for _ in 0..OPS {
                m.load(r.start().add(off % (1 << 22)));
                off += 8;
            }
            black_box(m.now())
        });
    }

    {
        let (mut m, r) = machine_with_region(1 << 22);
        let mut lcg = 0x2545_f491_4f6c_dd1du64;
        g.bench("random_loads_10k", || {
            for _ in 0..OPS {
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
                m.load(r.start().add(((lcg >> 17) % (1 << 22)) & !7));
            }
            black_box(m.now())
        });
    }

    {
        let (mut m, r) = machine_with_region(16 * 1024);
        let mut off = 0u64;
        g.bench("l1_resident_loads_10k", || {
            for _ in 0..OPS {
                m.load(r.start().add(off % (16 * 1024)));
                off += 8;
            }
            black_box(m.now())
        });
    }

    {
        let mut m = Machine::new(&SystemConfig::paint_small().with_prefetch(true, false));
        let x = m.alloc_region(1 << 20, 8).expect("alloc x");
        let colv = m.alloc_region(1 << 19, 4).expect("alloc col");
        let n = 1u64 << 17;
        let indices: std::sync::Arc<Vec<u64>> =
            std::sync::Arc::new((0..n).map(|i| (i * 2654435761) % n).collect());
        let alias = m
            .sys_remap_gather(x, 8, indices, colv, 4)
            .expect("gather")
            .alias;
        let mut off = 0u64;
        g.bench("gathered_alias_loads_10k", || {
            for _ in 0..OPS {
                m.load(alias.start().add(off % (n * 8)));
                off += 8;
            }
            black_box(m.now())
        });
    }
}

fn main() {
    bench_machine();
}
