//! Regression guards for the simulator's host-side hot paths: the three
//! translate layers (OS page table, CPU TLB index, controller PgTbl with
//! its front cache) and the shadow-line gather's segment/merge pipeline.
//! These are the paths that run once (or more) per simulated access, so
//! a regression here slows every experiment in the suite.

use std::hint::black_box;

use impulse_bench::harness::Group;
use impulse_cache::{Cache, CacheConfig, Tlb, TlbConfig};
use impulse_core::{McConfig, MemController, PgTbl, PgTblConfig, RemapFn};
use impulse_dram::{Dram, DramConfig};
use impulse_os::AddressSpace;
use impulse_types::geom::PAGE_SIZE;
use impulse_types::{AccessKind, MAddr, PAddr, PvAddr, VAddr};

fn bench_pgtbl_translate() {
    let mut g = Group::new("pgtbl");
    let mk = || {
        let mut pt = PgTbl::new(PgTblConfig::default());
        for page in 0..512u64 {
            pt.map_page(page, MAddr::new(page * PAGE_SIZE));
        }
        (pt, Dram::new(DramConfig::default()))
    };

    // Same page over and over: the front-cache fast path.
    let (mut pt, mut dram) = mk();
    let mut off = 0u64;
    g.bench("translate_front_hit", || {
        off = (off + 8) % PAGE_SIZE;
        pt.translate(PvAddr::new(7 * PAGE_SIZE + off), &mut dram, 0)
            .expect("mapped page")
            .0
    });

    // A working set larger than the on-chip TLB: hit/walk mix with
    // front-cache conflicts (the shape shadow gathers produce).
    let (mut pt, mut dram) = mk();
    let mut i = 0u64;
    g.bench("translate_512page_sweep", || {
        i = i.wrapping_add(1);
        let page = (i * 97) % 512;
        pt.translate(PvAddr::new(page * PAGE_SIZE + (i % 512) * 8), &mut dram, 0)
            .expect("mapped page")
            .0
    });
}

fn bench_cpu_tlb() {
    let mut g = Group::new("cpu_tlb");
    let mut tlb = Tlb::new(TlbConfig::default());
    for page in 0..120u64 {
        tlb.insert(page, 1);
    }
    let mut i = 0u64;
    g.bench("lookup_hit", || {
        i = i.wrapping_add(1);
        tlb.lookup((i * 13) % 120)
    });
    let mut tlb = Tlb::new(TlbConfig::default());
    let mut i = 0u64;
    g.bench("lookup_miss_insert", || {
        i = i.wrapping_add(1);
        let page = (i * 13) % 4096;
        if !tlb.lookup(page) {
            tlb.insert(page, 1);
        }
        page
    });
}

fn bench_os_vm() {
    let mut g = Group::new("os_vm");
    let mut aspace = AddressSpace::new();
    let r = aspace.reserve(1024 * PAGE_SIZE, PAGE_SIZE);
    for i in 0..1024u64 {
        aspace
            .map_page(r.start().add(i * PAGE_SIZE), PAddr::new(i * PAGE_SIZE))
            .unwrap();
    }
    let mut i = 0u64;
    g.bench("translate_1024pages", || {
        i = i.wrapping_add(1);
        aspace.translate(VAddr::new(
            r.start().raw() + (i * 4093 * 8) % (1024 * PAGE_SIZE),
        ))
    });
}

fn bench_gather_merge() {
    let mut g = Group::new("gather");
    // Byte-granularity strided gather: 128 segments per shadow line, all
    // coalescing through the merge scratch — the heaviest merge shape
    // (the media channel-extraction workload's).
    let dram = Dram::new(DramConfig::default());
    let mut mc = MemController::new(dram, McConfig::default());
    let shadow = mc.shadow_base();
    let region = impulse_types::PRange::new(shadow, 1 << 20);
    mc.claim_descriptor(region, RemapFn::strided(PvAddr::new(0), 1, 3))
        .unwrap();
    for page in 0..((3 << 20) >> 12) + 1 {
        mc.map_page(page, MAddr::new(page << 12));
    }
    let mut now = 0u64;
    let mut line = 0u64;
    g.bench("strided_byte_line", || {
        let p = PAddr::new(shadow.raw() + (line % 4096) * 128);
        line += 1;
        now = mc.read_line(p, now + 100);
        black_box(now)
    });
}

fn bench_cache_probe_batch() {
    let mut g = Group::new("l1_probe");
    // The replay evaluator's span check is a pure batched residency
    // probe over Paint's direct-mapped L1; guard its per-batch cost.
    let mut l1 = Cache::new(CacheConfig::paint_l1());
    let line = l1.config().line;
    let lines = l1.config().size / line;
    for i in 0..lines {
        l1.access(VAddr::new(i * line), PAddr::new(i * line), AccessKind::Load);
    }
    let resident: Vec<(VAddr, PAddr)> = (0..64u64)
        .map(|i| (VAddr::new(i * line), PAddr::new(i * line)))
        .collect();
    // Every other probe aliases a resident line's set with a different
    // tag — the miss half never matches, the hit half always does.
    let mixed: Vec<(VAddr, PAddr)> = (0..64u64)
        .map(|i| {
            let a = i * line + (i % 2) * lines * line;
            (VAddr::new(a), PAddr::new(a))
        })
        .collect();
    g.bench("probe_batch_64_resident", || {
        black_box(l1.probe_batch(black_box(&resident)))
    });
    g.bench("probe_batch_64_mixed", || {
        black_box(l1.probe_batch(black_box(&mixed)))
    });
}

fn bench_dram_row_probe() {
    let mut g = Group::new("dram_row");
    // Open one row in every bank, then probe batches against the open
    // set — the read-only row-buffer query replay uses to cost a span
    // without touching DRAM state.
    let mut d = Dram::new(DramConfig::default());
    let cfg = d.config().clone();
    for bank in 0..cfg.banks {
        d.access(MAddr::new(bank * cfg.row_bytes), AccessKind::Load, 8, 0);
    }
    let hits: Vec<MAddr> = (0..64u64)
        .map(|i| MAddr::new((i % cfg.banks) * cfg.row_bytes + (i * 64) % cfg.row_bytes))
        .collect();
    let mixed: Vec<MAddr> = (0..64u64)
        .map(|i| MAddr::new((i % cfg.banks) * cfg.row_bytes + (i % 2) * cfg.banks * cfg.row_bytes))
        .collect();
    g.bench("probe_row_hits_64_open", || {
        black_box(d.probe_row_hits(black_box(&hits)))
    });
    g.bench("probe_row_hits_64_mixed", || {
        black_box(d.probe_row_hits(black_box(&mixed)))
    });
}

fn main() {
    bench_pgtbl_translate();
    bench_cpu_tlb();
    bench_os_vm();
    bench_gather_merge();
    bench_cache_probe_batch();
    bench_dram_row_probe();
}
