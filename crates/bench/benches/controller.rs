//! Microbenchmarks of the Impulse controller building blocks: AddrCalc
//! segment expansion, controller page-table translation, DRAM scheduler
//! batches, and full shadow-line gathers.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use impulse_core::{McConfig, MemController, RemapFn};
use impulse_dram::{Dram, DramConfig, SchedulePolicy, Scheduler};
use impulse_types::{AccessKind, MAddr, PAddr, PRange, PvAddr};

fn bench_addrcalc(c: &mut Criterion) {
    let mut g = c.benchmark_group("addrcalc");
    let strided = RemapFn::strided(PvAddr::new(0), 8, 8 * 1025);
    let indices: Arc<Vec<u64>> = Arc::new((0..65536u64).map(|i| (i * 37) % 65536).collect());
    let gather = RemapFn::gather(PvAddr::new(0), 8, indices, PvAddr::new(1 << 30), 4);
    let mut segs = Vec::with_capacity(32);

    g.bench_function("strided_segments_128B", |b| {
        let mut off = 0u64;
        b.iter(|| {
            strided.segments(off % 65536, 128, &mut segs);
            off += 128;
            black_box(segs.len())
        })
    });
    g.bench_function("gather_segments_128B", |b| {
        let mut off = 0u64;
        b.iter(|| {
            gather.segments(off % (65536 * 8 - 128), 128, &mut segs);
            off += 128;
            black_box(segs.len())
        })
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram_scheduler");
    let reqs: Vec<MAddr> = (0..16u64)
        .map(|i| MAddr::new(((i * 2654435761) % (1 << 20)) & !7))
        .collect();
    for policy in SchedulePolicy::ALL {
        g.bench_function(policy.name(), |b| {
            b.iter_batched(
                || Dram::new(DramConfig::default()),
                |mut dram| {
                    Scheduler::new(policy)
                        .run_batch(&mut dram, &reqs, AccessKind::Load, 8, 0)
                        .done
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_gather_line(c: &mut Criterion) {
    let mut g = c.benchmark_group("controller");
    let dram = Dram::new(DramConfig::default());
    let mut mc = MemController::new(dram, McConfig::default());
    let shadow = mc.shadow_base();
    let indices: Arc<Vec<u64>> = Arc::new((0..65536u64).map(|i| (i * 97) % 16384).collect());
    let region = PRange::new(shadow, 65536 * 8);
    mc.claim_descriptor(
        region,
        RemapFn::gather(PvAddr::new(0), 8, indices, PvAddr::new(1 << 27), 4),
    )
    .unwrap();
    for page in 0..((16384 * 8) >> 12) + 1 {
        mc.map_page(page, MAddr::new(page << 12));
    }
    for page in 0..((65536 * 4) >> 12) + 1 {
        mc.map_page((1 << 15) + page, MAddr::new((1 << 28) + (page << 12)));
    }

    g.bench_function("gather_shadow_line", |b| {
        let mut now = 0u64;
        let mut line = 0u64;
        b.iter(|| {
            let p = PAddr::new(shadow.raw() + (line % 4096) * 128);
            line += 1;
            now = mc.read_line(p, now + 100);
            black_box(now)
        })
    });
    g.bench_function("read_physical_line", |b| {
        let mut now = 0u64;
        let mut line = 0u64;
        b.iter(|| {
            let p = PAddr::new((line % 4096) * 128);
            line += 1;
            now = mc.read_line(p, now + 100);
            black_box(now)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_addrcalc, bench_scheduler, bench_gather_line);
criterion_main!(benches);
