//! Microbenchmarks of the Impulse controller building blocks: AddrCalc
//! segment expansion, controller page-table translation, DRAM scheduler
//! batches, and full shadow-line gathers.

use std::hint::black_box;
use std::sync::Arc;

use impulse_bench::harness::Group;
use impulse_core::{McConfig, MemController, RemapFn};
use impulse_dram::{Dram, DramConfig, SchedulePolicy, Scheduler};
use impulse_types::{AccessKind, MAddr, PAddr, PRange, PvAddr};

fn bench_addrcalc() {
    let mut g = Group::new("addrcalc");
    let strided = RemapFn::strided(PvAddr::new(0), 8, 8 * 1025);
    let indices: Arc<Vec<u64>> = Arc::new((0..65536u64).map(|i| (i * 37) % 65536).collect());
    let gather = RemapFn::gather(PvAddr::new(0), 8, indices, PvAddr::new(1 << 30), 4);
    let mut segs = Vec::with_capacity(32);

    let mut off = 0u64;
    g.bench("strided_segments_128B", || {
        strided.segments(off % 65536, 128, &mut segs);
        off += 128;
        black_box(segs.len())
    });
    let mut segs = Vec::with_capacity(32);
    let mut off = 0u64;
    g.bench("gather_segments_128B", || {
        gather.segments(off % (65536 * 8 - 128), 128, &mut segs);
        off += 128;
        black_box(segs.len())
    });
}

fn bench_scheduler() {
    let mut g = Group::new("dram_scheduler");
    let reqs: Vec<MAddr> = (0..16u64)
        .map(|i| MAddr::new(((i * 2654435761) % (1 << 20)) & !7))
        .collect();
    for policy in SchedulePolicy::ALL {
        g.bench(policy.name(), || {
            let mut dram = Dram::new(DramConfig::default());
            Scheduler::new(policy)
                .run_batch(&mut dram, &reqs, AccessKind::Load, 8, 0)
                .done
        });
    }
}

fn bench_gather_line() {
    let mut g = Group::new("controller");
    let dram = Dram::new(DramConfig::default());
    let mut mc = MemController::new(dram, McConfig::default());
    let shadow = mc.shadow_base();
    let indices: Arc<Vec<u64>> = Arc::new((0..65536u64).map(|i| (i * 97) % 16384).collect());
    let region = PRange::new(shadow, 65536 * 8);
    mc.claim_descriptor(
        region,
        RemapFn::gather(PvAddr::new(0), 8, indices, PvAddr::new(1 << 27), 4),
    )
    .unwrap();
    for page in 0..((16384 * 8) >> 12) + 1 {
        mc.map_page(page, MAddr::new(page << 12));
    }
    for page in 0..((65536 * 4) >> 12) + 1 {
        mc.map_page((1 << 15) + page, MAddr::new((1 << 28) + (page << 12)));
    }

    let mut now = 0u64;
    let mut line = 0u64;
    g.bench("gather_shadow_line", || {
        let p = PAddr::new(shadow.raw() + (line % 4096) * 128);
        line += 1;
        now = mc.read_line(p, now + 100);
        black_box(now)
    });
    let mut now = 0u64;
    let mut line = 0u64;
    g.bench("read_physical_line", || {
        let p = PAddr::new((line % 4096) * 128);
        line += 1;
        now = mc.read_line(p, now + 100);
        black_box(now)
    });
}

fn main() {
    bench_addrcalc();
    bench_scheduler();
    bench_gather_line();
}
