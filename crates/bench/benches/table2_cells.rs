//! Criterion benchmark for Table 2 (tiled matrix-matrix product):
//! measures wall-clock simulation cost of each memory-system
//! configuration at a reduced scale. The paper-shape *results* come from
//! the `table2` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use impulse_sim::{Machine, SystemConfig};
use impulse_workloads::{Mmp, MmpParams, MmpVariant};

fn bench_table2(c: &mut Criterion) {
    let params = MmpParams { n: 64, tile: 32 };
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);

    for variant in MmpVariant::ALL {
        let label = match variant {
            MmpVariant::Conventional => "conventional",
            MmpVariant::SoftwareCopy => "software_copy",
            MmpVariant::TileRemap => "tile_remap",
        };
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut m = Machine::new(&SystemConfig::paint_small());
                let mut w = Mmp::setup(&mut m, params, variant).expect("setup");
                w.run(&mut m).expect("run");
                black_box(m.report(label).cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
