//! Benchmark for Table 2 (tiled matrix-matrix product): measures
//! wall-clock simulation cost of each memory-system configuration at a
//! reduced scale. The paper-shape *results* come from the `table2`
//! binary.

use std::hint::black_box;

use impulse_bench::harness::Group;
use impulse_sim::{Machine, SystemConfig};
use impulse_workloads::{Mmp, MmpParams, MmpVariant};

fn main() {
    let params = MmpParams { n: 64, tile: 32 };
    let mut g = Group::new("table2");

    for variant in MmpVariant::ALL {
        let label = match variant {
            MmpVariant::Conventional => "conventional",
            MmpVariant::SoftwareCopy => "software_copy",
            MmpVariant::TileRemap => "tile_remap",
        };
        g.bench(label, || {
            let mut m = Machine::new(&SystemConfig::paint_small());
            let mut w = Mmp::setup(&mut m, params, variant).expect("setup");
            w.run(&mut m).expect("run");
            black_box(m.report(label).cycles)
        });
    }
}
