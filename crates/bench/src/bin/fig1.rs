//! Regenerates **Figure 1** of the paper, quantitatively: accessing the
//! diagonal of a dense matrix on a conventional memory system wastes bus
//! bandwidth and cache capacity (a whole line per element); Impulse
//! remaps the diagonal into dense cache lines.
//!
//! Prints cycles, bus traffic, useful-byte fraction, and hit ratios for
//! both systems. Overrides: `n=`, `passes=`.

use impulse_bench::Args;
use impulse_sim::{Machine, Report, SystemConfig};
use impulse_workloads::{Diagonal, DiagonalVariant};

fn run(n: u64, passes: u64, variant: DiagonalVariant) -> Report {
    let mut m = Machine::new(&SystemConfig::paint());
    let d = Diagonal::setup(&mut m, n, variant).expect("setup");
    // Measure the traversal itself (setup includes matrix allocation and,
    // for Impulse, one remap system call — reported separately).
    let setup_cycles = m.now();
    m.reset_stats();
    d.run(&mut m, passes);
    let mut r = m.report(variant.name());
    r.syscall_cycles += setup_cycles; // carry setup for the note below
    r
}

fn main() {
    let args = Args::parse();
    let n = args.get("n", if args.paper { 4096 } else { 2048 });
    let passes = args.get("passes", 4);

    let conv = run(n, passes, DiagonalVariant::Conventional);
    let imp = run(n, passes, DiagonalVariant::Remapped);
    // Unique useful data: the diagonal itself, fetched at least once.
    let useful = n * 8;

    println!("\n================================================================");
    println!("Figure 1 — diagonal of a dense {n}×{n} matrix, {passes} pass(es)");
    println!("================================================================");
    println!("{:<30}{:>16}{:>16}", "", "conventional", "impulse remap");
    println!("{:<30}{:>16}{:>16}", "cycles", conv.cycles, imp.cycles);
    println!(
        "{:<30}{:>16}{:>16}",
        "bus traffic (bytes)", conv.bus.bytes, imp.bus.bytes
    );
    println!(
        "{:<30}{:>15.1}%{:>15.1}%",
        "useful bus bytes",
        (100.0 * useful as f64 / conv.bus.bytes.max(1) as f64).min(100.0),
        (100.0 * useful as f64 / imp.bus.bytes.max(1) as f64).min(100.0)
    );
    println!(
        "{:<30}{:>15.1}%{:>15.1}%",
        "L1 hit ratio",
        100.0 * conv.mem.l1_ratio(),
        100.0 * imp.mem.l1_ratio()
    );
    println!(
        "{:<30}{:>15.1}%{:>15.1}%",
        "mem hit ratio",
        100.0 * conv.mem.mem_ratio(),
        100.0 * imp.mem.mem_ratio()
    );
    println!(
        "{:<30}{:>16.2}{:>16.2}",
        "avg load time",
        conv.mem.avg_load_time(),
        imp.mem.avg_load_time()
    );
    println!(
        "\nspeedup: {:.2}x   bus-traffic reduction: {:.1}x",
        conv.cycles as f64 / imp.cycles as f64,
        conv.bus.bytes as f64 / imp.bus.bytes.max(1) as f64
    );
    println!(
        "(the paper's Figure 1 is qualitative: a conventional fill moves a full\n\
         cache line per diagonal element — only one word of which is useful —\n\
         while Impulse packs diagonal elements densely before they cross the bus)"
    );
}
