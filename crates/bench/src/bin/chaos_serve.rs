//! Chaos suite for the experiment daemon: every scenario attacks one
//! link of the request lifecycle and asserts the contract — a client
//! gets either the correct byte-identical result or a typed error,
//! never a hang and never a torn artifact.
//!
//! Usage: `chaos_serve [seed=N]`
//!
//! Scenarios:
//!
//! * `cache_dedup_coalesce` — concurrent identical requests coalesce
//!   onto one execution; later requests hit the journal-backed cache.
//! * `worker_faults` — panicking, flaky, and hung backends: the
//!   watchdog abandons hung attempts, retries recover flaky ones, and
//!   the failure that survives the retry budget is a typed error.
//! * `frame_chaos` — garbage, truncated, and bit-flipped frames over a
//!   live socket come back as typed errors (or a clean close).
//! * `flood_quota` — over-quota and over-capacity floods shed with
//!   typed rejections carrying Retry-After.
//! * `deadline` — a request deadline shorter than the execution turns
//!   into a typed `deadline-exceeded` error, not a wait.
//! * `kill_mid_publish` — SIGKILL the daemon between journal fsync and
//!   client notification; the restarted daemon serves the result from
//!   its journal, byte-identical to a direct execution.
//! * `torn_journal_restart` — a daemon restarted over a torn/corrupt
//!   journal tail drops the damage and serves intact records cached.
//!
//! In-process scenarios use synthetic backends for speed; the two
//! restart scenarios drive the real `serve` binary (real catalog, real
//! SIGKILL) found next to this executable.

#[cfg(unix)]
mod unix_main {
    use std::io::Write as _;
    use std::os::unix::net::UnixStream;
    use std::path::{Path, PathBuf};
    use std::process::ExitCode;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{mpsc, Arc};
    use std::thread;
    use std::time::{Duration, Instant};

    use impulse_bench::runner;
    use impulse_bench::serve_support::CatalogBackend;
    use impulse_serve::wire::{read_frame, Frame, Kind};
    use impulse_serve::{
        AdmissionConfig, Backend, Class, Client, Response, RetryPolicy, RunRequest, Server,
        ServerConfig, StoredResult,
    };

    /// Each scenario gets this long before it is declared hung — the
    /// suite's own meta-invariant.
    const SCENARIO_LIMIT: Duration = Duration::from_secs(120);

    /// A catalog of cheap synthetic experiments (`exp-0`..`exp-15`),
    /// each taking `delay_ms` and counting its executions.
    struct FakeBackend {
        delay_ms: u64,
        executed: AtomicU64,
    }

    impl FakeBackend {
        fn new(delay_ms: u64) -> Self {
            Self {
                delay_ms,
                executed: AtomicU64::new(0),
            }
        }
    }

    impl Backend for FakeBackend {
        fn names(&self) -> Vec<String> {
            (0..16).map(|i| format!("exp-{i}")).collect()
        }

        fn config_digest(
            &self,
            experiment: &str,
            _seed: u64,
            tier: impulse_types::TierPolicy,
        ) -> Option<u64> {
            self.names().iter().any(|n| n == experiment).then(|| {
                impulse_types::ident::mix(
                    impulse_types::ident::digest64(experiment.as_bytes()),
                    impulse_types::ident::digest64(tier.name().as_bytes()),
                )
            })
        }

        fn run(
            &self,
            experiment: &str,
            seed: u64,
            _tier: impulse_types::TierPolicy,
        ) -> Result<StoredResult, String> {
            thread::sleep(Duration::from_millis(self.delay_ms));
            self.executed.fetch_add(1, Ordering::SeqCst);
            Ok(StoredResult {
                csv: format!("{experiment},{seed},row"),
                report: format!("{{\"name\": \"{experiment}\", \"seed\": {seed}}}"),
            })
        }
    }

    struct Ctx {
        dir: PathBuf,
        seed: u64,
    }

    impl Ctx {
        fn path(&self, name: &str) -> PathBuf {
            self.dir.join(name)
        }
    }

    fn base_config(ctx: &Ctx, tag: &str) -> ServerConfig {
        let mut cfg = ServerConfig::new(
            ctx.path(&format!("{tag}.sock")),
            ctx.path(&format!("{tag}-journal.bin")),
        );
        cfg.workers = 4;
        cfg.watchdog_ms = 10_000;
        cfg.max_retries = 3;
        cfg.request_timeout_ms = 30_000;
        cfg.idle_timeout_ms = 2_000;
        cfg
    }

    /// Starts an in-process server and returns a join handle for its
    /// accept loop; shut it down with a client `shutdown()` call.
    fn spawn_server(
        backend: Arc<dyn Backend>,
        cfg: ServerConfig,
    ) -> Result<thread::JoinHandle<std::io::Result<()>>, String> {
        let server = Server::start(backend, cfg).map_err(|e| format!("start: {e}"))?;
        Ok(thread::spawn(move || server.run()))
    }

    fn quick_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 10,
            max_backoff_ms: 200,
            recv_timeout_ms: 30_000,
        }
    }

    fn run_req(experiment: &str, seed: u64, class: Class, deadline_ms: u64) -> RunRequest {
        RunRequest {
            experiment: experiment.to_string(),
            seed,
            tenant: "chaos".into(),
            class,
            deadline_ms,
            tier: impulse_types::TierPolicy::None,
        }
    }

    fn stop_server(
        socket: &Path,
        handle: thread::JoinHandle<std::io::Result<()>>,
    ) -> Result<(), String> {
        Client::new(socket, quick_policy(), 0)
            .shutdown()
            .map_err(|e| format!("shutdown: {e}"))?;
        match handle.join() {
            Ok(Ok(())) => Ok(()),
            Ok(Err(e)) => Err(format!("server accept loop failed: {e}")),
            Err(_) => Err("server thread panicked".into()),
        }
    }

    // ---------------------------------------------------------------
    // Scenarios
    // ---------------------------------------------------------------

    fn cache_dedup_coalesce(ctx: &Ctx) -> Result<(), String> {
        let backend = Arc::new(FakeBackend::new(150));
        let counted: Arc<FakeBackend> = Arc::clone(&backend);
        let cfg = base_config(ctx, "dedup");
        let socket = cfg.socket.clone();
        let handle = spawn_server(backend, cfg)?;

        // 8 concurrent identical requests: exactly one execution.
        let results: Vec<_> = thread::scope(|scope| {
            (0..8)
                .map(|i| {
                    let socket = socket.clone();
                    let seed = ctx.seed;
                    scope.spawn(move || {
                        Client::new(&socket, quick_policy(), 100 + i).run(&run_req(
                            "exp-1",
                            seed,
                            Class::Interactive,
                            0,
                        ))
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });
        let mut bodies = Vec::new();
        for r in results {
            let r = r.map_err(|e| format!("concurrent request failed: {e}"))?;
            bodies.push((r.csv, r.report));
        }
        if !bodies.windows(2).all(|w| w[0] == w[1]) {
            return Err("concurrent duplicates returned different bytes".into());
        }
        let executed = counted.executed.load(Ordering::SeqCst);
        if executed != 1 {
            return Err(format!(
                "expected 1 execution for 8 duplicates, got {executed}"
            ));
        }

        // A later identical request is served from the cache.
        let again = Client::new(&socket, quick_policy(), 9)
            .run(&run_req("exp-1", ctx.seed, Class::Interactive, 0))
            .map_err(|e| format!("cache request failed: {e}"))?;
        if !again.cached {
            return Err("follow-up request was not served from cache".into());
        }
        if (again.csv, again.report) != bodies[0] {
            return Err("cached result differs from executed result".into());
        }
        stop_server(&socket, handle)
    }

    fn worker_faults(ctx: &Ctx) -> Result<(), String> {
        let mut cfg = base_config(ctx, "faults");
        cfg.watchdog_ms = 200; // trip fast on the hang hook
        cfg.max_retries = 3;
        let socket = cfg.socket.clone();
        let handle = spawn_server(Arc::new(CatalogBackend::with_chaos_hooks()), cfg)?;

        // Flaky: fails twice, succeeds on the third server-side attempt.
        let flaky = Client::new(&socket, quick_policy(), 1)
            .run(&run_req("__chaos/flaky", ctx.seed, Class::Interactive, 0))
            .map_err(|e| format!("flaky hook should recover via retries: {e}"))?;
        if flaky.csv != format!("__chaos/flaky,{},ok", ctx.seed) {
            return Err(format!("unexpected flaky result: {}", flaky.csv));
        }

        // Panic: isolated per attempt, surfaces as a typed error.
        let panic_err = Client::new(&socket, quick_policy(), 2)
            .run(&run_req("__chaos/panic", ctx.seed, Class::Interactive, 0))
            .expect_err("panic hook must not produce a result");
        let text = panic_err.to_string();
        if !text.contains("worker-failed") && !text.contains("panicked") {
            return Err(format!("panic surfaced untyped: {text}"));
        }

        // Hang: the watchdog abandons each attempt; typed error, no hang.
        let t0 = Instant::now();
        let hang_err = Client::new(&socket, quick_policy(), 3)
            .run(&run_req("__chaos/hang", ctx.seed, Class::Interactive, 0))
            .expect_err("hang hook must not produce a result");
        if t0.elapsed() > Duration::from_secs(30) {
            return Err("hung request took too long to fail".into());
        }
        let text = hang_err.to_string();
        if !text.contains("watchdog") {
            return Err(format!("watchdog kill surfaced untyped: {text}"));
        }
        stop_server(&socket, handle)
    }

    /// Sends raw bytes and reads back one frame (if any) with a bounded
    /// timeout. `Ok(None)` means the server closed without a response —
    /// acceptable; a hang is not.
    fn raw_exchange(socket: &Path, bytes: &[u8]) -> Result<Option<Response>, String> {
        let mut stream = UnixStream::connect(socket).map_err(|e| format!("connect: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .expect("set timeout");
        stream.write_all(bytes).map_err(|e| format!("send: {e}"))?;
        stream
            .shutdown(std::net::Shutdown::Write)
            .map_err(|e| format!("shutdown(write): {e}"))?;
        match read_frame(&mut stream) {
            Ok(frame) => Response::from_frame(&frame)
                .map(Some)
                .map_err(|e| format!("undecodable response: {e}")),
            Err(impulse_serve::wire::WireError::Closed) => Ok(None),
            Err(impulse_serve::wire::WireError::Io(kind, detail))
                if kind == std::io::ErrorKind::WouldBlock
                    || kind == std::io::ErrorKind::TimedOut =>
            {
                Err(format!("server hung on corrupt input ({detail})"))
            }
            Err(e) => Err(format!("transport failure reading response: {e}")),
        }
    }

    fn expect_typed_error_or_close(what: &str, got: Option<Response>) -> Result<(), String> {
        match got {
            None | Some(Response::Error(_)) => Ok(()),
            Some(other) => Err(format!("{what}: expected typed error/close, got {other:?}")),
        }
    }

    fn frame_chaos(ctx: &Ctx) -> Result<(), String> {
        let cfg = base_config(ctx, "frames");
        let socket = cfg.socket.clone();
        let handle = spawn_server(Arc::new(FakeBackend::new(10)), cfg)?;

        // Garbage bytes: bad magic.
        expect_typed_error_or_close(
            "garbage",
            raw_exchange(&socket, b"GARBAGE-GARBAGE-GARBAGE")?,
        )?;

        // A dropped (truncated) frame: header promises more than we send.
        let valid = run_req("exp-2", ctx.seed, Class::Interactive, 0)
            .to_frame()
            .encode();
        expect_typed_error_or_close(
            "truncated",
            raw_exchange(&socket, &valid[..valid.len() / 2])?,
        )?;

        // A bit-flipped payload: checksum mismatch.
        let mut corrupt = valid.clone();
        let mid = 9 + (corrupt.len() - 17) / 2; // inside the payload
        corrupt[mid] ^= 0x40;
        expect_typed_error_or_close("bit-flip", raw_exchange(&socket, &corrupt)?)?;

        // An empty connection (connect, say nothing, close) is fine.
        drop(UnixStream::connect(&socket).map_err(|e| format!("connect: {e}"))?);

        // A response-kind frame sent as a request: typed bad-request.
        let confused = Frame::new(Kind::Ok, Vec::new()).encode();
        expect_typed_error_or_close("direction-confused", raw_exchange(&socket, &confused)?)?;

        // The stream after corruption still serves fresh connections.
        let ok = Client::new(&socket, quick_policy(), 5)
            .run(&run_req("exp-2", ctx.seed, Class::Interactive, 0))
            .map_err(|e| format!("healthy request after chaos failed: {e}"))?;
        if ok.csv.is_empty() {
            return Err("healthy request returned an empty row".into());
        }
        stop_server(&socket, handle)
    }

    fn flood_quota(ctx: &Ctx) -> Result<(), String> {
        let mut cfg = base_config(ctx, "quota");
        cfg.admission = AdmissionConfig {
            tenant_burst: 2,
            tenant_refill_per_sec: 0, // hard cap: no refill, ever
            ..AdmissionConfig::default()
        };
        let socket = cfg.socket.clone();
        let handle = spawn_server(Arc::new(FakeBackend::new(20)), cfg)?;

        // 6 distinct experiments, one tenant, burst of 2: at most two
        // admitted, the rest shed with typed quota rejections.
        let mut results = 0;
        let mut quota_rejects = 0;
        for i in 0..6 {
            let bytes = run_req(&format!("exp-{i}"), ctx.seed, Class::Bulk, 0)
                .to_frame()
                .encode();
            match raw_exchange(&socket, &bytes)? {
                Some(Response::Result(_)) => results += 1,
                Some(Response::Reject(rej)) => {
                    if rej.reason.name() != "quota-exhausted" {
                        return Err(format!("expected quota reject, got {}", rej.reason.name()));
                    }
                    if rej.retry_after_ms == 0 {
                        return Err("quota reject carried no Retry-After".into());
                    }
                    quota_rejects += 1;
                }
                other => return Err(format!("unexpected flood response: {other:?}")),
            }
        }
        if results != 2 || quota_rejects != 4 {
            return Err(format!(
                "burst=2 flood: expected 2 results + 4 rejects, got {results} + {quota_rejects}"
            ));
        }
        stop_server(&socket, handle)?;

        // Queue-capacity shedding: a zero-capacity interactive queue
        // rejects fresh work as queue-full.
        let mut cfg = base_config(ctx, "queuecap");
        cfg.admission.interactive_queue_cap = 0;
        let socket = cfg.socket.clone();
        let handle = spawn_server(Arc::new(FakeBackend::new(10)), cfg)?;
        let bytes = run_req("exp-3", ctx.seed, Class::Interactive, 0)
            .to_frame()
            .encode();
        match raw_exchange(&socket, &bytes)? {
            Some(Response::Reject(rej)) if rej.reason.name() == "queue-full" => {}
            other => return Err(format!("expected queue-full reject, got {other:?}")),
        }
        stop_server(&socket, handle)
    }

    fn deadline(ctx: &Ctx) -> Result<(), String> {
        let cfg = base_config(ctx, "deadline");
        let socket = cfg.socket.clone();
        let handle = spawn_server(Arc::new(FakeBackend::new(2_000)), cfg)?;
        let policy = RetryPolicy {
            max_attempts: 1,
            ..quick_policy()
        };
        let err = Client::new(&socket, policy, 1)
            .run(&run_req("exp-4", ctx.seed, Class::Interactive, 100))
            .expect_err("a 100 ms deadline cannot cover a 2 s execution");
        let text = err.to_string();
        if !text.contains("deadline") {
            return Err(format!("deadline miss surfaced untyped: {text}"));
        }
        stop_server(&socket, handle)
    }

    // ---------------------------------------------------------------
    // Subprocess scenarios: the real `serve` binary, real SIGKILL.
    // ---------------------------------------------------------------

    fn serve_binary() -> Result<PathBuf, String> {
        let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let bin = me
            .parent()
            .ok_or("current_exe has no parent directory")?
            .join("serve");
        if !bin.exists() {
            return Err(format!(
                "serve binary not found at {} (build it first)",
                bin.display()
            ));
        }
        Ok(bin)
    }

    fn wait_for_socket(socket: &Path, limit: Duration) -> Result<(), String> {
        let t0 = Instant::now();
        while t0.elapsed() < limit {
            if UnixStream::connect(socket).is_ok() {
                return Ok(());
            }
            thread::sleep(Duration::from_millis(25));
        }
        Err(format!("daemon never bound {}", socket.display()))
    }

    fn kill_mid_publish(ctx: &Ctx) -> Result<(), String> {
        let bin = serve_binary()?;
        let socket = ctx.path("kill.sock");
        let journal = ctx.path("kill-journal.bin");
        let experiment = "ipc/impulse no-copy gather"; // cheapest catalog entry
        let spawn = |stall_ms: u64| {
            std::process::Command::new(&bin)
                .args([
                    format!("socket={}", socket.display()),
                    format!("journal={}", journal.display()),
                    "workers=2".into(),
                    format!("publish_stall_ms={stall_ms}"),
                ])
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .spawn()
                .map_err(|e| format!("spawn serve: {e}"))
        };

        // Phase 1: daemon stalls 1.5 s between journal fsync and client
        // notification; we SIGKILL inside that window.
        let mut child = spawn(1_500)?;
        wait_for_socket(&socket, Duration::from_secs(10))?;
        let (tx, rx) = mpsc::channel();
        let req_socket = socket.clone();
        let seed = ctx.seed;
        thread::spawn(move || {
            let policy = RetryPolicy {
                max_attempts: 1,
                recv_timeout_ms: 60_000,
                ..RetryPolicy::default()
            };
            let out = Client::new(&req_socket, policy, 1).run(&run_req(
                experiment,
                seed,
                Class::Interactive,
                0,
            ));
            let _ = tx.send(out);
        });
        // The journal growing past its header-free empty state means the
        // result is fsync'd and the daemon is inside its stall window.
        let t0 = Instant::now();
        loop {
            let len = std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);
            if len > 0 {
                break;
            }
            if let Ok(early) = rx.try_recv() {
                let _ = child.kill();
                return Err(format!("client finished before publish: {early:?}"));
            }
            if t0.elapsed() > Duration::from_secs(60) {
                let _ = child.kill();
                return Err("experiment never published".into());
            }
            thread::sleep(Duration::from_millis(10));
        }
        child.kill().map_err(|e| format!("SIGKILL: {e}"))?;
        let _ = child.wait();
        // The client must observe a typed/transport error promptly — not
        // a hang — since the daemon died before notifying it.
        match rx.recv_timeout(Duration::from_secs(90)) {
            Ok(Ok(res)) => {
                return Err(format!(
                    "client got a result from a daemon killed pre-notification: {}",
                    res.key_hex
                ))
            }
            Ok(Err(_typed)) => {}
            Err(_) => return Err("client hung after daemon SIGKILL".into()),
        }

        // Phase 2: restart over the same journal; the record survived
        // the kill (fsync preceded the stall), so the request is a cache
        // hit, byte-identical to a direct execution.
        let mut child = spawn(0)?;
        wait_for_socket(&socket, Duration::from_secs(10))?;
        let served = Client::new(&socket, quick_policy(), 2)
            .run(&run_req(experiment, ctx.seed, Class::Interactive, 0))
            .map_err(|e| format!("post-restart request failed: {e}"))?;
        let direct = CatalogBackend::new()
            .run(experiment, ctx.seed, impulse_types::TierPolicy::None)
            .map_err(|e| format!("direct run failed: {e}"))?;
        let shutdown_err = Client::new(&socket, quick_policy(), 3).shutdown().err();
        let _ = child.wait();
        if let Some(e) = shutdown_err {
            return Err(format!("post-restart shutdown failed: {e}"));
        }
        if !served.cached {
            return Err("restarted daemon re-executed a journaled result".into());
        }
        if served.csv != direct.csv || served.report != direct.report {
            return Err("served result is not byte-identical to direct execution".into());
        }
        Ok(())
    }

    fn torn_journal_restart(ctx: &Ctx) -> Result<(), String> {
        let backend = || Arc::new(FakeBackend::new(10));
        let mut cfg = base_config(ctx, "torn");
        let socket = cfg.socket.clone();
        let journal = cfg.journal.clone();
        let handle = spawn_server(backend(), cfg.clone())?;
        let first = Client::new(&socket, quick_policy(), 1)
            .run(&run_req("exp-7", ctx.seed, Class::Interactive, 0))
            .map_err(|e| format!("seed request failed: {e}"))?;
        stop_server(&socket, handle)?;

        // Tear the journal: append half of a duplicated tail plus noise,
        // simulating a crash mid-append.
        let bytes = std::fs::read(&journal).map_err(|e| format!("read journal: {e}"))?;
        let mut torn = bytes.clone();
        torn.extend_from_slice(&bytes[..bytes.len() / 2]);
        torn.extend_from_slice(&[0xFF; 7]);
        std::fs::write(&journal, &torn).map_err(|e| format!("tear journal: {e}"))?;

        cfg.socket = ctx.path("torn2.sock");
        let socket = cfg.socket.clone();
        let counted = backend();
        let survivor: Arc<FakeBackend> = Arc::clone(&counted);
        let handle = spawn_server(counted, cfg)?;
        let again = Client::new(&socket, quick_policy(), 2)
            .run(&run_req("exp-7", ctx.seed, Class::Interactive, 0))
            .map_err(|e| format!("post-tear request failed: {e}"))?;
        let executed = survivor.executed.load(Ordering::SeqCst);
        stop_server(&socket, handle)?;
        if !again.cached || executed != 0 {
            return Err(format!(
                "intact record was not served from cache (cached={}, executed={executed})",
                again.cached
            ));
        }
        if again.csv != first.csv || again.report != first.report {
            return Err("recovered result differs from the original".into());
        }
        Ok(())
    }

    // ---------------------------------------------------------------

    pub fn main() -> ExitCode {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let seed = match runner::u64_from_args(&args, "seed", 7) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}\nusage: chaos_serve [seed=N]");
                return ExitCode::from(2);
            }
        };
        let dir = std::env::temp_dir().join(format!("impulse-chaos-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch directory");
        let ctx = Arc::new(Ctx { dir, seed });

        type Scenario = fn(&Ctx) -> Result<(), String>;
        let scenarios: Vec<(&str, Scenario)> = vec![
            ("cache_dedup_coalesce", cache_dedup_coalesce),
            ("worker_faults", worker_faults),
            ("frame_chaos", frame_chaos),
            ("flood_quota", flood_quota),
            ("deadline", deadline),
            ("kill_mid_publish", kill_mid_publish),
            ("torn_journal_restart", torn_journal_restart),
        ];

        let mut failures = 0;
        for (name, f) in scenarios {
            // Each scenario runs under its own deadline: the suite
            // itself must never hang, whatever the daemon does.
            let (tx, rx) = mpsc::channel();
            let ctx2 = Arc::clone(&ctx);
            let t0 = Instant::now();
            thread::spawn(move || {
                let _ = tx.send(f(&ctx2));
            });
            let verdict = match rx.recv_timeout(SCENARIO_LIMIT) {
                Ok(Ok(())) => Ok(()),
                Ok(Err(e)) => Err(e),
                Err(_) => Err(format!("scenario hung past {} s", SCENARIO_LIMIT.as_secs())),
            };
            match verdict {
                Ok(()) => println!("PASS {name} ({:.2}s)", t0.elapsed().as_secs_f64()),
                Err(e) => {
                    failures += 1;
                    println!("FAIL {name} ({:.2}s): {e}", t0.elapsed().as_secs_f64());
                }
            }
        }
        let _ = std::fs::remove_dir_all(&ctx.dir);
        if failures == 0 {
            println!("all serve chaos scenarios held");
            ExitCode::SUCCESS
        } else {
            eprintln!("{failures} scenario(s) failed");
            ExitCode::FAILURE
        }
    }
}

#[cfg(unix)]
fn main() -> std::process::ExitCode {
    unix_main::main()
}

#[cfg(not(unix))]
fn main() -> std::process::ExitCode {
    eprintln!("chaos_serve requires Unix domain sockets; this platform has none");
    std::process::ExitCode::from(2)
}
