//! Stream buffers vs. Impulse — the paper's Section 5 argument, tested.
//!
//! "Jouppi proposed the notion of a stream buffer … McKee et al. proposed
//! a programmable variant … Both forms of stream buffer allow
//! applications to improve their performance on regular applications,
//! but they do not support irregular applications."
//!
//! Two workloads probe the claim:
//!
//! * **diagonal walk** (regular): a programmable stream buffer hides the
//!   latency, but — being CPU-side — still drags a full line across the
//!   bus per element; Impulse also eliminates the wasted traffic.
//! * **CG sparse matrix-vector product** (irregular `x` accesses): stream
//!   buffers help only the regular `DATA`/`COLUMN` streams; Impulse's
//!   scatter/gather attacks the irregular part itself.
//!
//! Overrides: `n=` (diagonal), `rows=`, `nnz=` (CG).

use std::sync::Arc;

use impulse_bench::Args;
use impulse_sim::{Machine, Report, SystemConfig};
use impulse_types::geom::PAGE_SIZE;
use impulse_workloads::{Diagonal, DiagonalVariant, Smvp, SmvpVariant, SparsePattern};

/// Diagonal walk with per-page programmed streams (the stream follows
/// physical addresses, so the program is re-armed at page boundaries —
/// the stream buffer's inherent limitation vs. controller-side remap).
fn diagonal_with_streams(n: u64, passes: u64) -> Report {
    let cfg = SystemConfig::paint().with_stream_buffers();
    let mut m = Machine::new(&cfg);
    let a = m.alloc_region(n * n * 8, 128).expect("alloc");
    m.reset_stats();
    let stride = (n + 1) * 8;
    for _ in 0..passes {
        let mut last_page = u64::MAX;
        for i in 0..n {
            let v = a.start().add(i * stride);
            if v.page_number() != last_page {
                last_page = v.page_number();
                m.program_stream(v, stride as i64);
            }
            m.load(v);
            m.compute(2);
        }
    }
    m.report("programmed stream buffers")
}

fn diagonal_plain(n: u64, passes: u64, variant: DiagonalVariant) -> Report {
    let mut m = Machine::new(
        &SystemConfig::paint().with_prefetch(variant == DiagonalVariant::Remapped, false),
    );
    let d = Diagonal::setup(&mut m, n, variant).expect("setup");
    m.reset_stats();
    d.run(&mut m, passes);
    m.report(variant.name())
}

fn smvp(
    pattern: &Arc<SparsePattern>,
    variant: SmvpVariant,
    streams: bool,
    mc_pf: bool,
    label: &str,
) -> Report {
    let mut cfg = SystemConfig::paint().with_prefetch(mc_pf, false);
    if streams {
        cfg = cfg.with_stream_buffers();
    }
    let mut m = Machine::new(&cfg);
    let w = Smvp::setup(&mut m, pattern.clone(), variant).expect("setup");
    w.run(&mut m, 1);
    m.report(label)
}

fn main() {
    let args = Args::parse();
    let n = args.get("n", 2048);
    let rows = args.get("rows", 14_000);
    let nnz = args.get("nnz", if args.paper { 156 } else { 24 });
    let _ = PAGE_SIZE;

    println!("\n================================================================");
    println!("Stream buffers vs Impulse (paper §5)");
    println!("================================================================");

    println!("\n--- regular: diagonal walk of a {n}x{n} matrix (4 passes) ---");
    let conv = diagonal_plain(n, 4, DiagonalVariant::Conventional);
    let stream = diagonal_with_streams(n, 4);
    let imp = diagonal_plain(n, 4, DiagonalVariant::Remapped);
    println!(
        "{:<30}{:>12}{:>10}{:>14}",
        "system", "cycles", "speedup", "bus bytes"
    );
    for r in [&conv, &stream, &imp] {
        println!(
            "{:<30}{:>12}{:>10.2}{:>14}",
            r.name,
            r.cycles,
            conv.cycles as f64 / r.cycles as f64,
            r.bus.bytes
        );
    }
    println!(
        "(stream buffers hide latency but still move {}x the bytes Impulse does)",
        stream.bus.bytes / imp.bus.bytes.max(1)
    );

    println!("\n--- irregular: CG SMVP, n={rows}, ~{nnz} nnz/row ---");
    let pattern = Arc::new(SparsePattern::generate(rows, nnz, 0x5ca1e));
    let base = smvp(
        &pattern,
        SmvpVariant::Conventional,
        false,
        false,
        "conventional",
    );
    let with_stream = smvp(
        &pattern,
        SmvpVariant::Conventional,
        true,
        false,
        "conventional + stream buffers",
    );
    let impulse = smvp(
        &pattern,
        SmvpVariant::ScatterGather,
        false,
        true,
        "impulse scatter/gather + pf",
    );
    println!(
        "{:<30}{:>12}{:>10}{:>12}",
        "system", "cycles", "speedup", "stream hits"
    );
    for (r, hits) in [
        (&base, 0u64),
        (&with_stream, with_stream.mem.stream_loads),
        (&impulse, 0),
    ] {
        println!(
            "{:<30}{:>12}{:>10.2}{:>12}",
            r.name,
            r.cycles,
            base.cycles as f64 / r.cycles as f64,
            hits
        );
    }
    println!(
        "(stream buffers accelerate only the regular DATA/COLUMN streams; the\n\
         irregular x accesses — the bottleneck — are untouched, while Impulse\n\
         gathers them at the controller)"
    );
}
