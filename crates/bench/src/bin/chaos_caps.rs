//! Capability contention suite entry point: runs the multi-process
//! grant/share/revoke scenarios, asserts the capability invariants, and
//! writes `results/chaos_caps.json` (schema `impulse-caps-chaos-v1`).
//!
//! Usage: `chaos_caps [seed=<N>] [jobs=<N>] [out=<path>]
//! [journal=<path>] [watchdog_ms=<N>] [max_retries=<K>] [--resume]`
//!
//! Cases fan across `jobs=<N>` worker threads; results are gathered in
//! submission order and every scenario draws only from the seed, so the
//! JSON output is byte-identical for a fixed seed at any worker count.
//! Completed cases are journaled (fsync'd) as they finish; after a
//! crash, `--resume` reruns only what is missing and emits the same
//! bytes as an uninterrupted run. Exits nonzero if any invariant was
//! violated or any case failed to run.

use std::io::Write;
use std::path::Path;
use std::process::ExitCode;

use impulse_bench::caps_chaos::{caps_chaos_document, caps_chaos_jobs, CapsOutcome};
use impulse_bench::journal::{self, RunArtifacts};
use impulse_bench::runner::{self, SuperviseOpts};

const USAGE: &str = "usage: chaos_caps [seed=N] [jobs=N] [out=results/chaos_caps.json] \
[journal=results/chaos-caps-journal.jsonl] [watchdog_ms=N] [max_retries=K] [--resume]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |prefix: &str, default: &str| -> String {
        args.iter()
            .find_map(|a| a.strip_prefix(prefix).map(String::from))
            .unwrap_or_else(|| default.to_string())
    };
    let path = arg("out=", "results/chaos_caps.json");
    let journal_path = arg("journal=", "results/chaos-caps-journal.jsonl");
    let resume = args.iter().any(|a| a == "--resume");

    let typed = || -> Result<(usize, u64, SuperviseOpts), runner::ArgError> {
        Ok((
            runner::jobs_from_args(&args)?,
            runner::u64_from_args(&args, "seed", 1999)?,
            runner::supervise_from_args(&args)?,
        ))
    };
    let (jobs, seed, opts) = match typed() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let results = match journal::run_resumable(
        caps_chaos_jobs(seed),
        seed,
        jobs,
        &opts,
        Path::new(&journal_path),
        resume,
        &|o: &CapsOutcome| RunArtifacts {
            csv: String::new(),
            json: o.to_json(),
        },
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: journal I/O failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Rebuild the outcome list (submission order) from the artifacts;
    // journaled and freshly-run cases are indistinguishable here, which
    // is what keeps resumed chaos_caps.json byte-identical.
    let mut outcomes: Vec<CapsOutcome> = Vec::new();
    let mut failures: Vec<(String, String)> = Vec::new();
    for (id, res) in &results {
        match res {
            Ok(a) => match CapsOutcome::from_json(&a.json) {
                Some(o) => outcomes.push(o),
                None => failures.push((id.clone(), "journaled case failed to decode".into())),
            },
            Err(e) => failures.push((id.clone(), e.clone())),
        }
    }

    println!(
        "{:<20} {:>10} {:>8} {:>8} {:>9} {:>8} {:>8}",
        "scenario", "cycles", "grants", "revokes", "stale", "typed", "corrupt"
    );
    for o in &outcomes {
        println!(
            "{:<20} {:>10} {:>8} {:>8} {:>9} {:>8} {:>8}",
            o.scenario,
            o.cycles,
            o.grants,
            o.revocations,
            o.stale_denials,
            o.typed_faults,
            o.caps.corruptions
        );
    }

    let doc = caps_chaos_document(seed, &outcomes);
    if let Some(dir) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let mut f = std::fs::File::create(&path).expect("create chaos_caps.json");
    writeln!(f, "{doc:#}").expect("write chaos_caps.json");
    println!("wrote {path} (seed={seed}, {} cases)", outcomes.len());
    impulse_bench::print_artifacts(&[&path, &journal_path]);

    let violations: Vec<String> = outcomes
        .iter()
        .flat_map(|o| o.violations.iter().cloned())
        .collect();

    let mut failed = false;
    if !failures.is_empty() {
        failed = true;
        for (id, e) in &failures {
            eprintln!("case failed: {id}: {e}");
        }
    }
    if !violations.is_empty() {
        failed = true;
        for v in &violations {
            eprintln!("invariant violated: {v}");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
