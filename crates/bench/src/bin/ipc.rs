//! IPC scatter/gather (Section 6): assembling a message from scattered
//! user buffers and a protocol header by software copy vs. Impulse
//! controller gather.
//!
//! Overrides: `buffers=`, `bytes=` (per buffer), `messages=`.

use impulse_bench::Args;
use impulse_sim::{Machine, Report, SystemConfig};
use impulse_workloads::{IpcGather, IpcVariant};

fn run(buffers: u64, bytes: u64, messages: u64, variant: IpcVariant) -> Report {
    let mut m = Machine::new(&SystemConfig::paint());
    let w = IpcGather::setup(&mut m, buffers, bytes, 64, variant).expect("setup");
    m.reset_stats();
    for _ in 0..messages {
        w.send(&mut m);
    }
    m.report(variant.name())
}

fn main() {
    let args = Args::parse();
    let buffers = args.get("buffers", 8);
    let bytes = args.get("bytes", 4096);
    let messages = args.get("messages", if args.paper { 256 } else { 64 });

    let sw = run(buffers, bytes, messages, IpcVariant::SoftwareGather);
    let imp = run(buffers, bytes, messages, IpcVariant::ImpulseGather);

    println!("\n================================================================");
    println!(
        "IPC message assembly — {buffers} buffers × {bytes} B + 64 B header, {messages} messages"
    );
    println!("================================================================");
    println!(
        "{:<26}{:>18}{:>20}",
        "", "software gather", "impulse no-copy"
    );
    println!("{:<26}{:>18}{:>20}", "cycles", sw.cycles, imp.cycles);
    println!("{:<26}{:>18}{:>20}", "loads", sw.mem.loads, imp.mem.loads);
    println!(
        "{:<26}{:>18}{:>20}",
        "stores", sw.mem.stores, imp.mem.stores
    );
    println!(
        "{:<26}{:>18}{:>20}",
        "bus traffic (bytes)", sw.bus.bytes, imp.bus.bytes
    );
    println!(
        "\nper-message cycles: {} vs {}  (speedup {:.2}x; Impulse removes the\n\
         software gather copy entirely, as Section 6 of the paper suggests)",
        sw.cycles / messages,
        imp.cycles / messages,
        sw.cycles as f64 / imp.cycles as f64
    );
}
