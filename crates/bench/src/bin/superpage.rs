//! The superpage experiment (Section 6, recapping Swanson et al.,
//! ISCA '98): Impulse's direct remapping welds non-contiguous physical
//! pages into contiguous shadow superpages, cutting TLB misses. The
//! original paper reported 5–20% improvements on SPECint95 workloads.
//!
//! Overrides: `regions=`, `pages=`, `rounds=`.

use impulse_bench::Args;
use impulse_sim::{Machine, Report, SystemConfig};
use impulse_workloads::{TlbStress, TlbVariant};

fn run(regions: u64, pages: u64, rounds: u64, variant: TlbVariant) -> Report {
    let mut m = Machine::new(&SystemConfig::paint());
    let w = TlbStress::setup(&mut m, regions, pages, variant).expect("setup");
    m.reset_stats();
    w.sweep(&mut m, rounds);
    m.report(variant.name())
}

/// Base pages + the *online* promotion policy: the OS notices the TLB
/// thrash and rebuilds the regions as superpages mid-run ("dynamically
/// build superpages", Section 6).
fn run_auto(regions: u64, pages: u64, rounds: u64, threshold: u64) -> Report {
    let mut m = Machine::new(&SystemConfig::paint());
    let w = TlbStress::setup(&mut m, regions, pages, TlbVariant::BasePages).expect("setup");
    m.enable_auto_promotion(threshold);
    m.reset_stats();
    w.sweep(&mut m, rounds);
    m.report("online promotion")
}

fn main() {
    let args = Args::parse();
    let regions = args.get("regions", 8);
    let pages = args.get("pages", if args.paper { 256 } else { 64 });
    let rounds = args.get("rounds", 64);

    let base = run(regions, pages, rounds, TlbVariant::BasePages);
    let sp = run(regions, pages, rounds, TlbVariant::Superpages);
    let auto = run_auto(regions, pages, rounds, 32);

    println!("\n================================================================");
    println!(
        "Superpages via shadow remapping — {regions} regions × {pages} pages, {rounds} sweeps"
    );
    println!(
        "(working set {} pages vs. a 120-entry TLB)",
        regions * pages
    );
    println!("================================================================");
    println!(
        "{:<26}{:>16}{:>20}{:>20}",
        "", "base pages", "impulse superpgs", "online promotion"
    );
    println!(
        "{:<26}{:>16}{:>20}{:>20}",
        "cycles", base.cycles, sp.cycles, auto.cycles
    );
    println!(
        "{:<26}{:>16}{:>20}{:>20}",
        "TLB miss penalties", base.mem.tlb_penalties, sp.mem.tlb_penalties, auto.mem.tlb_penalties
    );
    println!(
        "{:<26}{:>15.1}%{:>19.1}%{:>19.1}%",
        "TLB hit ratio",
        100.0 * base.tlb.hit_ratio(),
        100.0 * sp.tlb.hit_ratio(),
        100.0 * auto.tlb.hit_ratio()
    );
    println!(
        "\nspeedup: {:.2}x manual, {:.2}x online   (paper reports 5–20% on\n\
         SPECint95; this microbenchmark isolates the TLB effect, so the gain\n\
         is larger — and the online policy pays its one-time promotion cost\n\
         [flushes + page downloads] out of the same budget)",
        base.cycles as f64 / sp.cycles as f64,
        base.cycles as f64 / auto.cycles as f64
    );
}
