//! Runs every experiment at quick scale and writes one CSV of headline
//! metrics plus a full JSON report — the one-command regeneration entry
//! point (`results.csv` and `results/run_all.json` in the current
//! directory, or `out=<path>` / `json=<path>`).
//!
//! Experiments are independent (each builds its own `Machine`), so they
//! fan across `jobs=<N>` worker threads (default: every hardware
//! thread; `jobs=1` forces the old serial path). Results are gathered in
//! submission order, so the CSV and JSON outputs are byte-identical at
//! any job count — only the wall clock changes. Host-side wall-clock
//! timings land in `BENCH_run_all.json` (or `bench=<path>`): per
//! experiment, the serial sum, and the elapsed total, so the perf
//! trajectory is machine-readable PR over PR.
//!
//! The JSON report (schema `impulse-report-v1` per experiment) carries
//! what the CSV cannot: per-level latency histograms with p50/p90/p99
//! and the demand-cycle attribution table whose stage totals sum to each
//! epoch's demand-access cycles.
//!
//! For the paper-layout tables with reference values, run the individual
//! binaries (`table1`, `table2`, `fig1`, ...).

use std::io::Write;
use std::time::Instant;

use impulse_bench::experiments::{json_document, run_all_experiments};
use impulse_bench::runner;
use impulse_obs::Json;
use impulse_sim::Report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |prefix: &str, default: &str| -> String {
        args.iter()
            .find_map(|a| a.strip_prefix(prefix).map(String::from))
            .unwrap_or_else(|| default.to_string())
    };
    let path = arg("out=", "results.csv");
    let json_path = arg("json=", "results/run_all.json");
    let bench_path = arg("bench=", "BENCH_run_all.json");
    let jobs = runner::jobs_from_args(&args);

    let t_total = Instant::now();
    let experiments = run_all_experiments();
    let timed = runner::run_ordered_timed(
        experiments
            .into_iter()
            .map(|e| {
                move || {
                    let name = e.name().to_string();
                    let r = e.run();
                    eprintln!("done: {name}");
                    r
                }
            })
            .collect(),
        jobs,
    );
    let total_wall = t_total.elapsed();
    let reports: Vec<Report> = timed.iter().map(|(r, _)| r.clone()).collect();

    let mut f = std::fs::File::create(&path).expect("create results file");
    writeln!(f, "{}", Report::csv_header()).expect("write header");
    for r in &reports {
        writeln!(f, "{}", r.csv_row()).expect("write row");
    }

    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results directory");
        }
    }
    let doc = json_document(&reports);
    let mut jf = std::fs::File::create(&json_path).expect("create JSON report");
    writeln!(jf, "{doc:#}").expect("write JSON report");

    // Host-side perf record: per-experiment wall clock, their serial sum,
    // and the elapsed (parallel) total. serial_sum / total ≈ the speedup
    // the job pool delivered on this host.
    let mut bench = Json::obj();
    bench.set("schema", Json::Str("impulse-bench-run-all-v1".into()));
    bench.set("jobs", Json::UInt(jobs as u64));
    bench.set("experiments_run", Json::UInt(reports.len() as u64));
    bench.set("total_wall_ns", Json::UInt(total_wall.as_nanos() as u64));
    bench.set(
        "serial_sum_wall_ns",
        Json::UInt(timed.iter().map(|(_, d)| d.as_nanos() as u64).sum()),
    );
    bench.set(
        "experiments",
        Json::Arr(
            timed
                .iter()
                .map(|(r, d)| {
                    let mut e = Json::obj();
                    e.set("name", Json::Str(r.name.clone()));
                    e.set("wall_ns", Json::UInt(d.as_nanos() as u64));
                    e
                })
                .collect(),
        ),
    );
    let mut bf = std::fs::File::create(&bench_path).expect("create bench record");
    writeln!(bf, "{bench:#}").expect("write bench record");

    println!(
        "wrote {} experiment rows to {path} and full reports to {json_path} \
         ({jobs} jobs, {:.2}s wall, timings in {bench_path})",
        reports.len(),
        total_wall.as_secs_f64(),
    );
}
